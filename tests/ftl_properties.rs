//! Property-style tests of the FTL under random host op streams: mapping
//! consistency, valid-count accounting, sense-count sanity, and refresh/GC
//! robustness. Randomness comes from the workspace's seeded deterministic
//! RNG, so every run exercises the same (large) set of cases.

use ida_core::refresh::RefreshMode;
use ida_flash::addr::BlockAddr;
use ida_flash::geometry::Geometry;
use ida_ftl::block::BlockState;
use ida_ftl::{Ftl, FtlConfig, Lpn};
use ida_obs::rng::Rng64;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum HostAction {
    Write(u16),
    Trim(u16),
    Read(u16),
    RefreshOne,
}

/// Weighted action sampler mirroring the old proptest strategy:
/// 4 writes : 1 trim : 3 reads : 1 refresh.
fn sample_action(rng: &mut Rng64) -> HostAction {
    match rng.gen_below(9) {
        0..=3 => HostAction::Write(rng.gen_below(800) as u16),
        4 => HostAction::Trim(rng.gen_below(800) as u16),
        5..=7 => HostAction::Read(rng.gen_below(800) as u16),
        _ => HostAction::RefreshOne,
    }
}

fn new_ftl(mode: RefreshMode) -> Ftl {
    Ftl::new(FtlConfig {
        geometry: Geometry::tiny(),
        refresh_mode: mode,
        adjust_error_rate: 0.25,
        ..FtlConfig::default()
    })
}

#[test]
fn mapping_stays_consistent_under_random_ops() {
    let mut rng = Rng64::seed_from_u64(0xF71_0001);
    for case in 0..48 {
        let mode = if case % 2 == 0 {
            RefreshMode::Baseline
        } else {
            RefreshMode::Ida
        };
        let n_actions = rng.gen_range_u64(1, 400) as usize;
        let mut ftl = new_ftl(mode);
        let mut shadow: HashMap<u16, u64> = HashMap::new();
        let mut clock = 0u64;
        for _ in 0..n_actions {
            clock += 1;
            match sample_action(&mut rng) {
                HostAction::Write(lpn) => {
                    ftl.write(Lpn(lpn as u64), clock).unwrap();
                    *shadow.entry(lpn).or_insert(0) += 1;
                }
                HostAction::Trim(lpn) => {
                    ftl.trim(Lpn(lpn as u64));
                    shadow.remove(&lpn);
                }
                HostAction::Read(lpn) => {
                    let got = ftl.read(Lpn(lpn as u64));
                    assert_eq!(
                        got.is_some(),
                        shadow.contains_key(&lpn),
                        "mapping presence diverged for lpn {lpn}"
                    );
                    if let Some(r) = got {
                        assert!(r.senses >= 1 && r.senses <= 4);
                        assert!(ftl.is_valid(r.page));
                    }
                }
                HostAction::RefreshOne => {
                    let target = ftl
                        .blocks()
                        .reclaimable_blocks()
                        .find(|&(_, v, _)| v > 0)
                        .map(|(b, _, _)| b);
                    if let Some(b) = target {
                        let mut ops = Vec::new();
                        ftl.refresh_block(b, clock, &mut ops);
                    }
                }
            }
        }
        // Every shadow entry still readable; every absent entry unmapped.
        for &lpn in shadow.keys() {
            assert!(ftl.read(Lpn(lpn as u64)).is_some());
        }
    }
}

#[test]
fn block_valid_counts_match_the_page_map() {
    let mut rng = Rng64::seed_from_u64(0xF71_0002);
    for _case in 0..24 {
        let n_writes = rng.gen_range_u64(50, 300) as usize;
        let mut ftl = new_ftl(RefreshMode::Ida);
        for i in 0..n_writes {
            ftl.write(Lpn(rng.gen_below(600)), i as u64).unwrap();
        }
        let g = *ftl.blocks().geometry();
        for b in 0..g.total_blocks() {
            let block = BlockAddr(b);
            if ftl.blocks().state(block) == BlockState::Free {
                continue;
            }
            let counted = (0..g.pages_per_block())
                .filter(|&off| ftl.is_valid(block.page(&g, off)))
                .count() as u32;
            assert_eq!(
                counted,
                ftl.blocks().valid_pages(block),
                "valid-count mismatch in block {b}"
            );
        }
    }
}

#[test]
fn senses_match_block_coding_state() {
    let mut rng = Rng64::seed_from_u64(0xF71_0003);
    for _case in 0..24 {
        let n_writes = rng.gen_range_u64(100, 300) as usize;
        let refresh_rounds = rng.gen_range_u64(1, 3) as usize;
        let writes: Vec<u64> = (0..n_writes).map(|_| rng.gen_below(500)).collect();
        let mut ftl = new_ftl(RefreshMode::Ida);
        for (i, &lpn) in writes.iter().enumerate() {
            ftl.write(Lpn(lpn), i as u64).unwrap();
        }
        for round in 0..refresh_rounds {
            let targets: Vec<BlockAddr> = ftl
                .blocks()
                .reclaimable_blocks()
                .filter(|&(_, v, _)| v > 0)
                .map(|(b, _, _)| b)
                .collect();
            let mut ops = Vec::new();
            for b in targets {
                ftl.refresh_block(b, 1000 + round as u64, &mut ops);
                ops.clear();
            }
        }
        let g = *ftl.blocks().geometry();
        for lpn in writes {
            if let Some(r) = ftl.read(Lpn(lpn)) {
                let block = r.page.block(&g);
                let wl = r.page.wordline(&g).offset_in_block(&g);
                let mask = if ftl.blocks().state(block) == BlockState::Ida {
                    ftl.blocks().wl_keep_mask(block, wl)
                } else {
                    0
                };
                if mask == 0 {
                    // Conventional coding: 1/2/4 senses by page type.
                    let expect = [1u32, 2, 4][r.page_type.bit_index() as usize];
                    assert_eq!(r.senses, expect);
                } else {
                    assert!(
                        r.senses < [1u32, 2, 4][r.page_type.bit_index() as usize]
                            || r.page_type.bit_index() == 0,
                        "IDA wordline must read faster"
                    );
                }
            }
        }
    }
}
