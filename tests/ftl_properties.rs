//! Property-based tests of the FTL under random host op streams: mapping
//! consistency, valid-count accounting, sense-count sanity, and refresh/GC
//! robustness.

use ida_core::refresh::RefreshMode;
use ida_flash::addr::BlockAddr;
use ida_flash::geometry::Geometry;
use ida_ftl::block::BlockState;
use ida_ftl::{Ftl, FtlConfig, Lpn};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum HostAction {
    Write(u16),
    Trim(u16),
    Read(u16),
    RefreshOne,
}

fn action_strategy() -> impl Strategy<Value = HostAction> {
    prop_oneof![
        4 => (0u16..800).prop_map(HostAction::Write),
        1 => (0u16..800).prop_map(HostAction::Trim),
        3 => (0u16..800).prop_map(HostAction::Read),
        1 => Just(HostAction::RefreshOne),
    ]
}

fn new_ftl(mode: RefreshMode) -> Ftl {
    Ftl::new(FtlConfig {
        geometry: Geometry::tiny(),
        refresh_mode: mode,
        adjust_error_rate: 0.25,
        ..FtlConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mapping_stays_consistent_under_random_ops(
        actions in prop::collection::vec(action_strategy(), 1..400),
        mode in prop_oneof![Just(RefreshMode::Baseline), Just(RefreshMode::Ida)],
    ) {
        let mut ftl = new_ftl(mode);
        let mut shadow: HashMap<u16, u64> = HashMap::new();
        let mut clock = 0u64;
        for action in actions {
            clock += 1;
            match action {
                HostAction::Write(lpn) => {
                    ftl.write(Lpn(lpn as u64), clock);
                    *shadow.entry(lpn).or_insert(0) += 1;
                }
                HostAction::Trim(lpn) => {
                    ftl.trim(Lpn(lpn as u64));
                    shadow.remove(&lpn);
                }
                HostAction::Read(lpn) => {
                    let got = ftl.read(Lpn(lpn as u64));
                    prop_assert_eq!(
                        got.is_some(),
                        shadow.contains_key(&lpn),
                        "mapping presence diverged for lpn {}", lpn
                    );
                    if let Some(r) = got {
                        prop_assert!(r.senses >= 1 && r.senses <= 4);
                        prop_assert!(ftl.is_valid(r.page));
                    }
                }
                HostAction::RefreshOne => {
                    let target = ftl
                        .blocks()
                        .reclaimable_blocks()
                        .find(|&(_, v, _)| v > 0)
                        .map(|(b, _, _)| b);
                    if let Some(b) = target {
                        let mut ops = Vec::new();
                        ftl.refresh_block(b, clock, &mut ops);
                    }
                }
            }
        }
        // Every shadow entry still readable; every absent entry unmapped.
        for (&lpn, _) in &shadow {
            prop_assert!(ftl.read(Lpn(lpn as u64)).is_some());
        }
    }

    #[test]
    fn block_valid_counts_match_the_page_map(
        writes in prop::collection::vec(0u16..600, 50..300),
    ) {
        let mut ftl = new_ftl(RefreshMode::Ida);
        for (i, lpn) in writes.iter().enumerate() {
            ftl.write(Lpn(*lpn as u64), i as u64);
        }
        let g = *ftl.blocks().geometry();
        for b in 0..g.total_blocks() {
            let block = BlockAddr(b);
            if ftl.blocks().state(block) == BlockState::Free {
                continue;
            }
            let counted = (0..g.pages_per_block())
                .filter(|&off| ftl.is_valid(block.page(&g, off)))
                .count() as u32;
            prop_assert_eq!(
                counted,
                ftl.blocks().valid_pages(block),
                "valid-count mismatch in block {}", b
            );
        }
    }

    #[test]
    fn senses_match_block_coding_state(
        writes in prop::collection::vec(0u16..500, 100..300),
        refresh_rounds in 1usize..3,
    ) {
        let mut ftl = new_ftl(RefreshMode::Ida);
        for (i, lpn) in writes.iter().enumerate() {
            ftl.write(Lpn(*lpn as u64), i as u64);
        }
        for round in 0..refresh_rounds {
            let targets: Vec<BlockAddr> = ftl
                .blocks()
                .reclaimable_blocks()
                .filter(|&(_, v, _)| v > 0)
                .map(|(b, _, _)| b)
                .collect();
            let mut ops = Vec::new();
            for b in targets {
                ftl.refresh_block(b, 1000 + round as u64, &mut ops);
                ops.clear();
            }
        }
        let g = *ftl.blocks().geometry();
        for lpn in writes {
            if let Some(r) = ftl.read(Lpn(lpn as u64)) {
                let block = r.page.block(&g);
                let wl = r.page.wordline(&g).offset_in_block(&g);
                let mask = if ftl.blocks().state(block) == BlockState::Ida {
                    ftl.blocks().wl_keep_mask(block, wl)
                } else {
                    0
                };
                if mask == 0 {
                    // Conventional coding: 1/2/4 senses by page type.
                    let expect = [1u32, 2, 4][r.page_type.bit_index() as usize];
                    prop_assert_eq!(r.senses, expect);
                } else {
                    prop_assert!(r.senses < [1u32, 2, 4][r.page_type.bit_index() as usize]
                        || r.page_type.bit_index() == 0,
                        "IDA wordline must read faster");
                }
            }
        }
    }
}
