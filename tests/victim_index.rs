//! Differential property tests for the per-plane GC victim index.
//!
//! [`BlockTable`] answers victim queries and occupancy counters from
//! incrementally maintained structures; `gc::select_victim_scan` is the
//! retained linear-scan reference (the executable specification of the
//! `(valid_pages, erase_count, BlockAddr)` ordering). These tests drive
//! random block-lifecycle sequences — including the PR 3 fault paths:
//! retirement of worn blocks and spare promotion via `mark_bad`, plus
//! post-crash `restore` reconstruction — and assert that index and scan
//! never diverge, on any plane, with or without an excluded block.
//!
//! Randomness comes from the workspace's seeded deterministic RNG, so
//! every run exercises the same (large) set of cases.

use ida_flash::addr::{BlockAddr, PlaneAddr};
use ida_flash::geometry::Geometry;
use ida_ftl::block::{BlockState, BlockTable};
use ida_ftl::gc::{select_victim, select_victim_scan};
use ida_obs::rng::Rng64;

/// Pick a random block satisfying `pred`, if any (uniformly via
/// reservoir sampling over the table).
fn pick_block(
    t: &BlockTable,
    rng: &mut Rng64,
    pred: impl Fn(&BlockTable, BlockAddr) -> bool,
) -> Option<BlockAddr> {
    let total = t.geometry().total_blocks();
    let mut chosen = None;
    let mut seen = 0u64;
    for i in 0..total {
        let b = BlockAddr(i);
        if pred(t, b) {
            seen += 1;
            if rng.gen_below(seen) == 0 {
                chosen = Some(b);
            }
        }
    }
    chosen
}

/// One random legal lifecycle action. Mirrors what the FTL actually does:
/// blocks are drained (fully invalidated) before erase or retirement, and
/// `mark_bad` also fires on Free blocks (spare promotion bookkeeping).
/// Never erases a Bad block — the FTL never does.
fn step(t: &mut BlockTable, rng: &mut Rng64, now: u64) {
    let g = *t.geometry();
    match rng.gen_below(100) {
        // Open a free block.
        0..=14 => {
            if let Some(b) = pick_block(t, rng, |t, b| t.state(b) == BlockState::Free) {
                t.open(b);
            }
        }
        // Program into an open block (closes it when full).
        15..=54 => {
            if let Some(b) = pick_block(t, rng, |t, b| t.has_room(b)) {
                // A burst, so blocks actually reach Closed.
                let burst = rng.gen_below(g.pages_per_block() as u64) + 1;
                for _ in 0..burst {
                    if !t.has_room(b) {
                        break;
                    }
                    t.allocate_page(b, now);
                }
            }
        }
        // Invalidate a page anywhere one is valid.
        55..=79 => {
            if let Some(b) = pick_block(t, rng, |t, b| {
                t.valid_pages(b) > 0 && t.state(b) != BlockState::Bad
            }) {
                t.invalidate_page(b);
            }
        }
        // GC-style collection: drain a reclaimable block, then erase it.
        80..=89 => {
            if let Some(b) = pick_block(t, rng, |t, b| {
                matches!(t.state(b), BlockState::Closed | BlockState::Ida)
            }) {
                for _ in 0..t.valid_pages(b) {
                    t.invalidate_page(b);
                }
                t.erase(b);
            }
        }
        // IDA conversion of a closed block.
        90..=94 => {
            if let Some(b) = pick_block(t, rng, |t, b| t.state(b) == BlockState::Closed) {
                let wl = rng.gen_below(g.wordlines_per_block as u64) as u32;
                let mask = (rng.gen_below(7) + 1) as u8;
                t.mark_ida(b, &[(wl, mask)], now);
            }
        }
        // Fault path: retire a drained block (program/erase failure)...
        95..=97 => {
            if let Some(b) = pick_block(t, rng, |t, b| {
                matches!(t.state(b), BlockState::Closed | BlockState::Ida)
            }) {
                for _ in 0..t.valid_pages(b) {
                    t.invalidate_page(b);
                }
                t.mark_bad(b);
            }
        }
        // ...or promote a spare: a Free block retires into the in-use set.
        _ => {
            if let Some(b) = pick_block(t, rng, |t, b| t.state(b) == BlockState::Free) {
                t.mark_bad(b);
            }
        }
    }
}

/// Global victim reference: the scan minimum across every plane.
fn global_scan(t: &BlockTable, exclude: Option<BlockAddr>) -> Option<BlockAddr> {
    let g = t.geometry();
    (0..g.total_planes())
        .filter_map(|p| select_victim_scan(t, PlaneAddr(p), exclude))
        .min_by_key(|&b| (t.valid_pages(b), t.erase_count(b), b))
}

/// Assert every index-backed answer matches its full-scan recomputation.
fn check_against_scan(t: &BlockTable, rng: &mut Rng64) {
    let g = t.geometry();
    let total = g.total_blocks();
    // A random excluded block plus the scan's own pick (the case that
    // actually matters: excluding the current minimum must surface the
    // runner-up, i.e. the second-smallest entry of some bucket).
    let mut excludes = vec![None, Some(BlockAddr(rng.gen_below(total as u64) as u32))];
    if let Some(b) = global_scan(t, None) {
        excludes.push(Some(b));
    }
    for plane in 0..g.total_planes() {
        let plane = PlaneAddr(plane);
        for &exclude in &excludes {
            assert_eq!(
                select_victim(t, plane, exclude),
                select_victim_scan(t, plane, exclude),
                "victim index diverged from scan on {plane:?} excluding {exclude:?}"
            );
        }
    }
    for &exclude in &excludes {
        assert_eq!(
            t.victim_global(exclude),
            global_scan(t, exclude),
            "global victim diverged from scan excluding {exclude:?}"
        );
    }
    // Occupancy counters against their O(blocks) recomputations.
    let in_use_scan = (0..total)
        .filter(|&i| t.state(BlockAddr(i)) != BlockState::Free)
        .count() as u32;
    assert_eq!(t.in_use_blocks(), in_use_scan, "in_use_blocks diverged");
    let erases_scan: u64 = (0..total).map(|i| t.erase_count(BlockAddr(i)) as u64).sum();
    assert_eq!(t.total_erases(), erases_scan, "total_erases diverged");
}

fn run_differential(geometry: Geometry, seed: u64, steps: u64, check_every: u64) {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut t = BlockTable::new(geometry);
    check_against_scan(&t, &mut rng); // empty table
    for now in 0..steps {
        step(&mut t, &mut rng, now);
        if now % check_every == 0 {
            check_against_scan(&t, &mut rng);
        }
    }
    check_against_scan(&t, &mut rng);
}

#[test]
fn index_matches_scan_on_tiny_geometry() {
    run_differential(Geometry::tiny(), 0x71C_0001, 1500, 1);
}

/// A micro geometry with 4 planes and 8-page blocks: state transitions
/// (close, drain, erase, retire) fire constantly, and with only 6 blocks
/// per plane the exclusion runner-up path is exercised often.
#[test]
fn index_matches_scan_on_micro_multi_plane_geometry() {
    let g = Geometry {
        channels: 1,
        chips_per_channel: 1,
        dies_per_chip: 1,
        planes_per_die: 4,
        blocks_per_plane: 6,
        wordlines_per_block: 4,
        bits_per_cell: 2,
        page_size_bytes: 4 * 1024,
    };
    for seed in 0..4u64 {
        run_differential(g, 0x71C_0100 + seed, 1200, 1);
    }
}

/// The experiment-scale geometry (64 planes, 5504 blocks): checks are
/// sampled since each scan is O(total blocks).
#[test]
fn index_matches_scan_on_scaled_geometry() {
    run_differential(Geometry::scaled_8gb(), 0x71C_0200, 1200, 31);
}

/// Post-crash reconstruction: `restore` must rebuild the index and
/// counters to exactly the state a scan of the restored records implies.
#[test]
fn restore_rebuilds_index_and_counters() {
    let g = Geometry::tiny();
    let mut rng = Rng64::seed_from_u64(0x71C_0300);
    let mut t = BlockTable::new(g);
    for now in 0..600 {
        step(&mut t, &mut rng, now);
    }
    // Rebuild a fresh table from the survivor's per-block records, the way
    // the recovery scan replays OOB metadata.
    let mut rebuilt = BlockTable::new(g);
    for i in 0..g.total_blocks() {
        let b = BlockAddr(i);
        let masks: Vec<u8> = (0..g.wordlines_per_block)
            .map(|wl| t.wl_keep_mask(b, wl))
            .collect();
        if t.state(b) != BlockState::Free {
            rebuilt.restore(
                b,
                t.state(b),
                t.next_offset(b),
                t.valid_pages(b),
                t.erase_count(b),
                t.closed_at(b),
                &masks,
            );
        }
    }
    for plane in 0..g.total_planes() {
        let plane = PlaneAddr(plane);
        for exclude in [None, global_scan(&t, None)] {
            assert_eq!(
                select_victim(&rebuilt, plane, exclude),
                select_victim_scan(&t, plane, exclude),
                "restored index diverged on {plane:?}"
            );
        }
    }
    assert_eq!(rebuilt.in_use_blocks(), t.in_use_blocks());
    assert_eq!(rebuilt.ida_blocks(), t.ida_blocks());
    assert_eq!(rebuilt.adjusted_wordlines(), t.adjusted_wordlines());
    assert_eq!(rebuilt.bad_blocks(), t.bad_blocks());
}
