//! Integration tests for the `ida-sweep` orchestration engine and its
//! `ida-bench` wiring — the determinism, resume, and failure-isolation
//! contracts the sweep subsystem promises:
//!
//! (a) an N-worker run emits byte-identical aggregated JSON to a
//!     1-worker run of the same spec;
//! (b) resuming from a (truncated) journal re-runs only incomplete
//!     cells and still reproduces the same aggregate;
//! (c) a panicking cell is retried, then reported as a per-cell error
//!     record, without taking down the pool or the other cells.

use ida_bench::runner::ExperimentScale;
use ida_bench::sweep::{metric, run_grid};
use ida_obs::json::JsonObj;
use ida_sweep::pool::{run_cells, CellStatus, SweepConfig};
use ida_sweep::{Cell, SweepOutcome, SweepSpec};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ida-sweep-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A compute-only stand-in for an experiment: burns a little CPU and
/// derives its "measurement" purely from the cell's private RNG stream.
fn synthetic_payload(cell: &Cell) -> String {
    let mut rng = cell.rng();
    let mut acc = 0u64;
    for _ in 0..1000 {
        acc = acc.wrapping_add(rng.next_u64() >> 32);
    }
    JsonObj::new()
        .str("cell", &cell.id())
        .u64("acc", acc)
        .f64("mean", acc as f64 / 1000.0)
        .finish()
}

fn synthetic_spec() -> SweepSpec {
    SweepSpec::new(
        "synthetic",
        (0..6).map(|i| format!("w{i}")).collect(),
        vec!["Baseline".into(), "IDA-E20".into()],
    )
    .with_axis("dtr_us", vec!["30".into(), "50".into()])
    .with_replicates(vec![1, 2])
}

fn aggregate(spec: &SweepSpec, cfg: &SweepConfig) -> String {
    let cells = spec.cells();
    let outcomes = run_cells(&spec.name, &cells, cfg, synthetic_payload).unwrap();
    SweepOutcome {
        sweep: spec.name.clone(),
        outcomes,
    }
    .aggregate_json()
}

#[test]
fn four_workers_emit_byte_identical_aggregate_to_one_worker() {
    let spec = synthetic_spec();
    assert_eq!(spec.len(), 48, "grid size sanity");
    let serial = aggregate(&spec, &SweepConfig::serial());
    for jobs in [2, 4, 7] {
        let parallel = aggregate(&spec, &SweepConfig::serial().with_jobs(jobs));
        assert_eq!(serial, parallel, "jobs={jobs} aggregate diverged");
    }
    // Sanity: the aggregate actually carries every cell.
    assert!(serial.contains("\"cells\":48"));
    assert!(serial.contains("w5/IDA-E20/dtr_us=50/r2"));
}

#[test]
fn resume_from_truncated_journal_reruns_only_incomplete_cells() {
    let path = tmp("truncated-resume.jsonl");
    let _ = std::fs::remove_file(&path);
    let spec = synthetic_spec();
    let cells = spec.cells();
    let cfg = SweepConfig::serial()
        .with_jobs(2)
        .with_journal(path.clone());

    // Reference aggregate from an un-journaled serial run.
    let reference = aggregate(&spec, &SweepConfig::serial());

    // Full run, journaling every cell.
    let executed = AtomicU32::new(0);
    let count_and_run = |cell: &Cell| {
        executed.fetch_add(1, Ordering::SeqCst);
        synthetic_payload(cell)
    };
    run_cells(&spec.name, &cells, &cfg, count_and_run).unwrap();
    assert_eq!(executed.load(Ordering::SeqCst) as usize, cells.len());

    // Simulate a kill mid-run: keep the first 30 journal lines and tear
    // the 31st mid-record.
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), cells.len());
    let mut kept: String = lines[..30].join("\n");
    kept.push('\n');
    kept.push_str(&lines[30][..lines[30].len() / 2]);
    std::fs::write(&path, &kept).unwrap();

    // Resume: exactly the 18 un-journaled cells (and the torn one) re-run.
    executed.store(0, Ordering::SeqCst);
    let outcomes = run_cells(&spec.name, &cells, &cfg, count_and_run).unwrap();
    assert_eq!(
        executed.load(Ordering::SeqCst) as usize,
        cells.len() - 30,
        "resume must re-run only incomplete cells"
    );
    assert_eq!(outcomes.iter().filter(|o| o.cached).count(), 30);

    // And the aggregate is still byte-identical to the fresh serial run.
    let resumed = SweepOutcome {
        sweep: spec.name.clone(),
        outcomes,
    }
    .aggregate_json();
    assert_eq!(resumed, reference);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn panicking_cell_is_retried_reported_and_isolated() {
    let spec = synthetic_spec();
    let cells = spec.cells();
    let cfg = SweepConfig::serial().with_jobs(4);
    let attempts_on_bad = AtomicU32::new(0);
    let outcomes = run_cells(&spec.name, &cells, &cfg, |cell: &Cell| {
        if cell.workload == "w3" && cell.system == "IDA-E20" {
            attempts_on_bad.fetch_add(1, Ordering::SeqCst);
            panic!("simulated cell crash in {}", cell.id());
        }
        synthetic_payload(cell)
    })
    .unwrap();

    let failed: Vec<_> = outcomes.iter().filter(|o| o.payload().is_none()).collect();
    assert_eq!(failed.len(), 4, "w3 × IDA-E20 × 2 dtr × 2 replicates");
    for o in &failed {
        assert_eq!(o.attempts, cfg.max_attempts, "bounded retry");
        match &o.status {
            CellStatus::Failed { error } => {
                assert!(
                    error.contains("simulated cell crash"),
                    "lost message: {error}"
                );
            }
            CellStatus::Done { .. } => unreachable!(),
        }
    }
    assert_eq!(
        attempts_on_bad.load(Ordering::SeqCst),
        4 * cfg.max_attempts,
        "each failing cell gets its full retry budget"
    );
    // Every other cell still produced its payload.
    assert_eq!(outcomes.len() - failed.len(), spec.len() - 4);
    // The failure records survive into the aggregate.
    let json = SweepOutcome {
        sweep: spec.name.clone(),
        outcomes,
    }
    .aggregate_json();
    assert!(json.contains("\"failed\":[{\"cell\":\"w3/IDA-E20/dtr_us=30/r1\""));
}

/// End-to-end determinism through the real simulator: a small fig8-style
/// grid run on 1 and 4 workers must aggregate to the same bytes.
#[test]
fn bench_grid_is_deterministic_across_worker_counts() {
    let spec = SweepSpec::new(
        "fig8",
        vec!["hm_1".into()],
        vec!["Baseline".into(), "IDA-E20".into()],
    );
    let scale = ExperimentScale::smoke().with_requests(400);
    let serial = run_grid(&spec, &scale, &SweepConfig::serial()).unwrap();
    let parallel = run_grid(&spec, &scale, &SweepConfig::serial().with_jobs(4)).unwrap();
    assert_eq!(serial.aggregate_json(), parallel.aggregate_json());
    // The payloads are real measurements, not placeholders.
    let mean = metric(&serial, "hm_1", "Baseline", &[], "mean_read_ns").unwrap();
    assert!(mean > 0.0, "baseline mean read response must be positive");
    let reads = metric(&serial, "hm_1", "IDA-E20", &[], "reads").unwrap();
    assert!(reads > 100.0, "IDA cell must complete reads (got {reads})");
}
