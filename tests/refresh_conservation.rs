//! Conservation laws of the modified data refresh, checked on the real FTL
//! (not just the planner): page accounting, Section III-C's read/write
//! formulas, IDA block lifecycle, and mapping integrity through refresh,
//! GC and IDA churn.

use ida_core::refresh::RefreshMode;
use ida_flash::addr::{BlockAddr, PageType};
use ida_flash::geometry::Geometry;
use ida_ftl::block::BlockState;
use ida_ftl::{FlashOpKind, Ftl, FtlConfig, Lpn};

fn ftl(mode: RefreshMode, error_rate: f64) -> Ftl {
    Ftl::new(FtlConfig {
        geometry: Geometry::tiny(),
        refresh_mode: mode,
        adjust_error_rate: error_rate,
        refresh_period: 1_000_000_000,
        ..FtlConfig::default()
    })
}

/// Fill the device footprint and overwrite a stride of LPNs to create a
/// realistic invalidation pattern. Returns the written LPN count.
fn churn(ftl: &mut Ftl, stride: usize) -> u64 {
    let pages = ftl.exported_pages() / 2;
    for lpn in 0..pages {
        ftl.write(Lpn(lpn), 0).unwrap();
    }
    for lpn in (0..pages).step_by(stride) {
        ftl.write(Lpn(lpn), 1).unwrap();
    }
    pages
}

#[test]
fn refresh_op_counts_follow_section_iii_c() {
    let mut f = ftl(RefreshMode::Ida, 0.2);
    let written = churn(&mut f, 3);
    // Refresh every closed block once, counting ops.
    let closed: Vec<BlockAddr> = f
        .blocks()
        .reclaimable_blocks()
        .filter(|&(b, v, _)| v > 0 && f.blocks().state(b) == BlockState::Closed)
        .map(|(b, _, _)| b)
        .collect();
    assert!(!closed.is_empty());
    let before = f.stats().refresh_overhead;
    let mut reads = 0usize;
    let mut writes = 0usize;
    let mut adjusts = 0usize;
    for b in closed {
        let mut ops = Vec::new();
        f.refresh_block(b, 100, &mut ops);
        for op in &ops {
            match op.kind {
                FlashOpKind::Read { .. } => reads += 1,
                FlashOpKind::Program => writes += 1,
                FlashOpKind::VoltageAdjust => adjusts += 1,
                FlashOpKind::Erase => {}
            }
        }
    }
    let o = f.stats().refresh_overhead;
    let d_valid = o.valid_pages - before.valid_pages;
    let d_target = o.target_pages - before.target_pages;
    let d_error = o.error_pages - before.error_pages;
    // N_reads = N_valid + N_target, N_writes = N_valid - N_target + N_error.
    assert_eq!(reads as u64, d_valid + d_target);
    assert_eq!(writes as u64, d_valid - d_target + d_error);
    assert_eq!(
        adjusts as u64,
        o.adjusted_wordlines - before.adjusted_wordlines
    );
    // E20: errors should be a nontrivial but minority fraction of targets.
    assert!(d_error > 0 && d_error < d_target / 2);
    // All data remains readable afterwards.
    for lpn in 0..written {
        assert!(f.read(Lpn(lpn)).is_some(), "lost {lpn:?} during refresh");
    }
}

#[test]
fn baseline_refresh_writes_equal_valid_pages() {
    let mut f = ftl(RefreshMode::Baseline, 0.0);
    churn(&mut f, 4);
    let block = f
        .blocks()
        .reclaimable_blocks()
        .find(|&(_, v, _)| v > 0)
        .map(|(b, _, _)| b)
        .unwrap();
    let valid = f.blocks().valid_pages(block) as usize;
    let mut ops = Vec::new();
    f.refresh_block(block, 50, &mut ops);
    let reads = ops
        .iter()
        .filter(|o| matches!(o.kind, FlashOpKind::Read { .. }))
        .count();
    let writes = ops
        .iter()
        .filter(|o| matches!(o.kind, FlashOpKind::Program))
        .count();
    assert_eq!(reads, valid);
    assert_eq!(writes, valid);
    assert_eq!(f.blocks().valid_pages(block), 0);
}

#[test]
fn ida_blocks_are_reclaimed_on_their_next_cycle() {
    let mut f = ftl(RefreshMode::Ida, 0.0);
    churn(&mut f, 3);
    let block = f
        .blocks()
        .reclaimable_blocks()
        .find(|&(b, v, _)| v > 0 && f.blocks().state(b) == BlockState::Closed)
        .map(|(b, _, _)| b)
        .unwrap();
    let mut ops = Vec::new();
    f.refresh_block(block, 10, &mut ops);
    assert_eq!(f.blocks().state(block), BlockState::Ida);
    assert!(f.blocks().valid_pages(block) > 0);
    // Second refresh: forced reclaim empties the IDA block.
    ops.clear();
    f.refresh_block(block, 20, &mut ops);
    assert_eq!(f.blocks().valid_pages(block), 0);
    assert!(
        ops.iter()
            .all(|o| !matches!(o.kind, FlashOpKind::VoltageAdjust)),
        "reclaim must not re-adjust"
    );
}

#[test]
fn ida_reads_use_merged_sense_counts_per_wordline_case() {
    let g = Geometry::tiny();
    let mut f = ftl(RefreshMode::Ida, 0.0);
    let pages = f.exported_pages() / 2;
    for lpn in 0..pages {
        f.write(Lpn(lpn), 0).unwrap();
    }
    // Make one wordline case 2 (LSB invalid) and another case 4
    // (LSB+CSB invalid) inside the same block.
    let any = f.read(Lpn(0)).unwrap().page;
    let block = any.block(&g);
    let owner_of = |f: &mut Ftl, page| {
        (0..pages)
            .map(Lpn)
            .find(|&l| f.read(l).map(|r| r.page) == Some(page))
    };
    let wl2 = block.wordline(&g, 2);
    let wl4 = block.wordline(&g, 4);
    for (wl, kill) in [
        (wl2, vec![PageType::Lsb]),
        (wl4, vec![PageType::Lsb, PageType::Csb]),
    ] {
        for ty in kill {
            let p = wl.page(&g, ty);
            if let Some(owner) = owner_of(&mut f, p) {
                f.write(owner, 1).unwrap();
            }
        }
    }
    let msb2_owner = owner_of(&mut f, wl2.page(&g, PageType::Msb)).unwrap();
    let msb4_owner = owner_of(&mut f, wl4.page(&g, PageType::Msb)).unwrap();
    let csb2_owner = owner_of(&mut f, wl2.page(&g, PageType::Csb)).unwrap();

    let mut ops = Vec::new();
    f.refresh_block(block, 5, &mut ops);

    // Case 2 wordline: CSB 1 sense, MSB 2 senses. Case 4: MSB 1 sense.
    assert_eq!(f.read(csb2_owner).unwrap().senses, 1);
    assert_eq!(f.read(msb2_owner).unwrap().senses, 2);
    assert_eq!(f.read(msb4_owner).unwrap().senses, 1);
}

#[test]
fn gc_reclaims_ida_blocks_and_preserves_data() {
    let mut f = ftl(RefreshMode::Ida, 0.1);
    let logical = f.exported_pages();
    // Fill, refresh everything, then overwrite heavily to force GC through
    // IDA blocks.
    for lpn in 0..logical {
        f.write(Lpn(lpn), 0).unwrap();
    }
    let closed: Vec<BlockAddr> = f
        .blocks()
        .reclaimable_blocks()
        .filter(|&(b, v, _)| v > 0 && f.blocks().state(b) == BlockState::Closed)
        .map(|(b, _, _)| b)
        .collect();
    let mut ops = Vec::new();
    for b in closed {
        f.refresh_block(b, 1, &mut ops);
        ops.clear();
    }
    assert!(f.stats().ida_conversions > 0);
    for round in 2..5u64 {
        for lpn in 0..logical {
            f.write(Lpn(lpn), round).unwrap();
        }
    }
    assert!(f.stats().gc_runs > 0, "overwrites must trigger GC");
    for lpn in (0..logical).step_by(97) {
        assert!(
            f.read(Lpn(lpn)).is_some(),
            "data lost through GC of IDA blocks"
        );
    }
}
