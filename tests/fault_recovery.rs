//! Property tests for the fault-injection and recovery subsystem: after a
//! power loss injected at a random persistent-operation index, the
//! recovery scan must rebuild a mapping table consistent with every
//! *acknowledged* write, leave no wordline half-merged (refresh is atomic
//! per wordline: fully merged or fully unmerged), and return the device
//! to service.

use ida_core::refresh::RefreshMode;
use ida_faults::FaultConfig;
use ida_flash::geometry::Geometry;
use ida_ftl::{Ftl, FtlConfig, FtlError, Lpn};
use ida_obs::rng::Rng64;

/// Randomized crash points exercised by the power-loss property.
const CRASH_POINTS: u64 = 256;

fn faulty_ftl(faults: FaultConfig) -> Ftl {
    Ftl::new(FtlConfig {
        geometry: Geometry::tiny(),
        refresh_mode: RefreshMode::Ida,
        adjust_error_rate: 0.2,
        // Short period so IDA refresh (and its merge intents) runs inside
        // the driven op stream, putting crashes mid-adjustment in play.
        refresh_period: 50_000,
        spare_blocks_per_plane: 2,
        faults,
        ..FtlConfig::default()
    })
}

/// Drive random host writes (plus due refreshes) until the scheduled
/// crash fires, then recover and check the invariants.
#[test]
fn recovery_rebuilds_acked_state_at_random_crash_points() {
    let mut rng = Rng64::seed_from_u64(0xC4A5_0BAD);
    for round in 0..CRASH_POINTS {
        let crash_at = rng.gen_range_u64(5, 2_000);
        let faults = FaultConfig {
            // Compound hazards: grown bad blocks and redirects interleave
            // with the crash point.
            program_fail_prob: 0.01,
            erase_fail_prob: 0.01,
            bad_block_threshold: 2,
            power_loss_ops: vec![crash_at],
            seed: rng.next_u64(),
            ..FaultConfig::none()
        };
        let mut ftl = faulty_ftl(faults);
        let logical = ftl.exported_pages();
        let mut acked = vec![false; logical as usize];
        let mut now = 0u64;
        let mut lost = false;
        for i in 0..50_000u64 {
            now += 1_000;
            let lpn = rng.gen_below(logical);
            match ftl.write(Lpn(lpn), now) {
                Ok(_) => acked[lpn as usize] = true,
                Err(FtlError::PowerLoss) => {
                    lost = true;
                    break;
                }
                Err(e) => panic!("round {round}: unexpected write error {e}"),
            }
            if i % 32 == 0 {
                let _ = ftl.run_due_refreshes(now);
                if ftl.power_lost() {
                    lost = true;
                    break;
                }
            }
        }
        assert!(lost, "round {round}: crash point {crash_at} never reached");

        let report = ftl.recover(now);
        // No wordline is half-merged and no merge intent is left open —
        // crashes mid-adjustment were rolled forward or scrubbed.
        assert!(
            ftl.oob().open_intents().is_empty(),
            "round {round}: open merge intents survived recovery"
        );
        ftl.check_consistency()
            .unwrap_or_else(|e| panic!("round {round} (crash {crash_at}): {e}"));
        // Every acknowledged write is still readable.
        for (lpn, &was_acked) in acked.iter().enumerate() {
            if was_acked {
                assert!(
                    ftl.read(Lpn(lpn as u64)).is_some(),
                    "round {round}: acked lpn {lpn} lost at crash {crash_at}"
                );
            }
        }
        assert_eq!(ftl.stats().recoveries, 1);
        assert!(report.rebuilt_mappings > 0, "round {round}: empty rebuild");
        // The device is back in service (unless it had degraded).
        if ftl.read_only_reason().is_none() {
            ftl.write(Lpn(0), now + 1)
                .unwrap_or_else(|e| panic!("round {round}: post-recovery write failed: {e}"));
        }
    }
}

/// A crash during an IDA refresh burst specifically: every committed
/// wordline mask recorded in OOB must match the volatile keep mask after
/// recovery (check_consistency verifies the bijection), and re-running
/// refresh afterwards completes cleanly.
#[test]
fn refresh_interrupted_by_power_loss_is_atomic_per_wordline() {
    let mut rng = Rng64::seed_from_u64(0x1DA_FA17);
    for round in 0..64 {
        // Fill the device fault-free first so refresh has work to do.
        let mut ftl = faulty_ftl(FaultConfig::none());
        let logical = ftl.exported_pages();
        let mut now = 0;
        for i in 0..logical * 2 {
            now += 500;
            ftl.write(Lpn(i % logical), now).unwrap();
        }
        // Arm a crash a few persists into the refresh storm.
        ftl.arm_faults(FaultConfig {
            power_loss_ops: vec![rng.gen_range_u64(1, 200)],
            seed: rng.next_u64(),
            ..FaultConfig::none()
        });
        now += 100_000;
        let _ = ftl.run_due_refreshes(now);
        if !ftl.power_lost() {
            // Crash point beyond this burst's persists: nothing to check.
            continue;
        }
        ftl.recover(now);
        assert!(
            ftl.oob().open_intents().is_empty(),
            "round {round}: merge intent left open"
        );
        ftl.check_consistency()
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        for lpn in 0..logical {
            assert!(
                ftl.read(Lpn(lpn)).is_some(),
                "round {round}: lpn {lpn} lost by interrupted refresh"
            );
        }
        // The next refresh cycle completes without tripping invariants.
        let _ = ftl.run_due_refreshes(now + 200_000);
        ftl.check_consistency()
            .unwrap_or_else(|e| panic!("round {round} post-refresh: {e}"));
    }
}

/// Sustained faults with a drained spare pool degrade to read-only
/// instead of panicking, and reads keep working.
#[test]
fn spare_exhaustion_degrades_to_read_only_and_reads_survive() {
    let mut ftl = faulty_ftl(FaultConfig {
        program_fail_prob: 0.35,
        erase_fail_prob: 0.5,
        bad_block_threshold: 1,
        seed: 7,
        ..FaultConfig::none()
    });
    let logical = ftl.exported_pages();
    let mut acked = vec![false; logical as usize];
    let mut now = 0;
    let mut degraded = false;
    for i in 0..200_000u64 {
        now += 1_000;
        let lpn = i % logical;
        match ftl.write(Lpn(lpn), now) {
            Ok(_) => acked[lpn as usize] = true,
            Err(FtlError::ReadOnly { .. }) => {
                degraded = true;
                break;
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(degraded, "heavy fault rates must exhaust the spares");
    assert!(ftl.read_only_reason().is_some());
    assert!(ftl.fault_stats().erase_fails > 0);
    assert!(ftl.stats().retired_blocks > 0);
    ftl.check_consistency().unwrap();
    for (lpn, &was_acked) in acked.iter().enumerate() {
        if was_acked {
            assert!(ftl.read(Lpn(lpn as u64)).is_some(), "lpn {lpn} lost");
        }
    }
    // Rejections are counted and typed, not panics.
    assert!(matches!(
        ftl.write(Lpn(0), now),
        Err(FtlError::ReadOnly { .. })
    ));
    assert!(ftl.stats().rejected_writes > 0);
}
