//! Repository-level tests for the host load/QoS layer (PR 7):
//! source-driven runs must reproduce the trace-driven path byte for
//! byte, capacity search must be deterministic, and IDA-E20 must
//! sustain strictly more offered load than Baseline on a read-heavy
//! workload at a fixed p99 read SLO.

use ida_bench::load::{load_metrics_json, run_capacity, run_load, LoadSpec};
use ida_bench::runner::{
    system_config, to_host_ops, warmed_simulator, ExperimentScale, SystemUnderTest,
};
use ida_flash::timing::FlashTiming;
use ida_host::ArrivalSpec;
use ida_ssd::retry::RetryConfig;
use ida_ssd::ListSource;
use ida_workloads::suite::paper_workload;

fn smoke_scale(requests: usize) -> ExperimentScale {
    ExperimentScale::smoke().with_requests(requests)
}

/// The arrival-hook equivalence contract, full stack: a warmed simulator
/// driven by `run_source` over a pre-listed trace must produce a Report
/// byte-identical to the `run()` path on an identically warmed twin.
#[test]
fn sourced_replay_matches_the_run_path_after_warmup() {
    let preset = paper_workload("proj_3").expect("known workload");
    let scale = smoke_scale(400);
    for system in [
        SystemUnderTest::Baseline,
        SystemUnderTest::Ida { error_rate: 0.2 },
    ] {
        let cfg = system_config(
            system,
            scale.geometry,
            FlashTiming::paper_tlc(),
            RetryConfig::disabled(),
        );
        let (mut sim_a, trace_a) = warmed_simulator(&preset, cfg.clone(), &scale);
        let (mut sim_b, trace_b) = warmed_simulator(&preset, cfg, &scale);
        assert_eq!(
            trace_a.records, trace_b.records,
            "warm-up must be deterministic"
        );
        sim_a.set_spans(true);
        sim_b.set_spans(true);
        let via_run = sim_a.run(to_host_ops(&trace_a));
        let mut source = ListSource::new(to_host_ops(&trace_b));
        let via_source = sim_b
            .run_source(&mut source)
            .expect("listed source cannot stall");
        assert_eq!(
            via_run,
            via_source,
            "{}: run() and run_source(ListSource) diverged",
            system.label()
        );
        assert_eq!(sim_a.now(), sim_b.now(), "clocks diverged");
    }
}

/// Same seed, same cell ⇒ byte-identical load metrics.
#[test]
fn load_runs_reproduce_their_payload() {
    let preset = paper_workload("src1_0").expect("known workload");
    let scale = smoke_scale(150);
    let spec = LoadSpec::new(
        SystemUnderTest::Ida { error_rate: 0.2 },
        ArrivalSpec::Poisson,
        4_000,
        42,
    );
    let a = load_metrics_json(&run_load(&preset, &spec, &scale).expect("load run"));
    let b = load_metrics_json(&run_load(&preset, &spec, &scale).expect("load run"));
    assert_eq!(a, b);
    assert!(a.contains("\"shed\":"), "payload must carry shed: {a}");
    assert!(a.contains("\"slo_met\":"), "payload must carry slo: {a}");
}

/// Capacity search is a pure function of its inputs, and IDA-E20's max
/// sustainable rate strictly beats Baseline's on a read-heavy workload
/// (94.8 % reads) — the end-to-end claim of the host/QoS layer.
#[test]
fn capacity_search_is_deterministic_and_ida_sustains_more() {
    let preset = paper_workload("proj_3").expect("known workload");
    let scale = smoke_scale(300);
    // The smoke-scale knee of proj_3 sits near 17k IOPS for Baseline and
    // past 20k for IDA-E20 (probed via `idasim load proj_3 --iops ...`),
    // so [500, 30000] straddles both and 6 midpoints separate them.
    let (slo_ns, lo, hi, iters, seed) = (2_000_000, 500, 30_000, 6, 3);
    let base = run_capacity(
        &preset,
        SystemUnderTest::Baseline,
        ArrivalSpec::Poisson,
        &scale,
        slo_ns,
        lo,
        hi,
        iters,
        seed,
    )
    .expect("capacity search");
    let ida = run_capacity(
        &preset,
        SystemUnderTest::Ida { error_rate: 0.2 },
        ArrivalSpec::Poisson,
        &scale,
        slo_ns,
        lo,
        hi,
        iters,
        seed,
    )
    .expect("capacity search");
    let base_again = run_capacity(
        &preset,
        SystemUnderTest::Baseline,
        ArrivalSpec::Poisson,
        &scale,
        slo_ns,
        lo,
        hi,
        iters,
        seed,
    )
    .expect("capacity search");
    assert_eq!(
        base.to_json(),
        base_again.to_json(),
        "capacity search must reproduce byte for byte"
    );
    assert!(
        ida.max_iops > base.max_iops,
        "IDA-E20 must sustain strictly more load: ida {} vs baseline {} \
         (baseline probes: {:?}, ida probes: {:?})",
        ida.max_iops,
        base.max_iops,
        base.probes
            .iter()
            .map(|p| (p.iops, p.outcome.read_p99_ns, p.outcome.met))
            .collect::<Vec<_>>(),
        ida.probes
            .iter()
            .map(|p| (p.iops, p.outcome.read_p99_ns, p.outcome.met))
            .collect::<Vec<_>>(),
    );
}
