//! Integration tests for the distributed sweep fabric at the
//! `ida-bench` boundary — real experiment cells, not synthetic
//! payloads (the protocol-level matrix lives in `ida_sweep::net`'s
//! unit tests):
//!
//! (a) a coordinator plus an in-process worker produce the exact bytes
//!     a local serial `run_grid` emits, warm cache rendezvous included;
//! (b) resuming a journaled distributed run returns every cell cached,
//!     without needing a single worker, and still emits the same bytes;
//! (c) the coordinator→worker setup payload reconstructs the
//!     experiment scale exactly.

use ida_bench::runner::ExperimentScale;
use ida_bench::sweep::{
    run_grid, run_grid_on, run_grid_worker, scale_from_setup, setup_json, Backend,
};
use ida_sweep::{SweepConfig, SweepSpec};
use ida_workloads::suite::paper_workloads;
use std::net::TcpListener;
use std::path::PathBuf;
use std::time::Duration;

const CONNECT_WAIT: Duration = Duration::from_secs(30);

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ida-dist-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// One real workload, both systems — the smallest grid that still
/// exercises warm-up, simulation, and aggregation end to end.
fn tiny_spec() -> SweepSpec {
    let workload = paper_workloads().remove(0).spec.name;
    SweepSpec::new(
        "dist-tiny",
        vec![workload],
        vec!["Baseline".into(), "IDA-E20".into()],
    )
}

#[test]
fn distributed_run_matches_local_serial_bytes_and_resumes_cached() {
    let spec = tiny_spec();
    let scale = ExperimentScale::smoke().with_requests(400);

    // Ground truth: the local serial engine.
    let local = run_grid(&spec, &scale, &SweepConfig::serial())
        .unwrap()
        .aggregate_json();

    // Distributed: this thread coordinates (journaled), a worker thread
    // executes the cells through the real `idasim worker` code path.
    let journal = tmp("dist.journal.jsonl");
    let _ = std::fs::remove_file(&journal);
    let cfg = SweepConfig::serial().with_journal(journal.clone());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let worker = std::thread::spawn(move || run_grid_worker(&addr, 2, CONNECT_WAIT));
    let distributed = run_grid_on(&spec, &scale, &cfg, Backend::Distributed { listener }).unwrap();
    let report = worker.join().unwrap().unwrap();

    assert_eq!(report.sweep, "dist-tiny");
    assert_eq!(report.ran, spec.len());
    assert_eq!(report.failed, 0);
    assert!(distributed.outcomes.iter().all(|o| !o.cached));
    assert_eq!(
        local,
        distributed.aggregate_json(),
        "distributed aggregate diverged from the local serial run"
    );

    // Resume: every cell is journaled, so a fresh coordinator settles
    // the whole grid from the journal — no worker launched at all.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let resumed = run_grid_on(&spec, &scale, &cfg, Backend::Distributed { listener }).unwrap();
    assert!(
        resumed.outcomes.iter().all(|o| o.cached),
        "resume recomputed completed cells"
    );
    assert_eq!(local, resumed.aggregate_json());
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn setup_payload_reconstructs_the_scale() {
    for scale in [
        ExperimentScale::smoke(),
        ExperimentScale::smoke().with_requests(12_345),
        ExperimentScale::default_scale(),
    ] {
        let rebuilt = scale_from_setup(&setup_json(&scale)).unwrap();
        assert_eq!(rebuilt.requests, scale.requests);
        assert!((rebuilt.refresh_period_frac - scale.refresh_period_frac).abs() < 1e-12);
        assert_eq!(rebuilt.geometry, scale.geometry);
    }
    assert!(scale_from_setup("{}").unwrap_err().contains("requests"));
    assert!(scale_from_setup("not json").is_err());
}
