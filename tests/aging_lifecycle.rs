//! Property tests for the device-aging reliability lifecycle: patrol
//! scrub and wear-leveling relocate data while erase failures retire
//! blocks underneath them. The properties:
//!
//! 1. relocation under erase-fail injection never deadlocks — every
//!    driven round terminates in a bounded number of operations;
//! 2. acknowledged data is never lost — every acked LPN stays readable,
//!    through scrub, wear-level, GC and refresh relocation, even after
//!    the device degrades;
//! 3. when the spare pool drains, the device reaches read-only as a
//!    typed error, never a panic.

use ida_core::refresh::RefreshMode;
use ida_faults::{AgingConfig, FaultConfig};
use ida_flash::geometry::Geometry;
use ida_ftl::{Ftl, FtlConfig, FtlError, Lpn};
use ida_obs::rng::Rng64;

/// Randomized fault plans exercised by the relocation property.
const ROUNDS: u64 = 24;

/// Build an FTL with the `high` aging preset tightened so the patrol
/// relocates on essentially every pass (tiny disturb/retention
/// thresholds, one-cycle wear-spread target, short period), on top of
/// an erase/program fault plan.
fn aging_faulty_ftl(aging_seed: u64, faults: FaultConfig) -> Ftl {
    let mut aging = AgingConfig::preset("high", aging_seed).expect("high is a preset");
    aging.scrub_period = 10_000;
    aging.scrub_chunk = 64;
    aging.disturb_threshold = 50;
    aging.retention_threshold = 20_000;
    aging.wear_spread_target = 1;
    let mut ftl = Ftl::new(FtlConfig {
        geometry: Geometry::tiny(),
        refresh_mode: RefreshMode::Ida,
        adjust_error_rate: 0.2,
        refresh_period: 50_000,
        spare_blocks_per_plane: 2,
        faults,
        ..FtlConfig::default()
    });
    ftl.arm_aging(aging, 0);
    ftl
}

/// Drive random writes, disturb-heavy reads, refresh and patrol scrub
/// against randomized erase/program fault plans. Each round either
/// finishes its op budget or degrades to read-only; both are legal
/// endings, a panic or a lost acked LPN is not.
#[test]
fn relocation_under_erase_faults_never_loses_acked_data() {
    let mut rng = Rng64::seed_from_u64(0xA_61A6_11FE);
    let mut degraded_rounds = 0u32;
    let mut total_relocations = 0u64;
    for round in 0..ROUNDS {
        // Fault pressure from "annoying" to "spare-draining".
        let erase_pct = rng.gen_range_u64(2, 40);
        let faults = FaultConfig {
            erase_fail_prob: erase_pct as f64 / 100.0,
            program_fail_prob: 0.02,
            bad_block_threshold: 1,
            seed: rng.next_u64(),
            ..FaultConfig::none()
        };
        let mut ftl = aging_faulty_ftl(rng.next_u64(), faults);
        let logical = ftl.exported_pages();
        let mut acked = vec![false; logical as usize];
        let mut now = 0u64;
        let mut degraded = false;
        // Bounded budget: termination of this loop IS the no-deadlock
        // property (a scrub pass that spun forever would hang here).
        for i in 0..40_000u64 {
            now += 1_000;
            let lpn = rng.gen_below(logical);
            match ftl.write(Lpn(lpn), now) {
                Ok(_) => acked[lpn as usize] = true,
                Err(FtlError::ReadOnly { .. }) => {
                    degraded = true;
                    break;
                }
                Err(e) => panic!("round {round}: unexpected write error {e}"),
            }
            // Hammer reads on a narrow stripe so read-disturb counters
            // cross the patrol's relocation threshold.
            if ftl.read(Lpn(lpn % 64)).is_none() && acked[(lpn % 64) as usize] {
                panic!("round {round}: acked lpn {} unreadable mid-run", lpn % 64);
            }
            if i % 64 == 0 {
                let _ = ftl.run_due_refreshes(now);
                let _ = ftl.run_scrub_pass(now);
            }
        }
        if degraded {
            degraded_rounds += 1;
            assert!(
                ftl.read_only_reason().is_some(),
                "round {round}: degraded without a read-only reason"
            );
            // Rejection is typed, not a panic, and is counted.
            assert!(matches!(
                ftl.write(Lpn(0), now + 1),
                Err(FtlError::ReadOnly { .. })
            ));
            assert!(ftl.stats().rejected_writes > 0);
        }
        let stats = *ftl.stats();
        total_relocations += stats.scrub_relocations + stats.wear_level_moves;
        ftl.check_consistency()
            .unwrap_or_else(|e| panic!("round {round} (erase {erase_pct}%): {e}"));
        // Property 2: every acked LPN survived the relocation churn.
        for (lpn, &was_acked) in acked.iter().enumerate() {
            if was_acked {
                assert!(
                    ftl.read(Lpn(lpn as u64)).is_some(),
                    "round {round} (erase {erase_pct}%): acked lpn {lpn} lost"
                );
            }
        }
    }
    // The sweep of fault rates must actually exercise both regimes:
    // patrol relocation fired, and at least one round drained the spares.
    assert!(
        total_relocations > 0,
        "no scrub/wear-level relocation happened across {ROUNDS} rounds"
    );
    assert!(
        degraded_rounds > 0,
        "no round exhausted the spares across {ROUNDS} rounds"
    );
}

/// Scrub on an already read-only device is a no-op, not a crash: the
/// patrol must refuse to relocate into a device that cannot program.
#[test]
fn scrub_on_a_read_only_device_is_inert() {
    let mut ftl = aging_faulty_ftl(
        11,
        FaultConfig {
            erase_fail_prob: 0.6,
            bad_block_threshold: 1,
            seed: 13,
            ..FaultConfig::none()
        },
    );
    let logical = ftl.exported_pages();
    let mut now = 0u64;
    for i in 0..200_000u64 {
        now += 1_000;
        if ftl.write(Lpn(i % logical), now).is_err() {
            break;
        }
    }
    assert!(
        ftl.read_only_reason().is_some(),
        "fault plan failed to drain the spares"
    );
    assert!(ftl.next_scrub_due().is_none(), "scrub still scheduled");
    let before = *ftl.stats();
    let ops = ftl.run_scrub_pass(now + 1_000_000);
    assert!(ops.is_empty(), "read-only scrub emitted flash ops");
    assert_eq!(before.scrub_passes, ftl.stats().scrub_passes);
    ftl.check_consistency()
        .expect("consistent after no-op scrub");
}
