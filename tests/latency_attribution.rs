//! The latency-attribution conservation invariant, end to end.
//!
//! Three layers of the same contract:
//!
//! 1. **Exact micro case** — two reads racing for one die decompose into
//!    the timing model's literal constants (Table II), with the second
//!    read's queue wait charged to the host class holding the die.
//! 2. **Conservation under chaos** — a realistic workload with the
//!    `mid` fault level injected: for each class the attribution grand
//!    total equals the summed response time byte-exactly, per request
//!    counts match, and fault phases absorb the injected delays.
//! 3. **Replay** — a JSONL trace written by the observability layer
//!    replays through the offline analyzer into byte-identical
//!    attribution JSON, with zero conservation violations.

use ida_bench::analyze;
use ida_bench::runner::{
    run_config_faulted, run_system_obs, system_config, ExperimentScale, ObsOptions, ReplayMode,
    SystemUnderTest,
};
use ida_faults::FaultConfig;
use ida_flash::timing::FlashTiming;
use ida_obs::span::Phase;
use ida_obs::trace::{SinkHandle, TraceEvent, VecSink};
use ida_ssd::retry::RetryConfig;
use ida_ssd::{HostOp, HostOpKind, Simulator, SsdConfig};
use ida_workloads::suite::paper_workload;
use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;

#[test]
fn two_reads_on_one_die_decompose_to_table2_constants() {
    let mut sim = Simulator::new(SsdConfig::tiny_test());
    sim.set_spans(true);
    let sink = Rc::new(RefCell::new(VecSink::new()));
    sim.set_trace(SinkHandle::from_shared(sink.clone()));
    sim.prefill(0..64);
    let report = sim.run(vec![
        HostOp {
            at: 0,
            kind: HostOpKind::Read,
            lpn: 0,
            pages: 1,
        },
        HostOp {
            at: 0,
            kind: HostOpKind::Read,
            lpn: 0,
            pages: 1,
        },
    ]);
    assert_eq!(report.reads.count, 2);

    let spans: Vec<(u64, u64, _)> = sink
        .borrow()
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Span {
                req,
                total_ns,
                phases,
                ..
            } => Some((*req, *total_ns, *phases)),
            _ => None,
        })
        .collect();
    assert_eq!(spans.len(), 2, "one span per completed request");

    // First read of an LSB page: 50us sense + 48us transfer + 20us ECC.
    let (_, t0, p0) = spans[0];
    assert_eq!(t0, 118_000);
    assert_eq!(p0.get(Phase::QueueHost), 0);
    assert_eq!(p0.get(Phase::Sense), 50_000);
    assert_eq!(p0.get(Phase::Transfer), 48_000);
    assert_eq!(p0.get(Phase::Ecc), 20_000);
    assert_eq!(p0.total(), t0);

    // The second read targets the same die and waits out the first's
    // sense + transfer hold (98us), charged to the host queue class; its
    // own service then repeats the same constants.
    let (_, t1, p1) = spans[1];
    assert_eq!(t1, 216_000);
    assert_eq!(p1.get(Phase::QueueHost), 98_000);
    assert_eq!(p1.get(Phase::Sense), 50_000);
    assert_eq!(p1.get(Phase::Transfer), 48_000);
    assert_eq!(p1.get(Phase::Ecc), 20_000);
    assert_eq!(p1.get(Phase::Channel), 0, "channel frees with the bus");
    assert_eq!(p1.total(), t1);

    // The in-sim aggregates fold exactly the same numbers.
    assert_eq!(report.read_attribution.count(), 2);
    assert_eq!(report.read_attribution.grand_total(), u128::from(t0 + t1));
    assert_eq!(report.read_attribution.grand_total(), report.reads.total_ns);
}

#[test]
fn conservation_holds_under_mid_level_faults() {
    let preset = paper_workload("hm_1").expect("workload");
    let scale = ExperimentScale::smoke().with_requests(1_500);
    let cfg = system_config(
        SystemUnderTest::Ida { error_rate: 0.2 },
        scale.geometry,
        FlashTiming::paper_tlc(),
        RetryConfig::disabled(),
    );
    let faults = FaultConfig::preset("mid", 41).expect("mid preset");
    let report = run_config_faulted(&preset, cfg, &scale, ReplayMode::OpenLoop, Some(faults));

    assert!(report.reads.count > 0 && report.writes.count > 0);
    assert!(
        report.ftl.transient_read_faults > 0,
        "mid preset must inject transient read faults"
    );
    // Exact conservation: the waterfalls partition every response time,
    // so the per-class grand totals equal the latency totals.
    assert_eq!(report.read_attribution.count(), report.reads.count);
    assert_eq!(report.write_attribution.count(), report.writes.count);
    assert_eq!(report.read_attribution.grand_total(), report.reads.total_ns);
    assert_eq!(
        report.write_attribution.grand_total(),
        report.writes.total_ns
    );
    // Injected transient faults surface as retry re-senses and backoff.
    assert!(report.read_attribution.total(Phase::Retry) > 0);
    assert!(report.read_attribution.total(Phase::Backoff) > 0);
    // Utilization gauges cover the run: every die and channel saw work.
    assert!(!report.die_busy_ns.is_empty() && !report.channel_busy_ns.is_empty());
    assert!(report.die_busy_ns.iter().any(|&b| b > 0));
    assert!(report.channel_busy_ns.iter().any(|&b| b > 0));
}

#[test]
fn trace_replays_to_byte_identical_attribution() {
    let preset = paper_workload("hm_1").expect("workload");
    let scale = ExperimentScale::smoke().with_requests(800);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let obs = ObsOptions {
        trace_out: Some(dir.join("attr_replay.jsonl")),
        metrics_json: None,
        progress: false,
        gauge_interval_ns: None,
        trace_filter: None,
    };
    let run = run_system_obs(
        &preset,
        SystemUnderTest::Ida { error_rate: 0.2 },
        &scale,
        &obs,
    )
    .expect("run with obs");
    let path = obs.trace_out.expect("trace path");

    let stats = analyze::load(&path, 5).expect("trace loads");
    assert_eq!(stats.conservation_violations, 0);
    assert_eq!(stats.latency_mismatches, 0);
    assert_eq!(stats.reads.count(), run.report.reads.count);
    assert_eq!(
        stats.attribution_json(),
        run.report.attribution_json(),
        "offline replay must rebuild the in-sim aggregate byte-for-byte"
    );
    // The full toolchain runs clean on a real trace.
    let ok = analyze::validate(&path).expect("validates");
    assert!(ok.contains("conservation exact"), "summary: {ok}");
    let text = analyze::report(&path, 3).expect("reports");
    assert!(text.contains("read attribution"), "report: {text}");
    assert!(text.contains("utilization"), "report: {text}");
    let d = analyze::diff(&path, &path).expect("self-diff");
    assert!(
        d.contains("conservation violations: 0 vs 0"),
        "self-diff: {d}"
    );
}
