//! Property-style tests of the coding and merge machinery: for every
//! coding scheme, every invalidation mask, and arbitrary data, the IDA
//! merge must preserve valid bits, move cells only rightward, and never
//! increase any sense count.
//!
//! The mask/coding/case spaces are small enough to enumerate exhaustively,
//! which is stronger than sampling; the data-dependent checks use the
//! workspace's seeded deterministic RNG.

use ida_core::cases::{WlAction, WlCase};
use ida_core::merge::MergePlan;
use ida_flash::coding::{BitPattern, CodingScheme, VoltageState};
use ida_flash::wordline::Wordline;
use ida_obs::rng::Rng64;
use std::sync::Arc;

fn all_codings() -> Vec<CodingScheme> {
    vec![
        CodingScheme::mlc(),
        CodingScheme::tlc_124(),
        CodingScheme::tlc_232(),
        CodingScheme::qlc(),
    ]
}

#[test]
fn merge_preserves_valid_bits_for_any_data() {
    // Exhaustive: every coding × every mask × every cell pattern.
    for coding in all_codings() {
        let full = (coding.state_space() - 1) as u8;
        for raw_mask in 0u8..16 {
            let mask = raw_mask & full;
            let plan = MergePlan::compute(&coding, mask);
            for cell in 0..coding.state_space() as u8 {
                let pat = BitPattern(cell & full);
                let state = coding.program_target(pat);
                let merged_state = plan.state_map()[state.0 as usize];
                for b in 0..coding.bits_per_cell() {
                    if mask & (1 << b) != 0 {
                        assert_eq!(
                            plan.merged().read_bit(merged_state, b),
                            pat.bit(b),
                            "bit {} of pattern {:#b} corrupted by merge (mask {:#b})",
                            b,
                            pat.0,
                            mask
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn merge_moves_are_ispp_feasible_and_senses_never_grow() {
    for coding in all_codings() {
        let full = (coding.state_space() - 1) as u8;
        for raw_mask in 0u8..16 {
            let mask = raw_mask & full;
            let plan = MergePlan::compute(&coding, mask);
            for (s, &t) in plan.state_map().iter().enumerate() {
                assert!(t.0 as usize >= s, "leftward move S{} -> {}", s + 1, t);
            }
            for b in 0..coding.bits_per_cell() {
                if mask & (1 << b) != 0 {
                    assert!(
                        plan.merged().sense_count(b) <= coding.sense_count(b),
                        "sense count grew for bit {b}"
                    );
                }
            }
            assert!(plan.remaining_states() <= coding.live_states().len());
        }
    }
}

#[test]
fn wordline_roundtrips_any_pages_through_program_and_merge() {
    let coding = Arc::new(CodingScheme::tlc_124());
    let mut rng = Rng64::seed_from_u64(0x1DA_C0DE);
    for mask in 1u8..8 {
        for _rep in 0..8 {
            let seed_bits: Vec<u8> = (0..24).map(|_| rng.gen_below(8) as u8).collect();
            let mut wl = Wordline::new(seed_bits.len(), coding.clone());
            let pages: Vec<Vec<u8>> = (0..3)
                .map(|b| seed_bits.iter().map(|&v| (v >> b) & 1).collect())
                .collect();
            wl.program(&pages).unwrap();
            let plan = MergePlan::compute(&coding, mask);
            wl.adjust_voltage(plan.state_map(), Arc::new(plan.merged().clone()))
                .unwrap();
            for b in 0..3u8 {
                if mask & (1 << b) != 0 {
                    assert_eq!(wl.read(b).unwrap(), pages[b as usize].clone());
                } else {
                    assert!(wl.read(b).is_err());
                }
            }
        }
    }
}

#[test]
fn case_actions_partition_the_valid_pages() {
    // Exhaustive over bits-per-cell × validity mask.
    for bits in 1u8..5 {
        let full = ((1u16 << bits) - 1) as u8;
        for raw_mask in 0u8..16 {
            let mask = raw_mask & full;
            let action = WlCase::classify(bits, mask).action();
            let mut covered = 0u8;
            match &action {
                WlAction::Nothing => assert_eq!(mask, 0),
                WlAction::MoveAll { pages } => {
                    for &p in pages {
                        covered |= 1 << p;
                    }
                    assert_eq!(covered, mask, "MoveAll must cover all valid pages");
                }
                WlAction::Ida { move_out, keep } => {
                    for &p in move_out {
                        assert!(mask & (1 << p) != 0, "evicting an invalid page");
                        covered |= 1 << p;
                    }
                    let keep_mask = action.keep_mask();
                    // Valid pages are either evicted or kept, never both/neither.
                    assert_eq!(covered | (keep_mask & mask), mask);
                    assert_eq!(covered & keep_mask, 0);
                    // Kept set must include the top bit and exclude bit 0.
                    assert!(keep_mask & (1 << (bits - 1)) != 0);
                    assert_eq!(keep_mask & 1, 0);
                    let _ = keep;
                }
            }
        }
    }
}

#[test]
fn incremental_merges_commute_with_direct_merges() {
    // Invalidate two (possibly equal) bits of TLC in sequence; sense
    // counts must match the direct merge of the union. Exhaustive.
    for first in 0u8..3 {
        for second in 0u8..3 {
            let coding = CodingScheme::tlc_124();
            let full = 0b111u8;
            let m1 = full & !(1 << first);
            let m2 = m1 & !(1 << second);
            let step1 = MergePlan::compute(&coding, m1);
            let step2 = MergePlan::compute(step1.merged(), m2);
            let direct = MergePlan::compute(&coding, m2);
            for b in 0..3 {
                if m2 & (1 << b) != 0 {
                    assert_eq!(
                        step2.merged().sense_count(b),
                        direct.merged().sense_count(b)
                    );
                }
            }
            assert_eq!(step2.remaining_states(), direct.remaining_states());
        }
    }
}

#[test]
fn all_256_tlc_wordline_datasets_survive_the_paper_merge() {
    // Exhaustive (not sampled): every cell value in every position.
    let coding = Arc::new(CodingScheme::tlc_124());
    let plan = MergePlan::compute(&coding, 0b110);
    for v in 0..8u8 {
        let state = coding.program_target(BitPattern(v));
        let merged = plan.state_map()[state.0 as usize];
        assert_eq!(plan.merged().read_bit(merged, 1), (v >> 1) & 1);
        assert_eq!(plan.merged().read_bit(merged, 2), (v >> 2) & 1);
        assert!(merged >= state);
        assert!(merged >= VoltageState(4), "merged states live in S5..S8");
    }
}
