//! Cross-validation of the page-level FTL against the cell-accurate flash
//! model: after host churn and IDA refreshes, every mapped logical page's
//! data must survive bit-for-bit in a physical reconstruction, and the
//! sensing cost the FTL charges must equal what the cells actually need.

use ida_core::merge::MergePlan;
use ida_core::refresh::RefreshMode;
use ida_flash::block::Block;
use ida_flash::coding::CodingScheme;
use ida_flash::geometry::Geometry;
use ida_ftl::block::BlockState;
use ida_ftl::{Ftl, FtlConfig, Lpn};
use std::collections::HashMap;
use std::sync::Arc;

const WIDTH: usize = 16; // cells per wordline in the reconstruction

/// Deterministic page payload for a logical page.
fn payload(lpn: u64) -> Vec<u8> {
    (0..WIDTH)
        .map(|i| ((lpn.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64)) >> 7) as u8 & 1)
        .collect()
}

#[test]
fn ftl_state_reconstructs_bit_for_bit_on_real_cells() {
    let g = Geometry::tiny();
    let mut ftl = Ftl::new(FtlConfig {
        geometry: g,
        refresh_mode: RefreshMode::Ida,
        adjust_error_rate: 0.0, // interference is sampled, not cell-modeled
        ..FtlConfig::default()
    });

    // Host churn: fill a third of the space, overwrite every 3rd LPN, then
    // refresh every closed block (converting eligible wordlines).
    let lpns = ftl.exported_pages() / 3;
    for lpn in 0..lpns {
        ftl.write(Lpn(lpn), 0).unwrap();
    }
    for lpn in (0..lpns).step_by(3) {
        ftl.write(Lpn(lpn), 1).unwrap();
    }
    let targets: Vec<_> = ftl
        .blocks()
        .reclaimable_blocks()
        .filter(|&(b, v, _)| v > 0 && ftl.blocks().state(b) == BlockState::Closed)
        .map(|(b, _, _)| b)
        .collect();
    let mut ops = Vec::new();
    for b in targets {
        ftl.refresh_block(b, 10, &mut ops);
        ops.clear();
    }
    assert!(ftl.stats().ida_conversions > 0, "test needs IDA wordlines");

    // Reconstruct every physical block on real cells. Map each mapped
    // LPN's payload to its physical offset; unknown (invalid) offsets get
    // filler data.
    let mut contents: HashMap<(u32, u32), Vec<u8>> = HashMap::new();
    let mut owners: HashMap<(u32, u32), Lpn> = HashMap::new();
    for lpn in 0..lpns {
        if let Some(read) = ftl.read(Lpn(lpn)) {
            let key = (read.page.block(&g).index(), read.page.offset_in_block(&g));
            contents.insert(key, payload(lpn));
            owners.insert(key, Lpn(lpn));
        }
    }

    let conventional = CodingScheme::conventional(g.bits_per_cell as u8);
    let mut checked_pages = 0u32;
    let mut checked_ida = 0u32;
    for b in 0..g.total_blocks() {
        let block_addr = ida_flash::addr::BlockAddr(b);
        let state = ftl.blocks().state(block_addr);
        if !matches!(state, BlockState::Closed | BlockState::Ida) {
            continue;
        }
        // Program the physical image in order.
        let mut cells = Block::new(g.wordlines_per_block, WIDTH, g.bits_per_cell as u8);
        for off in 0..g.pages_per_block() {
            let data = contents
                .get(&(b, off))
                .cloned()
                .unwrap_or_else(|| payload(u64::MAX - off as u64));
            cells.program(off, data).unwrap();
        }
        // Apply the FTL's recorded IDA conversions wordline by wordline.
        for wl in 0..g.wordlines_per_block {
            let keep = ftl.blocks().wl_keep_mask(block_addr, wl);
            if keep != 0 {
                let plan = MergePlan::compute(&conventional, keep);
                cells
                    .adjust_wordline(wl, plan.state_map(), Arc::new(plan.merged().clone()))
                    .unwrap();
            }
        }
        // Every mapped page must read back its payload with the FTL's
        // advertised sense count.
        for off in 0..g.pages_per_block() {
            let Some(owner) = owners.get(&(b, off)) else {
                continue;
            };
            let (bits, senses) = cells
                .read(off)
                .unwrap_or_else(|e| panic!("block {b} offset {off} unreadable on real cells: {e}"));
            assert_eq!(
                bits,
                payload(owner.0),
                "data corrupted at block {b} offset {off}"
            );
            let page = block_addr.page(&g, off);
            assert_eq!(
                senses,
                ftl.senses_for(page),
                "sense-count mismatch at block {b} offset {off}"
            );
            checked_pages += 1;
            if ftl.blocks().wl_keep_mask(block_addr, off / g.bits_per_cell) != 0 {
                checked_ida += 1;
            }
        }
    }
    assert!(checked_pages > 500, "only {checked_pages} pages checked");
    assert!(checked_ida > 100, "only {checked_ida} IDA pages checked");
}
