//! End-to-end integration tests: full warm-up → measure runs across the
//! crates, asserting the paper's qualitative results hold.

use ida_bench::runner::{
    normalized_read_response, run_config, run_system, system_config, ExperimentScale,
    SystemUnderTest,
};
use ida_flash::timing::FlashTiming;
use ida_ssd::retry::RetryConfig;
use ida_workloads::suite::paper_workload;

fn small_scale() -> ExperimentScale {
    ExperimentScale::smoke().with_requests(2_500)
}

#[test]
fn ida_improves_read_response_on_read_heavy_workloads() {
    let scale = small_scale();
    for name in ["proj_1", "hm_1"] {
        let preset = paper_workload(name).unwrap();
        let base = run_system(&preset, SystemUnderTest::Baseline, &scale);
        let ida = run_system(&preset, SystemUnderTest::Ida { error_rate: 0.2 }, &scale);
        let norm = normalized_read_response(&ida.report, &base.report);
        assert!(
            norm < 0.92,
            "{name}: expected a clear IDA-E20 improvement, got {norm}"
        );
        assert!(ida.report.breakdown.ida > 0);
    }
}

#[test]
fn benefit_decays_with_adjustment_error_rate() {
    let scale = small_scale();
    let preset = paper_workload("proj_2").unwrap();
    let base = run_system(&preset, SystemUnderTest::Baseline, &scale);
    let norm_at = |e: f64| {
        let ida = run_system(&preset, SystemUnderTest::Ida { error_rate: e }, &scale);
        normalized_read_response(&ida.report, &base.report)
    };
    let e0 = norm_at(0.0);
    let e40 = norm_at(0.4);
    let e80 = norm_at(0.8);
    assert!(
        e0 < e40 && e40 < e80,
        "decay violated: E0={e0} E40={e40} E80={e80}"
    );
    assert!(e80 < 1.02, "even E80 should not clearly hurt, got {e80}");
}

#[test]
fn wider_latency_gap_gives_bigger_benefit() {
    // Figure 9's trend: ΔtR 30 µs vs 70 µs.
    let scale = small_scale();
    let preset = paper_workload("src2_0").unwrap();
    let norm_at = |delta: u64| {
        let timing = FlashTiming::paper_tlc().with_delta_tr_us(delta);
        let base = run_config(
            &preset,
            system_config(
                SystemUnderTest::Baseline,
                scale.geometry,
                timing,
                RetryConfig::disabled(),
            ),
            &scale,
        );
        let ida = run_config(
            &preset,
            system_config(
                SystemUnderTest::Ida { error_rate: 0.2 },
                scale.geometry,
                timing,
                RetryConfig::disabled(),
            ),
            &scale,
        );
        normalized_read_response(&ida, &base)
    };
    let narrow = norm_at(30);
    let wide = norm_at(70);
    assert!(
        wide < narrow,
        "ΔtR=70µs should beat ΔtR=30µs: narrow={narrow} wide={wide}"
    );
}

#[test]
fn mlc_benefit_is_smaller_than_tlc_benefit() {
    let scale = small_scale();
    let preset = paper_workload("proj_1").unwrap();
    let tlc_base = run_system(&preset, SystemUnderTest::Baseline, &scale);
    let tlc_ida = run_system(&preset, SystemUnderTest::Ida { error_rate: 0.2 }, &scale);
    let tlc_norm = normalized_read_response(&tlc_ida.report, &tlc_base.report);

    let geometry = scale.geometry.with_bits_per_cell(2);
    let mlc_base = run_config(
        &preset,
        system_config(
            SystemUnderTest::Baseline,
            geometry,
            FlashTiming::paper_mlc(),
            RetryConfig::disabled(),
        ),
        &scale,
    );
    let mlc_ida = run_config(
        &preset,
        system_config(
            SystemUnderTest::Ida { error_rate: 0.2 },
            geometry,
            FlashTiming::paper_mlc(),
            RetryConfig::disabled(),
        ),
        &scale,
    );
    let mlc_norm = normalized_read_response(&mlc_ida, &mlc_base);
    assert!(mlc_norm < 1.0, "MLC should still benefit, got {mlc_norm}");
    assert!(
        tlc_norm < mlc_norm,
        "TLC benefit ({tlc_norm}) should exceed MLC benefit ({mlc_norm})"
    );
}

#[test]
fn read_retry_phase_amplifies_the_benefit() {
    // Figure 11's trend: late lifetime (retries) benefits more.
    let scale = small_scale();
    let preset = paper_workload("usr_2").unwrap();
    let norm_with = |retry: RetryConfig| {
        let base = run_config(
            &preset,
            system_config(
                SystemUnderTest::Baseline,
                scale.geometry,
                FlashTiming::paper_tlc(),
                retry,
            ),
            &scale,
        );
        let ida = run_config(
            &preset,
            system_config(
                SystemUnderTest::Ida { error_rate: 0.2 },
                scale.geometry,
                FlashTiming::paper_tlc(),
                retry,
            ),
            &scale,
        );
        normalized_read_response(&ida, &base)
    };
    let early = norm_with(RetryConfig::disabled());
    let late = norm_with(RetryConfig::late_lifetime(0.4, 0xEE77));
    assert!(
        late < early,
        "late lifetime should benefit more: early={early} late={late}"
    );
}

#[test]
fn ida_does_not_increase_wear_on_read_heavy_workloads() {
    // Section III-B: IDA recharges cells within an erase cycle instead of
    // adding cycles, so erase counts stay in line with the baseline.
    let scale = small_scale();
    let preset = paper_workload("proj_3").unwrap();
    let base = run_system(&preset, SystemUnderTest::Baseline, &scale);
    let ida = run_system(&preset, SystemUnderTest::Ida { error_rate: 0.2 }, &scale);
    let base_erases = base.report.ftl.erases.max(1);
    let ida_erases = ida.report.ftl.erases;
    assert!(
        (ida_erases as f64) < base_erases as f64 * 1.10,
        "IDA erases ({ida_erases}) should track baseline ({base_erases})"
    );
    // And IDA writes strictly fewer refresh pages (survivors stay put).
    assert!(ida.report.ftl.refresh_moves < base.report.ftl.refresh_moves);
}

#[test]
fn every_host_request_completes_and_data_stays_readable() {
    let scale = small_scale();
    let preset = paper_workload("stg_1").unwrap();
    let run = run_system(&preset, SystemUnderTest::Ida { error_rate: 0.3 }, &scale);
    let total = run.report.reads.count + run.report.writes.count;
    assert_eq!(total as usize, scale.requests, "all requests must complete");
    // No read was lost to an unmapped page *after warm-up prefill*: the
    // breakdown counts only flash-served reads; at least 95% of read pages
    // must have hit flash.
    assert!(run.report.breakdown.total() > 0);
}
