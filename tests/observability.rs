//! Integration tests for the observability layer: trace determinism,
//! timestamp monotonicity, and the trace ↔ report replay contract.

use ida_bench::runner::{run_system_obs, ExperimentScale, ObsOptions, SystemUnderTest};
use ida_core::refresh::RefreshMode;
use ida_obs::trace::{SinkHandle, TraceEvent, VecSink};
use ida_ssd::{HostOp, HostOpKind, Simulator, SsdConfig};
use ida_workloads::suite::paper_workload;
use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;

/// A simulator with a shared in-memory sink attached at creation, so the
/// trace covers every FTL event the run's cumulative stats count.
fn traced_sim(cfg: SsdConfig) -> (Simulator, Rc<RefCell<VecSink>>) {
    let sink = Rc::new(RefCell::new(VecSink::new()));
    let mut sim = Simulator::new(cfg);
    sim.set_trace(SinkHandle::from_shared(sink.clone()));
    (sim, sink)
}

fn mixed_trace(n: u64) -> Vec<HostOp> {
    let mut t = Vec::new();
    for i in 0..n {
        t.push(HostOp {
            at: i * 10_000,
            kind: if i % 3 == 0 {
                HostOpKind::Write
            } else {
                HostOpKind::Read
            },
            lpn: i % 64,
            pages: 1,
        });
    }
    t
}

#[test]
fn same_seed_produces_byte_identical_jsonl() {
    let preset = paper_workload("hm_1").expect("workload");
    let scale = ExperimentScale::smoke().with_requests(600);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let mut outputs = Vec::new();
    for i in 0..2 {
        let obs = ObsOptions {
            trace_out: Some(dir.join(format!("det_{i}.jsonl"))),
            metrics_json: Some(dir.join(format!("det_{i}.json"))),
            progress: false,
            gauge_interval_ns: None,
            trace_filter: None,
        };
        let run = run_system_obs(
            &preset,
            SystemUnderTest::Ida { error_rate: 0.2 },
            &scale,
            &obs,
        )
        .expect("run with obs");
        let trace = std::fs::read(obs.trace_out.as_ref().unwrap()).expect("trace file");
        let metrics = std::fs::read(obs.metrics_json.as_ref().unwrap()).expect("metrics file");
        outputs.push((trace, metrics, run.report));
    }
    let (t0, m0, r0) = &outputs[0];
    let (t1, m1, r1) = &outputs[1];
    assert!(!t0.is_empty(), "trace must not be empty");
    assert_eq!(t0, t1, "same-seed traces must be byte-identical");
    assert_eq!(m0, m1, "same-seed metrics must be byte-identical");
    assert_eq!(r0, r1, "same-seed reports must be equal");
    let text = String::from_utf8(t0.clone()).expect("utf8");
    let first = text.lines().next().expect("at least one line");
    assert!(
        first.starts_with("{\"ev\":\"run_start\""),
        "trace opens with run_start: {first}"
    );
    assert!(text
        .lines()
        .all(|l| l.starts_with("{\"ev\":\"") && l.ends_with('}')));
}

#[test]
fn measured_run_timestamps_are_monotone() {
    let (mut sim, sink) = traced_sim(SsdConfig::tiny_test());
    sim.prefill(0..64);
    let report = sim.run(mixed_trace(256));
    assert!(report.reads.count > 0 && report.writes.count > 0);
    let events = &sink.borrow().events;
    assert!(!events.is_empty());
    let stamps: Vec<u64> = events.iter().map(TraceEvent::timestamp).collect();
    assert!(
        stamps.windows(2).all(|w| w[0] <= w[1]),
        "timestamps must be non-decreasing"
    );
}

#[test]
fn trace_counts_replay_to_report_aggregates() {
    // IDA refresh inside the measured window, like the simulator's own
    // refresh test, so GC/refresh/conversion events all occur.
    let mut cfg = SsdConfig::tiny_test();
    cfg.ftl.refresh_mode = RefreshMode::Ida;
    cfg.ftl.adjust_error_rate = 0.0;
    cfg.ftl.refresh_period = 1_000_000;
    let (mut sim, sink) = traced_sim(cfg);
    let g = sim.config().ftl.geometry;
    let to_write = g.pages_per_block() as u64 * g.total_planes() as u64;
    sim.prefill(0..to_write);
    let mut trace = mixed_trace(200);
    trace.push(HostOp {
        at: 50_000_000,
        kind: HostOpKind::Read,
        lpn: 1,
        pages: 1,
    });
    let report = sim.run(trace);

    let events = sink.borrow().events.clone();
    let count = |kind: &str| events.iter().filter(|e| e.kind() == kind).count() as u64;
    assert_eq!(count("host_arrival"), 201);
    assert_eq!(
        count("host_complete"),
        report.reads.count + report.writes.count
    );
    assert_eq!(count("gc_run"), report.ftl.gc_runs);
    assert_eq!(count("refresh_block"), report.ftl.refreshes);
    assert_eq!(count("ida_conversion"), report.ftl.ida_conversions);
    assert!(report.ftl.refreshes > 0, "refresh must fire in the window");
    assert!(report.ftl.ida_conversions > 0, "IDA conversions must occur");

    // Per-scenario read classification replays exactly (Figure 4 data).
    let scenario_count = |label: &str| {
        events
            .iter()
            .filter(|e| matches!(e, TraceEvent::ReadIssued { scenario, .. } if *scenario == label))
            .count() as u64
    };
    let b = report.breakdown;
    for (label, expected) in [
        ("lsb", b.lsb),
        ("csb_lower_valid", b.csb_lower_valid),
        ("csb_lower_invalid", b.csb_lower_invalid),
        ("msb_lower_valid", b.msb_lower_valid),
        ("msb_lower_invalid", b.msb_lower_invalid),
        ("ida_coded", b.ida),
    ] {
        assert_eq!(scenario_count(label), expected, "scenario {label}");
    }
    assert_eq!(count("read_issued"), b.total());

    // Completion latencies replay the latency statistics exactly.
    let mut read_total = 0u128;
    let mut read_max = 0u64;
    for e in &events {
        if let TraceEvent::HostComplete {
            class: ida_obs::trace::HostClass::Read,
            latency_ns,
            ..
        } = e
        {
            read_total += *latency_ns as u128;
            read_max = read_max.max(*latency_ns);
        }
    }
    assert_eq!(read_total, report.reads.total_ns);
    assert_eq!(read_max, report.reads.max());
}

#[test]
fn null_sink_records_nothing_and_vec_sink_everything() {
    let mut plain = Simulator::new(SsdConfig::tiny_test());
    plain.prefill(0..64);
    let r_plain = plain.run(mixed_trace(128));

    let (mut traced, sink) = traced_sim(SsdConfig::tiny_test());
    traced.prefill(0..64);
    let r_traced = traced.run(mixed_trace(128));

    // Tracing must not change simulation results.
    assert_eq!(r_plain, r_traced);
    assert!(sink.borrow().events.len() as u64 >= 2 * 128);
}
