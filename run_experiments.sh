#!/bin/bash
# Regenerate every paper artifact under results/.
#
# The three sweep-shaped figures (fig8/fig9/fig10) run through the
# `idasim sweep` engine: parallel across IDA_JOBS workers, journaled to
# results/<grid>.journal.jsonl so a killed run resumes where it left
# off, aggregate JSON in results/<grid>.json plus the rendered table in
# results/<grid>.txt. The remaining experiments are single-config
# binaries and run serially. Knobs: IDA_SCALE=smoke|full, IDA_JOBS=N.
set -euo pipefail
cd "$(dirname "$0")"

jobs="${IDA_JOBS:-$(nproc)}"
mkdir -p results

echo "=== build ==="
cargo build --release -p ida-cli -p ida-bench

for grid in fig8 fig9 fig10; do
  echo "=== sweep $grid (jobs=$jobs) ==="
  target/release/idasim sweep "$grid" \
    --jobs "$jobs" \
    --journal "results/$grid.journal.jsonl" \
    --out "results/$grid.json" \
    --progress \
    > "results/$grid.txt" 2> "results/$grid.log"
  echo "done $grid"
done

for exp in table3_workloads fig4_read_distribution table4_refresh_overhead \
           fig11_read_retry table5_mlc fig6_qlc blocks_overhead \
           ablation_lsb_placement ablation_coding_232; do
  echo "=== $exp ==="
  target/release/"$exp" > "results/$exp.txt" 2> "results/$exp.log"
  echo "done $exp"
done

echo "all experiments complete; outputs in results/"
