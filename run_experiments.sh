#!/bin/bash
cd /root/repo
for exp in table3_workloads fig4_read_distribution fig8_response_time table4_refresh_overhead fig9_delta_tr fig10_throughput fig11_read_retry table5_mlc fig6_qlc blocks_overhead ablation_lsb_placement ablation_coding_232; do
  echo "=== $exp ==="
  cargo run --release -p ida-bench --bin $exp > results/$exp.txt 2> results/$exp.log
  echo "done $exp"
done
