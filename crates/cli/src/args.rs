//! Shared option scanning for `idasim` subcommands.
//!
//! Every subcommand used to hand-roll the same
//! `--jobs/--journal/--out/--smoke/--requests/--progress/--seed` loops,
//! each with its own copy of the error strings. This module owns those
//! flags once: a subcommand declares which shared flags it accepts via
//! [`CommonArgs::accepting`], folds [`CommonArgs::take`] into its scan
//! loop, and keeps only its command-specific matches. The [`value`] and
//! [`parsed`] helpers give command-specific flags the same uniform
//! `"{flag} needs {what}"` / `"bad {label}: {e}"` phrasing.

use ida_sweep::pool::parse_jobs;
use std::path::PathBuf;

/// `--jobs N` — worker threads.
pub const JOBS: &str = "--jobs";
/// `--journal <path>` — checkpoint journal.
pub const JOURNAL: &str = "--journal";
/// `--out <path>` — machine-readable output file.
pub const OUT: &str = "--out";
/// `--smoke` — reduced CI scale.
pub const SMOKE: &str = "--smoke";
/// `--requests N` — measured request count override.
pub const REQUESTS: &str = "--requests";
/// `--progress` — progress heartbeat on stderr.
pub const PROGRESS: &str = "--progress";
/// `--seed N` — stream seed.
pub const SEED: &str = "--seed";

/// Consume the value following the flag at `args[*i]`, advancing `*i`
/// past both.
///
/// # Errors
///
/// `"{flag} needs {what}"` when the value is missing.
pub fn value<'a>(
    args: &'a [String],
    i: &mut usize,
    flag: &str,
    what: &str,
) -> Result<&'a str, String> {
    let v = args
        .get(*i + 1)
        .ok_or_else(|| format!("{flag} needs {what}"))?;
    *i += 2;
    Ok(v)
}

/// [`value`] followed by a parse, with the uniform `"bad {label}: {e}"`
/// error phrasing.
///
/// # Errors
///
/// A missing value reports `"{flag} needs {what}"`; a malformed one
/// reports `"bad {label}: {e}"`.
pub fn parsed<T: std::str::FromStr>(
    args: &[String],
    i: &mut usize,
    flag: &str,
    what: &str,
    label: &str,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value(args, i, flag, what)?
        .parse()
        .map_err(|e| format!("bad {label}: {e}"))
}

/// The flags shared across subcommands, parsed once with one set of
/// error messages. A subcommand opts into the subset it supports;
/// everything else falls through to its own match (and from there to
/// the `unknown option` rejection).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommonArgs {
    accepted: &'static [&'static str],
    /// Worker threads (`None` = `IDA_JOBS` or all cores).
    pub jobs: Option<usize>,
    /// Checkpoint journal path.
    pub journal: Option<PathBuf>,
    /// Machine-readable output path.
    pub out: Option<PathBuf>,
    /// Use the smoke-test scale.
    pub smoke: bool,
    /// Measured request count override.
    pub requests: Option<usize>,
    /// Report progress on stderr.
    pub progress: bool,
    /// Stream seed.
    pub seed: u64,
}

impl CommonArgs {
    /// A scanner accepting exactly the listed shared flags.
    pub fn accepting(accepted: &'static [&'static str]) -> Self {
        CommonArgs {
            accepted,
            ..CommonArgs::default()
        }
    }

    /// Try to consume `args[*i]` as an accepted shared flag. Returns
    /// `Ok(true)` (and advances `*i`) when consumed, `Ok(false)` when the
    /// flag is not one of this subcommand's shared flags.
    ///
    /// # Errors
    ///
    /// A missing or malformed value for a shared flag.
    pub fn take(&mut self, args: &[String], i: &mut usize) -> Result<bool, String> {
        let flag = args[*i].as_str();
        if !self.accepted.contains(&flag) {
            return Ok(false);
        }
        match flag {
            JOBS => self.jobs = Some(parse_jobs(value(args, i, JOBS, "a value")?)?),
            JOURNAL => self.journal = Some(PathBuf::from(value(args, i, JOURNAL, "a path")?)),
            OUT => self.out = Some(PathBuf::from(value(args, i, OUT, "a path")?)),
            SMOKE => {
                self.smoke = true;
                *i += 1;
            }
            REQUESTS => {
                self.requests = Some(parsed(args, i, REQUESTS, "a value", "request count")?)
            }
            PROGRESS => {
                self.progress = true;
                *i += 1;
            }
            SEED => self.seed = parsed(args, i, SEED, "a value", "seed")?,
            // A caller listed a flag this module does not own; let its
            // own match (or the unknown-option rejection) handle it.
            _ => return Ok(false),
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn take_consumes_only_accepted_flags() {
        let args = s(&["--jobs", "4", "--smoke", "--seed", "7"]);
        let mut c = CommonArgs::accepting(&[JOBS, SMOKE]);
        let mut i = 0;
        assert!(c.take(&args, &mut i).unwrap());
        assert_eq!(i, 2);
        assert!(c.take(&args, &mut i).unwrap());
        assert_eq!(i, 3);
        // --seed is not accepted here: left for the caller.
        assert!(!c.take(&args, &mut i).unwrap());
        assert_eq!(i, 3);
        assert_eq!(c.jobs, Some(4));
        assert!(c.smoke);
        assert_eq!(c.seed, 0);
    }

    #[test]
    fn missing_values_use_the_uniform_phrasing() {
        let mut c = CommonArgs::accepting(&[JOBS, JOURNAL, OUT, REQUESTS, SEED]);
        for (args, msg) in [
            (s(&["--jobs"]), "--jobs needs a value"),
            (s(&["--journal"]), "--journal needs a path"),
            (s(&["--out"]), "--out needs a path"),
            (s(&["--requests"]), "--requests needs a value"),
            (s(&["--seed"]), "--seed needs a value"),
        ] {
            let mut i = 0;
            assert_eq!(c.take(&args, &mut i).unwrap_err(), msg);
        }
    }

    #[test]
    fn malformed_values_keep_their_pinned_messages() {
        let mut c = CommonArgs::accepting(&[JOBS, REQUESTS, SEED]);
        let mut i = 0;
        let zero = c.take(&s(&["--jobs", "0"]), &mut i).unwrap_err();
        assert!(zero.contains("at least 1"), "unhelpful: {zero}");
        let mut i = 0;
        let word = c.take(&s(&["--jobs", "four"]), &mut i).unwrap_err();
        assert!(word.contains("positive integer"), "unhelpful: {word}");
        let mut i = 0;
        let req = c.take(&s(&["--requests", "many"]), &mut i).unwrap_err();
        assert!(req.contains("bad request count"), "unhelpful: {req}");
        let mut i = 0;
        let seed = c.take(&s(&["--seed", "x"]), &mut i).unwrap_err();
        assert!(seed.contains("bad seed"), "unhelpful: {seed}");
    }

    #[test]
    fn parsed_helper_reports_both_failure_shapes() {
        let mut i = 0;
        assert_eq!(
            parsed::<u64>(
                &s(&["--epochs"]),
                &mut i,
                "--epochs",
                "a value",
                "epoch count"
            )
            .unwrap_err(),
            "--epochs needs a value"
        );
        let mut i = 0;
        let err = parsed::<u64>(
            &s(&["--epochs", "soon"]),
            &mut i,
            "--epochs",
            "a value",
            "epoch count",
        )
        .unwrap_err();
        assert!(err.starts_with("bad epoch count:"), "unhelpful: {err}");
    }
}
