//! `idasim` — the command-line driver for the IDA-coding SSD simulator.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ida_cli::parse_args(&args).and_then(ida_cli::run) {
        Ok(out) => print!("{out}"),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}
