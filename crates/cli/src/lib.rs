//! Library half of the `idasim` command-line driver.
//!
//! Kept as a library so the argument parsing and command dispatch are unit
//! testable; `main.rs` is a thin shell around [`run`].

pub mod args;

use crate::args::CommonArgs;
use ida_bench::load::{
    load_metrics_json, nominal_iops, run_capacity, run_load_obs, LoadSpec, CAPACITY_MAX_ITERS,
};
use ida_bench::runner::{
    normalized_read_response, replay_trace, run_system_obs, system_config, to_host_ops,
    warm_cache_key, warmed_simulator, ExperimentScale, ObsOptions, ReplayMode, SystemUnderTest,
    WARM_SEED_BASE,
};
use ida_bench::soak::{run_soak, soak_metrics_json, soak_run_from_json};
use ida_bench::suite::{compare_json, run_suite};
use ida_bench::sweep::{
    builtin_grid, parse_system, render, run_grid, run_grid_on, run_grid_worker, Backend,
    BUILTIN_GRIDS,
};
use ida_flash::timing::FlashTiming;
use ida_host::{AdmissionPolicy, ArrivalSpec};
use ida_obs::json::JsonObj;
use ida_ssd::retry::RetryConfig;
use ida_ssd::Simulator;
use ida_sweep::{derive_stream_seed, SweepConfig};
use ida_sweep::{SweepOutcome, SweepSpec};
use ida_workloads::stats::characterize;
use ida_workloads::suite::{paper_workload, paper_workloads};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Default coordinator address for `serve`/`worker` when neither
/// `--listen` nor `--connect` is given: loopback, fixed port.
pub const DEFAULT_FABRIC_ADDR: &str = "127.0.0.1:7141";

/// How long a worker retries its initial connection — workers may be
/// launched moments before the coordinator binds its listener.
const FABRIC_CONNECT_WAIT: std::time::Duration = std::time::Duration::from_secs(10);

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List the available workloads.
    List,
    /// Print the characteristics of one workload.
    Describe {
        /// Workload name.
        workload: String,
    },
    /// Compare baseline vs IDA on one workload.
    Compare {
        /// Workload name.
        workload: String,
        /// Voltage-adjustment error rate (0.0–1.0).
        error_rate: f64,
        /// Host requests in the measured trace.
        requests: usize,
        /// Write each run's event trace as JSONL (per-system suffix added).
        trace_out: Option<PathBuf>,
        /// Write each run's metrics report as JSON (per-system suffix added).
        metrics_json: Option<PathBuf>,
        /// Comma-separated event classes to keep in the trace.
        trace_filter: Option<String>,
        /// Report run progress on stderr.
        progress: bool,
    },
    /// Run an experiment grid on the parallel sweep engine.
    Sweep {
        /// Grid name (`fig8`, `fig9`, `fig10`, `fig11`, `faults`,
        /// `load`, `lifetime`).
        grid: String,
        /// Worker threads (`None` = `IDA_JOBS` or all cores).
        jobs: Option<usize>,
        /// Checkpoint journal path (resume skips journaled cells).
        journal: Option<PathBuf>,
        /// Write the aggregated JSON here (stdout gets the rendered
        /// table); without it the JSON itself goes to stdout.
        out: Option<PathBuf>,
        /// Use the smoke-test scale.
        smoke: bool,
        /// Override the measured request count.
        requests: Option<usize>,
        /// Report per-cell progress (with ETA) on stderr.
        progress: bool,
        /// Share warm-up state across cells: run each unique warm-up
        /// once, fork the rest from its snapshot (output is unchanged).
        warm_cache: bool,
    },
    /// Coordinate a distributed sweep: serve cells to `idasim worker`
    /// processes and aggregate their results.
    Serve {
        /// Grid name (same set as `sweep`).
        grid: String,
        /// Listen address, e.g. `127.0.0.1:7141`.
        listen: String,
        /// Checkpoint journal path (resume skips journaled cells).
        journal: Option<PathBuf>,
        /// Write the aggregated JSON here (stdout gets the rendered
        /// table); without it the JSON itself goes to stdout.
        out: Option<PathBuf>,
        /// Use the smoke-test scale.
        smoke: bool,
        /// Override the measured request count.
        requests: Option<usize>,
    },
    /// Join a distributed sweep as a worker: claim and execute cells
    /// from an `idasim serve` coordinator.
    Worker {
        /// Coordinator address to connect to.
        connect: String,
        /// Worker connections/threads (`None` = `IDA_JOBS` or all cores).
        jobs: Option<usize>,
    },
    /// Capture, replay, or describe a framed warm-state snapshot.
    Snapshot {
        /// `save`, `restore`, or `inspect`.
        action: String,
        /// Snapshot file path.
        path: PathBuf,
        /// Workload name (required by `save`).
        workload: Option<String>,
        /// System under test (`Baseline` or an IDA variant).
        system: String,
        /// Use the smoke-test scale.
        smoke: bool,
        /// Override the measured request count.
        requests: Option<usize>,
    },
    /// Soak one workload through a whole accelerated device lifetime
    /// (Baseline and IDA side by side) with per-epoch invariant checks.
    Soak {
        /// Workload name.
        workload: String,
        /// Aging level (`off`, `low`, `mid`, `high`).
        level: String,
        /// Voltage-adjustment error rate for the IDA system (0.0–1.0).
        error_rate: f64,
        /// Accelerated-lifetime epochs (epoch 0 is fresh).
        epochs: usize,
        /// Worker threads (`None` = `IDA_JOBS` or all cores).
        jobs: Option<usize>,
        /// Checkpoint journal path (resume skips journaled cells).
        journal: Option<PathBuf>,
        /// Write the aggregated JSON here (stdout keeps the tables).
        out: Option<PathBuf>,
        /// Use the smoke-test scale.
        smoke: bool,
        /// Override the measured request count per epoch.
        requests: Option<usize>,
        /// Report per-cell progress on stderr.
        progress: bool,
    },
    /// Run the fixed-seed benchmark suite.
    Bench {
        /// Use the reduced CI scale.
        smoke: bool,
        /// Write the JSON document here (stdout gets the summary table);
        /// without it the JSON itself goes to stdout.
        out: Option<PathBuf>,
        /// Previously captured suite (or comparison) JSON to embed as the
        /// baseline; the output becomes a comparison document with
        /// per-bench speedups.
        baseline: Option<PathBuf>,
    },
    /// Drive one workload through the host frontend at a target offered
    /// rate (or bisect for the max sustainable rate at the SLO).
    Load {
        /// Workload name.
        workload: String,
        /// Voltage-adjustment error rate for the IDA system (0.0–1.0).
        error_rate: f64,
        /// Offered rate in IOPS (`None` = the workload's nominal rate).
        iops: Option<u64>,
        /// Arrival shape (`constant`, `poisson`, `onoff`).
        arrival: String,
        /// Tenant streams the trace is dealt across.
        tenants: u32,
        /// Full-queue admission policy (`shed`, `delay`).
        admission: String,
        /// Read p99 SLO target, µs.
        slo_us: u64,
        /// Override the measured request count.
        requests: Option<usize>,
        /// Use the smoke-test scale.
        smoke: bool,
        /// Bisect for max sustainable IOPS instead of one load point.
        capacity: bool,
        /// Capacity-search bracket floor, IOPS (`None` = nominal / 4).
        lo: Option<u64>,
        /// Capacity-search bracket ceiling, IOPS (`None` = nominal × 4).
        hi: Option<u64>,
        /// Write the JSON document here (stdout gets the summary).
        out: Option<PathBuf>,
        /// Write each run's event trace as JSONL (per-system suffix).
        trace_out: Option<PathBuf>,
        /// Comma-separated event classes to keep in the trace.
        trace_filter: Option<String>,
        /// Stream seed.
        seed: u64,
    },
    /// Replay an imported MSR Cambridge trace on both systems.
    Replay {
        /// MSR CSV path.
        msr: PathBuf,
        /// Voltage-adjustment error rate for the IDA system (0.0–1.0).
        error_rate: f64,
        /// Closed-loop queue depth (`None` = open loop, the trace's own
        /// arrival times).
        closed: Option<usize>,
        /// Use the smoke-test scale geometry.
        smoke: bool,
        /// Write each run's event trace as JSONL (per-system suffix).
        trace_out: Option<PathBuf>,
        /// Write each run's metrics report as JSON (per-system suffix).
        metrics_json: Option<PathBuf>,
        /// Report run progress on stderr.
        progress: bool,
    },
    /// Analyze a JSONL event trace (validate, attribute, diff).
    Trace {
        /// Trace file to analyze (absent in `--diff` mode).
        file: Option<PathBuf>,
        /// Only validate (schema, monotonicity, span conservation).
        validate: bool,
        /// How many slowest reads to show with waterfalls.
        top: usize,
        /// Compare two traces phase-by-phase instead.
        diff: Option<(PathBuf, PathBuf)>,
    },
    /// Print usage.
    Help,
}

/// Parse command-line arguments (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown commands or malformed
/// values.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("list") => Ok(Command::List),
        Some("describe") => {
            let workload = args
                .get(1)
                .ok_or("describe needs a workload name (try `idasim list`)")?;
            Ok(Command::Describe {
                workload: workload.clone(),
            })
        }
        Some("compare") => {
            let workload = args
                .get(1)
                .ok_or("compare needs a workload name (try `idasim list`)")?
                .clone();
            let mut c = CommonArgs::accepting(&[args::REQUESTS, args::PROGRESS]);
            let mut error_rate = 0.2;
            let mut trace_out = None;
            let mut metrics_json = None;
            let mut trace_filter = None;
            let mut i = 2;
            while i < args.len() {
                if c.take(args, &mut i)? {
                    continue;
                }
                match args[i].as_str() {
                    "--error-rate" => {
                        error_rate =
                            args::parsed(args, &mut i, "--error-rate", "a value", "error rate")?;
                    }
                    "--trace-out" => {
                        trace_out = Some(PathBuf::from(args::value(
                            args,
                            &mut i,
                            "--trace-out",
                            "a path",
                        )?));
                    }
                    "--metrics-json" => {
                        metrics_json = Some(PathBuf::from(args::value(
                            args,
                            &mut i,
                            "--metrics-json",
                            "a path",
                        )?));
                    }
                    "--trace-filter" => {
                        let spec = args::value(args, &mut i, "--trace-filter", "a class list")?
                            .to_string();
                        // Validate eagerly so a typo fails before any run.
                        ida_obs::trace::parse_trace_filter(&spec)?;
                        trace_filter = Some(spec);
                    }
                    other => return Err(format!("unknown option: {other}")),
                }
            }
            if !(0.0..=1.0).contains(&error_rate) {
                return Err(format!("error rate {error_rate} outside [0, 1]"));
            }
            Ok(Command::Compare {
                workload,
                error_rate,
                requests: c.requests.unwrap_or(6_000),
                trace_out,
                metrics_json,
                trace_filter,
                progress: c.progress,
            })
        }
        Some("sweep") => {
            let grid = args
                .get(1)
                .filter(|g| !g.starts_with("--"))
                .ok_or_else(|| {
                    format!(
                        "sweep needs a grid name (one of: {})",
                        BUILTIN_GRIDS.join(", ")
                    )
                })?
                .clone();
            let mut c = CommonArgs::accepting(&[
                args::JOBS,
                args::JOURNAL,
                args::OUT,
                args::SMOKE,
                args::REQUESTS,
                args::PROGRESS,
            ]);
            let mut warm_cache = false;
            let mut i = 2;
            while i < args.len() {
                if c.take(args, &mut i)? {
                    continue;
                }
                match args[i].as_str() {
                    "--warm-cache" => {
                        warm_cache = true;
                        i += 1;
                    }
                    other => return Err(format!("unknown option: {other}")),
                }
            }
            Ok(Command::Sweep {
                grid,
                jobs: c.jobs,
                journal: c.journal,
                out: c.out,
                smoke: c.smoke,
                requests: c.requests,
                progress: c.progress,
                warm_cache,
            })
        }
        Some("serve") => {
            let grid = args
                .get(1)
                .filter(|g| !g.starts_with("--"))
                .ok_or_else(|| {
                    format!(
                        "serve needs a grid name (one of: {})",
                        BUILTIN_GRIDS.join(", ")
                    )
                })?
                .clone();
            let mut c =
                CommonArgs::accepting(&[args::JOURNAL, args::OUT, args::SMOKE, args::REQUESTS]);
            let mut listen = DEFAULT_FABRIC_ADDR.to_string();
            let mut i = 2;
            while i < args.len() {
                if c.take(args, &mut i)? {
                    continue;
                }
                match args[i].as_str() {
                    "--listen" => {
                        listen = args::value(args, &mut i, "--listen", "an address")?.to_string();
                    }
                    other => return Err(format!("unknown option: {other}")),
                }
            }
            Ok(Command::Serve {
                grid,
                listen,
                journal: c.journal,
                out: c.out,
                smoke: c.smoke,
                requests: c.requests,
            })
        }
        Some("worker") => {
            let mut c = CommonArgs::accepting(&[args::JOBS]);
            let mut connect = DEFAULT_FABRIC_ADDR.to_string();
            let mut i = 1;
            while i < args.len() {
                if c.take(args, &mut i)? {
                    continue;
                }
                match args[i].as_str() {
                    "--connect" => {
                        connect = args::value(args, &mut i, "--connect", "an address")?.to_string();
                    }
                    other => return Err(format!("unknown option: {other}")),
                }
            }
            Ok(Command::Worker {
                connect,
                jobs: c.jobs,
            })
        }
        Some("snapshot") => {
            let action = args
                .get(1)
                .filter(|a| matches!(a.as_str(), "save" | "restore" | "inspect"))
                .ok_or("snapshot needs an action: save, restore, or inspect")?
                .clone();
            let path = PathBuf::from(
                args.get(2)
                    .filter(|p| !p.starts_with("--"))
                    .ok_or("snapshot needs a file path after the action")?,
            );
            let mut c = CommonArgs::accepting(&[args::SMOKE, args::REQUESTS]);
            let mut workload = None;
            let mut system = "Baseline".to_string();
            let mut i = 3;
            while i < args.len() {
                if c.take(args, &mut i)? {
                    continue;
                }
                match args[i].as_str() {
                    "--workload" => {
                        workload =
                            Some(args::value(args, &mut i, "--workload", "a name")?.to_string());
                    }
                    "--system" => {
                        system = args::value(args, &mut i, "--system", "a name")?.to_string();
                    }
                    other => return Err(format!("unknown option: {other}")),
                }
            }
            if action == "save" && workload.is_none() {
                return Err("snapshot save needs --workload (try `idasim list`)".into());
            }
            Ok(Command::Snapshot {
                action,
                path,
                workload,
                system,
                smoke: c.smoke,
                requests: c.requests,
            })
        }
        Some("soak") => {
            let workload = args
                .get(1)
                .filter(|g| !g.starts_with("--"))
                .ok_or("soak needs a workload name (try `idasim list`)")?
                .clone();
            let mut c = CommonArgs::accepting(&[
                args::JOBS,
                args::JOURNAL,
                args::OUT,
                args::SMOKE,
                args::REQUESTS,
                args::PROGRESS,
            ]);
            let mut level = "mid".to_string();
            let mut error_rate = 0.2;
            let mut epochs = ida_bench::soak::SOAK_EPOCHS;
            let mut i = 2;
            while i < args.len() {
                if c.take(args, &mut i)? {
                    continue;
                }
                match args[i].as_str() {
                    "--level" => {
                        level = args::value(args, &mut i, "--level", "a value")?.to_string();
                    }
                    "--error-rate" => {
                        error_rate =
                            args::parsed(args, &mut i, "--error-rate", "a value", "error rate")?;
                    }
                    "--epochs" => {
                        epochs = args::parsed(args, &mut i, "--epochs", "a value", "epoch count")?;
                    }
                    other => return Err(format!("unknown option: {other}")),
                }
            }
            // Validate eagerly so a typo fails before hours of soaking.
            if ida_faults::AgingConfig::preset(&level, 0).is_none() {
                return Err(format!(
                    "unknown aging level {level:?} (one of: {})",
                    ida_faults::AgingConfig::LEVELS.join(", ")
                ));
            }
            if !(0.0..=1.0).contains(&error_rate) {
                return Err(format!("error rate {error_rate} outside [0, 1]"));
            }
            if epochs == 0 {
                return Err("--epochs must be at least 1".into());
            }
            Ok(Command::Soak {
                workload,
                level,
                error_rate,
                epochs,
                jobs: c.jobs,
                journal: c.journal,
                out: c.out,
                smoke: c.smoke,
                requests: c.requests,
                progress: c.progress,
            })
        }
        Some("load") => {
            let workload = args
                .get(1)
                .filter(|g| !g.starts_with("--"))
                .ok_or("load needs a workload name (try `idasim list`)")?
                .clone();
            let mut c =
                CommonArgs::accepting(&[args::OUT, args::SMOKE, args::REQUESTS, args::SEED]);
            let mut error_rate = 0.2;
            let mut iops = None;
            let mut arrival = "poisson".to_string();
            let mut tenants = 1;
            let mut admission = "shed".to_string();
            let mut slo_us = 2_000;
            let mut capacity = false;
            let mut lo = None;
            let mut hi = None;
            let mut trace_out = None;
            let mut trace_filter = None;
            let mut i = 2;
            while i < args.len() {
                if c.take(args, &mut i)? {
                    continue;
                }
                match args[i].as_str() {
                    "--error-rate" => {
                        error_rate =
                            args::parsed(args, &mut i, "--error-rate", "a value", "error rate")?;
                    }
                    "--iops" => {
                        iops = Some(args::parsed(args, &mut i, "--iops", "a value", "IOPS")?);
                    }
                    "--arrival" => {
                        arrival = args::value(args, &mut i, "--arrival", "a shape")?.to_string();
                    }
                    "--tenants" => {
                        tenants =
                            args::parsed(args, &mut i, "--tenants", "a count", "tenant count")?;
                    }
                    "--admission" => {
                        admission =
                            args::value(args, &mut i, "--admission", "a policy")?.to_string();
                    }
                    "--slo-us" => {
                        slo_us = args::parsed(args, &mut i, "--slo-us", "a value", "SLO")?;
                    }
                    "--capacity" => {
                        capacity = true;
                        i += 1;
                    }
                    "--lo" => {
                        lo = Some(args::parsed(args, &mut i, "--lo", "a value", "--lo IOPS")?);
                    }
                    "--hi" => {
                        hi = Some(args::parsed(args, &mut i, "--hi", "a value", "--hi IOPS")?);
                    }
                    "--trace-out" => {
                        trace_out = Some(PathBuf::from(args::value(
                            args,
                            &mut i,
                            "--trace-out",
                            "a path",
                        )?));
                    }
                    "--trace-filter" => {
                        let spec = args::value(args, &mut i, "--trace-filter", "a class list")?
                            .to_string();
                        ida_obs::trace::parse_trace_filter(&spec)?;
                        trace_filter = Some(spec);
                    }
                    other => return Err(format!("unknown option: {other}")),
                }
            }
            if !(0.0..=1.0).contains(&error_rate) {
                return Err(format!("error rate {error_rate} outside [0, 1]"));
            }
            // Validate the label spellings eagerly so typos fail fast.
            ida_host::ArrivalSpec::parse(&arrival)?;
            ida_host::AdmissionPolicy::parse(&admission)?;
            if tenants == 0 {
                return Err("--tenants must be at least 1".to_string());
            }
            if slo_us == 0 {
                return Err("--slo-us must be positive".to_string());
            }
            if let (Some(lo), Some(hi)) = (lo, hi) {
                if lo == 0 || lo > hi {
                    return Err(format!("bad capacity bracket [{lo}, {hi}]"));
                }
            }
            Ok(Command::Load {
                workload,
                error_rate,
                iops,
                arrival,
                tenants,
                admission,
                slo_us,
                requests: c.requests,
                smoke: c.smoke,
                capacity,
                lo,
                hi,
                out: c.out,
                trace_out,
                trace_filter,
                seed: c.seed,
            })
        }
        Some("replay") => {
            let mut c = CommonArgs::accepting(&[args::SMOKE, args::PROGRESS]);
            let mut msr = None;
            let mut error_rate = 0.2;
            let mut closed = None;
            let mut trace_out = None;
            let mut metrics_json = None;
            let mut i = 1;
            while i < args.len() {
                if c.take(args, &mut i)? {
                    continue;
                }
                match args[i].as_str() {
                    "--msr" => {
                        msr = Some(PathBuf::from(args::value(args, &mut i, "--msr", "a path")?));
                    }
                    "--error-rate" => {
                        error_rate =
                            args::parsed(args, &mut i, "--error-rate", "a value", "error rate")?;
                    }
                    "--closed" => {
                        let depth: usize =
                            args::parsed(args, &mut i, "--closed", "a queue depth", "queue depth")?;
                        if depth == 0 {
                            return Err("--closed queue depth must be positive".to_string());
                        }
                        closed = Some(depth);
                    }
                    "--trace-out" => {
                        trace_out = Some(PathBuf::from(args::value(
                            args,
                            &mut i,
                            "--trace-out",
                            "a path",
                        )?));
                    }
                    "--metrics-json" => {
                        metrics_json = Some(PathBuf::from(args::value(
                            args,
                            &mut i,
                            "--metrics-json",
                            "a path",
                        )?));
                    }
                    other => return Err(format!("unknown option: {other}")),
                }
            }
            let msr = msr.ok_or("replay needs --msr <trace.csv>")?;
            if !(0.0..=1.0).contains(&error_rate) {
                return Err(format!("error rate {error_rate} outside [0, 1]"));
            }
            Ok(Command::Replay {
                msr,
                error_rate,
                closed,
                smoke: c.smoke,
                trace_out,
                metrics_json,
                progress: c.progress,
            })
        }
        Some("bench") => {
            let mut c = CommonArgs::accepting(&[args::SMOKE, args::OUT]);
            let mut baseline = None;
            let mut i = 1;
            while i < args.len() {
                if c.take(args, &mut i)? {
                    continue;
                }
                match args[i].as_str() {
                    "--baseline" => {
                        baseline = Some(PathBuf::from(args::value(
                            args,
                            &mut i,
                            "--baseline",
                            "a path",
                        )?));
                    }
                    other => return Err(format!("unknown option: {other}")),
                }
            }
            Ok(Command::Bench {
                smoke: c.smoke,
                out: c.out,
                baseline,
            })
        }
        Some("trace") => {
            let mut file = None;
            let mut validate = false;
            let mut top = 5;
            let mut diff = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--validate" => {
                        validate = true;
                        i += 1;
                    }
                    "--top" => {
                        top = args::parsed(args, &mut i, "--top", "a count", "--top count")?;
                    }
                    "--diff" => {
                        let a = args.get(i + 1).ok_or("--diff needs two trace paths")?;
                        let b = args.get(i + 2).ok_or("--diff needs two trace paths")?;
                        diff = Some((PathBuf::from(a), PathBuf::from(b)));
                        i += 3;
                    }
                    other if !other.starts_with("--") && file.is_none() => {
                        file = Some(PathBuf::from(other));
                        i += 1;
                    }
                    other => return Err(format!("unknown option: {other}")),
                }
            }
            match (&file, &diff) {
                (None, None) => {
                    return Err("trace needs a trace file or --diff <a> <b>".to_string())
                }
                (Some(_), Some(_)) => {
                    return Err("trace takes either a trace file or --diff, not both".to_string())
                }
                _ => {}
            }
            Ok(Command::Trace {
                file,
                validate,
                top,
                diff,
            })
        }
        Some(other) => Err(format!("unknown command: {other} (try `idasim help`)")),
    }
}

/// Execute a command, returning the text to print.
///
/// # Errors
///
/// Returns a message for unknown workloads.
pub fn run(cmd: Command) -> Result<String, String> {
    let mut out = String::new();
    match cmd {
        Command::Help => {
            out.push_str(USAGE);
        }
        Command::List => {
            out.push_str("available workloads (MSR-Cambridge-like, Table III):\n");
            for p in paper_workloads() {
                let _ = writeln!(
                    out,
                    "  {:8} read ratio {:5.1}%  mean read {:5.1} KB",
                    p.spec.name, p.paper.read_ratio_pct, p.paper.read_kb
                );
            }
        }
        Command::Describe { workload } => {
            let p = paper_workload(&workload).ok_or_else(|| unknown(&workload))?;
            let trace = p.generate(40_000, 10_000);
            let s = characterize(&trace);
            let _ = writeln!(out, "workload {workload}:");
            let _ = writeln!(
                out,
                "  read ratio      {:.2}% (paper {:.2}%)",
                s.read_ratio * 100.0,
                p.paper.read_ratio_pct
            );
            let _ = writeln!(
                out,
                "  mean read size  {:.2} KB (paper {:.2} KB)",
                s.mean_read_kb, p.paper.read_kb
            );
            let _ = writeln!(
                out,
                "  read data ratio {:.2}% (paper {:.2}%)",
                s.read_data_ratio * 100.0,
                p.paper.read_data_pct
            );
            let _ = writeln!(
                out,
                "  footprint       {:.1} MB ({}% of device)",
                s.footprint_mb,
                (p.footprint_frac * 100.0) as u32
            );
        }
        Command::Compare {
            workload,
            error_rate,
            requests,
            trace_out,
            metrics_json,
            trace_filter,
            progress,
        } => {
            let p = paper_workload(&workload).ok_or_else(|| unknown(&workload))?;
            let scale = ExperimentScale::default_scale().with_requests(requests);
            let obs = ObsOptions {
                trace_out,
                metrics_json,
                progress,
                gauge_interval_ns: None,
                // The explicit flag wins; IDA_TRACE_FILTER fills in when
                // absent (validated again when the sink is attached).
                trace_filter: trace_filter.or_else(|| std::env::var("IDA_TRACE_FILTER").ok()),
            };
            let mut runs = Vec::new();
            for system in [
                SystemUnderTest::Baseline,
                SystemUnderTest::Ida { error_rate },
            ] {
                let run_obs = obs.suffixed(&system.label());
                runs.push(
                    run_system_obs(&p, system, &scale, &run_obs)
                        .map_err(|e| format!("observability output failed: {e}"))?,
                );
                for (what, path) in [
                    ("trace", &run_obs.trace_out),
                    ("metrics", &run_obs.metrics_json),
                ] {
                    if let Some(path) = path {
                        let _ =
                            writeln!(out, "wrote {} {what} to {}", system.label(), path.display());
                    }
                }
            }
            let ida = runs.pop().expect("two runs");
            let base = runs.pop().expect("two runs");
            let norm = normalized_read_response(&ida.report, &base.report);
            let _ = writeln!(out, "workload {workload}, {} requests:", requests);
            let _ = writeln!(
                out,
                "  baseline  mean read response {:9.1} us  (p99 {:9.1} us)",
                base.report.reads.mean_us(),
                base.report.reads.percentile(99.0) as f64 / 1e3
            );
            let _ = writeln!(
                out,
                "  IDA-E{:<3.0} mean read response {:9.1} us  (p99 {:9.1} us)",
                error_rate * 100.0,
                ida.report.reads.mean_us(),
                ida.report.reads.percentile(99.0) as f64 / 1e3
            );
            let _ = writeln!(
                out,
                "  normalized: {norm:.3}  (read response improved by {:.1}%)",
                (1.0 - norm) * 100.0
            );
        }
        Command::Sweep {
            grid,
            jobs,
            journal,
            out: out_path,
            smoke,
            requests,
            progress,
            warm_cache,
        } => {
            let spec = builtin_grid(&grid).ok_or_else(|| {
                format!(
                    "unknown sweep grid {grid} (one of: {})",
                    BUILTIN_GRIDS.join(", ")
                )
            })?;
            let mut scale = if smoke {
                ExperimentScale::smoke()
            } else {
                ExperimentScale::from_env()
            };
            if let Some(r) = requests {
                scale.requests = r;
            }
            // Environment supplies defaults (IDA_JOBS, IDA_JOURNAL);
            // explicit flags win.
            let mut cfg = SweepConfig::from_env()?;
            if let Some(j) = jobs {
                cfg.jobs = j;
            }
            if journal.is_some() {
                cfg.journal = journal;
            }
            cfg.progress = progress;
            if warm_cache {
                cfg = cfg.with_warm_cache();
            }
            let outcome =
                run_grid(&spec, &scale, &cfg).map_err(|e| format!("sweep failed: {e}"))?;
            if let Some(cache) = cfg.warm_cache() {
                // stderr, like --progress: diagnostics never pollute the
                // machine-readable aggregate on stdout.
                eprintln!("{}", cache.stats_line(outcome.outcomes.len()));
            }
            let json = outcome.aggregate_json();
            match out_path {
                Some(path) => {
                    std::fs::write(&path, json + "\n")
                        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                    out.push_str(&render(&outcome)?);
                    let _ = writeln!(
                        out,
                        "\nsweep {grid} on {} worker(s): {}\nwrote aggregate to {}",
                        cfg.jobs,
                        outcome.summary(),
                        path.display()
                    );
                }
                // No --out: machine-readable aggregate on stdout.
                None => {
                    out.push_str(&json);
                    out.push('\n');
                }
            }
        }
        Command::Serve {
            grid,
            listen,
            journal,
            out: out_path,
            smoke,
            requests,
        } => {
            let spec = builtin_grid(&grid).ok_or_else(|| {
                format!(
                    "unknown sweep grid {grid} (one of: {})",
                    BUILTIN_GRIDS.join(", ")
                )
            })?;
            let mut scale = if smoke {
                ExperimentScale::smoke()
            } else {
                ExperimentScale::from_env()
            };
            if let Some(r) = requests {
                scale.requests = r;
            }
            let mut cfg = SweepConfig::from_env()?;
            if journal.is_some() {
                cfg.journal = journal;
            }
            let listener = std::net::TcpListener::bind(&listen)
                .map_err(|e| format!("cannot listen on {listen}: {e}"))?;
            // stderr, like fabric events: the aggregate owns stdout.
            eprintln!(
                "serving sweep {grid} on {listen}; join with: idasim worker --connect {listen}"
            );
            let outcome = run_grid_on(&spec, &scale, &cfg, Backend::Distributed { listener })
                .map_err(|e| format!("serve failed: {e}"))?;
            let json = outcome.aggregate_json();
            match out_path {
                Some(path) => {
                    std::fs::write(&path, json + "\n")
                        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                    out.push_str(&render(&outcome)?);
                    let _ = writeln!(
                        out,
                        "\nsweep {grid} served on {listen}: {}\nwrote aggregate to {}",
                        outcome.summary(),
                        path.display()
                    );
                }
                None => {
                    out.push_str(&json);
                    out.push('\n');
                }
            }
        }
        Command::Worker { connect, jobs } => {
            let jobs = match jobs {
                Some(j) => j,
                // Same default ladder as local sweeps: IDA_JOBS, else
                // all cores.
                None => SweepConfig::from_env()?.jobs,
            };
            let report = run_grid_worker(&connect, jobs, FABRIC_CONNECT_WAIT)
                .map_err(|e| format!("worker failed: {e}"))?;
            let _ = writeln!(
                out,
                "worker finished sweep {}: {} cell attempt(s) on {jobs} connection(s), {} ok, {} failed",
                report.sweep, report.ran, report.ok, report.failed
            );
        }
        Command::Snapshot {
            action,
            path,
            workload,
            system,
            smoke,
            requests,
        } => {
            let mut scale = if smoke {
                ExperimentScale::smoke()
            } else {
                ExperimentScale::from_env()
            };
            if let Some(r) = requests {
                scale.requests = r;
            }
            let system_spec = parse_system(&system)?;
            match action.as_str() {
                "save" => {
                    let workload = workload.expect("parse_args requires --workload for save");
                    let preset = paper_workload(&workload).ok_or_else(|| unknown(&workload))?;
                    let mut cfg = system_config(
                        system_spec,
                        scale.geometry,
                        FlashTiming::paper_tlc(),
                        RetryConfig::disabled(),
                    );
                    // The same seed the sweep engine would warm this
                    // (workload, system) pair under, so a saved snapshot
                    // is byte-interchangeable with the sweep cache's.
                    cfg.ftl.seed =
                        derive_stream_seed(WARM_SEED_BASE, &format!("{workload}/{system}/r0"));
                    let key = warm_cache_key(&workload, &cfg, &scale);
                    let (sim, _) = warmed_simulator(&preset, cfg, &scale);
                    let mut w = ida_snap::Writer::new();
                    ida_snap::Snap::encode(&workload, &mut w);
                    ida_snap::Snap::encode(&system, &mut w);
                    ida_snap::Snap::encode(&(scale.requests as u64), &mut w);
                    ida_snap::Snap::encode(&sim.snapshot(), &mut w);
                    let framed = ida_snap::frame::seal(&w.into_bytes());
                    let bytes = framed.len();
                    std::fs::write(&path, framed)
                        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                    let _ = writeln!(
                        out,
                        "saved warm state for {workload}/{system} (cache key {key:016x}, \
                         {bytes} bytes) to {}",
                        path.display()
                    );
                }
                "restore" | "inspect" => {
                    let buf = std::fs::read(&path)
                        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                    let (meta, payload) = ida_snap::frame::open(&buf)
                        .map_err(|e| format!("{} is not a valid snapshot: {e}", path.display()))?;
                    let mut r = ida_snap::Reader::new(payload);
                    let saved_workload: String = ida_snap::Snap::decode(&mut r)
                        .map_err(|e| format!("corrupt snapshot header: {e}"))?;
                    let saved_system: String = ida_snap::Snap::decode(&mut r)
                        .map_err(|e| format!("corrupt snapshot header: {e}"))?;
                    let saved_requests: u64 = ida_snap::Snap::decode(&mut r)
                        .map_err(|e| format!("corrupt snapshot header: {e}"))?;
                    let inner: Vec<u8> = ida_snap::Snap::decode(&mut r)
                        .map_err(|e| format!("corrupt snapshot body: {e}"))?;
                    r.finish()
                        .map_err(|e| format!("trailing snapshot bytes: {e}"))?;
                    let mut sim = Simulator::from_snapshot(&inner)
                        .map_err(|e| format!("snapshot failed to restore: {e}"))?;
                    if action == "inspect" {
                        let g = sim.config().ftl.geometry;
                        let _ = writeln!(
                            out,
                            "snapshot {} (format v{}, payload {} bytes, hash {:016x})",
                            path.display(),
                            meta.version,
                            meta.payload_len,
                            meta.hash
                        );
                        let _ = writeln!(
                            out,
                            "  warm state: {saved_workload}/{saved_system}, \
                             {saved_requests} measured requests"
                        );
                        let _ = writeln!(
                            out,
                            "  geometry: {}ch x {}chip x {}die x {}pl x {}blk, {} bits/cell",
                            g.channels,
                            g.chips_per_channel,
                            g.dies_per_chip,
                            g.planes_per_die,
                            g.blocks_per_plane,
                            g.bits_per_cell
                        );
                        let _ = writeln!(
                            out,
                            "  clock: {} ns; exported pages: {}",
                            sim.now(),
                            sim.config().ftl.exported_pages()
                        );
                    } else {
                        let preset = paper_workload(&saved_workload)
                            .ok_or_else(|| unknown(&saved_workload))?;
                        let requests =
                            requests.unwrap_or(usize::try_from(saved_requests).unwrap_or(0));
                        let footprint = ((sim.config().ftl.exported_pages() as f64
                            * preset.footprint_frac)
                            as u64)
                            .max(1_000);
                        let trace = preset.generate(footprint, requests);
                        sim.set_spans(true);
                        let report = sim.run(to_host_ops(&trace));
                        let _ = writeln!(
                            out,
                            "restored {saved_workload}/{saved_system}, replayed {requests} \
                             requests:"
                        );
                        let _ = writeln!(
                            out,
                            "  mean read response {:9.1} us  (p99 {:9.1} us)",
                            report.reads.mean_us(),
                            report.reads.percentile(99.0) as f64 / 1e3
                        );
                        let _ = writeln!(
                            out,
                            "  events processed {}, flash ops {}",
                            report.events_processed, report.flash_ops
                        );
                    }
                }
                other => return Err(format!("unknown snapshot action: {other}")),
            }
        }
        Command::Soak {
            workload,
            level,
            error_rate,
            epochs,
            jobs,
            journal,
            out: out_path,
            smoke,
            requests,
            progress,
        } => {
            paper_workload(&workload).ok_or_else(|| unknown(&workload))?;
            let mut scale = if smoke {
                ExperimentScale::smoke()
            } else {
                ExperimentScale::from_env()
            };
            if let Some(r) = requests {
                scale.requests = r;
            }
            let mut cfg = SweepConfig::from_env()?;
            if let Some(j) = jobs {
                cfg.jobs = j;
            }
            if journal.is_some() {
                cfg.journal = journal;
            }
            cfg.progress = progress;
            // Two cells — Baseline and the IDA system — run through the
            // sweep engine, so parallelism, journaling, and byte-identical
            // aggregation come from the same machinery as `sweep`.
            let spec = SweepSpec::new(
                "soak",
                vec![workload.clone()],
                vec![
                    SystemUnderTest::Baseline.label(),
                    SystemUnderTest::Ida { error_rate }.label(),
                ],
            )
            .with_axis("aging", vec![level.clone()]);
            let cells = spec.cells();
            let outcomes = ida_sweep::run_cells(&spec.name, &cells, &cfg, |cell| {
                let preset = paper_workload(&cell.workload)
                    .unwrap_or_else(|| panic!("unknown workload {}", cell.workload));
                let system = parse_system(&cell.system).unwrap_or_else(|e| panic!("{e}"));
                let lvl = cell
                    .param("aging")
                    .expect("soak cells carry an aging level");
                let run = run_soak(&preset, system, lvl, epochs, cell.stream_seed, &scale);
                soak_metrics_json(&run)
            })
            .map_err(|e| format!("soak failed: {e}"))?;
            let outcome = SweepOutcome {
                sweep: spec.name.clone(),
                outcomes,
            };
            let mut violations = 0usize;
            let mut failed = 0usize;
            for o in &outcome.outcomes {
                match o.payload() {
                    Some(payload) => {
                        let run = soak_run_from_json(&o.cell.workload, &o.cell.system, payload)?;
                        violations += run.violations.len();
                        out.push_str(&run.render_table());
                        out.push('\n');
                    }
                    None => {
                        failed += 1;
                        let _ = writeln!(out, "FAILED: {}\n", o.cell.id());
                    }
                }
            }
            let _ = writeln!(
                out,
                "soak {workload} level {level}, {epochs} epoch(s) on {} worker(s): {}",
                cfg.jobs,
                outcome.summary()
            );
            if violations > 0 || failed > 0 {
                let _ = writeln!(
                    out,
                    "SOAK UNHEALTHY: {violations} invariant violation(s), {failed} failed cell(s)"
                );
            }
            if let Some(path) = out_path {
                std::fs::write(&path, outcome.aggregate_json() + "\n")
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                let _ = writeln!(out, "wrote aggregate to {}", path.display());
            }
        }
        Command::Bench {
            smoke,
            out: out_path,
            baseline,
        } => {
            // Read the baseline up front so a bad path fails before the
            // (expensive) suite run.
            let base = baseline
                .map(|path| {
                    std::fs::read_to_string(&path)
                        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))
                })
                .transpose()?;
            let result = run_suite(smoke);
            let json = match base {
                Some(base) => compare_json(&result, &base)?,
                None => result.to_json(),
            };
            match out_path {
                Some(path) => {
                    std::fs::write(&path, json + "\n")
                        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                    out.push_str(&result.render_table());
                    let _ = writeln!(out, "wrote benchmark JSON to {}", path.display());
                }
                // No --out: machine-readable document on stdout.
                None => {
                    out.push_str(&json);
                    out.push('\n');
                }
            }
        }
        Command::Load {
            workload,
            error_rate,
            iops,
            arrival,
            tenants,
            admission,
            slo_us,
            requests,
            smoke,
            capacity,
            lo,
            hi,
            out: out_path,
            trace_out,
            trace_filter,
            seed,
        } => {
            let p = paper_workload(&workload).ok_or_else(|| unknown(&workload))?;
            let mut scale = if smoke {
                ExperimentScale::smoke()
            } else {
                ExperimentScale::from_env()
            };
            if let Some(r) = requests {
                scale.requests = r;
            }
            let arrival = ArrivalSpec::parse(&arrival)?;
            let admission = AdmissionPolicy::parse(&admission)?;
            let slo_ns = slo_us * 1_000;
            let nominal = nominal_iops(&p.spec);
            let systems = [
                SystemUnderTest::Baseline,
                SystemUnderTest::Ida { error_rate },
            ];
            let obs = ObsOptions {
                trace_out,
                trace_filter: trace_filter.or_else(|| std::env::var("IDA_TRACE_FILTER").ok()),
                ..ObsOptions::default()
            };
            let json = if capacity {
                let lo = lo.unwrap_or((nominal / 4).max(1));
                let hi = hi.unwrap_or(nominal * 4).max(lo);
                let _ = writeln!(
                    out,
                    "capacity search on {workload}: bracket [{lo}, {hi}] IOPS, \
                     p99 read SLO {slo_us} us, {} arrivals:",
                    arrival.label()
                );
                let mut doc = JsonObj::new()
                    .str("workload", &workload)
                    .u64("nominal_iops", nominal)
                    .u64("slo_p99_ns", slo_ns)
                    .u64("lo", lo)
                    .u64("hi", hi);
                for system in systems {
                    let r = run_capacity(
                        &p,
                        system,
                        arrival,
                        &scale,
                        slo_ns,
                        lo,
                        hi,
                        CAPACITY_MAX_ITERS,
                        seed,
                    )
                    .map_err(|e| e.to_string())?;
                    let _ = writeln!(
                        out,
                        "  {:9} max sustainable {:6} IOPS  ({} probes)",
                        system.label(),
                        r.max_iops,
                        r.probes.len()
                    );
                    doc = doc.raw(&system.label(), &r.to_json());
                }
                doc.finish()
            } else {
                let offered = iops.unwrap_or(nominal).max(1);
                let _ = writeln!(
                    out,
                    "workload {workload} at {offered} offered IOPS (nominal {nominal}), \
                     {} arrivals, {tenants} tenant(s), {} admission:",
                    arrival.label(),
                    admission.label()
                );
                let mut doc = JsonObj::new()
                    .str("workload", &workload)
                    .u64("offered_iops", offered)
                    .u64("nominal_iops", nominal);
                for system in systems {
                    let spec = LoadSpec {
                        system,
                        arrival,
                        offered_iops: offered,
                        tenants,
                        admission,
                        slo_p99_ns: slo_ns,
                        seed,
                    };
                    let run_obs = obs.suffixed(&system.label());
                    let run =
                        run_load_obs(&p, &spec, &scale, &run_obs).map_err(|e| e.to_string())?;
                    let _ = writeln!(
                        out,
                        "  {:9} e2e read p99 {:9.1} us  achieved {:8.1} IOPS  \
                         shed {:4}  SLO({} us): {}",
                        system.label(),
                        run.read_p99_ns() as f64 / 1e3,
                        run.achieved_iops,
                        run.shed(),
                        slo_us,
                        if run.slo_met() { "met" } else { "MISSED" }
                    );
                    if let Some(path) = &run_obs.trace_out {
                        let _ =
                            writeln!(out, "wrote {} trace to {}", system.label(), path.display());
                    }
                    doc = doc.raw(&system.label(), &load_metrics_json(&run));
                }
                doc.finish()
            };
            if let Some(path) = out_path {
                std::fs::write(&path, json + "\n")
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                let _ = writeln!(out, "wrote load JSON to {}", path.display());
            }
        }
        Command::Replay {
            msr,
            error_rate,
            closed,
            smoke,
            trace_out,
            metrics_json,
            progress,
        } => {
            let scale = if smoke {
                ExperimentScale::smoke()
            } else {
                ExperimentScale::from_env()
            };
            let file = std::fs::File::open(&msr)
                .map_err(|e| format!("cannot read {}: {e}", msr.display()))?;
            let trace = ida_workloads::msr::parse_msr(
                std::io::BufReader::new(file),
                scale.geometry.page_size_bytes,
            )
            .map_err(|e| format!("cannot parse {}: {e}", msr.display()))?;
            if trace.records.is_empty() {
                return Err(format!("{} holds no records", msr.display()));
            }
            let mode = match closed {
                None => ReplayMode::OpenLoop,
                Some(depth) => ReplayMode::ClosedLoop(depth),
            };
            let obs = ObsOptions {
                trace_out,
                metrics_json,
                progress,
                ..ObsOptions::default()
            };
            let _ = writeln!(
                out,
                "replaying {} ({} records, {})",
                msr.display(),
                trace.records.len(),
                match mode {
                    ReplayMode::OpenLoop => "open loop".to_string(),
                    ReplayMode::ClosedLoop(d) => format!("closed loop, depth {d}"),
                }
            );
            let mut reports = Vec::new();
            for system in [
                SystemUnderTest::Baseline,
                SystemUnderTest::Ida { error_rate },
            ] {
                let run_obs = obs.suffixed(&system.label());
                let report = replay_trace(&trace, system, &scale, mode, &run_obs)
                    .map_err(|e| format!("replay failed: {e}"))?;
                let _ = writeln!(
                    out,
                    "  {:9} mean read response {:9.1} us  (p99 {:9.1} us, {:.1} MB/s)",
                    system.label(),
                    report.reads.mean_us(),
                    report.reads.percentile(99.0) as f64 / 1e3,
                    report.throughput_mbps()
                );
                reports.push(report);
            }
            let ida = reports.pop().expect("two runs");
            let base = reports.pop().expect("two runs");
            let norm = normalized_read_response(&ida, &base);
            let _ = writeln!(
                out,
                "  normalized: {norm:.3}  (read response improved by {:.1}%)",
                (1.0 - norm) * 100.0
            );
        }
        Command::Trace {
            file,
            validate,
            top,
            diff,
        } => {
            let text = match (file, diff) {
                (Some(path), None) => {
                    if validate {
                        ida_bench::analyze::validate(&path)?
                    } else {
                        ida_bench::analyze::report(&path, top)?
                    }
                }
                (None, Some((a, b))) => ida_bench::analyze::diff(&a, &b)?,
                // parse_args guarantees exactly one mode.
                _ => unreachable!("trace mode validated at parse time"),
            };
            out.push_str(&text);
        }
    }
    Ok(out)
}

fn unknown(workload: &str) -> String {
    format!("unknown workload {workload} (try `idasim list`)")
}

/// Usage text.
pub const USAGE: &str = "\
idasim — IDA-coding SSD simulator driver

USAGE:
  idasim list
  idasim describe <workload>
  idasim compare <workload> [--error-rate 0.2] [--requests 6000]
                 [--trace-out <path.jsonl>] [--metrics-json <path.json>]
                 [--trace-filter <class,...>] [--progress]
  idasim sweep <grid> [--jobs N] [--journal <path.jsonl>]
               [--out <path.json>] [--smoke] [--requests N] [--progress]
               [--warm-cache]
  idasim serve <grid> [--listen 127.0.0.1:7141] [--journal <path.jsonl>]
               [--out <path.json>] [--smoke] [--requests N]
  idasim worker [--connect 127.0.0.1:7141] [--jobs N]
  idasim snapshot save <file.snap> --workload <name> [--system Baseline]
                  [--smoke] [--requests N]
  idasim snapshot restore|inspect <file.snap> [--requests N]
  idasim soak <workload> [--level off|low|mid|high] [--epochs N]
              [--error-rate 0.2] [--jobs N] [--journal <path.jsonl>]
              [--out <path.json>] [--smoke] [--requests N] [--progress]
  idasim bench [--smoke] [--out <path.json>] [--baseline <path.json>]
  idasim load <workload> [--iops N] [--arrival poisson|constant|onoff]
              [--tenants N] [--admission shed|delay] [--slo-us 2000]
              [--capacity] [--lo N] [--hi N] [--error-rate 0.2]
              [--requests N] [--smoke] [--seed N] [--out <path.json>]
              [--trace-out <path.jsonl>] [--trace-filter <class,...>]
  idasim replay --msr <trace.csv> [--closed <depth>] [--error-rate 0.2]
                [--smoke] [--trace-out <path.jsonl>]
                [--metrics-json <path.json>] [--progress]
  idasim trace <trace.jsonl> [--validate] [--top K]
  idasim trace --diff <baseline.jsonl> <other.jsonl>

Observability (compare): --trace-out writes the run's event stream as
JSONL and --metrics-json writes the full report (latency histograms,
counters, gauges) as JSON; both get a per-system suffix, e.g.
trace.jsonl -> trace.Baseline.jsonl. --trace-filter keeps only the
listed event classes (host, ftl, gc, refresh, fault, span; also the
IDA_TRACE_FILTER variable). --progress reports on stderr.

Trace: analyzes a JSONL trace written by --trace-out. The default
report validates the stream (schema, timestamp monotonicity, span
conservation), then prints the per-phase latency attribution
waterfall, the top-K slowest reads with their phase breakdowns, and
per-die / per-channel utilization rebuilt from flash events.
--validate stops after validation. --diff compares two traces
phase-by-phase (totals, means, deltas) — e.g. a Baseline vs IDA-E20
pair from `idasim compare --trace-out`.

Soak: drives one workload through a whole accelerated device lifetime
(0 → rated P/E cycles across --epochs epochs, epoch 0 fresh) on both
Baseline and IDA-E<pct>, with the device-aging model armed at --level:
P/E-wear/read-disturb/retention RBER, the multi-step read-retry
ladder, background patrol scrub, and hot/cold wear-leveling. Between
epochs the clock jumps one patrol period (retention ages, scrub falls
due) and uniform background wear advances. After every epoch the
harness checks the FTL safety invariants (mapping consistency, no
acked-data loss, victim-index agreement, counter monotonicity, span
conservation) and prints a per-epoch waterfall; all epochs clean
means the soak passed. Output is byte-identical for any --jobs. The
`lifetime` sweep grid runs the full fresh-vs-aged table:
  idasim sweep lifetime --smoke

Sweep: runs a whole experiment grid (fig8, fig9, fig10, fig11,
faults, load, lifetime) on the parallel orchestration engine. --jobs N (or IDA_JOBS)
sets the worker count, default all cores; aggregated output is
byte-identical for any worker count. --journal appends one checkpoint
record per finished cell; re-invoking with the same journal resumes,
re-running only incomplete cells. With --out the aggregate JSON goes
to the file and the figure table to stdout; without it the JSON goes
to stdout. The faults grid injects program/erase failures, transient
read faults and power losses (levels off/low/mid/high) and reports
IDA's read benefit alongside the recovery counters; fig11 compares
the early and late (retry-heavy) lifetime phases. --warm-cache runs
each unique warm-up once and forks every sibling cell from its
snapshot (single-flight across workers, spilled next to --journal for
resume); it is output-invisible — the aggregate stays byte-identical
to a cache-off run — and prints a hit/miss line on stderr.

Serve/worker: the distributed sweep fabric. `serve` coordinates a grid
without executing any cell itself: it owns the queue, the --journal,
and the aggregation, and hands cells to `idasim worker` processes over
TCP (frame-sealed messages, protocol-version handshake). Workers claim
cells one at a time; a worker killed mid-cell has its cell requeued
(bounded by the same retry budget local sweeps use), and workers may
join or leave at any point. The aggregate is byte-identical to
`idasim sweep <grid> --jobs 1` on the same scale, whatever the worker
population did. Warm-up snapshots rendezvous through the coordinator,
so each unique warm-up runs once per fabric, not once per worker.
Resuming a journaled serve re-runs only incomplete cells — a fully
journaled grid returns without waiting for any worker. Two-worker
loopback example:
  idasim serve faults --smoke --journal run/j.jsonl --out run/agg.json &
  idasim worker --jobs 1 & idasim worker --jobs 1 & wait

Snapshot: captures and replays framed warm-state images. `save` warms
one (workload, system) pair exactly as the sweep engine would (same
warm seed, same cache key — printed on save) and writes the framed
snapshot; `inspect` prints the frame header and device state without
running anything; `restore` forks a simulator from the file and
replays the measured trace on it, which must match a live warm-up
byte for byte.

Load: drives one workload through the multi-tenant host frontend at a
target offered rate (default the workload's nominal rate) on both
Baseline and IDA-E<pct>, reporting end-to-end read p99 (host queueing
included), achieved IOPS, and shed/delayed admission counters against
the --slo-us p99 target. --tenants deals the trace across N weighted
streams under deficit-round-robin dispatch; --admission picks what a
full queue does (shed drops, delay back-pressures). --capacity
bisects offered rate over [--lo, --hi] for the max sustainable IOPS
at the SLO instead; same seed gives byte-identical results. The
`load` sweep grid runs the full hockey-stick table:
  idasim sweep load --smoke

Replay: imports an MSR Cambridge CSV (Timestamp,Hostname,DiskNumber,
Type,Offset,Size,ResponseTime; http://iotta.snia.org/traces/388),
folds it onto the simulated device, and replays it on both systems —
open loop with the trace's own arrival times, or closed loop at
--closed queue depth. A malformed or unsorted trace is reported as an
error, never a panic.

Bench: runs the fixed-seed hot-path benchmark suite (event-queue
push/pop, FTL write/GC/refresh loop, one fig8 cell end-to-end) and
emits a JSON document whose per-bench operation counts are
byte-identical across runs (wall-clock and derived rates vary).
--smoke shrinks every bench for CI. --baseline embeds a previously
captured suite (or comparison) JSON and adds per-bench speedups; the
committed BENCH_*.json trajectory files are such comparisons.

Experiment binaries reproducing each paper table/figure live in the
ida-bench crate, e.g.:
  cargo run --release -p ida-bench --bin fig8_response_time
(fig8/fig9/fig10 binaries honor IDA_JOBS and IDA_JOURNAL too.)
";

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_help_and_list() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&s(&["--help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&s(&["list"])).unwrap(), Command::List);
    }

    #[test]
    fn parses_compare_options() {
        let cmd = parse_args(&s(&[
            "compare",
            "proj_1",
            "--error-rate",
            "0.5",
            "--requests",
            "1000",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Compare {
                workload: "proj_1".into(),
                error_rate: 0.5,
                requests: 1000,
                trace_out: None,
                metrics_json: None,
                trace_filter: None,
                progress: false,
            }
        );
    }

    #[test]
    fn parses_observability_flags() {
        let cmd = parse_args(&s(&[
            "compare",
            "hm_1",
            "--trace-out",
            "out/trace.jsonl",
            "--metrics-json",
            "out/metrics.json",
            "--progress",
        ]))
        .unwrap();
        match cmd {
            Command::Compare {
                trace_out,
                metrics_json,
                progress,
                ..
            } => {
                assert_eq!(trace_out, Some(PathBuf::from("out/trace.jsonl")));
                assert_eq!(metrics_json, Some(PathBuf::from("out/metrics.json")));
                assert!(progress);
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse_args(&s(&["compare", "hm_1", "--trace-out"])).is_err());
    }

    #[test]
    fn parses_trace_filter_and_rejects_unknown_classes() {
        let cmd = parse_args(&s(&["compare", "hm_1", "--trace-filter", "host,span"])).unwrap();
        match cmd {
            Command::Compare { trace_filter, .. } => {
                assert_eq!(trace_filter.as_deref(), Some("host,span"));
            }
            other => panic!("wrong command: {other:?}"),
        }
        let err = parse_args(&s(&["compare", "hm_1", "--trace-filter", "host,bogus"])).unwrap_err();
        assert!(
            err.contains("unknown trace class") && err.contains("bogus"),
            "unhelpful error: {err}"
        );
        assert!(parse_args(&s(&["compare", "hm_1", "--trace-filter"])).is_err());
    }

    #[test]
    fn parses_trace_command_modes() {
        assert_eq!(
            parse_args(&s(&["trace", "t.jsonl", "--validate", "--top", "3"])).unwrap(),
            Command::Trace {
                file: Some(PathBuf::from("t.jsonl")),
                validate: true,
                top: 3,
                diff: None,
            }
        );
        assert_eq!(
            parse_args(&s(&["trace", "--diff", "a.jsonl", "b.jsonl"])).unwrap(),
            Command::Trace {
                file: None,
                validate: false,
                top: 5,
                diff: Some((PathBuf::from("a.jsonl"), PathBuf::from("b.jsonl"))),
            }
        );
        // Exactly one of <file> / --diff.
        assert!(parse_args(&s(&["trace"])).is_err());
        assert!(parse_args(&s(&["trace", "t.jsonl", "--diff", "a", "b"])).is_err());
        assert!(parse_args(&s(&["trace", "--diff", "a.jsonl"])).is_err());
        assert!(parse_args(&s(&["trace", "t.jsonl", "--bogus"])).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&s(&["describe"])).is_err());
        assert!(parse_args(&s(&["frobnicate"])).is_err());
        assert!(parse_args(&s(&["compare", "proj_1", "--error-rate", "2.0"])).is_err());
        assert!(parse_args(&s(&["compare", "proj_1", "--bogus"])).is_err());
    }

    #[test]
    fn parses_sweep_options() {
        let cmd = parse_args(&s(&[
            "sweep",
            "fig8",
            "--jobs",
            "4",
            "--journal",
            "results/fig8.journal.jsonl",
            "--out",
            "results/fig8.json",
            "--smoke",
            "--progress",
            "--warm-cache",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Sweep {
                grid: "fig8".into(),
                jobs: Some(4),
                journal: Some(PathBuf::from("results/fig8.journal.jsonl")),
                out: Some(PathBuf::from("results/fig8.json")),
                smoke: true,
                requests: None,
                progress: true,
                warm_cache: true,
            }
        );
        let defaults = parse_args(&s(&["sweep", "fig9"])).unwrap();
        assert_eq!(
            defaults,
            Command::Sweep {
                grid: "fig9".into(),
                jobs: None,
                journal: None,
                out: None,
                smoke: false,
                requests: None,
                progress: false,
                warm_cache: false,
            }
        );
    }

    #[test]
    fn parses_snapshot_options() {
        let cmd = parse_args(&s(&[
            "snapshot",
            "save",
            "warm.snap",
            "--workload",
            "proj_3",
            "--system",
            "IDA-E20",
            "--smoke",
            "--requests",
            "500",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Snapshot {
                action: "save".into(),
                path: PathBuf::from("warm.snap"),
                workload: Some("proj_3".into()),
                system: "IDA-E20".into(),
                smoke: true,
                requests: Some(500),
            }
        );
        let inspect = parse_args(&s(&["snapshot", "inspect", "warm.snap"])).unwrap();
        assert_eq!(
            inspect,
            Command::Snapshot {
                action: "inspect".into(),
                path: PathBuf::from("warm.snap"),
                workload: None,
                system: "Baseline".into(),
                smoke: false,
                requests: None,
            }
        );
        // save without a workload, a bogus action, and a missing path all
        // fail at parse time.
        assert!(parse_args(&s(&["snapshot", "save", "warm.snap"])).is_err());
        assert!(parse_args(&s(&["snapshot", "diff", "warm.snap"])).is_err());
        assert!(parse_args(&s(&["snapshot", "inspect"])).is_err());
        assert!(parse_args(&s(&["snapshot", "inspect", "--smoke"])).is_err());
    }

    #[test]
    fn snapshot_save_restore_inspect_round_trip() {
        let dir = std::env::temp_dir().join(format!("ida-cli-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("warm.snap");

        let saved = run(Command::Snapshot {
            action: "save".into(),
            path: path.clone(),
            workload: Some("proj_3".into()),
            system: "Baseline".into(),
            smoke: true,
            requests: Some(300),
        })
        .unwrap();
        assert!(saved.contains("cache key"), "no cache key in: {saved}");
        assert!(path.exists());

        let inspected = run(Command::Snapshot {
            action: "inspect".into(),
            path: path.clone(),
            workload: None,
            system: "Baseline".into(),
            smoke: true,
            requests: None,
        })
        .unwrap();
        assert!(inspected.contains("proj_3/Baseline"), "{inspected}");
        assert!(inspected.contains("300 measured requests"), "{inspected}");

        // Restoring runs the measured trace; twice gives identical output
        // (the file is read-only state, so each restore forks fresh).
        let r1 = run(Command::Snapshot {
            action: "restore".into(),
            path: path.clone(),
            workload: None,
            system: "Baseline".into(),
            smoke: true,
            requests: None,
        })
        .unwrap();
        let r2 = run(Command::Snapshot {
            action: "restore".into(),
            path: path.clone(),
            workload: None,
            system: "Baseline".into(),
            smoke: true,
            requests: None,
        })
        .unwrap();
        assert_eq!(r1, r2);
        assert!(r1.contains("replayed 300 requests"), "{r1}");

        // A truncated file is rejected with a real error, not a panic.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = run(Command::Snapshot {
            action: "inspect".into(),
            path,
            workload: None,
            system: "Baseline".into(),
            smoke: true,
            requests: None,
        })
        .unwrap_err();
        assert!(
            err.contains("not a valid snapshot"),
            "unhelpful error: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_jobs_validation_rejects_zero_and_garbage() {
        let zero = parse_args(&s(&["sweep", "fig8", "--jobs", "0"])).unwrap_err();
        assert!(zero.contains("at least 1"), "unhelpful error: {zero}");
        let word = parse_args(&s(&["sweep", "fig8", "--jobs", "four"])).unwrap_err();
        assert!(word.contains("positive integer"), "unhelpful error: {word}");
        assert!(parse_args(&s(&["sweep", "fig8", "--jobs", "-1"])).is_err());
        assert!(parse_args(&s(&["sweep", "fig8", "--jobs", "2.5"])).is_err());
        assert!(parse_args(&s(&["sweep", "fig8", "--jobs"])).is_err());
        // The same validator guards IDA_JOBS (SweepConfig::from_env).
        assert!(ida_sweep::pool::parse_jobs("0").is_err());
        assert!(ida_sweep::pool::parse_jobs("8").is_ok());
    }

    #[test]
    fn sweep_needs_a_grid_name() {
        assert!(parse_args(&s(&["sweep"])).is_err());
        assert!(parse_args(&s(&["sweep", "--jobs", "2"])).is_err());
        assert!(parse_args(&s(&["sweep", "fig8", "--bogus"])).is_err());
        let err = run(Command::Sweep {
            grid: "fig99".into(),
            jobs: Some(1),
            journal: None,
            out: None,
            smoke: true,
            requests: None,
            progress: false,
            warm_cache: false,
        })
        .unwrap_err();
        assert!(err.contains("unknown sweep grid"), "unhelpful error: {err}");
    }

    #[test]
    fn parses_bench_options() {
        let cmd = parse_args(&s(&[
            "bench",
            "--smoke",
            "--out",
            "BENCH_PR4.json",
            "--baseline",
            "old.json",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Bench {
                smoke: true,
                out: Some(PathBuf::from("BENCH_PR4.json")),
                baseline: Some(PathBuf::from("old.json")),
            }
        );
        assert_eq!(
            parse_args(&s(&["bench"])).unwrap(),
            Command::Bench {
                smoke: false,
                out: None,
                baseline: None,
            }
        );
        assert!(parse_args(&s(&["bench", "--out"])).is_err());
        assert!(parse_args(&s(&["bench", "--bogus"])).is_err());
    }

    #[test]
    fn bench_rejects_missing_baseline_file() {
        let err = run(Command::Bench {
            smoke: true,
            out: None,
            baseline: Some(PathBuf::from("/nonexistent/baseline.json")),
        })
        .unwrap_err();
        assert!(err.contains("cannot read baseline"), "unhelpful: {err}");
    }

    #[test]
    fn list_mentions_all_workloads() {
        let out = run(Command::List).unwrap();
        for name in ["proj_1", "usr_2", "stg_1"] {
            assert!(out.contains(name), "missing {name}");
        }
    }

    #[test]
    fn describe_unknown_workload_errors() {
        assert!(run(Command::Describe {
            workload: "nope".into()
        })
        .is_err());
    }

    #[test]
    fn describe_prints_characteristics() {
        let out = run(Command::Describe {
            workload: "hm_1".into(),
        })
        .unwrap();
        assert!(out.contains("read ratio"));
        assert!(out.contains("footprint"));
    }

    #[test]
    fn load_parses_with_defaults_and_flags() {
        let cmd = parse_args(&s(&["load", "proj_3"])).unwrap();
        match cmd {
            Command::Load {
                workload,
                error_rate,
                iops,
                arrival,
                tenants,
                admission,
                slo_us,
                capacity,
                seed,
                ..
            } => {
                assert_eq!(workload, "proj_3");
                assert!((error_rate - 0.2).abs() < 1e-9);
                assert_eq!(iops, None);
                assert_eq!(arrival, "poisson");
                assert_eq!(tenants, 1);
                assert_eq!(admission, "shed");
                assert_eq!(slo_us, 2_000);
                assert!(!capacity);
                assert_eq!(seed, 0);
            }
            other => panic!("wrong command: {other:?}"),
        }
        let cmd = parse_args(&s(&[
            "load",
            "hm_1",
            "--iops",
            "5000",
            "--arrival",
            "onoff",
            "--tenants",
            "3",
            "--admission",
            "delay",
            "--slo-us",
            "1500",
            "--capacity",
            "--lo",
            "100",
            "--hi",
            "9000",
            "--smoke",
            "--seed",
            "7",
            "--out",
            "load.json",
        ]))
        .unwrap();
        match cmd {
            Command::Load {
                iops,
                arrival,
                tenants,
                admission,
                slo_us,
                capacity,
                lo,
                hi,
                smoke,
                seed,
                out,
                ..
            } => {
                assert_eq!(iops, Some(5_000));
                assert_eq!(arrival, "onoff");
                assert_eq!(tenants, 3);
                assert_eq!(admission, "delay");
                assert_eq!(slo_us, 1_500);
                assert!(capacity && smoke);
                assert_eq!((lo, hi), (Some(100), Some(9_000)));
                assert_eq!(seed, 7);
                assert_eq!(out, Some(PathBuf::from("load.json")));
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn load_rejects_bad_values_at_parse_time() {
        assert!(parse_args(&s(&["load"])).is_err());
        assert!(parse_args(&s(&["load", "proj_3", "--arrival", "chaotic"])).is_err());
        assert!(parse_args(&s(&["load", "proj_3", "--admission", "punt"])).is_err());
        assert!(parse_args(&s(&["load", "proj_3", "--tenants", "0"])).is_err());
        assert!(parse_args(&s(&["load", "proj_3", "--slo-us", "0"])).is_err());
        assert!(parse_args(&s(&["load", "proj_3", "--error-rate", "1.5"])).is_err());
        assert!(parse_args(&s(&["load", "proj_3", "--lo", "500", "--hi", "100"])).is_err());
        assert!(parse_args(&s(&["load", "proj_3", "--bogus"])).is_err());
    }

    #[test]
    fn replay_parses_and_requires_the_msr_path() {
        let cmd = parse_args(&s(&["replay", "--msr", "hm_0.csv", "--closed", "32"])).unwrap();
        assert_eq!(
            cmd,
            Command::Replay {
                msr: PathBuf::from("hm_0.csv"),
                error_rate: 0.2,
                closed: Some(32),
                smoke: false,
                trace_out: None,
                metrics_json: None,
                progress: false,
            }
        );
        assert!(parse_args(&s(&["replay"])).is_err());
        assert!(parse_args(&s(&["replay", "--msr", "t.csv", "--closed", "0"])).is_err());
        assert!(parse_args(&s(&["replay", "--closed", "8"])).is_err());
        assert!(parse_args(&s(&["replay", "--msr", "t.csv", "--bogus"])).is_err());
    }

    #[test]
    fn replay_reports_missing_files_as_errors() {
        let err = run(Command::Replay {
            msr: PathBuf::from("/nonexistent/trace.csv"),
            error_rate: 0.2,
            closed: None,
            smoke: true,
            trace_out: None,
            metrics_json: None,
            progress: false,
        })
        .unwrap_err();
        assert!(err.contains("cannot read"), "unhelpful: {err}");
    }

    #[test]
    fn usage_covers_the_new_subcommands() {
        assert!(USAGE.contains("idasim load"));
        assert!(USAGE.contains("idasim replay --msr"));
        assert!(USAGE.contains("--capacity"));
        assert!(USAGE.contains("sweep load"));
        assert!(USAGE.contains("idasim soak"));
        assert!(USAGE.contains("sweep lifetime"));
        assert!(USAGE.contains("idasim serve"));
        assert!(USAGE.contains("idasim worker"));
        assert!(USAGE.contains("--connect"));
    }

    #[test]
    fn serve_and_worker_parse_with_defaults_and_flags() {
        assert_eq!(
            parse_args(&s(&["serve", "faults", "--smoke"])).unwrap(),
            Command::Serve {
                grid: "faults".into(),
                listen: DEFAULT_FABRIC_ADDR.into(),
                journal: None,
                out: None,
                smoke: true,
                requests: None,
            }
        );
        assert_eq!(
            parse_args(&s(&[
                "serve",
                "fig10",
                "--listen",
                "0.0.0.0:9000",
                "--journal",
                "j.jsonl",
                "--out",
                "agg.json",
                "--requests",
                "800",
            ]))
            .unwrap(),
            Command::Serve {
                grid: "fig10".into(),
                listen: "0.0.0.0:9000".into(),
                journal: Some(PathBuf::from("j.jsonl")),
                out: Some(PathBuf::from("agg.json")),
                smoke: false,
                requests: Some(800),
            }
        );
        assert_eq!(
            parse_args(&s(&["worker"])).unwrap(),
            Command::Worker {
                connect: DEFAULT_FABRIC_ADDR.into(),
                jobs: None,
            }
        );
        assert_eq!(
            parse_args(&s(&["worker", "--connect", "10.0.0.2:7141", "--jobs", "2"])).unwrap(),
            Command::Worker {
                connect: "10.0.0.2:7141".into(),
                jobs: Some(2),
            }
        );
        // serve needs a grid; neither takes the other's flags.
        assert!(parse_args(&s(&["serve"])).unwrap_err().contains("grid"));
        assert!(parse_args(&s(&["serve", "faults", "--jobs", "2"]))
            .unwrap_err()
            .contains("unknown option"));
        assert!(parse_args(&s(&["worker", "--listen", "x"]))
            .unwrap_err()
            .contains("unknown option"));
        assert!(parse_args(&s(&["worker", "--connect"]))
            .unwrap_err()
            .contains("--connect needs an address"));
    }

    #[test]
    fn soak_parses_with_defaults_and_flags() {
        assert_eq!(
            parse_args(&s(&["soak", "hm_1"])).unwrap(),
            Command::Soak {
                workload: "hm_1".into(),
                level: "mid".into(),
                error_rate: 0.2,
                epochs: ida_bench::soak::SOAK_EPOCHS,
                jobs: None,
                journal: None,
                out: None,
                smoke: false,
                requests: None,
                progress: false,
            }
        );
        let cmd = parse_args(&s(&[
            "soak",
            "proj_3",
            "--level",
            "high",
            "--epochs",
            "4",
            "--error-rate",
            "0.3",
            "--jobs",
            "2",
            "--journal",
            "soak.journal.jsonl",
            "--out",
            "soak.json",
            "--smoke",
            "--requests",
            "800",
            "--progress",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Soak {
                workload: "proj_3".into(),
                level: "high".into(),
                error_rate: 0.3,
                epochs: 4,
                jobs: Some(2),
                journal: Some(PathBuf::from("soak.journal.jsonl")),
                out: Some(PathBuf::from("soak.json")),
                smoke: true,
                requests: Some(800),
                progress: true,
            }
        );
    }

    #[test]
    fn soak_rejects_bad_input_eagerly() {
        assert!(parse_args(&s(&["soak"])).is_err());
        assert!(parse_args(&s(&["soak", "--level", "mid"])).is_err());
        let err = parse_args(&s(&["soak", "hm_1", "--level", "molten"])).unwrap_err();
        assert!(err.contains("unknown aging level"), "unhelpful: {err}");
        assert!(err.contains("off, low, mid, high"), "unhelpful: {err}");
        assert!(parse_args(&s(&["soak", "hm_1", "--epochs", "0"])).is_err());
        assert!(parse_args(&s(&["soak", "hm_1", "--error-rate", "1.5"])).is_err());
        assert!(parse_args(&s(&["soak", "hm_1", "--bogus"])).is_err());
    }

    #[test]
    fn soak_smoke_runs_both_systems_with_clean_invariants() {
        let out = run(Command::Soak {
            workload: "hm_1".into(),
            level: "high".into(),
            error_rate: 0.2,
            epochs: 2,
            jobs: Some(1),
            journal: None,
            out: None,
            smoke: true,
            requests: Some(600),
            progress: false,
        })
        .unwrap();
        assert!(out.contains("Baseline"), "missing Baseline table: {out}");
        assert!(out.contains("IDA-E20"), "missing IDA table: {out}");
        assert!(
            out.contains("invariants: all epochs clean"),
            "invariants not clean: {out}"
        );
        assert!(!out.contains("SOAK UNHEALTHY"), "unhealthy soak: {out}");
        // Unknown workloads fail before any soaking.
        assert!(run(Command::Soak {
            workload: "nope".into(),
            level: "mid".into(),
            error_rate: 0.2,
            epochs: 2,
            jobs: Some(1),
            journal: None,
            out: None,
            smoke: true,
            requests: Some(100),
            progress: false,
        })
        .is_err());
    }
}
