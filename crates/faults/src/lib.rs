//! Deterministic fault injection for the IDA flash stack.
//!
//! The paper folds IDA's voltage adjustment into data refresh precisely
//! because in-place reprogramming is risky; this crate supplies the
//! *unhappy* path the rest of the workspace recovers from: program and
//! erase failures (grown bad blocks), transient read faults, and
//! power-loss events at chosen persistent-operation counts.
//!
//! Everything is driven by a single seeded [`Rng64`] stream owned by the
//! [`FaultInjector`], so a simulation with faults enabled is exactly as
//! deterministic as one without: same seed, same fault schedule, on every
//! platform and for any sweep worker count. Draws are guarded — a zero
//! probability consumes nothing from the stream — so arming a plan with
//! all rates at zero is byte-identical to not arming one at all.

use ida_obs::rng::Rng64;

/// The fault plan: rates and schedules for every injected fault class.
///
/// Probabilities are per *attempt* (one program, one erase, one host
/// read). Power-loss events fire at absolute persistent-operation indices
/// counted from the moment the plan is armed, which pins crashes to exact,
/// reproducible points in the operation stream rather than wall-clock
/// times.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability that a single program attempt fails (page marked bad,
    /// write redirected to a fresh page).
    pub program_fail_prob: f64,
    /// Probability that a block erase fails (block retired to the bad list).
    pub erase_fail_prob: f64,
    /// Probability that a host read needs at least one transient retry.
    pub transient_read_prob: f64,
    /// Cap on transient retries per read (bounded retry-with-backoff).
    pub transient_max_retries: u32,
    /// Controller backoff charged per transient retry, in nanoseconds.
    pub transient_backoff_ns: u64,
    /// Persistent-operation indices (post-arming) at which power is lost.
    /// Must be sorted ascending; each index fires at most once.
    pub power_loss_ops: Vec<u64>,
    /// Failed-program marks tolerated per erase cycle before the block is
    /// retired as grown-bad at its next erase (0 disables retirement).
    pub bad_block_threshold: u32,
    /// Seed for the injector's private RNG stream.
    pub seed: u64,
}

ida_snap::snap_struct!(FaultConfig {
    program_fail_prob,
    erase_fail_prob,
    transient_read_prob,
    transient_max_retries,
    transient_backoff_ns,
    power_loss_ops,
    bad_block_threshold,
    seed,
});

impl FaultConfig {
    /// A plan that injects nothing (the default for every simulation).
    pub fn none() -> Self {
        FaultConfig {
            program_fail_prob: 0.0,
            erase_fail_prob: 0.0,
            transient_read_prob: 0.0,
            transient_max_retries: 0,
            transient_backoff_ns: 0,
            power_loss_ops: Vec::new(),
            bad_block_threshold: 0,
            seed: 0,
        }
    }

    /// Whether any fault class can actually fire.
    pub fn is_active(&self) -> bool {
        self.program_fail_prob > 0.0
            || self.erase_fail_prob > 0.0
            || self.transient_read_prob > 0.0
            || !self.power_loss_ops.is_empty()
    }

    /// Named fault levels used by the `faults` sweep grid: `off`, `low`,
    /// `mid` and `high` (the last one also schedules power-loss events).
    /// Returns `None` for an unknown level name.
    pub fn preset(level: &str, seed: u64) -> Option<Self> {
        let mut cfg = FaultConfig {
            seed,
            ..FaultConfig::none()
        };
        match level {
            "off" => {}
            "low" => {
                cfg.program_fail_prob = 0.002;
                cfg.erase_fail_prob = 0.002;
                cfg.transient_read_prob = 0.01;
                cfg.transient_max_retries = 3;
                cfg.transient_backoff_ns = 5_000;
                cfg.bad_block_threshold = 2;
            }
            "mid" => {
                cfg.program_fail_prob = 0.01;
                cfg.erase_fail_prob = 0.01;
                cfg.transient_read_prob = 0.05;
                cfg.transient_max_retries = 3;
                cfg.transient_backoff_ns = 5_000;
                cfg.bad_block_threshold = 2;
            }
            "high" => {
                cfg.program_fail_prob = 0.03;
                cfg.erase_fail_prob = 0.03;
                cfg.transient_read_prob = 0.10;
                cfg.transient_max_retries = 5;
                cfg.transient_backoff_ns = 5_000;
                cfg.bad_block_threshold = 2;
                cfg.power_loss_ops = vec![500, 1_500, 4_000];
            }
            _ => return None,
        }
        Some(cfg)
    }

    /// The fault levels [`FaultConfig::preset`] understands, mildest first.
    pub const LEVELS: [&'static str; 4] = ["off", "low", "mid", "high"];
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// Nanoseconds in one simulated day (mirrors `ida_ftl::config::NS_PER_DAY`
/// without a dependency edge) — the retention term's time base.
pub const NS_PER_DAY: u64 = 86_400_000_000_000;

/// The device-aging reliability model: a pure, deterministic map from a
/// block's wear state to its raw bit error rate (RBER), plus the policy
/// knobs the read-retry ladder and the background scrub / wear-leveler
/// consume.
///
/// The RBER of a wordline is modeled as
///
/// ```text
/// rber = base_rber · (1 + wear_coeff · (pe/rated)²)      (P/E cycling)
///      + disturb_coeff · wl_reads                         (read disturb)
///      + retention_coeff · age_days · (1 + pe/rated)      (retention)
/// ```
///
/// — the three classic contributors, with retention loss accelerating on
/// worn cells. The function is pure (no RNG), so the same wear state maps
/// to the same RBER on every platform and for any sweep worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct AgingConfig {
    /// Rated P/E endurance of the device; the wear term is quadratic in
    /// `pe / rated_pe_cycles`.
    pub rated_pe_cycles: u32,
    /// Fresh-device RBER floor. Zero disables the whole model.
    pub base_rber: f64,
    /// Scale of the quadratic P/E-cycling term.
    pub wear_coeff: f64,
    /// RBER added per accumulated read of a wordline (read disturb).
    pub disturb_coeff: f64,
    /// RBER added per simulated day since the block closed (retention).
    pub retention_coeff: f64,
    /// Maps `rber × senses` to the per-attempt decode-failure probability
    /// of the read-retry ladder (each retry step halves it).
    pub ladder_gain: f64,
    /// Maximum extra read attempts before the read is declared
    /// ECC-uncorrectable and the page is relocated.
    pub ladder_depth: u32,
    /// Period between background patrol-scrub passes (0 disables scrub).
    pub scrub_period: u64,
    /// Blocks examined per patrol pass (bounds background work per wake).
    pub scrub_chunk: u32,
    /// Wordline read count at which the patrol relocates its valid pages.
    pub disturb_threshold: u32,
    /// Block age (ns since close) at which the patrol relocates it.
    pub retention_threshold: u64,
    /// Erase-count spread (max − min) above which the wear-leveler
    /// migrates cold data off the least-worn block.
    pub wear_spread_target: u32,
    /// Seed for the read-retry ladder's private RNG stream.
    pub seed: u64,
}

ida_snap::snap_struct!(AgingConfig {
    rated_pe_cycles,
    base_rber,
    wear_coeff,
    disturb_coeff,
    retention_coeff,
    ladder_gain,
    ladder_depth,
    scrub_period,
    scrub_chunk,
    disturb_threshold,
    retention_threshold,
    wear_spread_target,
    seed,
});

impl AgingConfig {
    /// A model that ages nothing (the default for every simulation).
    pub fn none() -> Self {
        AgingConfig {
            rated_pe_cycles: 3_000,
            base_rber: 0.0,
            wear_coeff: 0.0,
            disturb_coeff: 0.0,
            retention_coeff: 0.0,
            ladder_gain: 0.0,
            ladder_depth: 0,
            scrub_period: 0,
            scrub_chunk: 0,
            disturb_threshold: 0,
            retention_threshold: 0,
            wear_spread_target: 0,
            seed: 0,
        }
    }

    /// Whether the model contributes any RBER at all.
    pub fn is_active(&self) -> bool {
        self.base_rber > 0.0
    }

    /// The modeled RBER of a wordline with `pe` effective P/E cycles,
    /// `wl_reads` accumulated reads since its block's last erase, and
    /// `age_ns` nanoseconds since its block closed. Pure and deterministic.
    pub fn rber(&self, pe: u32, wl_reads: u32, age_ns: u64) -> f64 {
        if !self.is_active() {
            return 0.0;
        }
        let wear = pe as f64 / self.rated_pe_cycles.max(1) as f64;
        let days = age_ns as f64 / NS_PER_DAY as f64;
        self.base_rber * (1.0 + self.wear_coeff * wear * wear)
            + self.disturb_coeff * wl_reads as f64
            + self.retention_coeff * days * (1.0 + wear)
    }

    /// Named aging levels used by the `lifetime` grid and `idasim soak`:
    /// `off`, `low`, `mid` and `high`. Returns `None` for an unknown name.
    pub fn preset(level: &str, seed: u64) -> Option<Self> {
        let mut cfg = AgingConfig {
            seed,
            ..AgingConfig::none()
        };
        match level {
            "off" => {}
            "low" => {
                cfg.base_rber = 2e-5;
                cfg.wear_coeff = 12.0;
                cfg.disturb_coeff = 1e-8;
                cfg.retention_coeff = 4e-6;
                cfg.ladder_gain = 30.0;
                cfg.ladder_depth = 4;
                cfg.scrub_period = 40 * NS_PER_DAY;
                cfg.scrub_chunk = 4;
                cfg.disturb_threshold = 50_000;
                cfg.retention_threshold = 90 * NS_PER_DAY;
                cfg.wear_spread_target = 64;
            }
            "mid" => {
                cfg.base_rber = 5e-5;
                cfg.wear_coeff = 20.0;
                cfg.disturb_coeff = 5e-8;
                cfg.retention_coeff = 1e-5;
                cfg.ladder_gain = 40.0;
                cfg.ladder_depth = 5;
                cfg.scrub_period = 20 * NS_PER_DAY;
                cfg.scrub_chunk = 8;
                cfg.disturb_threshold = 20_000;
                cfg.retention_threshold = 45 * NS_PER_DAY;
                cfg.wear_spread_target = 32;
            }
            "high" => {
                cfg.base_rber = 2e-4;
                cfg.wear_coeff = 30.0;
                cfg.disturb_coeff = 2e-7;
                cfg.retention_coeff = 5e-5;
                cfg.ladder_gain = 60.0;
                cfg.ladder_depth = 6;
                cfg.scrub_period = 10 * NS_PER_DAY;
                cfg.scrub_chunk = 16;
                cfg.disturb_threshold = 5_000;
                cfg.retention_threshold = 20 * NS_PER_DAY;
                cfg.wear_spread_target = 16;
            }
            _ => return None,
        }
        Some(cfg)
    }

    /// The aging levels [`AgingConfig::preset`] understands, mildest first.
    pub const LEVELS: [&'static str; 4] = ["off", "low", "mid", "high"];
}

impl Default for AgingConfig {
    fn default() -> Self {
        AgingConfig::none()
    }
}

/// Outcome of one persistent operation under the armed plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistOutcome {
    /// The operation reached the medium.
    Committed,
    /// Power was lost *before* the operation committed; the device must
    /// run recovery before accepting further work.
    PowerLost {
        /// The persistent-operation index at which the crash fired.
        op_index: u64,
    },
}

/// Running totals of what the injector has actually fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Program attempts failed.
    pub program_fails: u64,
    /// Block erases failed.
    pub erase_fails: u64,
    /// Host reads that needed transient retries.
    pub transient_reads: u64,
    /// Power-loss events fired.
    pub power_losses: u64,
}

/// The live injector: one seeded RNG stream plus a persistent-operation
/// counter driving the power-loss schedule.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: Rng64,
    ops_issued: u64,
    next_loss: usize,
    stats: FaultStats,
}

ida_snap::snap_struct!(FaultStats {
    program_fails,
    erase_fails,
    transient_reads,
    power_losses,
});

// Serialized mid-stream: the RNG, the op counter and the power-loss
// schedule cursor all resume exactly where the capture left them.
ida_snap::snap_struct!(FaultInjector {
    cfg,
    rng,
    ops_issued,
    next_loss,
    stats,
});

impl FaultInjector {
    /// Arm a plan. The persistent-operation counter starts at zero, so
    /// `power_loss_ops` indices are relative to the arming point.
    pub fn new(cfg: FaultConfig) -> Self {
        debug_assert!(
            cfg.power_loss_ops.windows(2).all(|w| w[0] < w[1]),
            "power_loss_ops must be strictly ascending"
        );
        let rng = Rng64::seed_from_u64(cfg.seed);
        FaultInjector {
            cfg,
            rng,
            ops_issued: 0,
            next_loss: 0,
            stats: FaultStats::default(),
        }
    }

    /// The armed plan.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Totals of the faults fired so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Persistent operations issued since arming.
    pub fn ops_issued(&self) -> u64 {
        self.ops_issued
    }

    /// Account one persistent operation (program, erase, or metadata
    /// write) and report whether power survives it. The operation *at*
    /// a scheduled crash index is lost — it never reaches the medium.
    pub fn persist(&mut self) -> PersistOutcome {
        let idx = self.ops_issued;
        self.ops_issued += 1;
        if self.cfg.power_loss_ops.get(self.next_loss) == Some(&idx) {
            self.next_loss += 1;
            self.stats.power_losses += 1;
            return PersistOutcome::PowerLost { op_index: idx };
        }
        PersistOutcome::Committed
    }

    /// Should this program attempt fail? Draws from the stream only when
    /// the rate is nonzero.
    pub fn program_fails(&mut self) -> bool {
        if self.cfg.program_fail_prob <= 0.0 {
            return false;
        }
        let fail = self.rng.gen_bool(self.cfg.program_fail_prob);
        if fail {
            self.stats.program_fails += 1;
        }
        fail
    }

    /// Should this erase fail? Draws only when the rate is nonzero.
    pub fn erase_fails(&mut self) -> bool {
        if self.cfg.erase_fail_prob <= 0.0 {
            return false;
        }
        let fail = self.rng.gen_bool(self.cfg.erase_fail_prob);
        if fail {
            self.stats.erase_fails += 1;
        }
        fail
    }

    /// Transient retries needed by this host read: geometric in the
    /// transient rate, capped at `transient_max_retries`. Draws only when
    /// the rate is nonzero.
    pub fn transient_read_attempts(&mut self) -> u32 {
        if self.cfg.transient_read_prob <= 0.0 || self.cfg.transient_max_retries == 0 {
            return 0;
        }
        let mut attempts = 0;
        while attempts < self.cfg.transient_max_retries
            && self.rng.gen_bool(self.cfg.transient_read_prob)
        {
            attempts += 1;
        }
        if attempts > 0 {
            self.stats.transient_reads += 1;
        }
        attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_fires_and_never_draws() {
        let mut inj = FaultInjector::new(FaultConfig::none());
        let rng_before = inj.rng.clone();
        for _ in 0..1000 {
            assert_eq!(inj.persist(), PersistOutcome::Committed);
            assert!(!inj.program_fails());
            assert!(!inj.erase_fails());
            assert_eq!(inj.transient_read_attempts(), 0);
        }
        assert_eq!(
            inj.rng, rng_before,
            "inert plan must not consume the stream"
        );
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn power_loss_fires_exactly_at_the_scheduled_indices() {
        let cfg = FaultConfig {
            power_loss_ops: vec![3, 5],
            ..FaultConfig::none()
        };
        let mut inj = FaultInjector::new(cfg);
        let lost: Vec<u64> = (0..10)
            .filter_map(|_| match inj.persist() {
                PersistOutcome::PowerLost { op_index } => Some(op_index),
                PersistOutcome::Committed => None,
            })
            .collect();
        assert_eq!(lost, vec![3, 5]);
        assert_eq!(inj.stats().power_losses, 2);
    }

    #[test]
    fn fault_rates_track_their_probabilities() {
        let cfg = FaultConfig {
            program_fail_prob: 0.2,
            erase_fail_prob: 0.1,
            seed: 99,
            ..FaultConfig::none()
        };
        let mut inj = FaultInjector::new(cfg);
        let n = 50_000;
        let p = (0..n).filter(|_| inj.program_fails()).count() as f64 / n as f64;
        let e = (0..n).filter(|_| inj.erase_fails()).count() as f64 / n as f64;
        assert!((p - 0.2).abs() < 0.01, "program rate {p}");
        assert!((e - 0.1).abs() < 0.01, "erase rate {e}");
    }

    #[test]
    fn transient_attempts_are_bounded() {
        let cfg = FaultConfig {
            transient_read_prob: 0.9,
            transient_max_retries: 3,
            seed: 5,
            ..FaultConfig::none()
        };
        let mut inj = FaultInjector::new(cfg);
        for _ in 0..1000 {
            assert!(inj.transient_read_attempts() <= 3);
        }
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let cfg = FaultConfig {
            program_fail_prob: 0.05,
            transient_read_prob: 0.05,
            transient_max_retries: 4,
            seed: 1234,
            ..FaultConfig::none()
        };
        let mut a = FaultInjector::new(cfg.clone());
        let mut b = FaultInjector::new(cfg);
        for _ in 0..5000 {
            assert_eq!(a.program_fails(), b.program_fails());
            assert_eq!(a.transient_read_attempts(), b.transient_read_attempts());
        }
    }

    #[test]
    fn inert_aging_model_contributes_nothing() {
        let a = AgingConfig::none();
        assert!(!a.is_active());
        assert_eq!(a.rber(10_000, u32::MAX, u64::MAX), 0.0);
    }

    #[test]
    fn rber_grows_with_every_wear_axis() {
        let a = AgingConfig::preset("mid", 0).unwrap();
        let fresh = a.rber(0, 0, 0);
        assert!(fresh > 0.0, "active model has a positive floor");
        assert!(a.rber(3_000, 0, 0) > fresh, "P/E cycling raises RBER");
        assert!(a.rber(0, 100_000, 0) > fresh, "read disturb raises RBER");
        assert!(
            a.rber(0, 0, 30 * NS_PER_DAY) > fresh,
            "retention raises RBER"
        );
        // Retention loss accelerates on worn cells.
        let worn_gain = a.rber(3_000, 0, 30 * NS_PER_DAY) - a.rber(3_000, 0, 0);
        let fresh_gain = a.rber(0, 0, 30 * NS_PER_DAY) - a.rber(0, 0, 0);
        assert!(worn_gain > fresh_gain);
    }

    #[test]
    fn aging_presets_cover_all_levels_and_order_by_severity() {
        let mut prev = -1.0;
        for level in AgingConfig::LEVELS {
            let cfg = AgingConfig::preset(level, 9).expect("known level");
            assert_eq!(cfg.seed, 9);
            assert_eq!(cfg.is_active(), level != "off");
            let aged = cfg.rber(3_000, 10_000, 30 * NS_PER_DAY);
            assert!(aged > prev, "levels must be ordered mildest first");
            prev = aged;
        }
        assert!(AgingConfig::preset("worn_out", 9).is_none());
    }

    #[test]
    fn presets_cover_all_levels() {
        for level in FaultConfig::LEVELS {
            let cfg = FaultConfig::preset(level, 7).expect("known level");
            assert_eq!(cfg.seed, 7);
            assert_eq!(cfg.is_active(), level != "off");
        }
        assert!(FaultConfig::preset("catastrophic", 7).is_none());
        assert!(
            FaultConfig::preset("high", 7).unwrap().power_loss_ops.len() > 1,
            "high level must exercise power loss"
        );
    }
}
