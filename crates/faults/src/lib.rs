//! Deterministic fault injection for the IDA flash stack.
//!
//! The paper folds IDA's voltage adjustment into data refresh precisely
//! because in-place reprogramming is risky; this crate supplies the
//! *unhappy* path the rest of the workspace recovers from: program and
//! erase failures (grown bad blocks), transient read faults, and
//! power-loss events at chosen persistent-operation counts.
//!
//! Everything is driven by a single seeded [`Rng64`] stream owned by the
//! [`FaultInjector`], so a simulation with faults enabled is exactly as
//! deterministic as one without: same seed, same fault schedule, on every
//! platform and for any sweep worker count. Draws are guarded — a zero
//! probability consumes nothing from the stream — so arming a plan with
//! all rates at zero is byte-identical to not arming one at all.

use ida_obs::rng::Rng64;

/// The fault plan: rates and schedules for every injected fault class.
///
/// Probabilities are per *attempt* (one program, one erase, one host
/// read). Power-loss events fire at absolute persistent-operation indices
/// counted from the moment the plan is armed, which pins crashes to exact,
/// reproducible points in the operation stream rather than wall-clock
/// times.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability that a single program attempt fails (page marked bad,
    /// write redirected to a fresh page).
    pub program_fail_prob: f64,
    /// Probability that a block erase fails (block retired to the bad list).
    pub erase_fail_prob: f64,
    /// Probability that a host read needs at least one transient retry.
    pub transient_read_prob: f64,
    /// Cap on transient retries per read (bounded retry-with-backoff).
    pub transient_max_retries: u32,
    /// Controller backoff charged per transient retry, in nanoseconds.
    pub transient_backoff_ns: u64,
    /// Persistent-operation indices (post-arming) at which power is lost.
    /// Must be sorted ascending; each index fires at most once.
    pub power_loss_ops: Vec<u64>,
    /// Failed-program marks tolerated per erase cycle before the block is
    /// retired as grown-bad at its next erase (0 disables retirement).
    pub bad_block_threshold: u32,
    /// Seed for the injector's private RNG stream.
    pub seed: u64,
}

impl FaultConfig {
    /// A plan that injects nothing (the default for every simulation).
    pub fn none() -> Self {
        FaultConfig {
            program_fail_prob: 0.0,
            erase_fail_prob: 0.0,
            transient_read_prob: 0.0,
            transient_max_retries: 0,
            transient_backoff_ns: 0,
            power_loss_ops: Vec::new(),
            bad_block_threshold: 0,
            seed: 0,
        }
    }

    /// Whether any fault class can actually fire.
    pub fn is_active(&self) -> bool {
        self.program_fail_prob > 0.0
            || self.erase_fail_prob > 0.0
            || self.transient_read_prob > 0.0
            || !self.power_loss_ops.is_empty()
    }

    /// Named fault levels used by the `faults` sweep grid: `off`, `low`,
    /// `mid` and `high` (the last one also schedules power-loss events).
    /// Returns `None` for an unknown level name.
    pub fn preset(level: &str, seed: u64) -> Option<Self> {
        let mut cfg = FaultConfig {
            seed,
            ..FaultConfig::none()
        };
        match level {
            "off" => {}
            "low" => {
                cfg.program_fail_prob = 0.002;
                cfg.erase_fail_prob = 0.002;
                cfg.transient_read_prob = 0.01;
                cfg.transient_max_retries = 3;
                cfg.transient_backoff_ns = 5_000;
                cfg.bad_block_threshold = 2;
            }
            "mid" => {
                cfg.program_fail_prob = 0.01;
                cfg.erase_fail_prob = 0.01;
                cfg.transient_read_prob = 0.05;
                cfg.transient_max_retries = 3;
                cfg.transient_backoff_ns = 5_000;
                cfg.bad_block_threshold = 2;
            }
            "high" => {
                cfg.program_fail_prob = 0.03;
                cfg.erase_fail_prob = 0.03;
                cfg.transient_read_prob = 0.10;
                cfg.transient_max_retries = 5;
                cfg.transient_backoff_ns = 5_000;
                cfg.bad_block_threshold = 2;
                cfg.power_loss_ops = vec![500, 1_500, 4_000];
            }
            _ => return None,
        }
        Some(cfg)
    }

    /// The fault levels [`FaultConfig::preset`] understands, mildest first.
    pub const LEVELS: [&'static str; 4] = ["off", "low", "mid", "high"];
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// Outcome of one persistent operation under the armed plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistOutcome {
    /// The operation reached the medium.
    Committed,
    /// Power was lost *before* the operation committed; the device must
    /// run recovery before accepting further work.
    PowerLost {
        /// The persistent-operation index at which the crash fired.
        op_index: u64,
    },
}

/// Running totals of what the injector has actually fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Program attempts failed.
    pub program_fails: u64,
    /// Block erases failed.
    pub erase_fails: u64,
    /// Host reads that needed transient retries.
    pub transient_reads: u64,
    /// Power-loss events fired.
    pub power_losses: u64,
}

/// The live injector: one seeded RNG stream plus a persistent-operation
/// counter driving the power-loss schedule.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: Rng64,
    ops_issued: u64,
    next_loss: usize,
    stats: FaultStats,
}

impl FaultInjector {
    /// Arm a plan. The persistent-operation counter starts at zero, so
    /// `power_loss_ops` indices are relative to the arming point.
    pub fn new(cfg: FaultConfig) -> Self {
        debug_assert!(
            cfg.power_loss_ops.windows(2).all(|w| w[0] < w[1]),
            "power_loss_ops must be strictly ascending"
        );
        let rng = Rng64::seed_from_u64(cfg.seed);
        FaultInjector {
            cfg,
            rng,
            ops_issued: 0,
            next_loss: 0,
            stats: FaultStats::default(),
        }
    }

    /// The armed plan.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Totals of the faults fired so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Persistent operations issued since arming.
    pub fn ops_issued(&self) -> u64 {
        self.ops_issued
    }

    /// Account one persistent operation (program, erase, or metadata
    /// write) and report whether power survives it. The operation *at*
    /// a scheduled crash index is lost — it never reaches the medium.
    pub fn persist(&mut self) -> PersistOutcome {
        let idx = self.ops_issued;
        self.ops_issued += 1;
        if self.cfg.power_loss_ops.get(self.next_loss) == Some(&idx) {
            self.next_loss += 1;
            self.stats.power_losses += 1;
            return PersistOutcome::PowerLost { op_index: idx };
        }
        PersistOutcome::Committed
    }

    /// Should this program attempt fail? Draws from the stream only when
    /// the rate is nonzero.
    pub fn program_fails(&mut self) -> bool {
        if self.cfg.program_fail_prob <= 0.0 {
            return false;
        }
        let fail = self.rng.gen_bool(self.cfg.program_fail_prob);
        if fail {
            self.stats.program_fails += 1;
        }
        fail
    }

    /// Should this erase fail? Draws only when the rate is nonzero.
    pub fn erase_fails(&mut self) -> bool {
        if self.cfg.erase_fail_prob <= 0.0 {
            return false;
        }
        let fail = self.rng.gen_bool(self.cfg.erase_fail_prob);
        if fail {
            self.stats.erase_fails += 1;
        }
        fail
    }

    /// Transient retries needed by this host read: geometric in the
    /// transient rate, capped at `transient_max_retries`. Draws only when
    /// the rate is nonzero.
    pub fn transient_read_attempts(&mut self) -> u32 {
        if self.cfg.transient_read_prob <= 0.0 || self.cfg.transient_max_retries == 0 {
            return 0;
        }
        let mut attempts = 0;
        while attempts < self.cfg.transient_max_retries
            && self.rng.gen_bool(self.cfg.transient_read_prob)
        {
            attempts += 1;
        }
        if attempts > 0 {
            self.stats.transient_reads += 1;
        }
        attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_fires_and_never_draws() {
        let mut inj = FaultInjector::new(FaultConfig::none());
        let rng_before = inj.rng.clone();
        for _ in 0..1000 {
            assert_eq!(inj.persist(), PersistOutcome::Committed);
            assert!(!inj.program_fails());
            assert!(!inj.erase_fails());
            assert_eq!(inj.transient_read_attempts(), 0);
        }
        assert_eq!(
            inj.rng, rng_before,
            "inert plan must not consume the stream"
        );
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn power_loss_fires_exactly_at_the_scheduled_indices() {
        let cfg = FaultConfig {
            power_loss_ops: vec![3, 5],
            ..FaultConfig::none()
        };
        let mut inj = FaultInjector::new(cfg);
        let lost: Vec<u64> = (0..10)
            .filter_map(|_| match inj.persist() {
                PersistOutcome::PowerLost { op_index } => Some(op_index),
                PersistOutcome::Committed => None,
            })
            .collect();
        assert_eq!(lost, vec![3, 5]);
        assert_eq!(inj.stats().power_losses, 2);
    }

    #[test]
    fn fault_rates_track_their_probabilities() {
        let cfg = FaultConfig {
            program_fail_prob: 0.2,
            erase_fail_prob: 0.1,
            seed: 99,
            ..FaultConfig::none()
        };
        let mut inj = FaultInjector::new(cfg);
        let n = 50_000;
        let p = (0..n).filter(|_| inj.program_fails()).count() as f64 / n as f64;
        let e = (0..n).filter(|_| inj.erase_fails()).count() as f64 / n as f64;
        assert!((p - 0.2).abs() < 0.01, "program rate {p}");
        assert!((e - 0.1).abs() < 0.01, "erase rate {e}");
    }

    #[test]
    fn transient_attempts_are_bounded() {
        let cfg = FaultConfig {
            transient_read_prob: 0.9,
            transient_max_retries: 3,
            seed: 5,
            ..FaultConfig::none()
        };
        let mut inj = FaultInjector::new(cfg);
        for _ in 0..1000 {
            assert!(inj.transient_read_attempts() <= 3);
        }
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let cfg = FaultConfig {
            program_fail_prob: 0.05,
            transient_read_prob: 0.05,
            transient_max_retries: 4,
            seed: 1234,
            ..FaultConfig::none()
        };
        let mut a = FaultInjector::new(cfg.clone());
        let mut b = FaultInjector::new(cfg);
        for _ in 0..5000 {
            assert_eq!(a.program_fails(), b.program_fails());
            assert_eq!(a.transient_read_attempts(), b.transient_read_attempts());
        }
    }

    #[test]
    fn presets_cover_all_levels() {
        for level in FaultConfig::LEVELS {
            let cfg = FaultConfig::preset(level, 7).expect("known level");
            assert_eq!(cfg.seed, 7);
            assert_eq!(cfg.is_active(), level != "off");
        }
        assert!(FaultConfig::preset("catastrophic", 7).is_none());
        assert!(
            FaultConfig::preset("high", 7).unwrap().power_loss_ops.len() > 1,
            "high level must exercise power loss"
        );
    }
}
