//! Microbenchmark of the simulator's event queue (push/pop throughput) and
//! the refresh due-queue.

use ida_bench::microbench::bench;
use ida_flash::addr::BlockAddr;
use ida_ftl::refresh::RefreshQueue;
use ida_ssd::event::EventQueue;
use std::hint::black_box;

fn bench_event_queue() {
    bench("event_queue/push_pop_10k", || {
        let mut q = EventQueue::new();
        // Interleaved pattern: half ordered, half reversed.
        for i in 0..5_000u64 {
            q.push(black_box(i * 2), i);
            q.push(black_box(20_000 - i), i);
        }
        let mut acc = 0u64;
        while let Some((t, v)) = q.pop() {
            acc = acc.wrapping_add(t ^ v);
        }
        acc
    });
}

fn bench_refresh_queue() {
    bench("refresh_queue/schedule_pop_4k", || {
        let mut q = RefreshQueue::new();
        for i in 0..4_000u32 {
            q.schedule(BlockAddr(i), 0, black_box((i as u64 * 37) % 10_000));
        }
        let mut n = 0;
        while q.pop_due(u64::MAX, |_, _| true).is_some() {
            n += 1;
        }
        n
    });
}

fn main() {
    bench_event_queue();
    bench_refresh_queue();
}
