//! Microbenchmarks of FTL operations: host write/read translation and a
//! full block refresh (baseline vs IDA).

use ida_bench::microbench::{bench, bench_with_setup};
use ida_core::refresh::RefreshMode;
use ida_flash::geometry::Geometry;
use ida_ftl::{Ftl, FtlConfig, Lpn};
use std::hint::black_box;

fn ftl(mode: RefreshMode) -> Ftl {
    Ftl::new(FtlConfig {
        geometry: Geometry::tiny(),
        refresh_mode: mode,
        adjust_error_rate: 0.2,
        ..FtlConfig::default()
    })
}

fn bench_write_path() {
    bench("ftl/write_1k_pages", || {
        let mut f = ftl(RefreshMode::Baseline);
        for i in 0..1_000u64 {
            black_box(f.write(Lpn(i), i).unwrap());
        }
        f.stats().host_writes
    });
}

fn bench_read_translation() {
    let mut f = ftl(RefreshMode::Baseline);
    for i in 0..2_000u64 {
        f.write(Lpn(i), i).unwrap();
    }
    bench("ftl/read_translate_2k", || {
        let mut senses = 0u64;
        for i in 0..2_000u64 {
            senses += f.read(black_box(Lpn(i))).map_or(0, |r| r.senses as u64);
        }
        senses
    });
}

fn bench_refresh_block() {
    for (name, mode) in [
        ("ftl/refresh_block/baseline", RefreshMode::Baseline),
        ("ftl/refresh_block/ida", RefreshMode::Ida),
    ] {
        bench_with_setup(
            name,
            || {
                let mut f = ftl(mode);
                let geom = Geometry::tiny();
                let per_block = geom.pages_per_block() as u64;
                for i in 0..per_block * geom.total_planes() as u64 {
                    f.write(Lpn(i), 0).unwrap();
                }
                // Invalidate a third of the pages.
                for i in (0..per_block * geom.total_planes() as u64).step_by(3) {
                    f.write(Lpn(i), 1).unwrap();
                }
                let block = f.read(Lpn(1)).unwrap().page.block(&geom);
                (f, block)
            },
            |(mut f, block)| {
                let mut ops = Vec::new();
                f.refresh_block(black_box(block), 10, &mut ops);
                ops.len()
            },
        );
    }
}

fn main() {
    bench_write_path();
    bench_read_translation();
    bench_refresh_block();
}
