//! Microbenchmarks of the coding hot paths: sensing-procedure decode,
//! program-target lookup, and IDA merge planning.

use ida_bench::microbench::bench;
use ida_core::merge::MergePlan;
use ida_flash::coding::{BitPattern, CodingScheme, VoltageState};
use std::hint::black_box;

fn bench_read_bit() {
    for coding in [CodingScheme::tlc_124(), CodingScheme::qlc()] {
        let name = format!("coding/read_bit/{}", coding.name());
        let states: Vec<VoltageState> = coding.live_states().to_vec();
        let bits = coding.bits_per_cell();
        bench(&name, || {
            let mut acc = 0u32;
            for &s in &states {
                for bit in 0..bits {
                    acc += coding.read_bit(black_box(s), bit) as u32;
                }
            }
            acc
        });
    }
}

fn bench_program_target() {
    let coding = CodingScheme::tlc_124();
    bench("coding/program_target", || {
        let mut acc = 0u8;
        for v in 0..8u8 {
            acc ^= coding.program_target(black_box(BitPattern(v))).index();
        }
        acc
    });
}

fn bench_merge_plan() {
    for (name, coding) in [
        ("coding/merge_plan/tlc", CodingScheme::tlc_124()),
        ("coding/merge_plan/qlc", CodingScheme::qlc()),
    ] {
        let full = (coding.state_space() - 1) as u8;
        bench(name, || {
            let mut total = 0usize;
            for mask in 0..=full {
                total += MergePlan::compute(black_box(&coding), mask).remaining_states();
            }
            total
        });
    }
}

fn main() {
    bench_read_bit();
    bench_program_target();
    bench_merge_plan();
}
