//! Microbenchmarks of the coding hot paths: sensing-procedure decode,
//! program-target lookup, and IDA merge planning.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ida_core::merge::MergePlan;
use ida_flash::coding::{BitPattern, CodingScheme, VoltageState};

fn bench_read_bit(c: &mut Criterion) {
    let mut g = c.benchmark_group("coding/read_bit");
    for coding in [CodingScheme::tlc_124(), CodingScheme::qlc()] {
        g.bench_function(coding.name().to_string(), |b| {
            let states: Vec<VoltageState> = coding.live_states().to_vec();
            let bits = coding.bits_per_cell();
            b.iter(|| {
                let mut acc = 0u32;
                for &s in &states {
                    for bit in 0..bits {
                        acc += coding.read_bit(black_box(s), bit) as u32;
                    }
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_program_target(c: &mut Criterion) {
    let coding = CodingScheme::tlc_124();
    c.bench_function("coding/program_target", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for v in 0..8u8 {
                acc ^= coding.program_target(black_box(BitPattern(v))).index();
            }
            acc
        })
    });
}

fn bench_merge_plan(c: &mut Criterion) {
    let mut g = c.benchmark_group("coding/merge_plan");
    for (name, coding) in [
        ("tlc", CodingScheme::tlc_124()),
        ("qlc", CodingScheme::qlc()),
    ] {
        g.bench_function(name, |b| {
            let full = (coding.state_space() - 1) as u8;
            b.iter(|| {
                let mut total = 0usize;
                for mask in 0..=full {
                    total += MergePlan::compute(black_box(&coding), mask).remaining_states();
                }
                total
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_read_bit, bench_program_target, bench_merge_plan);
criterion_main!(benches);
