//! End-to-end simulator throughput: events per second on a small trace,
//! baseline vs IDA. This is the bench the observability layer's "<2 %
//! overhead with tracing disabled" budget is measured against.

use ida_bench::microbench::bench;
use ida_bench::runner::{run_system, ExperimentScale, SystemUnderTest};
use ida_workloads::suite::paper_workload;
use std::hint::black_box;

fn main() {
    let preset = paper_workload("hm_1").expect("workload");
    let scale = ExperimentScale::smoke().with_requests(800);
    for (name, system) in [
        ("sim/end_to_end_800req/baseline", SystemUnderTest::Baseline),
        (
            "sim/end_to_end_800req/ida_e20",
            SystemUnderTest::Ida { error_rate: 0.2 },
        ),
    ] {
        bench(name, || {
            let run = run_system(black_box(&preset), system, &scale);
            run.report.reads.count
        });
    }
}
