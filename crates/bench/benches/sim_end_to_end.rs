//! End-to-end simulator throughput: events per second on a small trace,
//! baseline vs IDA.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ida_bench::runner::{run_system, ExperimentScale, SystemUnderTest};
use ida_workloads::suite::paper_workload;

fn bench_small_run(c: &mut Criterion) {
    let preset = paper_workload("hm_1").expect("workload");
    let scale = ExperimentScale::smoke().with_requests(800);
    let mut g = c.benchmark_group("sim/end_to_end_800req");
    g.sample_size(10);
    for (name, system) in [
        ("baseline", SystemUnderTest::Baseline),
        ("ida_e20", SystemUnderTest::Ida { error_rate: 0.2 }),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let run = run_system(black_box(&preset), system, &scale);
                run.report.reads.count
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_small_run);
criterion_main!(benches);
