//! The warm-cache sweep invariant (ISSUE 9): running a grid with the
//! warm-state cache on must produce byte-identical aggregated output to
//! running it cache-off — at any worker count — while executing strictly
//! fewer warm-ups than cells.

use ida_bench::runner::ExperimentScale;
use ida_bench::sweep::{run_grid, warm_id, warm_seed_for};
use ida_sweep::{SweepConfig, SweepSpec};
use std::collections::HashSet;

/// A faults grid small enough for a test: one workload, both systems,
/// every fault level (including `off` and the power-loss-scheduling
/// `high`).
fn mini_faults_grid() -> SweepSpec {
    SweepSpec::new(
        "faults",
        vec!["proj_3".into()],
        vec!["Baseline".into(), "IDA-E20".into()],
    )
    .with_axis(
        "faults",
        vec!["off".into(), "low".into(), "mid".into(), "high".into()],
    )
}

fn tiny_scale() -> ExperimentScale {
    ExperimentScale::smoke().with_requests(400)
}

#[test]
fn warm_cache_is_invisible_in_the_aggregate_and_skips_warmups() {
    let spec = mini_faults_grid();
    let scale = tiny_scale();

    let off = run_grid(&spec, &scale, &SweepConfig::serial()).expect("cache-off run");
    assert_eq!(off.failed_count(), 0, "cache-off cells failed");

    let on_cfg = SweepConfig::serial().with_warm_cache();
    let on = run_grid(&spec, &scale, &on_cfg).expect("cache-on run");
    assert_eq!(on.failed_count(), 0, "cache-on cells failed");

    assert_eq!(
        off.aggregate_json(),
        on.aggregate_json(),
        "warm cache changed sweep output"
    );

    // 8 cells, but only 2 warm identities (workload × system): the fault
    // axis is armed after warm-up and shares the snapshot.
    let stats = on_cfg.warm_cache().unwrap().stats();
    assert_eq!(
        stats.misses, 2,
        "expected one warm-up per (workload, system)"
    );
    assert_eq!(stats.total_hits(), 6, "siblings must fork, not re-warm");

    // Parallel cache-on agrees too: single-flight keeps concurrent
    // builders from racing, and forked state is scheduling-independent.
    let par_cfg = SweepConfig::serial().with_jobs(4).with_warm_cache();
    let par = run_grid(&spec, &scale, &par_cfg).expect("parallel cache-on run");
    assert_eq!(off.aggregate_json(), par.aggregate_json());
    let par_stats = par_cfg.warm_cache().unwrap().stats();
    assert_eq!(
        par_stats.misses, 2,
        "single-flight must not duplicate warm-ups"
    );
}

#[test]
fn warm_cache_spills_into_the_journal_directory_for_resume() {
    let dir = std::env::temp_dir().join(format!("ida-warm-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("journal.jsonl");
    let spec = mini_faults_grid();
    let scale = tiny_scale();

    let cfg = SweepConfig::serial()
        .with_journal(journal.clone())
        .with_warm_cache();
    let first = run_grid(&spec, &scale, &cfg).expect("journaled run");
    assert_eq!(cfg.warm_cache().unwrap().stats().misses, 2);
    let spilled = std::fs::read_dir(dir.join("warm")).unwrap().count();
    assert_eq!(spilled, 2, "each unique warm-up spills one snapshot");

    // A resumed run reloads the journal for cells — and if any cell *did*
    // re-run, it would hit the spilled snapshots instead of re-warming.
    let resumed_cfg = SweepConfig::serial()
        .with_journal(journal)
        .with_warm_cache();
    let resumed = run_grid(&spec, &scale, &resumed_cfg).expect("resumed run");
    assert_eq!(first.aggregate_json(), resumed.aggregate_json());
    assert_eq!(
        resumed.cached_count(),
        8,
        "journal should satisfy every cell"
    );
    assert_eq!(resumed_cfg.warm_cache().unwrap().stats().misses, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_identity_strips_exactly_the_post_warmup_axes() {
    let spec = mini_faults_grid();
    let cells = spec.cells();
    let warm_ids: HashSet<String> = cells.iter().map(warm_id).collect();
    assert_eq!(
        warm_ids.len(),
        2,
        "faults axis must not split warm identity"
    );
    for cell in &cells {
        assert!(!warm_id(cell).contains("faults="));
        // Same warm identity ⇒ same warm seed; the fault level never
        // perturbs the warm-up stream.
        let sibling = cells
            .iter()
            .find(|c| c.system == cell.system && c.id() != cell.id())
            .unwrap();
        assert_eq!(warm_seed_for(cell), warm_seed_for(sibling));
    }
    // Axes that *do* shape the warm-up (dtr_us via timing, phase via
    // retry config) stay in the identity.
    let fig9 = SweepSpec::new("fig9", vec!["proj_3".into()], vec!["Baseline".into()])
        .with_axis("dtr_us", vec!["30".into(), "70".into()]);
    let ids: HashSet<String> = fig9.cells().iter().map(warm_id).collect();
    assert_eq!(ids.len(), 2, "dtr_us must stay in the warm identity");
}
