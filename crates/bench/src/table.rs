//! Minimal aligned text-table rendering for experiment output.

/// A text table with a header row and aligned columns.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Render with every column padded to its widest cell.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with `digits` decimals.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Format a ratio as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer", "2.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "name    value");
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2], "a       1");
        assert_eq!(lines[3], "longer  2.5");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn format_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.285), "28.5%");
    }
}
