//! Figure 8 — read response times of IDA coding at voltage-adjustment
//! error rates E0–E80, normalized to the baseline.
//!
//! Paper findings: IDA-Coding-E0 improves mean read response time by 31 %,
//! E20 by 28 %, E50 by 20.2 %, and E80 drops below 7 %.
//!
//! Runs on the `ida-sweep` engine: the 11 × 10 grid executes on
//! `IDA_JOBS` parallel workers (default: all cores), checkpoints every
//! finished cell to `IDA_JOURNAL` when set, and aggregates
//! deterministically — the table below is byte-identical for any worker
//! count.

use ida_bench::runner::ExperimentScale;
use ida_bench::sweep::{builtin_grid, render_fig8, run_grid};
use ida_sweep::SweepConfig;

fn main() {
    let scale = ExperimentScale::from_env();
    let mut cfg = SweepConfig::from_env().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    cfg.progress = true;
    let spec = builtin_grid("fig8").expect("fig8 grid");
    let outcome = run_grid(&spec, &scale, &cfg).expect("sweep journal I/O failed");
    print!("{}", render_fig8(&outcome));
}
