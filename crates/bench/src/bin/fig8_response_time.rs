//! Figure 8 — read response times of IDA coding at voltage-adjustment
//! error rates E0–E80, normalized to the baseline.
//!
//! Paper findings: IDA-Coding-E0 improves mean read response time by 31 %,
//! E20 by 28 %, E50 by 20.2 %, and E80 drops below 7 %.

use ida_bench::runner::{normalized_read_response, run_system, ExperimentScale, SystemUnderTest};
use ida_bench::table::{f, TextTable};
use ida_workloads::suite::paper_workloads;

fn main() {
    let scale = ExperimentScale::from_env();
    let error_rates = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
    let presets = paper_workloads();

    let mut header = vec!["Name".to_string()];
    header.extend(error_rates.iter().map(|e| format!("E{:.0}", e * 100.0)));
    let mut t = TextTable::new(header);

    let mut sums = vec![0.0; error_rates.len()];
    for preset in &presets {
        let baseline = run_system(preset, SystemUnderTest::Baseline, &scale);
        let mut row = vec![preset.spec.name.clone()];
        for (i, &e) in error_rates.iter().enumerate() {
            let ida = run_system(preset, SystemUnderTest::Ida { error_rate: e }, &scale);
            let norm = normalized_read_response(&ida.report, &baseline.report);
            sums[i] += norm;
            row.push(f(norm, 3));
        }
        t.row(row);
        eprintln!("  finished {}", preset.spec.name);
    }
    let mut avg_row = vec!["AVERAGE".to_string()];
    for s in &sums {
        avg_row.push(f(s / presets.len() as f64, 3));
    }
    t.row(avg_row);

    println!("Figure 8 — normalized read response time (lower is better)\n");
    println!("{}", t.render());
    println!("Paper averages: E0 ≈ 0.69, E20 ≈ 0.72, E50 ≈ 0.798, E80 ≈ 0.93");
    println!(
        "Measured averages: E0 = {:.3}, E20 = {:.3}, E50 = {:.3}, E80 = {:.3}",
        sums[0] / presets.len() as f64,
        sums[2] / presets.len() as f64,
        sums[5] / presets.len() as f64,
        sums[8] / presets.len() as f64,
    );
}
