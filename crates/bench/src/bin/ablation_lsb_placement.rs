//! Ablation — how much of IDA's benefit comes from placing evicted LSB
//! data onto fast LSB slots of new blocks (the §III-C placement argument)?
//!
//! With placement off, pages evicted by case-1/3 conversions land on
//! whatever slot the CWDP allocator is at — often a slow CSB/MSB slot —
//! so formerly-fast LSB data gets slower even as the kept CSB/MSB data
//! gets faster. The paper argues the placement is what makes the eviction
//! harmless.

use ida_bench::runner::{
    normalized_read_response, run_config, system_config, ExperimentScale, SystemUnderTest,
};
use ida_bench::table::{f, TextTable};
use ida_flash::timing::FlashTiming;
use ida_ssd::retry::RetryConfig;
use ida_workloads::suite::paper_workloads;

fn main() {
    let scale = ExperimentScale::from_env();
    let presets = paper_workloads();
    let mut t = TextTable::new(vec![
        "Name",
        "IDA-E20 with placement",
        "IDA-E20 without",
        "placement contribution (pp)",
    ]);
    let mut with_sum = 0.0;
    let mut without_sum = 0.0;
    for preset in &presets {
        let base_cfg = system_config(
            SystemUnderTest::Baseline,
            scale.geometry,
            FlashTiming::paper_tlc(),
            RetryConfig::disabled(),
        );
        let base = run_config(preset, base_cfg, &scale);
        let mut norms = Vec::new();
        for placement in [true, false] {
            let mut cfg = system_config(
                SystemUnderTest::Ida { error_rate: 0.2 },
                scale.geometry,
                FlashTiming::paper_tlc(),
                RetryConfig::disabled(),
            );
            cfg.ftl.lsb_placement = placement;
            let ida = run_config(preset, cfg, &scale);
            norms.push(normalized_read_response(&ida, &base));
        }
        with_sum += norms[0];
        without_sum += norms[1];
        t.row(vec![
            preset.spec.name.clone(),
            f(norms[0], 3),
            f(norms[1], 3),
            f((norms[1] - norms[0]) * 100.0, 1),
        ]);
        eprintln!("  finished {}", preset.spec.name);
    }
    let n = presets.len() as f64;
    println!("Ablation — LSB-slot placement of evicted pages (normalized read response)\n");
    println!("{}", t.render());
    println!(
        "Averages: with placement {:.3}, without {:.3} — placement contributes {:.1} points\n\
         of the improvement.",
        with_sum / n,
        without_sum / n,
        (without_sum - with_sum) / n * 100.0
    );
}
