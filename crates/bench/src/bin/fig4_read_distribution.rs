//! Figure 4 — distribution of read accesses across page types and
//! associated-page validity, measured on the baseline system.
//!
//! Paper findings: LSB/CSB/MSB reads are roughly evenly distributed; on
//! average 18 % of CSB reads occur while the associated LSB is invalid and
//! 30 % of MSB reads occur while the associated LSB and/or CSB is invalid
//! (left plot, 11 workloads). The right plot repeats the MSB fraction for
//! 9 further workloads binned by read ratio.

use ida_bench::runner::{run_system, ExperimentScale, SystemUnderTest};
use ida_bench::table::{f, TextTable};
use ida_workloads::suite::{extra_workloads, paper_workloads};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("Figure 4 (left) — read breakdown on the 11 paper workloads\n");
    let mut t = TextTable::new(vec![
        "Name",
        "LSB %",
        "CSB %",
        "MSB %",
        "CSB w/ LSB invalid %",
        "MSB w/ lower invalid %",
        "(paper MSB-invalid %)",
    ]);
    let mut csb_sum = 0.0;
    let mut msb_sum = 0.0;
    let presets = paper_workloads();
    for preset in &presets {
        let run = run_system(preset, SystemUnderTest::Baseline, &scale);
        let b = run.report.breakdown;
        let total = b.total().max(1) as f64;
        let csb = (b.csb_lower_valid + b.csb_lower_invalid) as f64;
        let msb = (b.msb_lower_valid + b.msb_lower_invalid) as f64;
        csb_sum += b.csb_invalid_fraction();
        msb_sum += b.msb_invalid_fraction();
        t.row(vec![
            preset.spec.name.clone(),
            f(b.lsb as f64 / total * 100.0, 1),
            f(csb / total * 100.0, 1),
            f(msb / total * 100.0, 1),
            f(b.csb_invalid_fraction() * 100.0, 1),
            f(b.msb_invalid_fraction() * 100.0, 1),
            f(preset.paper.msb_invalid_pct, 1),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Averages: CSB-with-invalid-LSB {:.1}% (paper: 18%), MSB-with-invalid-lower {:.1}% (paper: 30%)\n",
        csb_sum / presets.len() as f64 * 100.0,
        msb_sum / presets.len() as f64 * 100.0
    );

    println!("Figure 4 (right) — 9 extra workloads by read ratio\n");
    let mut t2 = TextTable::new(vec!["Name", "Read ratio %", "MSB w/ lower invalid %"]);
    for preset in extra_workloads() {
        let run = run_system(&preset, SystemUnderTest::Baseline, &scale);
        let b = run.report.breakdown;
        t2.row(vec![
            preset.spec.name.clone(),
            f(preset.spec.read_ratio * 100.0, 0),
            f(b.msb_invalid_fraction() * 100.0, 1),
        ]);
    }
    println!("{}", t2.render());
}
