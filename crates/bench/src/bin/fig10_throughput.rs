//! Figure 10 — device throughput of IDA-Coding-E20 normalized to the
//! baseline, measured with a saturation (closed-loop) replay.
//!
//! Paper findings: every workload gains throughput, ~10 % on average —
//! the reduced read latencies outweigh the extra refresh reads/writes.
//!
//! Runs on the `ida-sweep` engine (see `fig8_response_time` for the
//! worker/journal environment knobs).

use ida_bench::runner::ExperimentScale;
use ida_bench::sweep::{builtin_grid, render_fig10, run_grid};
use ida_sweep::SweepConfig;

fn main() {
    let scale = ExperimentScale::from_env();
    let mut cfg = SweepConfig::from_env().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    cfg.progress = true;
    let spec = builtin_grid("fig10").expect("fig10 grid");
    let outcome = run_grid(&spec, &scale, &cfg).expect("sweep journal I/O failed");
    print!("{}", render_fig10(&outcome));
}
