//! Figure 10 — device throughput of IDA-Coding-E20 normalized to the
//! baseline, measured with a saturation (closed-loop) replay.
//!
//! Paper findings: every workload gains throughput, ~10 % on average —
//! the reduced read latencies outweigh the extra refresh reads/writes.

use ida_bench::runner::{
    run_config_mode, system_config, ExperimentScale, ReplayMode, SystemUnderTest,
};
use ida_bench::table::{f, TextTable};
use ida_flash::timing::FlashTiming;
use ida_ssd::retry::RetryConfig;
use ida_workloads::suite::paper_workloads;

fn main() {
    let scale = ExperimentScale::from_env();
    let depth = 32;
    let presets = paper_workloads();
    // Throughput columns are decimal megabytes per second (10^6 bytes/s,
    // `Report::throughput_mbps`); the MiB/s column shows the binary unit
    // (2^20 bytes/s) for cross-checking against tools that report MiB.
    let mut t = TextTable::new(vec![
        "Name",
        "Baseline MB/s",
        "IDA-E20 MB/s",
        "IDA-E20 MiB/s",
        "Normalized",
    ]);
    let mut sum = 0.0;
    for preset in &presets {
        let base_cfg = system_config(
            SystemUnderTest::Baseline,
            scale.geometry,
            FlashTiming::paper_tlc(),
            RetryConfig::disabled(),
        );
        let ida_cfg = system_config(
            SystemUnderTest::Ida { error_rate: 0.2 },
            scale.geometry,
            FlashTiming::paper_tlc(),
            RetryConfig::disabled(),
        );
        let base = run_config_mode(preset, base_cfg, &scale, ReplayMode::ClosedLoop(depth));
        let ida = run_config_mode(preset, ida_cfg, &scale, ReplayMode::ClosedLoop(depth));
        let norm = ida.throughput_mbps() / base.throughput_mbps().max(1e-9);
        sum += norm;
        t.row(vec![
            preset.spec.name.clone(),
            f(base.throughput_mbps(), 1),
            f(ida.throughput_mbps(), 1),
            f(ida.throughput_mibps(), 1),
            f(norm, 3),
        ]);
        eprintln!("  finished {}", preset.spec.name);
    }
    println!(
        "Figure 10 — device throughput, closed loop at queue depth {depth} (higher is better)"
    );
    println!("MB/s = 10^6 bytes/s (decimal); MiB/s = 2^20 bytes/s (binary)\n");
    println!("{}", t.render());
    println!(
        "Average normalized throughput: {:.3} (paper: ≈ 1.10)",
        sum / presets.len() as f64
    );
}
