//! Table IV — the average overhead the voltage adjustment adds to a data
//! refresh, per 192-page (64-wordline) block, under IDA-Coding-E20.
//!
//! Paper findings: a refresh target block holds ~113 valid pages on
//! average (98–130); IDA adds ~58 verification reads (≈ half the valid
//! pages, one per kept page) and ~11.5 writes (the E20 corruption
//! write-backs, ≈ 20 % of the additional reads).

use ida_bench::runner::{run_system, ExperimentScale, SystemUnderTest};
use ida_bench::table::{f, TextTable};
use ida_workloads::suite::paper_workloads;

fn main() {
    let scale = ExperimentScale::from_env();
    println!("Table IV — refresh overhead per block under IDA-Coding-E20\n");
    let mut t = TextTable::new(vec![
        "Name",
        "Valid pages / 192",
        "(paper)",
        "Additional reads",
        "(paper)",
        "Additional writes",
        "(paper)",
    ]);
    // The paper's per-workload reference values.
    let paper: &[(&str, f64, f64, f64)] = &[
        ("proj_1", 122.88, 60.98, 12.19),
        ("proj_2", 122.21, 60.47, 12.09),
        ("proj_3", 128.69, 63.77, 12.75),
        ("proj_4", 114.87, 56.41, 11.28),
        ("hm_1", 103.34, 51.24, 10.24),
        ("src1_0", 130.26, 64.29, 12.86),
        ("src1_1", 102.14, 50.54, 10.11),
        ("src2_0", 116.36, 57.53, 11.51),
        ("stg_1", 142.67, 70.68, 14.13),
        ("usr_1", 98.58, 48.61, 9.72),
        ("usr_2", 113.69, 56.39, 11.28),
    ];
    for preset in paper_workloads() {
        let run = run_system(&preset, SystemUnderTest::Ida { error_rate: 0.2 }, &scale);
        let o = run.report.ftl.refresh_overhead;
        let p = paper
            .iter()
            .find(|(n, _, _, _)| *n == preset.spec.name)
            .expect("paper row");
        t.row(vec![
            preset.spec.name.clone(),
            f(o.mean_valid(), 2),
            f(p.1, 2),
            f(o.mean_additional_reads(), 2),
            f(p.2, 2),
            f(o.mean_additional_writes(), 2),
            f(p.3, 2),
        ]);
        eprintln!("  finished {}", preset.spec.name);
    }
    println!("{}", t.render());
    println!("Invariant check: additional writes ≈ 20% of additional reads at E20.");
}
