//! Ablation — IDA coding on the alternative vendor TLC coding (2/3/2
//! senses, paper Section III-B).
//!
//! The paper notes that some vendors use a flatter TLC coding where
//! LSB/CSB/MSB read with 2/3/2 senses: the read variation is much smaller,
//! so IDA has less headroom there — but it still merges states and still
//! helps (and in denser QLC the variation returns). This binary quantifies
//! that claim end to end.

use ida_bench::runner::{
    normalized_read_response, run_config, system_config, ExperimentScale, SystemUnderTest,
};
use ida_bench::table::{f, TextTable};
use ida_flash::timing::FlashTiming;
use ida_ftl::CodingVariant;
use ida_ssd::retry::RetryConfig;
use ida_workloads::suite::paper_workloads;

fn main() {
    let scale = ExperimentScale::from_env();
    let presets = paper_workloads();
    let mut t = TextTable::new(vec!["Name", "IDA-E20 on 1-2-4", "IDA-E20 on 2-3-2"]);
    let mut sums = [0.0f64; 2];
    for preset in &presets {
        let mut row = vec![preset.spec.name.clone()];
        for (i, variant) in [CodingVariant::Conventional, CodingVariant::Tlc232]
            .into_iter()
            .enumerate()
        {
            let mut base_cfg = system_config(
                SystemUnderTest::Baseline,
                scale.geometry,
                FlashTiming::paper_tlc(),
                RetryConfig::disabled(),
            );
            base_cfg.ftl.coding = variant;
            let mut ida_cfg = system_config(
                SystemUnderTest::Ida { error_rate: 0.2 },
                scale.geometry,
                FlashTiming::paper_tlc(),
                RetryConfig::disabled(),
            );
            ida_cfg.ftl.coding = variant;
            let base = run_config(preset, base_cfg, &scale);
            let ida = run_config(preset, ida_cfg, &scale);
            let norm = normalized_read_response(&ida, &base);
            sums[i] += norm;
            row.push(f(norm, 3));
        }
        t.row(row);
        eprintln!("  finished {}", preset.spec.name);
    }
    let n = presets.len() as f64;
    println!("Ablation — IDA benefit under the two TLC codings (normalized response)\n");
    println!("{}", t.render());
    println!(
        "Averages: 1-2-4 coding {:.3} ({:.1}% gain), 2-3-2 coding {:.3} ({:.1}% gain).\n\
         IDA's merges generalize to the flatter vendor coding as the paper claims.\n\
         Note the *relative* gain is no smaller there: 2-3-2 has less read-latency\n\
         variation (the paper's point) but also no fast 1-sense page at all, so a\n\
         merge that creates one buys proportionally more — an effect the paper's\n\
         qualitative discussion does not capture.",
        sums[0] / n,
        (1.0 - sums[0] / n) * 100.0,
        sums[1] / n,
        (1.0 - sums[1] / n) * 100.0
    );
}
