//! Diagnostic dump for one workload under baseline and IDA — not a paper
//! experiment, a debugging aid.

use ida_bench::runner::{self, ExperimentScale, SystemUnderTest};
use ida_workloads::suite::paper_workload;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "proj_1".into());
    let preset = paper_workload(&name).expect("workload");
    let scale = ExperimentScale::smoke();
    for system in [
        SystemUnderTest::Baseline,
        SystemUnderTest::Ida { error_rate: 0.0 },
        SystemUnderTest::Ida { error_rate: 0.2 },
    ] {
        let run = runner::run_system(&preset, system, &scale);
        let r = &run.report;
        let b = &r.breakdown;
        println!("== {} / {} ==", run.workload, run.system);
        println!(
            "  reads: n={} mean={:.1}us p50={:.1}us p99={:.1}us",
            r.reads.count,
            r.reads.mean_us(),
            r.reads.percentile(50.0) as f64 / 1e3,
            r.reads.percentile(99.0) as f64 / 1e3,
        );
        println!(
            "  writes: n={} mean={:.1}us",
            r.writes.count,
            r.writes.mean_us()
        );
        println!(
            "  breakdown: lsb={} csbV={} csbI={} msbV={} msbI={} ida={}",
            b.lsb,
            b.csb_lower_valid,
            b.csb_lower_invalid,
            b.msb_lower_valid,
            b.msb_lower_invalid,
            b.ida
        );
        println!(
            "  ftl: refreshes={} adj={} moves={} gc_runs={} gc_copies={} erases={} idaconv={}",
            r.ftl.refreshes,
            r.ftl.voltage_adjusts,
            r.ftl.refresh_moves,
            r.ftl.gc_runs,
            r.ftl.gc_copies,
            r.ftl.erases,
            r.ftl.ida_conversions
        );
        println!(
            "  throughput: {:.1} MB/s  makespan={:.2}s",
            r.throughput_mbps(),
            (r.last_completion - r.first_arrival) as f64 / 1e9
        );
    }
}
