//! Table III — characteristics of the 11 synthetic workloads, printed
//! against the paper's reported values.
//!
//! The last column (fraction of MSB reads whose LSB/CSB is invalid) is a
//! device-side property; it is reported by `fig4_read_distribution`.

use ida_bench::table::{f, TextTable};
use ida_workloads::stats::characterize;
use ida_workloads::suite::paper_workloads;

fn main() {
    println!("Table III — workload characteristics (measured vs paper)\n");
    let mut t = TextTable::new(vec![
        "Name",
        "Read Ratio %",
        "(paper)",
        "Read Size KB",
        "(paper)",
        "Read Data %",
        "(paper)",
    ]);
    for preset in paper_workloads() {
        let trace = preset.generate(60_000, 20_000);
        let s = characterize(&trace);
        t.row(vec![
            preset.spec.name.clone(),
            f(s.read_ratio * 100.0, 2),
            f(preset.paper.read_ratio_pct, 2),
            f(s.mean_read_kb, 2),
            f(preset.paper.read_kb, 2),
            f(s.read_data_ratio * 100.0, 2),
            f(preset.paper.read_data_pct, 2),
        ]);
    }
    println!("{}", t.render());
}
