//! Figure 9 — sensitivity of IDA-Coding-E20 to the device's read-latency
//! gap ΔtR (the difference between consecutive page-read latencies),
//! normalized to a baseline with the *same* ΔtR.
//!
//! Paper findings: improvements grow with ΔtR — ~14 % at 30 µs, ~28 % at
//! the default 50 µs, ~49 % at 70 µs (up to 83 % for usr_1).

use ida_bench::runner::{
    normalized_read_response, run_config, system_config, ExperimentScale, SystemUnderTest,
};
use ida_bench::table::{f, TextTable};
use ida_flash::timing::FlashTiming;
use ida_ssd::retry::RetryConfig;
use ida_workloads::suite::paper_workloads;

fn main() {
    let scale = ExperimentScale::from_env();
    let deltas = [30u64, 40, 50, 60, 70];
    let presets = paper_workloads();

    let mut header = vec!["Name".to_string()];
    header.extend(deltas.iter().map(|d| format!("dTR={d}us")));
    let mut t = TextTable::new(header);
    let mut sums = vec![0.0; deltas.len()];

    for preset in &presets {
        let mut row = vec![preset.spec.name.clone()];
        for (i, &d) in deltas.iter().enumerate() {
            let timing = FlashTiming::paper_tlc().with_delta_tr_us(d);
            let base_cfg = system_config(
                SystemUnderTest::Baseline,
                scale.geometry,
                timing,
                RetryConfig::disabled(),
            );
            let ida_cfg = system_config(
                SystemUnderTest::Ida { error_rate: 0.2 },
                scale.geometry,
                timing,
                RetryConfig::disabled(),
            );
            let base = run_config(preset, base_cfg, &scale);
            let ida = run_config(preset, ida_cfg, &scale);
            let norm = normalized_read_response(&ida, &base);
            sums[i] += norm;
            row.push(f(norm, 3));
        }
        t.row(row);
        eprintln!("  finished {}", preset.spec.name);
    }
    let mut avg = vec!["AVERAGE".to_string()];
    for s in &sums {
        avg.push(f(s / presets.len() as f64, 3));
    }
    t.row(avg);

    println!("Figure 9 — normalized read response of IDA-E20 vs ΔtR (lower is better)\n");
    println!("{}", t.render());
    println!("Paper: ΔtR=30µs ⇒ ~0.86, ΔtR=50µs ⇒ ~0.72, ΔtR=70µs ⇒ ~0.51 on average.");
}
