//! Figure 9 — sensitivity of IDA-Coding-E20 to the device's read-latency
//! gap ΔtR (the difference between consecutive page-read latencies),
//! normalized to a baseline with the *same* ΔtR.
//!
//! Paper findings: improvements grow with ΔtR — ~14 % at 30 µs, ~28 % at
//! the default 50 µs, ~49 % at 70 µs (up to 83 % for usr_1).
//!
//! Runs on the `ida-sweep` engine (see `fig8_response_time` for the
//! worker/journal environment knobs).

use ida_bench::runner::ExperimentScale;
use ida_bench::sweep::{builtin_grid, render_fig9, run_grid};
use ida_sweep::SweepConfig;

fn main() {
    let scale = ExperimentScale::from_env();
    let mut cfg = SweepConfig::from_env().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    cfg.progress = true;
    let spec = builtin_grid("fig9").expect("fig9 grid");
    let outcome = run_grid(&spec, &scale, &cfg).expect("sweep journal I/O failed");
    print!("{}", render_fig9(&outcome));
}
