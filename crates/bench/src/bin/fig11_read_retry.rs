//! Figure 11 — effectiveness of IDA-Coding-E20 in different portions of
//! the SSD lifetime.
//!
//! Early in life the raw bit error rate is low and reads decode on the
//! first sense; late in life LDPC decoding fails with some probability and
//! the page is re-sensed, multiplying the (coding-dependent) sensing time.
//! IDA pages re-sense with fewer read voltages, so the benefit *grows*
//! with retries.
//!
//! Paper findings: 28 % improvement in the early (no-retry) lifetime, and
//! 42.3 % in the late, retry-heavy lifetime.
//!
//! Runs on the `ida-sweep` engine: the 11 × 2 × 2 grid executes on
//! `IDA_JOBS` parallel workers (default: all cores), checkpoints every
//! finished cell to `IDA_JOURNAL` when set, and aggregates
//! deterministically — the table below is byte-identical for any worker
//! count. Each cell's late-lifetime retry sampler is seeded from the
//! cell's own RNG stream.

use ida_bench::runner::ExperimentScale;
use ida_bench::sweep::{builtin_grid, render_fig11, run_grid};
use ida_sweep::SweepConfig;

fn main() {
    let scale = ExperimentScale::from_env();
    let mut cfg = SweepConfig::from_env().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    cfg.progress = true;
    let spec = builtin_grid("fig11").expect("fig11 grid");
    let outcome = run_grid(&spec, &scale, &cfg).expect("sweep journal I/O failed");
    print!("{}", render_fig11(&outcome));
}
