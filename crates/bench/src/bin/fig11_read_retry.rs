//! Figure 11 — effectiveness of IDA-Coding-E20 in different portions of
//! the SSD lifetime.
//!
//! Early in life the raw bit error rate is low and reads decode on the
//! first sense; late in life LDPC decoding fails with some probability and
//! the page is re-sensed, multiplying the (coding-dependent) sensing time.
//! IDA pages re-sense with fewer read voltages, so the benefit *grows*
//! with retries.
//!
//! Paper findings: 28 % improvement in the early (no-retry) lifetime, and
//! 42.3 % in the late, retry-heavy lifetime.

use ida_bench::runner::{
    normalized_read_response, run_config, system_config, ExperimentScale, SystemUnderTest,
};
use ida_bench::table::{f, TextTable};
use ida_flash::timing::FlashTiming;
use ida_ssd::retry::RetryConfig;
use ida_workloads::suite::paper_workloads;

fn main() {
    let scale = ExperimentScale::from_env();
    let phases = [
        ("early (no retry)", RetryConfig::disabled()),
        ("late (retry-heavy)", RetryConfig::late_lifetime(0.4)),
    ];
    let presets = paper_workloads();
    let mut t = TextTable::new(vec!["Name", "early", "late"]);
    let mut sums = [0.0f64; 2];
    for preset in &presets {
        let mut row = vec![preset.spec.name.clone()];
        for (i, (_, retry)) in phases.iter().enumerate() {
            let base_cfg = system_config(
                SystemUnderTest::Baseline,
                scale.geometry,
                FlashTiming::paper_tlc(),
                *retry,
            );
            let ida_cfg = system_config(
                SystemUnderTest::Ida { error_rate: 0.2 },
                scale.geometry,
                FlashTiming::paper_tlc(),
                *retry,
            );
            let base = run_config(preset, base_cfg, &scale);
            let ida = run_config(preset, ida_cfg, &scale);
            let norm = normalized_read_response(&ida, &base);
            sums[i] += norm;
            row.push(f(norm, 3));
        }
        t.row(row);
        eprintln!("  finished {}", preset.spec.name);
    }
    let n = presets.len() as f64;
    t.row(vec![
        "AVERAGE".to_string(),
        f(sums[0] / n, 3),
        f(sums[1] / n, 3),
    ]);
    println!("Figure 11 — normalized read response by lifetime phase (lower is better)\n");
    println!("{}", t.render());
    println!(
        "Improvements: early {:.1}% (paper: 28%), late {:.1}% (paper: 42.3%)",
        (1.0 - sums[0] / n) * 100.0,
        (1.0 - sums[1] / n) * 100.0
    );
}
