//! Figure 6 + Section V-G — IDA coding on a QLC device.
//!
//! The paper demonstrates the QLC merge conceptually (Figure 6: with
//! Bits 1 and 2 invalidated, Bit 4 drops from 8 to 2 senses and Bit 3
//! from 4 to 1) and leaves the end-to-end QLC evaluation as future work.
//! We print the merge table *and* run the future-work experiment.

use ida_bench::runner::{
    normalized_read_response, run_config, system_config, ExperimentScale, SystemUnderTest,
};
use ida_bench::table::{f, TextTable};
use ida_core::merge::MergePlan;
use ida_flash::coding::CodingScheme;
use ida_flash::timing::FlashTiming;
use ida_ssd::retry::RetryConfig;
use ida_workloads::suite::paper_workloads;

fn main() {
    let scale = ExperimentScale::from_env();

    // Part 1 — the Figure 6 merge table.
    println!("Figure 6 — QLC sense counts before/after IDA merges\n");
    let qlc = CodingScheme::qlc();
    let mut t = TextTable::new(vec!["Scenario", "Bit1", "Bit2", "Bit3", "Bit4", "States"]);
    let sense = |c: &CodingScheme, b: u8| {
        if c.is_readable(b) {
            c.sense_count(b).to_string()
        } else {
            "-".into()
        }
    };
    t.row(vec![
        "conventional".to_string(),
        sense(&qlc, 0),
        sense(&qlc, 1),
        sense(&qlc, 2),
        sense(&qlc, 3),
        "16".to_string(),
    ]);
    for (label, mask) in [
        ("bit1 invalid", 0b1110u8),
        ("bits1-2 invalid (Fig 6)", 0b1100),
        ("bits1-3 invalid", 0b1000),
    ] {
        let plan = MergePlan::compute(&qlc, mask);
        let m = plan.merged();
        t.row(vec![
            label.to_string(),
            sense(m, 0),
            sense(m, 1),
            sense(m, 2),
            sense(m, 3),
            plan.remaining_states().to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Paper (Fig 6): bits1-2 invalid ⇒ Bit 3: 4→1 senses, Bit 4: 8→2 senses.\n");

    // Part 2 — the future-work end-to-end QLC run.
    println!("Section V-G (future work) — QLC SSD, IDA-E20 vs baseline\n");
    let geometry = scale.geometry.with_bits_per_cell(4);
    let timing = FlashTiming::paper_tlc(); // same base/ΔtR ladder, 1-8 senses
    let mut t2 = TextTable::new(vec!["Name", "Normalized response", "Improvement %"]);
    let mut sum = 0.0;
    let presets = paper_workloads();
    for preset in &presets {
        let base_cfg = system_config(
            SystemUnderTest::Baseline,
            geometry,
            timing,
            RetryConfig::disabled(),
        );
        let ida_cfg = system_config(
            SystemUnderTest::Ida { error_rate: 0.2 },
            geometry,
            timing,
            RetryConfig::disabled(),
        );
        let base = run_config(preset, base_cfg, &scale);
        let ida = run_config(preset, ida_cfg, &scale);
        let norm = normalized_read_response(&ida, &base);
        sum += norm;
        t2.row(vec![
            preset.spec.name.clone(),
            f(norm, 3),
            f((1.0 - norm) * 100.0, 1),
        ]);
        eprintln!("  finished {}", preset.spec.name);
    }
    println!("{}", t2.render());
    println!(
        "Average QLC improvement: {:.1}% — expected to exceed the TLC result\n\
         (the paper predicts QLC benefits more from its larger latency spread).",
        (1.0 - sum / presets.len() as f64) * 100.0
    );
}
