//! Section III-C — the space-side costs of IDA coding, in the paper's two
//! scenarios:
//!
//! **A. Block usage growth.** IDA keeps refresh target blocks alive
//! instead of letting GC reclaim them. The paper reports the in-use block
//! increase as 2–4 % of the 512 GB device, equivalently 14–30 % (25 % on
//! average) of the workloads' own footprints (20–110 GB).
//!
//! **B. GC impact under follow-on writes.** With the user space fully
//! utilized plus 15 % over-provisioning, write-intensive traffic after the
//! IDA workloads changes GC invocations and erases by only a few percent
//! (paper: up to 3 %), shrinking as IDA blocks get reclaimed.

use ida_bench::runner::{system_config, to_host_ops, ExperimentScale, SystemUnderTest};
use ida_bench::table::{f, TextTable};
use ida_flash::addr::BlockAddr;
use ida_flash::timing::FlashTiming;
use ida_ftl::block::BlockState;
use ida_ssd::retry::RetryConfig;
use ida_ssd::Simulator;
use ida_workloads::suite::paper_workloads;
use ida_workloads::synth::WorkloadSpec;

/// Blocks that hold at least one valid page (plus open blocks): the blocks
/// GC cannot reclaim for free.
fn data_holding_blocks(sim: &Simulator) -> u32 {
    let blocks = sim.ftl().blocks();
    let geometry = *blocks.geometry();
    let closed_with_data = blocks
        .reclaimable_blocks()
        .filter(|&(_, valid, _)| valid > 0)
        .count() as u32;
    let open = (0..geometry.total_blocks())
        .filter(|&b| blocks.state(BlockAddr(b)) == BlockState::Open)
        .count() as u32;
    closed_with_data + open
}

fn warmed(
    system: SystemUnderTest,
    scale: &ExperimentScale,
    footprint: u64,
    spec: &WorkloadSpec,
    convert: bool,
) -> Simulator {
    let cfg = system_config(
        system,
        scale.geometry,
        FlashTiming::paper_tlc(),
        RetryConfig::disabled(),
    );
    let mut sim = Simulator::new(cfg);
    sim.prefill(0..footprint);
    let aging = spec.scaled_writes(footprint, 0.25, 0xA61);
    sim.age(&to_host_ops(&aging));
    sim.set_refresh_period(u64::MAX / 4);
    if convert {
        sim.force_refresh_all(1);
    }
    sim
}

fn main() {
    let scale = ExperimentScale::from_env();
    let total_blocks = scale.geometry.total_blocks();
    println!("Section III-C — block usage and GC impact (device has {total_blocks} blocks)\n");

    // --- Part A: block growth at the paper's workload footprints. ---
    println!("A. Data-holding block growth at paper footprints\n");
    let mut t = TextTable::new(vec![
        "Name",
        "Blocks (base)",
        "Blocks (IDA)",
        "Increase % of device",
        "Increase % of workload",
    ]);
    let mut dev_sum = 0.0;
    let mut wl_sum = 0.0;
    let presets: Vec<_> = paper_workloads().into_iter().take(4).collect();
    for preset in &presets {
        let mut counts = Vec::new();
        for system in [
            SystemUnderTest::Baseline,
            SystemUnderTest::Ida { error_rate: 0.2 },
        ] {
            let cfg = system_config(
                system,
                scale.geometry,
                FlashTiming::paper_tlc(),
                RetryConfig::disabled(),
            );
            let sim0 = Simulator::new(cfg);
            let footprint =
                ((sim0.ftl().exported_pages() as f64 * preset.footprint_frac) as u64).max(1_000);
            drop(sim0);
            let sim = warmed(system, &scale, footprint, &preset.spec, true);
            counts.push((data_holding_blocks(&sim), footprint));
        }
        let (base, footprint) = counts[0];
        let (ida, _) = counts[1];
        let dev_inc = (ida as f64 - base as f64) / total_blocks as f64 * 100.0;
        let wl_blocks = footprint as f64 / scale.geometry.pages_per_block() as f64;
        let wl_inc = (ida as f64 - base as f64) / wl_blocks * 100.0;
        dev_sum += dev_inc;
        wl_sum += wl_inc;
        t.row(vec![
            preset.spec.name.clone(),
            base.to_string(),
            ida.to_string(),
            f(dev_inc, 2),
            f(wl_inc, 1),
        ]);
        eprintln!("  A done {}", preset.spec.name);
    }
    println!("{}", t.render());
    println!(
        "Averages: +{:.2}% of device (paper: 2-4%), +{:.1}% of workload size (paper: 14-30%, avg 25%)\n",
        dev_sum / presets.len() as f64,
        wl_sum / presets.len() as f64
    );

    // --- Part B: GC impact when write-intensive traffic follows on a
    // fully-utilized device. ---
    println!("B. Erases under follow-on write-intensive traffic (full device)\n");
    let mut t2 = TextTable::new(vec![
        "Name",
        "Erases base (early/late)",
        "Erases IDA (early/late)",
        "Increase % (early -> late)",
    ]);
    let mut er_sum = 0.0;
    for preset in &presets {
        let mut erases = Vec::new();
        for system in [
            SystemUnderTest::Baseline,
            SystemUnderTest::Ida { error_rate: 0.2 },
        ] {
            let cfg = system_config(
                system,
                scale.geometry,
                FlashTiming::paper_tlc(),
                RetryConfig::disabled(),
            );
            let sim0 = Simulator::new(cfg);
            // "User space fully utilized": fill 70% of exported space so the
            // follow-on writes run the device at GC steady state.
            let footprint = (sim0.ftl().exported_pages() as f64 * 0.70) as u64;
            drop(sim0);
            let mut sim = warmed(system, &scale, footprint, &preset.spec, true);
            let writer = WorkloadSpec {
                read_ratio: 0.0,
                name: format!("{}-writer", preset.spec.name),
                seed: preset.spec.seed ^ 0xBEEF,
                write_size_pages: 4.0,
                ..preset.spec.clone()
            };
            // Two windows: the transient right after the IDA conversions,
            // and a later window where IDA blocks have been reclaimed.
            let w1 = writer.scaled_writes(footprint, 0.3, 0xBEEF);
            let before = sim.ftl().stats().erases;
            sim.age(&to_host_ops(&w1));
            let early = sim.ftl().stats().erases - before;
            let w2 = writer.scaled_writes(footprint, 0.5, 0xBEF0);
            let mid = sim.ftl().stats().erases;
            sim.age(&to_host_ops(&w2));
            let late = sim.ftl().stats().erases - mid;
            erases.push((early, late));
        }
        let ((b_early, b_late), (i_early, i_late)) = (erases[0], erases[1]);
        let pct = |b: u64, i: u64| {
            if b == 0 {
                0.0
            } else {
                (i as f64 - b as f64) / b as f64 * 100.0
            }
        };
        let inc_early = pct(b_early, i_early);
        let inc_late = pct(b_late, i_late);
        er_sum += inc_late;
        t2.row(vec![
            preset.spec.name.clone(),
            format!("{b_early}/{b_late}"),
            format!("{i_early}/{i_late}"),
            format!("{} -> {}", f(inc_early, 1), f(inc_late, 1)),
        ]);
        eprintln!("  B done {}", preset.spec.name);
    }
    println!("{}", t2.render());
    println!(
        "Average late-window erase increase: {:.2}% (paper: up to 3%, shrinking over time)",
        er_sum / presets.len() as f64
    );
}
