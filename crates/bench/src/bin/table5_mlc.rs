//! Table V — read response time improvement of IDA-Coding-E20 on an
//! MLC-based SSD (two bits per cell, 65 µs / 115 µs page reads).
//!
//! Paper findings: 14.9 % improvement on average — meaningful but smaller
//! than TLC because MLC has only one slow page type and a smaller latency
//! spread.

use ida_bench::runner::{
    normalized_read_response, run_config, system_config, ExperimentScale, SystemUnderTest,
};
use ida_bench::table::{f, TextTable};
use ida_flash::timing::FlashTiming;
use ida_ssd::retry::RetryConfig;
use ida_workloads::suite::paper_workloads;

fn main() {
    let scale = ExperimentScale::from_env();
    let geometry = scale.geometry.with_bits_per_cell(2);
    let presets = paper_workloads();
    let paper: &[(&str, f64)] = &[
        ("proj_1", 30.8),
        ("proj_2", 8.2),
        ("proj_3", 16.3),
        ("proj_4", 8.1),
        ("hm_1", 7.8),
        ("src1_0", 18.3),
        ("src1_1", 9.6),
        ("src2_0", 3.4),
        ("stg_1", 19.8),
        ("usr_1", 31.8),
        ("usr_2", 10.6),
    ];
    let mut t = TextTable::new(vec!["Name", "Improvement %", "(paper %)"]);
    let mut sum = 0.0;
    for preset in &presets {
        let base_cfg = system_config(
            SystemUnderTest::Baseline,
            geometry,
            FlashTiming::paper_mlc(),
            RetryConfig::disabled(),
        );
        let ida_cfg = system_config(
            SystemUnderTest::Ida { error_rate: 0.2 },
            geometry,
            FlashTiming::paper_mlc(),
            RetryConfig::disabled(),
        );
        let base = run_config(preset, base_cfg, &scale);
        let ida = run_config(preset, ida_cfg, &scale);
        let imp = (1.0 - normalized_read_response(&ida, &base)) * 100.0;
        sum += imp;
        let p = paper
            .iter()
            .find(|(n, _)| *n == preset.spec.name)
            .expect("paper row");
        t.row(vec![preset.spec.name.clone(), f(imp, 1), f(p.1, 1)]);
        eprintln!("  finished {}", preset.spec.name);
    }
    println!("Table V — MLC device, IDA-Coding-E20 read response improvement\n");
    println!("{}", t.render());
    println!(
        "Average improvement: {:.1}% (paper: 14.9%)",
        sum / presets.len() as f64
    );
}
