//! The `SweepSpec`-driven entry point onto the [`ida_sweep`] engine.
//!
//! This module is the bridge between the generic orchestration engine
//! and the paper's experiments: it defines the built-in grids (Figure 8,
//! Figure 9, Figure 10), knows how to execute one [`Cell`] as a full
//! warm-up → measure simulation, and renders aggregated outcomes into
//! the same tables the standalone experiment binaries print.
//!
//! Determinism: a cell's simulator seed is its
//! [`Cell::stream_seed`] — a pure function of the cell's coordinates —
//! and the workload generators are seeded by the preset, so a cell's
//! payload never depends on which worker ran it or in what order.
//! Panics inside a cell (unknown workload, malformed parameter) flow
//! into the engine's per-cell failure records instead of aborting the
//! whole sweep.

use crate::load::{load_metrics_json, nominal_iops, run_load_cached, LoadSpec, LOAD_PCTS};
use crate::runner::{
    run_config_faulted_cached, system_config, ExperimentScale, ReplayMode, SystemUnderTest,
    WARM_SEED_BASE,
};
use crate::soak::{run_soak_cached, soak_metrics_json, SOAK_EPOCHS};
use crate::table::{f, TextTable};
use ida_faults::FaultConfig;
use ida_flash::timing::FlashTiming;
use ida_host::ArrivalSpec;
use ida_obs::json::JsonObj;
use ida_ssd::retry::RetryConfig;
use ida_ssd::Report;
use ida_sweep::{derive_stream_seed, jsonv, Cell, SweepConfig, SweepOutcome, SweepSpec, WarmCache};
use ida_workloads::suite::{paper_workload, paper_workloads};

/// The voltage-adjustment error rates of Figure 8 (E0–E80).
pub const FIG8_ERROR_RATES: [f64; 9] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];

/// The ΔtR axis of Figure 9, in µs.
pub const FIG9_DELTA_TR_US: [u64; 5] = [30, 40, 50, 60, 70];

/// The closed-loop queue depth of Figure 10.
pub const FIG10_QUEUE_DEPTH: usize = 32;

/// The decoding-failure probability of Figure 11's late-lifetime phase.
pub const FIG11_LATE_FAILURE_PROB: f64 = 0.4;

/// Spare blocks reserved per plane in the `faults` grid, so retired
/// blocks can be remapped before the device degrades to read-only.
pub const FAULT_SPARES_PER_PLANE: u32 = 2;

/// Aging levels swept by the `lifetime` grid (the `off` level is the
/// other grids' implicit baseline, `low` barely moves at our scale).
pub const LIFETIME_LEVELS: [&str; 2] = ["mid", "high"];

/// The names [`builtin_grid`] understands.
pub const BUILTIN_GRIDS: [&str; 7] = [
    "fig8", "fig9", "fig10", "fig11", "faults", "load", "lifetime",
];

fn workload_names() -> Vec<String> {
    paper_workloads().into_iter().map(|p| p.spec.name).collect()
}

fn ida_label(error_rate: f64) -> String {
    SystemUnderTest::Ida { error_rate }.label()
}

/// The grid behind a built-in sweep name (`fig8`, `fig9`, `fig10`).
pub fn builtin_grid(name: &str) -> Option<SweepSpec> {
    let workloads = workload_names();
    match name {
        "fig8" => {
            let mut systems = vec!["Baseline".to_string()];
            systems.extend(FIG8_ERROR_RATES.iter().map(|&e| ida_label(e)));
            Some(SweepSpec::new("fig8", workloads, systems))
        }
        "fig9" => Some(
            SweepSpec::new("fig9", workloads, vec!["Baseline".into(), ida_label(0.2)]).with_axis(
                "dtr_us",
                FIG9_DELTA_TR_US.iter().map(|d| d.to_string()).collect(),
            ),
        ),
        "fig10" => Some(
            SweepSpec::new("fig10", workloads, vec!["Baseline".into(), ida_label(0.2)])
                .with_axis("replay", vec![format!("qd{FIG10_QUEUE_DEPTH}")]),
        ),
        "fig11" => Some(
            SweepSpec::new("fig11", workloads, vec!["Baseline".into(), ida_label(0.2)]).with_axis(
                "phase",
                vec![
                    "early".into(),
                    format!("late{:.0}", FIG11_LATE_FAILURE_PROB * 100.0),
                ],
            ),
        ),
        "faults" => Some(
            SweepSpec::new("faults", workloads, vec!["Baseline".into(), ida_label(0.2)])
                .with_axis("faults", FaultConfig::LEVELS.map(String::from).to_vec()),
        ),
        "load" => Some(
            SweepSpec::new("load", workloads, vec!["Baseline".into(), ida_label(0.2)])
                .with_axis("load", LOAD_PCTS.iter().map(|p| p.to_string()).collect()),
        ),
        "lifetime" => Some(
            SweepSpec::new(
                "lifetime",
                workloads,
                vec!["Baseline".into(), ida_label(0.2)],
            )
            .with_axis("aging", LIFETIME_LEVELS.map(String::from).to_vec()),
        ),
        _ => None,
    }
}

/// Parse a `phase` parameter (`early`, `late<pct>`) into a retry model,
/// seeding the late-lifetime sampler from the cell's stream so every
/// cell retries independently yet reproducibly.
///
/// # Errors
///
/// Returns a message for unrecognized phases.
pub fn parse_phase(phase: &str, stream_seed: u64) -> Result<RetryConfig, String> {
    if phase == "early" {
        return Ok(RetryConfig::disabled());
    }
    if let Some(pct) = phase.strip_prefix("late") {
        let pct: f64 = pct
            .parse()
            .map_err(|_| format!("bad failure percentage in phase {phase:?}"))?;
        return Ok(RetryConfig::late_lifetime(
            pct / 100.0,
            derive_stream_seed(stream_seed, "retry"),
        ));
    }
    Err(format!(
        "unknown phase {phase:?} (expected early or late<pct>)"
    ))
}

/// Parse a system label (`Baseline`, `IDA-E20`) back into a
/// [`SystemUnderTest`].
///
/// # Errors
///
/// Returns a message for unrecognized labels.
pub fn parse_system(label: &str) -> Result<SystemUnderTest, String> {
    if label == "Baseline" {
        return Ok(SystemUnderTest::Baseline);
    }
    if let Some(pct) = label.strip_prefix("IDA-E") {
        let pct: f64 = pct
            .parse()
            .map_err(|_| format!("bad IDA error rate in system label {label:?}"))?;
        return Ok(SystemUnderTest::Ida {
            error_rate: pct / 100.0,
        });
    }
    Err(format!(
        "unknown system label {label:?} (expected Baseline or IDA-E<pct>)"
    ))
}

/// The per-cell result payload: the slice of the [`Report`] the sweep
/// renderers (and downstream analysis) consume, as deterministic JSON.
pub fn metrics_json(report: &Report) -> String {
    let ftl = &report.ftl;
    let injected_faults =
        ftl.injected_program_fails + ftl.injected_erase_fails + ftl.transient_read_faults;
    JsonObj::new()
        .u64("reads", report.reads.count)
        .f64("mean_read_ns", report.reads.mean())
        .u64("p50_read_ns", report.reads.percentile(50.0))
        .u64("p99_read_ns", report.reads.percentile(99.0))
        .u64("writes", report.writes.count)
        .f64("mean_write_ns", report.writes.mean())
        .f64("throughput_mbps", report.throughput_mbps())
        .f64("throughput_mibps", report.throughput_mibps())
        .u64("ida_reads", report.breakdown.ida)
        .u64("in_use_blocks", report.in_use_blocks as u64)
        .u64("injected_faults", injected_faults)
        .u64("injected_program_fails", ftl.injected_program_fails)
        .u64("injected_erase_fails", ftl.injected_erase_fails)
        .u64("transient_read_faults", ftl.transient_read_faults)
        .u64("write_redirects", ftl.write_redirects)
        .u64("retired_blocks", ftl.retired_blocks)
        .u64("power_losses", ftl.power_losses)
        .u64("recoveries", ftl.recoveries)
        .u64("rejected_writes", ftl.rejected_writes)
        .raw("attribution", &report.attribution_json())
        .finish()
}

/// The axes excluded from a cell's warm identity: everything on this
/// list is armed or applied *after* warm-up, so cells differing only
/// here share a bit-identical warm-up (and one snapshot). `dtr_us` and
/// `phase` stay in the identity — timing and retry configuration ride
/// inside the [`ida_ssd::SsdConfig`] the cache key fingerprints, so
/// excluding them would not widen sharing anyway.
pub const WARM_EXCLUDED_AXES: [&str; 4] = ["faults", "aging", "load", "replay"];

/// A cell's warm identity: its ID with the [`WARM_EXCLUDED_AXES`]
/// parameters removed.
pub fn warm_id(cell: &Cell) -> String {
    let mut id = format!("{}/{}", cell.workload, cell.system);
    for (k, v) in &cell.params {
        if WARM_EXCLUDED_AXES.contains(&k.as_str()) {
            continue;
        }
        id.push('/');
        id.push_str(k);
        id.push('=');
        id.push_str(v);
    }
    id.push_str(&format!("/r{}", cell.replicate));
    id
}

/// The warm-phase simulator seed of a cell — a pure function of its
/// warm identity, shared by every cell that shares a warm-up.
pub fn warm_seed_for(cell: &Cell) -> u64 {
    derive_stream_seed(WARM_SEED_BASE, &warm_id(cell))
}

/// Execute one cell: look up the workload, configure the system under
/// test with the cell's warm-phase seed, run the warm-up → measure
/// protocol, and render the metrics payload.
///
/// # Panics
///
/// Panics on unknown workloads, system labels, or malformed parameters —
/// the engine catches these as per-cell failures.
pub fn run_cell(cell: &Cell, scale: &ExperimentScale) -> String {
    run_cell_cached(cell, scale, None)
}

/// [`run_cell`] with an optional warm-state cache. The cache only
/// changes *when* warm-ups execute, never what any cell computes: the
/// warm-phase seed is applied unconditionally (cache on or off), and a
/// hit restores byte-identical simulator state.
pub fn run_cell_cached(cell: &Cell, scale: &ExperimentScale, warm: Option<&WarmCache>) -> String {
    let preset = paper_workload(&cell.workload)
        .unwrap_or_else(|| panic!("unknown workload {}", cell.workload));
    let system = parse_system(&cell.system).unwrap_or_else(|e| panic!("{e}"));
    let warm_seed = warm_seed_for(cell);
    if let Some(pct) = cell.param("load") {
        let pct: u64 = pct
            .parse()
            .unwrap_or_else(|_| panic!("bad load parameter {pct:?} (expected a percentage)"));
        let offered = (nominal_iops(&preset.spec) * pct / 100).max(1);
        let spec = LoadSpec::new(system, ArrivalSpec::Poisson, offered, cell.stream_seed);
        let run = run_load_cached(&preset, &spec, scale, warm_seed, warm)
            .unwrap_or_else(|e| panic!("{e}"));
        return load_metrics_json(&run);
    }
    if let Some(level) = cell.param("aging") {
        let run = run_soak_cached(
            &preset,
            system,
            level,
            SOAK_EPOCHS,
            cell.stream_seed,
            warm_seed,
            scale,
            warm,
        );
        return soak_metrics_json(&run);
    }
    let mut timing = FlashTiming::paper_tlc();
    if let Some(d) = cell.param("dtr_us") {
        let d: u64 = d
            .parse()
            .unwrap_or_else(|_| panic!("bad dtr_us parameter {d:?}"));
        timing = timing.with_delta_tr_us(d);
    }
    let mode = match cell.param("replay") {
        None | Some("open") => ReplayMode::OpenLoop,
        Some(qd) => match qd.strip_prefix("qd").and_then(|n| n.parse().ok()) {
            Some(depth) => ReplayMode::ClosedLoop(depth),
            None => panic!("bad replay parameter {qd:?} (expected open or qd<depth>)"),
        },
    };
    let retry = match cell.param("phase") {
        None => RetryConfig::disabled(),
        Some(phase) => parse_phase(phase, cell.stream_seed).unwrap_or_else(|e| panic!("{e}")),
    };
    let faults = cell.param("faults").map(|level| {
        FaultConfig::preset(level, derive_stream_seed(cell.stream_seed, "faults"))
            .unwrap_or_else(|| panic!("unknown fault level {level:?}"))
    });
    let mut cfg = system_config(system, scale.geometry, timing, retry);
    cfg.ftl.seed = warm_seed;
    if faults.is_some() {
        cfg.ftl.spare_blocks_per_plane = FAULT_SPARES_PER_PLANE;
    }
    let report = run_config_faulted_cached(&preset, cfg, scale, mode, faults, warm);
    metrics_json(&report)
}

/// Run a grid on the engine: expand the spec, execute every cell at
/// `scale` on `cfg.jobs` workers (with checkpoint/resume when a journal
/// is configured), and collect the outcome.
///
/// # Errors
///
/// Fails on journal I/O errors; cell panics become failure records.
pub fn run_grid(
    spec: &SweepSpec,
    scale: &ExperimentScale,
    cfg: &SweepConfig,
) -> std::io::Result<SweepOutcome> {
    run_grid_on(spec, scale, cfg, Backend::Local)
}

/// Where a grid's cells execute. Either way the aggregate is the same
/// bytes — the backend only decides which processes burn the CPU.
#[derive(Debug)]
pub enum Backend {
    /// The in-process worker pool, on `cfg.jobs` threads.
    Local,
    /// The distributed fabric: this process becomes the coordinator and
    /// serves cells to `idasim worker` processes over the listener.
    Distributed {
        /// The already-bound coordinator listener.
        listener: std::net::TcpListener,
    },
}

/// [`run_grid`] with an explicit execution [`Backend`].
///
/// # Errors
///
/// Journal I/O and listener errors; cell panics (local or remote) and
/// worker disconnects become per-cell failure records.
pub fn run_grid_on(
    spec: &SweepSpec,
    scale: &ExperimentScale,
    cfg: &SweepConfig,
    backend: Backend,
) -> std::io::Result<SweepOutcome> {
    let cells = spec.cells();
    let outcomes = match backend {
        Backend::Local => ida_sweep::run_cells(&spec.name, &cells, cfg, |cell| {
            run_cell_cached(cell, scale, cfg.warm_cache())
        })?,
        Backend::Distributed { listener } => ida_sweep::net::serve(
            &spec.name,
            &cells,
            cfg,
            &setup_json(scale),
            listener,
            |ev| eprintln!("{}", ev.to_json_line()),
        )?,
    };
    Ok(SweepOutcome {
        sweep: spec.name.clone(),
        outcomes,
    })
}

/// The coordinator→worker experiment-setup payload: the scale knobs a
/// worker needs to execute cells byte-identically to a local run. The
/// geometry never travels — every built-in scale uses the workspace's
/// scaled-8GB device, so only the trace knobs vary.
pub fn setup_json(scale: &ExperimentScale) -> String {
    JsonObj::new()
        .u64("requests", scale.requests as u64)
        .f64("refresh_period_frac", scale.refresh_period_frac)
        .finish()
}

/// Rebuild an [`ExperimentScale`] from a coordinator's setup payload.
///
/// # Errors
///
/// Returns a message for malformed or incomplete payloads.
pub fn scale_from_setup(setup: &str) -> Result<ExperimentScale, String> {
    let v = jsonv::parse(setup).map_err(|e| format!("bad setup payload: {e}"))?;
    let requests = v
        .get("requests")
        .and_then(|x| x.as_f64())
        .ok_or("setup payload missing requests")? as usize;
    let frac = v
        .get("refresh_period_frac")
        .and_then(|x| x.as_f64())
        .ok_or("setup payload missing refresh_period_frac")?;
    let mut scale = ExperimentScale::smoke().with_requests(requests);
    scale.refresh_period_frac = frac;
    Ok(scale)
}

/// Run a fabric worker executing built-in-grid cells: rebuild the
/// coordinator's scale from the `Welcome` setup and run each cell
/// exactly as the local pool would. The process-wide warm cache
/// rendezvouses snapshot images through the coordinator, so a warm-up
/// built by any worker on the fabric is forked by all of them.
///
/// # Errors
///
/// Connection and handshake failures (when no connection succeeds).
pub fn run_grid_worker(
    addr: &str,
    threads: usize,
    wait: std::time::Duration,
) -> std::io::Result<ida_sweep::WorkerReport> {
    let warm = ida_sweep::WarmCache::new(None)
        .with_remote(Box::new(ida_sweep::WarmPort::connect(addr, wait)?));
    let report = ida_sweep::net::run_worker(addr, threads, wait, |cell, setup| {
        let scale = scale_from_setup(setup).unwrap_or_else(|e| panic!("{e}"));
        run_cell_cached(cell, &scale, Some(&warm))
    })?;
    eprintln!("{}", warm.stats_line(report.ran));
    Ok(report)
}

/// A numeric metric from a cell's payload (`None` if the cell failed or
/// the key is absent).
pub fn metric(
    outcome: &SweepOutcome,
    workload: &str,
    system: &str,
    params: &[(&str, &str)],
    key: &str,
) -> Option<f64> {
    let payload = outcome.payload(workload, system, params)?;
    jsonv::parse(payload).ok()?.get(key)?.as_f64()
}

/// A boolean metric from a cell's payload.
pub fn metric_bool(
    outcome: &SweepOutcome,
    workload: &str,
    system: &str,
    params: &[(&str, &str)],
    key: &str,
) -> Option<bool> {
    let payload = outcome.payload(workload, system, params)?;
    jsonv::parse(payload).ok()?.get(key)?.as_bool()
}

fn failed_note(outcome: &SweepOutcome) -> String {
    if outcome.failed_count() == 0 {
        String::new()
    } else {
        let failed: Vec<String> = outcome
            .outcomes
            .iter()
            .filter(|o| o.payload().is_none())
            .map(|o| o.cell.id())
            .collect();
        format!(
            "\nWARNING: {} cell(s) failed and are missing above: {}\n",
            failed.len(),
            failed.join(", ")
        )
    }
}

/// Render a built-in grid's outcome as its figure table.
///
/// # Errors
///
/// Returns a message for unknown sweep names.
pub fn render(outcome: &SweepOutcome) -> Result<String, String> {
    match outcome.sweep.as_str() {
        "fig8" => Ok(render_fig8(outcome)),
        "fig9" => Ok(render_fig9(outcome)),
        "fig10" => Ok(render_fig10(outcome)),
        "fig11" => Ok(render_fig11(outcome)),
        "faults" => Ok(render_faults(outcome)),
        "load" => Ok(render_load(outcome)),
        "lifetime" => Ok(render_lifetime(outcome)),
        other => Err(format!("no renderer for sweep {other:?}")),
    }
}

/// Figure 8 table: normalized read response per workload × error rate.
pub fn render_fig8(outcome: &SweepOutcome) -> String {
    let workloads = workload_names();
    let mut header = vec!["Name".to_string()];
    header.extend(
        FIG8_ERROR_RATES
            .iter()
            .map(|e| format!("E{:.0}", e * 100.0)),
    );
    let mut t = TextTable::new(header);
    let mut sums = vec![0.0; FIG8_ERROR_RATES.len()];
    for w in &workloads {
        let base = metric(outcome, w, "Baseline", &[], "mean_read_ns").unwrap_or(0.0);
        let mut row = vec![w.clone()];
        for (i, &e) in FIG8_ERROR_RATES.iter().enumerate() {
            let ida = metric(outcome, w, &ida_label(e), &[], "mean_read_ns");
            let norm = match ida {
                Some(ida) if base > 0.0 => ida / base,
                _ => 1.0,
            };
            sums[i] += norm;
            row.push(f(norm, 3));
        }
        t.row(row);
    }
    let mut avg_row = vec!["AVERAGE".to_string()];
    for s in &sums {
        avg_row.push(f(s / workloads.len() as f64, 3));
    }
    t.row(avg_row);

    let mut out = String::from("Figure 8 — normalized read response time (lower is better)\n\n");
    out.push_str(&t.render());
    out.push('\n');
    out.push_str("Paper averages: E0 ≈ 0.69, E20 ≈ 0.72, E50 ≈ 0.798, E80 ≈ 0.93\n");
    out.push_str(&format!(
        "Measured averages: E0 = {:.3}, E20 = {:.3}, E50 = {:.3}, E80 = {:.3}\n",
        sums[0] / workloads.len() as f64,
        sums[2] / workloads.len() as f64,
        sums[5] / workloads.len() as f64,
        sums[8] / workloads.len() as f64,
    ));
    out.push_str(&failed_note(outcome));
    out
}

/// Figure 9 table: normalized read response of IDA-E20 per ΔtR.
pub fn render_fig9(outcome: &SweepOutcome) -> String {
    let workloads = workload_names();
    let mut header = vec!["Name".to_string()];
    header.extend(FIG9_DELTA_TR_US.iter().map(|d| format!("dTR={d}us")));
    let mut t = TextTable::new(header);
    let mut sums = vec![0.0; FIG9_DELTA_TR_US.len()];
    for w in &workloads {
        let mut row = vec![w.clone()];
        for (i, &d) in FIG9_DELTA_TR_US.iter().enumerate() {
            let dtr = d.to_string();
            let params: &[(&str, &str)] = &[("dtr_us", &dtr)];
            let base = metric(outcome, w, "Baseline", params, "mean_read_ns").unwrap_or(0.0);
            let ida = metric(outcome, w, &ida_label(0.2), params, "mean_read_ns");
            let norm = match ida {
                Some(ida) if base > 0.0 => ida / base,
                _ => 1.0,
            };
            sums[i] += norm;
            row.push(f(norm, 3));
        }
        t.row(row);
    }
    let mut avg = vec!["AVERAGE".to_string()];
    for s in &sums {
        avg.push(f(s / workloads.len() as f64, 3));
    }
    t.row(avg);

    let mut out =
        String::from("Figure 9 — normalized read response of IDA-E20 vs ΔtR (lower is better)\n\n");
    out.push_str(&t.render());
    out.push('\n');
    out.push_str("Paper: ΔtR=30µs ⇒ ~0.86, ΔtR=50µs ⇒ ~0.72, ΔtR=70µs ⇒ ~0.51 on average.\n");
    out.push_str(&failed_note(outcome));
    out
}

/// Figure 10 table: closed-loop device throughput, baseline vs IDA-E20.
pub fn render_fig10(outcome: &SweepOutcome) -> String {
    let workloads = workload_names();
    let qd = format!("qd{FIG10_QUEUE_DEPTH}");
    let params: &[(&str, &str)] = &[("replay", &qd)];
    let mut t = TextTable::new(vec![
        "Name",
        "Baseline MB/s",
        "IDA-E20 MB/s",
        "IDA-E20 MiB/s",
        "Normalized",
    ]);
    let mut sum = 0.0;
    for w in &workloads {
        let base = metric(outcome, w, "Baseline", params, "throughput_mbps").unwrap_or(0.0);
        let ida = metric(outcome, w, &ida_label(0.2), params, "throughput_mbps").unwrap_or(0.0);
        let ida_mib =
            metric(outcome, w, &ida_label(0.2), params, "throughput_mibps").unwrap_or(0.0);
        let norm = ida / base.max(1e-9);
        sum += norm;
        t.row(vec![
            w.clone(),
            f(base, 1),
            f(ida, 1),
            f(ida_mib, 1),
            f(norm, 3),
        ]);
    }
    let mut out = format!(
        "Figure 10 — device throughput, closed loop at queue depth {FIG10_QUEUE_DEPTH} (higher is better)\n"
    );
    out.push_str("MB/s = 10^6 bytes/s (decimal); MiB/s = 2^20 bytes/s (binary)\n\n");
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(&format!(
        "Average normalized throughput: {:.3} (paper: ≈ 1.10)\n",
        sum / workloads.len() as f64
    ));
    out.push_str(&failed_note(outcome));
    out
}

/// Figure 11 table: normalized read response by lifetime phase.
pub fn render_fig11(outcome: &SweepOutcome) -> String {
    let workloads = workload_names();
    let late = format!("late{:.0}", FIG11_LATE_FAILURE_PROB * 100.0);
    let phases = ["early".to_string(), late];
    let mut t = TextTable::new(vec!["Name", "early", "late"]);
    let mut sums = [0.0f64; 2];
    for w in &workloads {
        let mut row = vec![w.clone()];
        for (i, phase) in phases.iter().enumerate() {
            let params: &[(&str, &str)] = &[("phase", phase)];
            let base = metric(outcome, w, "Baseline", params, "mean_read_ns").unwrap_or(0.0);
            let ida = metric(outcome, w, &ida_label(0.2), params, "mean_read_ns");
            let norm = match ida {
                Some(ida) if base > 0.0 => ida / base,
                _ => 1.0,
            };
            sums[i] += norm;
            row.push(f(norm, 3));
        }
        t.row(row);
    }
    let n = workloads.len() as f64;
    t.row(vec![
        "AVERAGE".to_string(),
        f(sums[0] / n, 3),
        f(sums[1] / n, 3),
    ]);
    let mut out = String::from(
        "Figure 11 — normalized read response by lifetime phase (lower is better)\n\n",
    );
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(&format!(
        "Improvements: early {:.1}% (paper: 28%), late {:.1}% (paper: 42.3%)\n",
        (1.0 - sums[0] / n) * 100.0,
        (1.0 - sums[1] / n) * 100.0
    ));
    out.push_str(&failed_note(outcome));
    out
}

/// Faults table: IDA-E20's normalized read response per fault level, plus
/// the injected-fault and recovery totals that prove every cell both
/// suffered and survived its plan.
pub fn render_faults(outcome: &SweepOutcome) -> String {
    let workloads = workload_names();
    let levels = FaultConfig::LEVELS;
    let mut header = vec!["Name".to_string()];
    header.extend(levels.iter().map(|l| l.to_string()));
    let mut t = TextTable::new(header);
    let mut sums = vec![0.0f64; levels.len()];
    for w in &workloads {
        let mut row = vec![w.clone()];
        for (i, level) in levels.iter().enumerate() {
            let params: &[(&str, &str)] = &[("faults", level)];
            let base = metric(outcome, w, "Baseline", params, "mean_read_ns").unwrap_or(0.0);
            let ida = metric(outcome, w, &ida_label(0.2), params, "mean_read_ns");
            let norm = match ida {
                Some(ida) if base > 0.0 => ida / base,
                _ => 1.0,
            };
            sums[i] += norm;
            row.push(f(norm, 3));
        }
        t.row(row);
    }
    let n = workloads.len() as f64;
    let mut avg = vec!["AVERAGE".to_string()];
    for s in &sums {
        avg.push(f(s / n, 3));
    }
    t.row(avg);

    let mut out = String::from(
        "Faults — normalized read response of IDA-E20 under rising fault rates (lower is better)\n\n",
    );
    out.push_str(&t.render());
    out.push('\n');
    // Per-level fault/recovery totals across every workload and system.
    let mut totals = TextTable::new(vec![
        "Level",
        "Injected",
        "Redirects",
        "Retired",
        "Power losses",
        "Recoveries",
        "Rejected writes",
    ]);
    for level in levels {
        let params: &[(&str, &str)] = &[("faults", level)];
        let sum_of = |key: &str| -> f64 {
            let mut total = 0.0;
            for w in &workloads {
                for sys in ["Baseline".to_string(), ida_label(0.2)] {
                    total += metric(outcome, w, &sys, params, key).unwrap_or(0.0);
                }
            }
            total
        };
        totals.row(vec![
            level.to_string(),
            f(sum_of("injected_faults"), 0),
            f(sum_of("write_redirects"), 0),
            f(sum_of("retired_blocks"), 0),
            f(sum_of("power_losses"), 0),
            f(sum_of("recoveries"), 0),
            f(sum_of("rejected_writes"), 0),
        ]);
    }
    out.push_str(&totals.render());
    out.push_str(&failed_note(outcome));
    out
}

/// Load table: the latency-vs-load hockey stick — end-to-end read p99
/// (µs) per workload × offered rate, one row per system. A trailing `*`
/// marks a cell that missed the SLO, `!` one that shed requests.
pub fn render_load(outcome: &SweepOutcome) -> String {
    let workloads = workload_names();
    let systems = ["Baseline".to_string(), ida_label(0.2)];
    let mut header = vec!["Name".to_string(), "System".to_string()];
    header.extend(LOAD_PCTS.iter().map(|p| format!("{p}%")));
    let mut t = TextTable::new(header);
    for w in &workloads {
        for sys in &systems {
            let mut row = vec![w.clone(), sys.clone()];
            for pct in LOAD_PCTS {
                let load = pct.to_string();
                let params: &[(&str, &str)] = &[("load", &load)];
                let p99 = metric(outcome, w, sys, params, "read_p99_ns");
                let met = metric_bool(outcome, w, sys, params, "slo_met");
                let shed = metric(outcome, w, sys, params, "shed").unwrap_or(0.0);
                row.push(match p99 {
                    Some(ns) => {
                        let mut cell = f(ns / 1_000.0, 0);
                        if met == Some(false) {
                            cell.push('*');
                        }
                        if shed > 0.0 {
                            cell.push('!');
                        }
                        cell
                    }
                    None => "-".to_string(),
                });
            }
            t.row(row);
        }
    }
    let mut out = String::from(
        "Load — end-to-end read p99 (µs) vs offered rate, % of nominal (the hockey stick)\n",
    );
    out.push_str("* = missed the 2 ms p99 SLO, ! = shed requests at admission\n\n");
    out.push_str(&t.render());
    out.push_str(&failed_note(outcome));
    out
}

/// Lifetime table: IDA-E20's normalized mean read response fresh vs
/// aged per aging level. The aged column below the fresh column means
/// IDA's advantage *widens* as the device wears — aged reads sense more
/// levels on baseline pages, so IDA's shallower ladders save more.
pub fn render_lifetime(outcome: &SweepOutcome) -> String {
    let workloads = workload_names();
    let mut header = vec!["Name".to_string()];
    for level in LIFETIME_LEVELS {
        header.push(format!("{level} fresh"));
        header.push(format!("{level} aged"));
    }
    let mut t = TextTable::new(header);
    let mut sums = vec![0.0f64; LIFETIME_LEVELS.len() * 2];
    for w in &workloads {
        let mut row = vec![w.clone()];
        for (i, level) in LIFETIME_LEVELS.iter().enumerate() {
            let params: &[(&str, &str)] = &[("aging", level)];
            for (j, key) in ["fresh_mean_read_ns", "aged_mean_read_ns"]
                .iter()
                .enumerate()
            {
                let base = metric(outcome, w, "Baseline", params, key).unwrap_or(0.0);
                let ida = metric(outcome, w, &ida_label(0.2), params, key);
                let norm = match ida {
                    Some(ida) if base > 0.0 => ida / base,
                    _ => 1.0,
                };
                sums[i * 2 + j] += norm;
                row.push(f(norm, 3));
            }
        }
        t.row(row);
    }
    let n = workloads.len() as f64;
    let mut avg = vec!["AVERAGE".to_string()];
    for s in &sums {
        avg.push(f(s / n, 3));
    }
    t.row(avg);

    let mut out = String::from(
        "Lifetime — normalized mean read response of IDA-E20, fresh (epoch 0) vs aged (rated P/E)\n",
    );
    out.push_str("Lower is better; aged < fresh means IDA's advantage widens with wear.\n\n");
    out.push_str(&t.render());
    out.push('\n');
    // Invariant and read-only roll-up across every soak cell.
    let mut violations = 0.0;
    let mut read_only = 0u64;
    for w in &workloads {
        for sys in ["Baseline".to_string(), ida_label(0.2)] {
            for level in LIFETIME_LEVELS {
                let params: &[(&str, &str)] = &[("aging", level)];
                violations += metric(outcome, w, &sys, params, "violations").unwrap_or(0.0);
                if metric_bool(outcome, w, &sys, params, "read_only") == Some(true) {
                    read_only += 1;
                }
            }
        }
    }
    out.push_str(&format!(
        "Invariant violations across all soaks: {violations:.0}; cells ending read-only: {read_only}\n"
    ));
    out.push_str(&failed_note(outcome));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_grids_expand_to_the_paper_dimensions() {
        // Fig 8: 11 workloads × (1 baseline + 9 error rates).
        assert_eq!(builtin_grid("fig8").unwrap().len(), 11 * 10);
        // Fig 9: 11 workloads × 5 ΔtR points × (baseline + IDA-E20).
        assert_eq!(builtin_grid("fig9").unwrap().len(), 11 * 5 * 2);
        // Fig 10: 11 workloads × (baseline + IDA-E20).
        assert_eq!(builtin_grid("fig10").unwrap().len(), 11 * 2);
        // Fig 11: 11 workloads × 2 lifetime phases × (baseline + IDA-E20).
        assert_eq!(builtin_grid("fig11").unwrap().len(), 11 * 2 * 2);
        // Faults: 11 workloads × 4 fault levels × (baseline + IDA-E20).
        assert_eq!(builtin_grid("faults").unwrap().len(), 11 * 4 * 2);
        // Load: 11 workloads × 5 offered rates × (baseline + IDA-E20).
        assert_eq!(builtin_grid("load").unwrap().len(), 11 * 5 * 2);
        // Lifetime: 11 workloads × 2 aging levels × (baseline + IDA-E20).
        assert_eq!(builtin_grid("lifetime").unwrap().len(), 11 * 2 * 2);
        assert!(builtin_grid("fig99").is_none());
        for name in BUILTIN_GRIDS {
            assert!(builtin_grid(name).is_some(), "missing grid {name}");
        }
    }

    #[test]
    fn phase_labels_parse_into_retry_configs() {
        assert_eq!(parse_phase("early", 1).unwrap(), RetryConfig::disabled());
        let late = parse_phase("late40", 1).unwrap();
        assert!((late.failure_prob - 0.4).abs() < 1e-9);
        assert!(late.max_retries > 0);
        // The seed is a pure function of the cell stream, not a constant.
        assert_eq!(late.seed, parse_phase("late40", 1).unwrap().seed);
        assert_ne!(late.seed, parse_phase("late40", 2).unwrap().seed);
        assert!(parse_phase("midlife", 1).is_err());
        assert!(parse_phase("lateX", 1).is_err());
    }

    #[test]
    fn fault_metrics_appear_in_the_payload() {
        let mut report = Report::default();
        report.ftl.injected_program_fails = 3;
        report.ftl.transient_read_faults = 4;
        report.ftl.recoveries = 1;
        let v = jsonv::parse(&metrics_json(&report)).unwrap();
        assert_eq!(v.get("injected_faults").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("recoveries").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("rejected_writes").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn system_labels_round_trip() {
        assert_eq!(parse_system("Baseline"), Ok(SystemUnderTest::Baseline));
        assert_eq!(
            parse_system("IDA-E20"),
            Ok(SystemUnderTest::Ida { error_rate: 0.2 })
        );
        for e in FIG8_ERROR_RATES {
            let label = SystemUnderTest::Ida { error_rate: e }.label();
            assert_eq!(
                parse_system(&label),
                Ok(SystemUnderTest::Ida { error_rate: e })
            );
        }
        assert!(parse_system("IDA-EX").is_err());
        assert!(parse_system("Turbo").is_err());
    }

    #[test]
    fn metrics_payload_has_the_renderer_keys() {
        let mut report = Report::default();
        report.reads.record(118_000);
        let json = metrics_json(&report);
        let v = jsonv::parse(&json).unwrap();
        for key in [
            "reads",
            "mean_read_ns",
            "p99_read_ns",
            "throughput_mbps",
            "throughput_mibps",
            "ida_reads",
        ] {
            assert!(v.get(key).is_some(), "missing {key} in {json}");
        }
        assert_eq!(v.get("mean_read_ns").unwrap().as_f64(), Some(118_000.0));
        // The attribution waterfall rides along for downstream analysis.
        let attr = v.get("attribution").expect("attribution object");
        assert!(attr.get("reads").is_some() && attr.get("writes").is_some());
    }
}
