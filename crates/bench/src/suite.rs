//! The `idasim bench` fixed-seed benchmark suite.
//!
//! Three benches cover the simulator's hot paths at increasing integration
//! depth:
//!
//! 1. **`event_queue/push_pop`** — the event-queue core: seeded
//!    pseudo-random pushes interleaved with pops, checksummed so the
//!    traversal order is pinned.
//! 2. **`ftl/write_gc_refresh`** — the FTL under allocation pressure: a
//!    low-overprovision device is prefilled, then updated until watermark
//!    GC (victim selection, relocation, erase) and IDA refresh cycles run
//!    continuously.
//! 3. **`fig8_smoke/end_to_end`** — one fig8 cell end-to-end (warm-up +
//!    measured open-loop replay of `hm_1` on Baseline and IDA-E20), the
//!    shape every sweep multiplies by 80–110 cells.
//! 4. **`snapshot/capture_restore`** — the warm-state snapshot round
//!    trip: capture a warmed simulator to bytes and fork a new one from
//!    them, the operation the sweep warm cache performs per cell.
//!
//! The full (non-smoke) suite adds a pair of whole-grid benches —
//! **`sweep_faults/cache_off`** and **`sweep_faults/cache_on`** — that run
//! the same 8-cell faults grid without and with the warm cache. Their
//! `agg_hash` counters are equal by construction (the cache is
//! output-invisible) and the wall-clock delta is the measured warm-up
//! saving.
//!
//! Every bench reports deterministic *operation counts* (byte-identical
//! across runs and machines — the CI determinism guard compares them) next
//! to non-deterministic wall-clock and derived rates. [`compare_json`]
//! embeds a previously captured run as the baseline and computes per-bench
//! speedups; the committed `BENCH_*.json` trajectory files are such
//! comparison documents.

use crate::runner::{
    system_config, to_host_ops, warm_up, warmed_simulator, ExperimentScale, SystemUnderTest,
};
use crate::sweep::run_grid;
use ida_core::refresh::RefreshMode;
use ida_flash::geometry::Geometry;
use ida_flash::timing::FlashTiming;
use ida_ftl::{Ftl, FtlConfig, Lpn};
use ida_obs::json::{array, JsonObj};
use ida_obs::rng::Rng64;
use ida_ssd::event::EventQueue;
use ida_ssd::retry::RetryConfig;
use ida_ssd::Simulator;
use ida_sweep::jsonv::{self, JsonValue};
use ida_sweep::{SweepConfig, SweepSpec};
use std::fmt::Write as _;
use std::time::Instant;

/// Schema tag of a single captured suite run.
pub const SUITE_SCHEMA: &str = "idasim-bench/v1";
/// Schema tag of a baseline-vs-current comparison document.
pub const COMPARE_SCHEMA: &str = "idasim-bench-compare/v1";

/// One bench's outcome: a wall-clock measurement plus the deterministic
/// operation counters that define "the same amount of work".
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Bench name, e.g. `fig8_smoke/end_to_end`.
    pub name: &'static str,
    /// Wall-clock nanoseconds of the measured loop (non-deterministic).
    pub wall_ns: u64,
    /// Wall-clock nanoseconds spent on setup outside the measured loop
    /// (warm-up, trace generation, simulator construction); 0 when the
    /// bench has no setup phase.
    pub setup_ns: u64,
    /// The slice of `setup_ns` spent constructing simulators (allocation,
    /// mapping tables); 0 when the bench does not break setup down.
    pub construct_ns: u64,
    /// The slice of `setup_ns` spent on warm-up proper (prefill, aging,
    /// steady-state refresh) — the part the sweep warm cache eliminates
    /// on a hit; 0 when the bench does not break setup down.
    pub warmup_ns: u64,
    /// Deterministic operation counters, in emission order.
    pub ops: Vec<(&'static str, u64)>,
}

impl BenchResult {
    /// The value of a deterministic counter (0 when absent).
    pub fn count(&self, key: &str) -> u64 {
        self.ops
            .iter()
            .find(|(k, _)| *k == key)
            .map_or(0, |(_, v)| *v)
    }

    /// The primary work counter the bench's headline rate divides by:
    /// `events` when present, then `flash_ops`, then the bench's first
    /// counter (snapshot and sweep benches count neither).
    pub fn primary_counter(&self) -> &'static str {
        if self.count("events") > 0 {
            "events"
        } else if self.count("flash_ops") > 0 {
            "flash_ops"
        } else {
            self.ops.first().map_or("flash_ops", |(k, _)| *k)
        }
    }

    /// Primary work units per wall-clock second.
    pub fn rate_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.count(self.primary_counter()) as f64 / (self.wall_ns as f64 / 1e9)
    }

    fn per_sec(&self, key: &str) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.count(key) as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// The bench as a JSON object string. The nested `ops` object is the
    /// deterministic part; `wall_ns` and the `*_per_sec` rates vary run to
    /// run.
    pub fn to_json(&self) -> String {
        let mut ops = JsonObj::new();
        for (k, v) in &self.ops {
            ops = ops.u64(k, *v);
        }
        let mut obj = JsonObj::new()
            .str("name", self.name)
            .u64("wall_ns", self.wall_ns);
        if self.setup_ns > 0 {
            obj = obj.u64("setup_ns", self.setup_ns);
        }
        if self.construct_ns > 0 {
            obj = obj.u64("construct_ns", self.construct_ns);
        }
        if self.warmup_ns > 0 {
            obj = obj.u64("warmup_ns", self.warmup_ns);
        }
        if self.count("events") > 0 {
            obj = obj.f64("events_per_sec", self.per_sec("events"));
        }
        if self.count("flash_ops") > 0 {
            obj = obj.f64("flash_ops_per_sec", self.per_sec("flash_ops"));
        }
        obj.raw("ops", &ops.finish()).finish()
    }
}

/// The outcome of one full suite run.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// `smoke` or `full`.
    pub suite: &'static str,
    /// Bench outcomes, in execution order.
    pub benches: Vec<BenchResult>,
}

impl SuiteResult {
    /// The suite as one JSON object string.
    pub fn to_json(&self) -> String {
        JsonObj::new()
            .str("schema", SUITE_SCHEMA)
            .str("suite", self.suite)
            .raw("benches", &array(self.benches.iter().map(|b| b.to_json())))
            .finish()
    }

    /// A human-readable summary table.
    pub fn render_table(&self) -> String {
        let mut out = format!("benchmark suite ({})\n", self.suite);
        for b in &self.benches {
            let _ = writeln!(
                out,
                "  {:<26} {:>9.1} ms  {:>12.0} {}/s  (gc_runs {})",
                b.name,
                b.wall_ns as f64 / 1e6,
                b.rate_per_sec(),
                b.primary_counter(),
                b.count("gc_runs"),
            );
        }
        out
    }
}

/// Run the full fixed-seed suite (`smoke` shrinks every bench for CI; the
/// full suite also runs the whole-grid warm-cache pair).
pub fn run_suite(smoke: bool) -> SuiteResult {
    let mut benches = vec![
        bench_event_queue(smoke),
        bench_ftl_write_gc_refresh(smoke),
        bench_fig8_end_to_end(smoke),
        bench_snapshot_capture_restore(smoke),
    ];
    if !smoke {
        benches.push(bench_sweep_faults(false));
        benches.push(bench_sweep_faults(true));
    }
    SuiteResult {
        suite: if smoke { "smoke" } else { "full" },
        benches,
    }
}

/// Event-queue push/pop with a bounded in-flight window, checksummed so
/// the pop order is part of the deterministic result. Best of three
/// same-seed iterations: the op counts are identical every time, so the
/// minimum wall-clock is the least-noisy estimate of the hot path.
fn bench_event_queue(smoke: bool) -> BenchResult {
    let pushes: u64 = if smoke { 200_000 } else { 2_000_000 };
    let one_pass = || {
        let start = Instant::now();
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut rng = Rng64::seed_from_u64(0xE4E4_0001);
        let mut checksum = 0u64;
        let mut pops = 0u64;
        for i in 0..pushes {
            q.push(rng.gen_below(1 << 40), i);
            if q.len() > 1024 {
                let (t, payload) = q.pop().expect("queue is non-empty");
                checksum = checksum
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(t ^ payload);
                pops += 1;
            }
        }
        while let Some((t, payload)) = q.pop() {
            checksum = checksum
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(t ^ payload);
            pops += 1;
        }
        assert_eq!(pops, pushes, "every pushed event must pop");
        (start.elapsed().as_nanos() as u64, checksum)
    };
    let (mut wall_ns, checksum) = one_pass();
    for _ in 0..2 {
        let (ns, sum) = one_pass();
        assert_eq!(sum, checksum, "same seed must give the same pop order");
        wall_ns = wall_ns.min(ns);
    }
    BenchResult {
        name: "event_queue/push_pop",
        wall_ns,
        setup_ns: 0,
        construct_ns: 0,
        warmup_ns: 0,
        ops: vec![("events", pushes * 2), ("checksum", checksum)],
    }
}

/// FTL write/GC/refresh loop on a low-overprovision device: prefill the
/// exported space, then apply seeded uniform updates with periodic due
/// refreshes, so watermark GC and IDA conversion dominate.
fn bench_ftl_write_gc_refresh(smoke: bool) -> BenchResult {
    let updates: u64 = if smoke { 50_000 } else { 250_000 };
    let cfg = FtlConfig {
        geometry: Geometry::scaled_8gb(),
        overprovision: 0.05,
        refresh_mode: RefreshMode::Ida,
        adjust_error_rate: 0.2,
        // Due mid-way through the update phase (the virtual clock below
        // advances 1 ns per host write).
        refresh_period: updates / 2,
        ..FtlConfig::default()
    };
    let start = Instant::now();
    let mut ftl = Ftl::new(cfg);
    let logical = ftl.exported_pages();
    let mut flash_ops = 0u64;
    let mut now = 0u64;
    for lpn in 0..logical {
        now += 1;
        let ops = ftl.write(Lpn(lpn), now).expect("prefill write");
        flash_ops += ops.len() as u64;
    }
    let mut rng = Rng64::seed_from_u64(0xE4E4_0002);
    for _ in 0..updates {
        now += 1;
        let lpn = rng.gen_below(logical);
        let ops = ftl.write(Lpn(lpn), now).expect("update write");
        flash_ops += ops.len() as u64;
        if now.is_multiple_of(4096) && ftl.next_refresh_due().is_some_and(|d| d <= now) {
            flash_ops += ftl.run_due_refreshes(now).len() as u64;
        }
    }
    let stats = ftl.stats();
    BenchResult {
        name: "ftl/write_gc_refresh",
        wall_ns: start.elapsed().as_nanos() as u64,
        setup_ns: 0,
        construct_ns: 0,
        warmup_ns: 0,
        ops: vec![
            ("flash_ops", flash_ops),
            ("host_writes", stats.host_writes),
            ("gc_runs", stats.gc_runs),
            ("gc_copies", stats.gc_copies),
            ("erases", stats.erases),
            ("refreshes", stats.refreshes),
            ("ida_conversions", stats.ida_conversions),
        ],
    }
}

/// One fig8 cell end-to-end: warm-up then the measured open-loop replay of
/// `hm_1` on Baseline and IDA-E20 — the unit of work every sweep repeats.
/// `wall_ns` times the event-driven replays only (the loop the scheduler
/// hot paths sit on); setup is reported as `setup_ns` and broken into
/// `construct_ns` (simulator construction) and `warmup_ns` (warm-up proper
/// plus trace conversion — the slice a sweep warm-cache hit eliminates).
fn bench_fig8_end_to_end(smoke: bool) -> BenchResult {
    let requests = if smoke { 800 } else { 6_000 };
    let scale = ExperimentScale::smoke().with_requests(requests);
    let preset = ida_workloads::suite::paper_workload("hm_1").expect("hm_1 exists");
    let start = Instant::now();
    let mut construct_ns = 0u64;
    let mut warmup_ns = 0u64;
    let mut replay_ns = 0u64;
    let mut events = 0u64;
    let mut flash_ops = 0u64;
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut gc_runs = 0u64;
    let mut erases = 0u64;
    let mut refreshes = 0u64;
    for system in [
        SystemUnderTest::Baseline,
        SystemUnderTest::Ida { error_rate: 0.2 },
    ] {
        let cfg = system_config(
            system,
            scale.geometry,
            FlashTiming::paper_tlc(),
            RetryConfig::disabled(),
        );
        let construct_start = Instant::now();
        let mut sim = Simulator::new(cfg);
        construct_ns += construct_start.elapsed().as_nanos() as u64;
        let warmup_start = Instant::now();
        let trace = warm_up(&mut sim, &preset, &scale);
        let ops = to_host_ops(&trace);
        warmup_ns += warmup_start.elapsed().as_nanos() as u64;
        let replay_start = Instant::now();
        let report = sim.run(ops);
        replay_ns += replay_start.elapsed().as_nanos() as u64;
        events += report.events_processed;
        flash_ops += report.flash_ops;
        reads += report.reads.count;
        writes += report.writes.count;
        gc_runs += report.ftl.gc_runs;
        erases += report.ftl.erases;
        refreshes += report.ftl.refreshes;
    }
    let total_ns = start.elapsed().as_nanos() as u64;
    BenchResult {
        name: "fig8_smoke/end_to_end",
        wall_ns: replay_ns,
        setup_ns: total_ns.saturating_sub(replay_ns),
        construct_ns,
        warmup_ns,
        ops: vec![
            ("events", events),
            ("flash_ops", flash_ops),
            ("reads", reads),
            ("writes", writes),
            ("gc_runs", gc_runs),
            ("erases", erases),
            ("refreshes", refreshes),
        ],
    }
}

/// The warm-state round trip: capture a warmed simulator to framed bytes
/// and fork a fresh simulator from them, repeatedly. This is the exact
/// operation the sweep warm cache performs once per cell (fork) and once
/// per unique warm-up (capture), so its rate bounds the cache's overhead.
/// The re-captured bytes must equal the previous capture every round
/// (canonical form), which pins `snapshot_bytes` and `checksum`.
fn bench_snapshot_capture_restore(smoke: bool) -> BenchResult {
    let rounds: u64 = if smoke { 4 } else { 16 };
    let scale = ExperimentScale::smoke().with_requests(800);
    let preset = ida_workloads::suite::paper_workload("hm_1").expect("hm_1 exists");
    let cfg = system_config(
        SystemUnderTest::Baseline,
        scale.geometry,
        FlashTiming::paper_tlc(),
        RetryConfig::disabled(),
    );
    let setup_start = Instant::now();
    let (sim, _) = warmed_simulator(&preset, cfg, &scale);
    let setup_ns = setup_start.elapsed().as_nanos() as u64;
    let start = Instant::now();
    let mut snap = sim.snapshot();
    let checksum = ida_snap::fnv1a(&snap);
    for _ in 0..rounds {
        let restored = Simulator::from_snapshot(&snap).expect("snapshot restores");
        let again = restored.snapshot();
        assert_eq!(
            ida_snap::fnv1a(&again),
            checksum,
            "snapshot round trip must be canonical"
        );
        snap = again;
    }
    BenchResult {
        name: "snapshot/capture_restore",
        wall_ns: start.elapsed().as_nanos() as u64,
        setup_ns,
        construct_ns: 0,
        warmup_ns: setup_ns,
        // rounds captures + rounds restores, plus the seed capture.
        ops: vec![
            ("snapshots", rounds * 2 + 1),
            ("snapshot_bytes", snap.len() as u64),
            ("checksum", checksum),
        ],
    }
}

/// The 8-cell faults grid (both systems × four fault levels on `proj_3`)
/// run serially, without (`cache_off`) or with (`cache_on`) the warm
/// cache. The `agg_hash` counters of the pair are equal by construction —
/// the cache is output-invisible — and the wall-clock difference is the
/// measured saving from running 2 warm-ups instead of 8.
fn bench_sweep_faults(warm: bool) -> BenchResult {
    let spec = SweepSpec::new(
        "faults",
        vec!["proj_3".into()],
        vec!["Baseline".into(), "IDA-E20".into()],
    )
    .with_axis(
        "faults",
        vec!["off".into(), "low".into(), "mid".into(), "high".into()],
    );
    let scale = ExperimentScale::smoke().with_requests(800);
    let cfg = if warm {
        SweepConfig::serial().with_warm_cache()
    } else {
        SweepConfig::serial()
    };
    let start = Instant::now();
    let outcome = run_grid(&spec, &scale, &cfg).expect("faults grid runs");
    let wall_ns = start.elapsed().as_nanos() as u64;
    let mut ops = vec![
        ("cells", outcome.outcomes.len() as u64),
        (
            "agg_hash",
            ida_snap::fnv1a(outcome.aggregate_json().as_bytes()),
        ),
    ];
    if let Some(cache) = cfg.warm_cache() {
        let stats = cache.stats();
        ops.push(("warm_hits", stats.total_hits()));
        ops.push(("warm_misses", stats.misses));
    }
    BenchResult {
        name: if warm {
            "sweep_faults/cache_on"
        } else {
            "sweep_faults/cache_off"
        },
        wall_ns,
        setup_ns: 0,
        construct_ns: 0,
        warmup_ns: 0,
        ops,
    }
}

/// Merge a current suite run with a previously captured baseline into one
/// comparison document with per-bench speedups (current rate / baseline
/// rate on each bench's primary counter). The baseline may be a bare
/// suite capture or an earlier comparison document (its `current` side is
/// then the baseline).
///
/// # Errors
///
/// Returns a message when the baseline JSON is malformed or holds no
/// benches.
pub fn compare_json(current: &SuiteResult, baseline_json: &str) -> Result<String, String> {
    let parsed = jsonv::parse(baseline_json).map_err(|e| format!("bad baseline JSON: {e}"))?;
    let base = match parsed.get("benches") {
        Some(_) => &parsed,
        None => parsed
            .get("current")
            .ok_or("baseline JSON has neither `benches` nor `current`")?,
    };
    let Some(JsonValue::Arr(base_benches)) = base.get("benches") else {
        return Err("baseline `benches` is not an array".into());
    };
    let base_rate = |name: &str, counter: &str| -> Option<f64> {
        let b = base_benches
            .iter()
            .find(|b| b.get("name").and_then(|n| n.as_str()) == Some(name))?;
        let work = b.get("ops")?.get(counter)?.as_u64()?;
        let wall = b.get("wall_ns")?.as_u64()?;
        (wall > 0).then(|| work as f64 / (wall as f64 / 1e9))
    };
    let mut speedups = JsonObj::new();
    for b in &current.benches {
        if let Some(base) = base_rate(b.name, b.primary_counter()) {
            if base > 0.0 {
                speedups = speedups.f64(b.name, b.rate_per_sec() / base);
            }
        }
    }
    let base_json = base_to_string(base);
    Ok(JsonObj::new()
        .str("schema", COMPARE_SCHEMA)
        .raw("baseline", &base_json)
        .raw("current", &current.to_json())
        .raw("speedup", &speedups.finish())
        .finish())
}

/// Re-serialize a parsed baseline suite (deterministic field order is
/// preserved by the parser, so this round-trips the original capture).
fn base_to_string(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "null".into(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Num(_, raw) => raw.clone(),
        JsonValue::Str(s) => JsonObj::new().str("s", s).finish()[5..]
            .trim_end_matches('}')
            .to_string(),
        JsonValue::Arr(items) => array(items.iter().map(base_to_string)),
        JsonValue::Obj(fields) => {
            let mut o = JsonObj::new();
            for (k, val) in fields {
                o = o.raw(k, &base_to_string(val));
            }
            o.finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_queue_bench_is_deterministic() {
        let a = bench_event_queue(true);
        let b = bench_event_queue(true);
        assert_eq!(a.ops, b.ops, "op counts must be byte-identical");
        assert_eq!(a.count("events"), 400_000);
        assert_ne!(a.count("checksum"), 0);
    }

    #[test]
    fn bench_json_has_rates_and_ops() {
        let b = BenchResult {
            name: "event_queue/push_pop",
            wall_ns: 2_000_000_000,
            setup_ns: 0,
            construct_ns: 0,
            warmup_ns: 0,
            ops: vec![("events", 4_000_000), ("checksum", 7)],
        };
        assert_eq!(b.rate_per_sec(), 2_000_000.0);
        let json = b.to_json();
        assert!(json.contains("\"events_per_sec\":2000000"));
        assert!(json.contains("\"ops\":{\"events\":4000000,\"checksum\":7}"));
    }

    #[test]
    fn setup_breakdown_is_emitted_only_when_measured() {
        let split = BenchResult {
            name: "fig8_smoke/end_to_end",
            wall_ns: 10,
            setup_ns: 30,
            construct_ns: 10,
            warmup_ns: 20,
            ops: vec![("events", 1)],
        };
        let json = split.to_json();
        assert!(json.contains("\"setup_ns\":30"));
        assert!(json.contains("\"construct_ns\":10"));
        assert!(json.contains("\"warmup_ns\":20"));
        let flat = BenchResult {
            name: "event_queue/push_pop",
            wall_ns: 10,
            setup_ns: 0,
            construct_ns: 0,
            warmup_ns: 0,
            ops: vec![("events", 1)],
        };
        let json = flat.to_json();
        assert!(!json.contains("construct_ns"));
        assert!(!json.contains("warmup_ns"));
    }

    #[test]
    fn snapshot_bench_pins_the_canonical_image() {
        let a = bench_snapshot_capture_restore(true);
        let b = bench_snapshot_capture_restore(true);
        assert_eq!(a.ops, b.ops, "op counts must be byte-identical");
        assert_eq!(a.count("snapshots"), 9);
        assert!(a.count("snapshot_bytes") > 0);
        assert_eq!(a.primary_counter(), "snapshots");
    }

    #[test]
    fn sweep_bench_pair_agrees_on_the_aggregate() {
        let off = bench_sweep_faults(false);
        let on = bench_sweep_faults(true);
        assert_eq!(off.count("cells"), 8);
        assert_eq!(
            off.count("agg_hash"),
            on.count("agg_hash"),
            "warm cache changed the aggregate"
        );
        assert_eq!(on.count("warm_misses"), 2);
        assert_eq!(on.count("warm_hits"), 6);
        assert_eq!(off.primary_counter(), "cells");
    }

    #[test]
    fn compare_embeds_baseline_and_computes_speedup() {
        let current = SuiteResult {
            suite: "smoke",
            benches: vec![BenchResult {
                name: "fig8_smoke/end_to_end",
                wall_ns: 1_000_000_000,
                setup_ns: 5,
                construct_ns: 2,
                warmup_ns: 3,
                ops: vec![("events", 3_000_000)],
            }],
        };
        let baseline = SuiteResult {
            suite: "smoke",
            benches: vec![BenchResult {
                name: "fig8_smoke/end_to_end",
                wall_ns: 2_000_000_000,
                setup_ns: 0,
                construct_ns: 0,
                warmup_ns: 0,
                ops: vec![("events", 3_000_000)],
            }],
        };
        let doc = compare_json(&current, &baseline.to_json()).unwrap();
        let v = jsonv::parse(&doc).unwrap();
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some(COMPARE_SCHEMA)
        );
        let speedup = v
            .get("speedup")
            .and_then(|s| s.get("fig8_smoke/end_to_end"))
            .and_then(|s| s.as_f64())
            .unwrap();
        assert!((speedup - 2.0).abs() < 1e-9, "got {speedup}");
        // A comparison document is itself usable as the next baseline
        // (its `current` side becomes the reference).
        let chained = compare_json(&baseline, &doc).unwrap();
        let v2 = jsonv::parse(&chained).unwrap();
        let s2 = v2
            .get("speedup")
            .and_then(|s| s.get("fig8_smoke/end_to_end"))
            .and_then(|s| s.as_f64())
            .unwrap();
        assert!((s2 - 0.5).abs() < 1e-9, "got {s2}");
    }

    #[test]
    fn compare_rejects_malformed_baselines() {
        let current = SuiteResult {
            suite: "smoke",
            benches: vec![],
        };
        assert!(compare_json(&current, "not json").is_err());
        assert!(compare_json(&current, "{\"schema\":\"x\"}").is_err());
    }
}
