//! Experiment harness for the IDA-coding reproduction.
//!
//! Each table and figure of the paper's evaluation has a binary in
//! `src/bin/` that drives the pieces below and prints the same rows or
//! series the paper reports, with the paper's numbers alongside:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table3_workloads` | Table III — workload characteristics |
//! | `fig4_read_distribution` | Figure 4 — read breakdown by page type/validity |
//! | `fig8_response_time` | Figure 8 — response time vs adjustment error rate |
//! | `table4_refresh_overhead` | Table IV — refresh overhead accounting |
//! | `fig9_delta_tr` | Figure 9 — ΔtR sensitivity |
//! | `fig10_throughput` | Figure 10 — device throughput |
//! | `fig11_read_retry` | Figure 11 — early vs late lifetime (read retry) |
//! | `table5_mlc` | Table V — MLC device |
//! | `fig6_qlc` | Figure 6 + §V-G — QLC merge and end-to-end run |
//! | `blocks_overhead` | §III-C — in-use blocks / GC impact |
//!
//! The [`runner`] module owns the warm-up → measure protocol shared by all
//! of them; [`table`] renders aligned text tables. Grid-shaped
//! experiments (Figures 8–10) run on the `ida-sweep` orchestration
//! engine through [`sweep`], which gives them parallel workers
//! (`--jobs`/`IDA_JOBS`), checkpoint/resume journals, and per-cell
//! failure isolation while keeping aggregated output byte-identical to
//! a serial run.

pub mod analyze;
pub mod load;
pub mod microbench;
pub mod runner;
pub mod soak;
pub mod suite;
pub mod sweep;
pub mod table;

pub use runner::{ExperimentScale, ReplayMode, SystemUnderTest, WorkloadRun};
