//! Offered-load runs and SLO capacity search on top of `ida-host`.
//!
//! The figure sweeps replay a workload's own timestamps; this module
//! asks the production question instead: what happens when the *offered
//! rate* is a dial? A load run takes a warmed simulator, re-times the
//! measured trace through a seeded arrival process at a target IOPS, and
//! drives it through the multi-tenant host frontend — so host queueing,
//! admission control and DRR scheduling all show up in the end-to-end
//! latency the SLO is written against. A capacity run bisects that dial
//! for the highest sustainable rate at a fixed p99 read SLO.
//!
//! Determinism: the simulator seed, the arrival seeds and every probe of
//! the capacity search derive from the cell's stream seed, so a (cell,
//! scale) pair reproduces its payload byte for byte on any worker.

use crate::runner::{
    system_config, to_host_ops, warm_up, warmed_simulator_cached, ExperimentScale, ObsOptions,
    SystemUnderTest,
};
use ida_flash::timing::FlashTiming;
use ida_host::{
    capacity_search, AdmissionPolicy, ArrivalSpec, CapacityResult, FrontendConfig,
    MultiTenantSource, ProbeOutcome, TenantConfig, TenantReport,
};
use ida_obs::json::{array, JsonObj};
use ida_obs::trace::TraceEvent;
use ida_ssd::retry::RetryConfig;
use ida_ssd::{Report, SimError, Simulator};
use ida_sweep::derive_stream_seed;
use ida_workloads::suite::WorkloadPreset;
use ida_workloads::synth::WorkloadSpec;

/// The offered-rate axis of the `load` grid, as a percentage of the
/// workload's nominal rate — the hockey-stick x axis.
pub const LOAD_PCTS: [u64; 5] = [60, 80, 100, 140, 200];

/// The fixed p99 read SLO of the `load` grid and the capacity search, ns.
/// 2 ms sits above the uncontended TLC read tail and below the latencies
/// a saturated queue produces, so the pass/fail boundary lands on the
/// knee of the latency-vs-load curve.
pub const LOAD_SLO_P99_NS: u64 = 2_000_000;

/// Device queue depth the host frontend drives (dispatch window).
pub const LOAD_WINDOW: usize = 64;

/// Midpoint-probe budget of the capacity bisection; over the brackets
/// the CLI uses, far more than enough to close the bracket to 1 IOPS.
pub const CAPACITY_MAX_ITERS: u32 = 16;

/// Why a load run could not produce a result — the typed replacement
/// for the `expect()` calls this module used to make on the simulator
/// and on observability I/O (mirroring `SimError::UnsortedTrace`:
/// callers decide whether an error aborts a CLI run or fails a cell).
#[derive(Debug)]
pub enum LoadError {
    /// Observability output (trace/metrics files) failed.
    Io(std::io::Error),
    /// The simulator rejected the run (e.g. the frontend stalled with
    /// nothing in flight — impossible by construction, but surfaced as
    /// an error rather than a panic if that invariant ever breaks).
    Sim(SimError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "observability output failed: {e}"),
            LoadError::Sim(e) => write!(f, "load run failed: {e}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Sim(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<SimError> for LoadError {
    fn from(e: SimError) -> Self {
        LoadError::Sim(e)
    }
}

/// A load run's knobs, independent of workload and scale.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// System under test.
    pub system: SystemUnderTest,
    /// Arrival shape.
    pub arrival: ArrivalSpec,
    /// Target offered rate, IOPS (split evenly across tenants).
    pub offered_iops: u64,
    /// Number of tenant streams the measured ops are dealt across.
    pub tenants: u32,
    /// Full-queue admission policy.
    pub admission: AdmissionPolicy,
    /// Read p99 SLO target, ns.
    pub slo_p99_ns: u64,
    /// Stream seed (simulator + arrival randomness derive from it).
    pub seed: u64,
}

impl LoadSpec {
    /// A single-tenant shed-policy spec at the grid's fixed SLO.
    pub fn new(
        system: SystemUnderTest,
        arrival: ArrivalSpec,
        offered_iops: u64,
        seed: u64,
    ) -> Self {
        LoadSpec {
            system,
            arrival,
            offered_iops,
            tenants: 1,
            admission: AdmissionPolicy::Shed,
            slo_p99_ns: LOAD_SLO_P99_NS,
            seed,
        }
    }
}

/// One load run's result: the device report plus the host-side sections.
#[derive(Debug, Clone)]
pub struct LoadRun {
    /// Offered rate, IOPS.
    pub offered_iops: u64,
    /// Completed rate over the measured span, IOPS.
    pub achieved_iops: f64,
    /// Device-level report (service latency, throughput, FTL stats).
    pub report: Report,
    /// Per-tenant host sections (e2e latency, admission counters).
    pub tenants: Vec<TenantReport>,
}

impl LoadRun {
    /// Worst per-tenant end-to-end read p99, ns — the SLO number.
    pub fn read_p99_ns(&self) -> u64 {
        self.tenants
            .iter()
            .map(|t| t.read_p99_ns)
            .max()
            .unwrap_or(0)
    }

    /// Whether every tenant met its SLO.
    pub fn slo_met(&self) -> bool {
        self.tenants.iter().all(|t| t.slo_met)
    }

    /// Total requests shed at admission.
    pub fn shed(&self) -> u64 {
        self.tenants.iter().map(|t| t.counters.shed).sum()
    }

    /// The probe verdict the capacity search consumes: the SLO held and
    /// nothing was shed (a shed request never shows up in the latency
    /// percentiles, so it must fail the probe on its own).
    pub fn probe_outcome(&self) -> ProbeOutcome {
        ProbeOutcome {
            read_p99_ns: self.read_p99_ns(),
            met: self.slo_met() && self.shed() == 0,
            shed: self.shed(),
        }
    }
}

/// A workload's nominal offered rate: the long-run IOPS of its own
/// burst-shaped timestamp generator (`LOAD_PCTS` are percentages of
/// this).
pub fn nominal_iops(spec: &WorkloadSpec) -> u64 {
    let mean_gap_ns =
        (spec.intra_gap_ns * (spec.burst_len - 1.0) + spec.burst_gap_ns) / spec.burst_len;
    ((1e9 / mean_gap_ns).round() as u64).max(1)
}

/// Deal the measured trace's op bodies across `n` tenant streams and
/// split the offered rate evenly, each tenant with its own derived
/// arrival seed.
fn tenant_configs(
    preset: &WorkloadPreset,
    ops: Vec<ida_ssd::HostOp>,
    spec: &LoadSpec,
) -> Vec<TenantConfig> {
    let n = spec.tenants.max(1) as usize;
    let mean_gap_ns = ((1e9 * n as f64 / spec.offered_iops.max(1) as f64).round() as u64).max(1);
    (0..n)
        .map(|i| TenantConfig {
            name: if n == 1 {
                preset.spec.name.clone()
            } else {
                format!("{}-t{}", preset.spec.name, i)
            },
            ops: ops.iter().skip(i).step_by(n).copied().collect(),
            arrival: spec.arrival,
            mean_gap_ns,
            weight: 1,
            seed: derive_stream_seed(spec.seed, &format!("arrivals{i}")),
            slo_p99_ns: spec.slo_p99_ns,
        })
        .collect()
}

/// Run one load point: warm up a fresh simulator for (preset, system,
/// scale), then drive the measured ops through the host frontend at the
/// offered rate. Spans stay on so the attribution-conservation invariant
/// is checkable on every load trace; `SloStatus` verdicts are emitted at
/// end of run when a trace sink is attached.
///
/// # Errors
///
/// [`LoadError::Io`] on observability I/O (trace/metrics files);
/// [`LoadError::Sim`] if the simulator rejects the run (the frontend
/// cannot stall by construction — it only blocks with requests in
/// flight — but a broken invariant surfaces as an error, not a panic).
pub fn run_load_obs(
    preset: &WorkloadPreset,
    spec: &LoadSpec,
    scale: &ExperimentScale,
    obs: &ObsOptions,
) -> Result<LoadRun, LoadError> {
    let mut cfg = system_config(
        spec.system,
        scale.geometry,
        FlashTiming::paper_tlc(),
        RetryConfig::disabled(),
    );
    cfg.ftl.seed = spec.seed;
    let mut sim = Simulator::new(cfg);
    obs.attach(
        &mut sim,
        &format!(
            "load {} {} {}iops",
            preset.spec.name,
            spec.system.label(),
            spec.offered_iops
        ),
    )?;
    let trace = warm_up(&mut sim, preset, scale);
    let ops = to_host_ops(&trace);
    let frontend_cfg = FrontendConfig {
        window: LOAD_WINDOW,
        admission: spec.admission,
        ..FrontendConfig::default()
    };
    let mut src = MultiTenantSource::new(tenant_configs(preset, ops, spec), frontend_cfg);
    src.bind_trace(sim.trace_handle(), sim.now());
    sim.set_spans(true);
    let report = sim.run_source(&mut src)?;
    let tenants = src.tenant_reports();
    let handle = sim.trace_handle();
    let end = sim.now();
    for (i, t) in tenants.iter().enumerate() {
        let (p99, target, met) = (t.read_p99_ns, t.slo_p99_ns, t.slo_met);
        handle.emit_with(|| TraceEvent::SloStatus {
            t: end,
            tenant: i as u64,
            p99_ns: p99,
            target_ns: target,
            met,
        });
    }
    obs.finish(&sim, &report)?;
    let completed: u64 = tenants.iter().map(|t| t.counters.completed).sum();
    let span = report
        .last_completion
        .saturating_sub(report.first_arrival)
        .max(1);
    Ok(LoadRun {
        offered_iops: spec.offered_iops,
        achieved_iops: completed as f64 * 1e9 / span as f64,
        report,
        tenants,
    })
}

/// [`run_load_obs`] with observability off — the sweep-cell path.
///
/// # Errors
///
/// Only [`LoadError::Sim`]: with observability off no I/O is configured,
/// so none can fail.
pub fn run_load(
    preset: &WorkloadPreset,
    spec: &LoadSpec,
    scale: &ExperimentScale,
) -> Result<LoadRun, LoadError> {
    run_load_obs(preset, spec, scale, &ObsOptions::default())
}

/// The warm-cache-aware sweep-cell load path: the simulator warms (or
/// forks) under the shared `warm_seed`, while the arrival processes keep
/// deriving from the cell's own `spec.seed` — warm-ups are shared across
/// offered-rate siblings, measured randomness stays per-cell.
///
/// Observability stays off on this path (snapshots carry no sinks), so
/// the only possible failure is a simulator invariant break.
///
/// # Errors
///
/// [`LoadError::Sim`] if the simulator rejects the run.
pub fn run_load_cached(
    preset: &WorkloadPreset,
    spec: &LoadSpec,
    scale: &ExperimentScale,
    warm_seed: u64,
    warm: Option<&ida_sweep::WarmCache>,
) -> Result<LoadRun, LoadError> {
    let mut cfg = system_config(
        spec.system,
        scale.geometry,
        FlashTiming::paper_tlc(),
        RetryConfig::disabled(),
    );
    cfg.ftl.seed = warm_seed;
    let (mut sim, trace) = warmed_simulator_cached(preset, cfg, scale, warm);
    let ops = to_host_ops(&trace);
    let frontend_cfg = FrontendConfig {
        window: LOAD_WINDOW,
        admission: spec.admission,
        ..FrontendConfig::default()
    };
    let mut src = MultiTenantSource::new(tenant_configs(preset, ops, spec), frontend_cfg);
    src.bind_trace(sim.trace_handle(), sim.now());
    sim.set_spans(true);
    let report = sim.run_source(&mut src)?;
    let tenants = src.tenant_reports();
    let completed: u64 = tenants.iter().map(|t| t.counters.completed).sum();
    let span = report
        .last_completion
        .saturating_sub(report.first_arrival)
        .max(1);
    Ok(LoadRun {
        offered_iops: spec.offered_iops,
        achieved_iops: completed as f64 * 1e9 / span as f64,
        report,
        tenants,
    })
}

/// The deterministic metrics payload of one load cell: host-side SLO
/// fields at the top level (worst tenant), the per-tenant sections, and
/// the device report alongside.
pub fn load_metrics_json(run: &LoadRun) -> String {
    let offered: u64 = run.tenants.iter().map(|t| t.counters.offered).sum();
    let dispatched: u64 = run.tenants.iter().map(|t| t.counters.dispatched).sum();
    let completed: u64 = run.tenants.iter().map(|t| t.counters.completed).sum();
    let delayed: u64 = run.tenants.iter().map(|t| t.counters.delayed).sum();
    let slo_target = run.tenants.iter().map(|t| t.slo_p99_ns).max().unwrap_or(0);
    JsonObj::new()
        .u64("offered_iops", run.offered_iops)
        .f64("achieved_iops", run.achieved_iops)
        .u64("offered", offered)
        .u64("dispatched", dispatched)
        .u64("completed", completed)
        .u64("shed", run.shed())
        .u64("delayed", delayed)
        .u64("read_p99_ns", run.read_p99_ns())
        .u64("slo_p99_ns", slo_target)
        .bool("slo_met", run.slo_met())
        .raw("tenants", &array(run.tenants.iter().map(|t| t.to_json())))
        .raw("device", &crate::sweep::metrics_json(&run.report))
        .finish()
}

/// Bisect the offered rate for (preset, system) at the grid SLO: each
/// probe builds a fresh warmed simulator from seeds derived off
/// `seed` and the probed rate, so the whole search is a pure function of
/// its arguments.
///
/// # Errors
///
/// The first probe failure aborts the search: a probe that cannot run is
/// not a missed SLO, so treating it as one would silently bias the
/// bracket downward.
#[allow(clippy::too_many_arguments)]
pub fn run_capacity(
    preset: &WorkloadPreset,
    system: SystemUnderTest,
    arrival: ArrivalSpec,
    scale: &ExperimentScale,
    slo_p99_ns: u64,
    lo_iops: u64,
    hi_iops: u64,
    max_iters: u32,
    seed: u64,
) -> Result<CapacityResult, LoadError> {
    let mut failure: Option<LoadError> = None;
    let result = capacity_search(lo_iops, hi_iops, max_iters, |iops| {
        let mut spec = LoadSpec::new(system, arrival, iops, derive_stream_seed(seed, "probe"));
        spec.slo_p99_ns = slo_p99_ns;
        match run_load(preset, &spec, scale) {
            Ok(run) => run.probe_outcome(),
            Err(e) => {
                if failure.is_none() {
                    failure = Some(e);
                }
                // Placeholder verdict; the stashed error aborts below.
                ProbeOutcome {
                    read_p99_ns: u64::MAX,
                    met: false,
                    shed: 0,
                }
            }
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(result),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ida_workloads::suite::paper_workload;

    #[test]
    fn nominal_rate_matches_the_generator_shape() {
        // prn0: 2 ms between 16-op bursts with 20 µs intra gaps —
        // mean gap (20us*15 + 2ms)/16 = 143.75 µs ⇒ ~6956 IOPS.
        let spec = WorkloadSpec::default();
        let n = nominal_iops(&spec);
        assert!(
            (6_900..=7_000).contains(&n),
            "nominal IOPS {n} off the generator shape"
        );
    }

    #[test]
    fn tenants_deal_the_ops_and_split_the_rate() {
        let preset = paper_workload("proj_3").expect("known workload");
        let ops: Vec<ida_ssd::HostOp> = (0..10)
            .map(|i| ida_ssd::HostOp {
                at: 0,
                kind: ida_ssd::HostOpKind::Read,
                lpn: i,
                pages: 1,
            })
            .collect();
        let mut spec = LoadSpec::new(SystemUnderTest::Baseline, ArrivalSpec::Poisson, 10_000, 1);
        spec.tenants = 3;
        let ts = tenant_configs(&preset, ops, &spec);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.iter().map(|t| t.ops.len()).sum::<usize>(), 10);
        assert_eq!(ts[0].ops[1].lpn, 3, "round-robin deal");
        // Per-tenant gap is 3x the single-stream gap (rate split evenly).
        assert_eq!(ts[0].mean_gap_ns, 300_000);
        // Seeds differ per tenant but derive deterministically.
        assert_ne!(ts[0].seed, ts[1].seed);
        let again = tenant_configs(
            &preset,
            ts.iter().flat_map(|t| t.ops.clone()).collect(),
            &spec,
        );
        assert_eq!(again[1].seed, ts[1].seed);
    }

    #[test]
    fn a_small_load_run_completes_and_reports_slo_fields() {
        let preset = paper_workload("proj_3").expect("known workload");
        let scale = ExperimentScale::smoke().with_requests(120);
        let spec = LoadSpec::new(
            SystemUnderTest::Baseline,
            ArrivalSpec::Poisson,
            2_000,
            derive_stream_seed(7, "load-test"),
        );
        let run = run_load(&preset, &spec, &scale).expect("load run");
        let completed: u64 = run.tenants.iter().map(|t| t.counters.completed).sum();
        assert_eq!(completed, 120, "every op must complete");
        assert!(run.achieved_iops > 0.0);
        let json = load_metrics_json(&run);
        for key in [
            "\"offered_iops\":2000",
            "\"shed\":",
            "\"slo_p99_ns\":",
            "\"slo_met\":",
            "\"tenants\":[",
            "\"device\":{",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn load_runs_are_deterministic() {
        let preset = paper_workload("proj_3").expect("known workload");
        let scale = ExperimentScale::smoke().with_requests(80);
        let spec = LoadSpec::new(
            SystemUnderTest::Ida { error_rate: 0.2 },
            ArrivalSpec::OnOff,
            3_000,
            11,
        );
        let a = load_metrics_json(&run_load(&preset, &spec, &scale).expect("load run"));
        let b = load_metrics_json(&run_load(&preset, &spec, &scale).expect("load run"));
        assert_eq!(a, b);
    }
}
