//! A small, dependency-free microbenchmark harness.
//!
//! Replaces the external `criterion` crate for the `benches/` targets
//! (which keep `harness = false`): each bench routine is warmed up, then
//! timed over fixed-size batches, and the median per-iteration time is
//! printed as `name ... <ns>/iter`. Not statistically rigorous — intended
//! for spotting order-of-magnitude regressions on the hot paths, offline.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How many timed batches to collect per benchmark.
const BATCHES: usize = 15;
/// Target wall time per batch.
const BATCH_TARGET: Duration = Duration::from_millis(25);
/// Warmup wall time before calibration.
const WARMUP: Duration = Duration::from_millis(100);

/// Time `f`, printing the median ns/iter under `name`.
pub fn bench<R, F: FnMut() -> R>(name: &str, mut f: F) {
    // Warmup, also measuring a rough per-iteration cost for calibration.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < WARMUP {
        black_box(f());
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_nanos() / warm_iters.max(1) as u128;
    let batch_iters = (BATCH_TARGET.as_nanos() / per_iter.max(1)).clamp(1, 1 << 20) as u64;

    let mut samples: Vec<u128> = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..batch_iters {
            black_box(f());
        }
        samples.push(start.elapsed().as_nanos() / batch_iters as u128);
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!("{name:<40} {median:>12} ns/iter  (min {lo}, max {hi}, {batch_iters} iters/batch)");
}

/// Time `routine` over inputs rebuilt by `setup` before every call; the
/// setup cost is excluded from the timing.
pub fn bench_with_setup<T, R, S: FnMut() -> T, F: FnMut(T) -> R>(
    name: &str,
    mut setup: S,
    mut routine: F,
) {
    // Setup is typically much more expensive than the routine here
    // (building and filling an FTL), so time each call individually.
    let iters = 10u32;
    // Warmup round.
    black_box(routine(setup()));

    let mut samples: Vec<u128> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        samples.push(start.elapsed().as_nanos());
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!("{name:<40} {median:>12} ns/iter  (min {lo}, max {hi}, {iters} runs)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_prints() {
        bench("selftest/add", || std::hint::black_box(2u64) + 2);
    }

    #[test]
    fn bench_with_setup_runs() {
        bench_with_setup("selftest/vec", || vec![1u8; 64], |v| v.len());
    }
}
