//! Whole-lifetime soak harness: drive one system from fresh to rated
//! endurance through accelerated epochs and check the FTL's safety
//! invariants after every epoch.
//!
//! One soak run warms a simulator to steady state exactly like every
//! other experiment, arms the device-aging model, then alternates
//!
//! 1. an **idle gap** ([`ida_ssd::Simulator::advance_time`], one patrol
//!    period long) so retention clocks age and background scrub falls
//!    due, and
//! 2. a **wear step** ([`ida_ssd::Simulator::advance_wear`]) that walks
//!    uniform background P/E from 0 at epoch 0 to the rated endurance
//!    at the final epoch, and
//! 3. a **measured epoch**: the workload's timed trace replayed on the
//!    (persisting) FTL state.
//!
//! Epoch 0 runs before any wear or gap, so the first row of every soak
//! is the fresh-device baseline the aged epochs are compared against.
//!
//! After each epoch the harness verifies:
//!
//! - **Mapping consistency** — the FTL's full l2p/p2l cross-check
//!   ([`ida_ftl::Ftl::check_consistency`]);
//! - **No acked-data loss** — every prefilled LPN still translates;
//! - **Victim-index consistency** — the O(1) GC victim index agrees
//!   with the linear reference scan on every plane;
//! - **Counter monotonicity** — cumulative FTL counters never move
//!   backwards across epochs;
//! - **Span conservation** — per-phase attribution accounts for exactly
//!   as many reads and writes as the latency histograms.
//!
//! Violations are collected, not panicked on: a soak that trips an
//! invariant still reports its waterfall, and the caller (CLI, CI)
//! decides how loudly to fail. Degrading to read-only when spares drain
//! is a *legal* terminal state — it ends the soak early and is reported
//! separately from violations.

use crate::runner::{
    system_config, to_host_ops, warmed_simulator_cached, ExperimentScale, SystemUnderTest,
};
use crate::table::{f, TextTable};
use ida_faults::AgingConfig;
use ida_flash::addr::PlaneAddr;
use ida_flash::timing::FlashTiming;
use ida_ftl::{gc, FtlStats, Lpn};
use ida_obs::json::{array, JsonObj};
use ida_ssd::retry::RetryConfig;
use ida_ssd::Report;
use ida_sweep::derive_stream_seed;
use ida_workloads::suite::WorkloadPreset;

/// Accelerated-lifetime epochs in a full soak (epoch 0 is fresh, the
/// last epoch is at rated endurance).
pub const SOAK_EPOCHS: usize = 6;

/// Spare blocks reserved per plane so ECC-uncorrectable relocations and
/// grown bad blocks can be remapped before read-only degradation.
pub const SOAK_SPARES_PER_PLANE: u32 = 2;

/// One measured epoch of a soak: latencies from this epoch's replay and
/// the *delta* of the cumulative FTL counters attributable to it.
#[derive(Debug, Clone, Default)]
pub struct EpochStats {
    /// Epoch index (0 = fresh device).
    pub epoch: usize,
    /// Uniform background P/E cycles applied before this epoch ran.
    pub wear_pe: u32,
    /// Host reads completed this epoch.
    pub reads: u64,
    /// Mean read response this epoch (ns).
    pub mean_read_ns: f64,
    /// p99 read response this epoch (ns).
    pub p99_read_ns: u64,
    /// Mean write response this epoch (ns).
    pub mean_write_ns: f64,
    /// Extra sense attempts taken by the retry ladder this epoch.
    pub ladder_retries: u64,
    /// Reads whose ladder exhausted (recovered by relocation) this epoch.
    pub ecc_uncorrectables: u64,
    /// Patrol-scrub passes completed this epoch.
    pub scrub_passes: u64,
    /// Pages relocated by patrol scrub this epoch.
    pub scrub_relocations: u64,
    /// Pages migrated by the wear-leveler this epoch.
    pub wear_level_moves: u64,
    /// Pages moved by refresh this epoch.
    pub refresh_moves: u64,
    /// Pages copied by GC this epoch.
    pub gc_copies: u64,
    /// Mean modeled RBER over this epoch's host reads.
    pub mean_rber: f64,
}

/// The outcome of one whole-lifetime soak of one system.
#[derive(Debug, Clone)]
pub struct SoakRun {
    /// Workload name.
    pub workload: String,
    /// System label (`Baseline`, `IDA-E20`).
    pub system: String,
    /// Aging level the device was soaked under.
    pub level: String,
    /// Per-epoch stats, epoch 0 first. Shorter than requested when the
    /// device degraded to read-only mid-soak.
    pub epochs: Vec<EpochStats>,
    /// Invariant violations detected (empty on a healthy soak).
    pub violations: Vec<String>,
    /// Why the device went read-only, when it did.
    pub read_only: Option<String>,
}

impl SoakRun {
    /// Render the per-epoch waterfall as a text table.
    pub fn render_table(&self) -> String {
        let mut t = TextTable::new(vec![
            "Epoch", "P/E", "Reads", "Mean us", "p99 us", "RBER", "Retry", "UECC", "Scrub",
            "WearLv", "Refresh",
        ]);
        for e in &self.epochs {
            t.row(vec![
                e.epoch.to_string(),
                e.wear_pe.to_string(),
                e.reads.to_string(),
                f(e.mean_read_ns / 1e3, 1),
                f(e.p99_read_ns as f64 / 1e3, 1),
                format!("{:.2e}", e.mean_rber),
                e.ladder_retries.to_string(),
                e.ecc_uncorrectables.to_string(),
                e.scrub_relocations.to_string(),
                e.wear_level_moves.to_string(),
                e.refresh_moves.to_string(),
            ]);
        }
        let mut out = format!(
            "{} / {} — lifetime soak at aging level {:?}\n\n",
            self.workload, self.system, self.level
        );
        out.push_str(&t.render());
        if let Some(reason) = &self.read_only {
            out.push_str(&format!("\ndevice degraded to read-only: {reason}\n"));
        }
        if self.violations.is_empty() {
            out.push_str("\ninvariants: all epochs clean\n");
        } else {
            out.push_str(&format!(
                "\nINVARIANT VIOLATIONS ({}):\n",
                self.violations.len()
            ));
            for v in &self.violations {
                out.push_str(&format!("  {v}\n"));
            }
        }
        out
    }
}

/// All cumulative [`FtlStats`] counters, named, for the monotonicity
/// check.
fn counters(s: &FtlStats) -> [(&'static str, u64); 22] {
    [
        ("host_writes", s.host_writes),
        ("host_reads", s.host_reads),
        ("gc_copies", s.gc_copies),
        ("gc_runs", s.gc_runs),
        ("erases", s.erases),
        ("refreshes", s.refreshes),
        ("refresh_moves", s.refresh_moves),
        ("voltage_adjusts", s.voltage_adjusts),
        ("ida_conversions", s.ida_conversions),
        ("ida_reads", s.ida_reads),
        ("injected_program_fails", s.injected_program_fails),
        ("injected_erase_fails", s.injected_erase_fails),
        ("transient_read_faults", s.transient_read_faults),
        ("write_redirects", s.write_redirects),
        ("retired_blocks", s.retired_blocks),
        ("power_losses", s.power_losses),
        ("recoveries", s.recoveries),
        ("rejected_writes", s.rejected_writes),
        ("scrub_passes", s.scrub_passes),
        ("scrub_relocations", s.scrub_relocations),
        ("wear_level_moves", s.wear_level_moves),
        ("ladder_retries", s.ladder_retries),
    ]
}

/// Run the post-epoch invariant battery, appending findings to
/// `violations`.
fn check_epoch(
    sim: &ida_ssd::Simulator,
    report: &Report,
    prev: &FtlStats,
    footprint: u64,
    epoch: usize,
    violations: &mut Vec<String>,
) {
    let ftl = sim.ftl();
    // 1. Full mapping cross-check.
    if let Err(e) = ftl.check_consistency() {
        violations.push(format!("epoch {epoch}: mapping consistency: {e}"));
    }
    // 2. No acked-data loss: every prefilled LPN still translates. Host
    //    writes only ever remap LPNs inside this footprint, so a missing
    //    translation means relocation (scrub, wear-level, GC, refresh,
    //    uncorrectable recovery) dropped committed data.
    let lost = (0..footprint).filter(|&l| !ftl.is_mapped(Lpn(l))).count();
    if lost > 0 {
        violations.push(format!(
            "epoch {epoch}: {lost} acked LPN(s) lost their mapping"
        ));
    }
    // 3. The O(1) victim index agrees with the linear reference scan.
    let blocks = ftl.blocks();
    for p in 0..blocks.geometry().total_planes() {
        let plane = PlaneAddr(p);
        let fast = blocks.victim_in_plane(plane, None);
        let slow = gc::select_victim_scan(blocks, plane, None);
        if fast != slow {
            violations.push(format!(
                "epoch {epoch}: victim index disagrees with scan on plane {p}: {fast:?} vs {slow:?}"
            ));
        }
    }
    // 4. Cumulative counters never move backwards.
    let cur = ftl.stats();
    for ((name, c), (_, p)) in counters(cur).iter().zip(counters(prev).iter()) {
        if c < p {
            violations.push(format!(
                "epoch {epoch}: counter {name} went backwards ({p} -> {c})"
            ));
        }
    }
    if cur.rber_e9_sum < prev.rber_e9_sum {
        violations.push(format!(
            "epoch {epoch}: counter rber_e9_sum went backwards ({} -> {})",
            prev.rber_e9_sum, cur.rber_e9_sum
        ));
    }
    // 5. Span conservation: attribution saw exactly the histogram counts.
    if report.read_attribution.count() != report.reads.count {
        violations.push(format!(
            "epoch {epoch}: read spans ({}) != read latencies ({})",
            report.read_attribution.count(),
            report.reads.count
        ));
    }
    if report.write_attribution.count() != report.writes.count {
        violations.push(format!(
            "epoch {epoch}: write spans ({}) != write latencies ({})",
            report.write_attribution.count(),
            report.writes.count
        ));
    }
}

/// The per-epoch delta of the cumulative FTL counters.
fn epoch_stats(epoch: usize, wear_pe: u32, report: &Report, prev: &FtlStats) -> EpochStats {
    let cur = &report.ftl;
    let d = |c: u64, p: u64| c.saturating_sub(p);
    let reads = d(cur.host_reads, prev.host_reads);
    let rber_e9 = d(cur.rber_e9_sum, prev.rber_e9_sum);
    EpochStats {
        epoch,
        wear_pe,
        reads: report.reads.count,
        mean_read_ns: report.reads.mean(),
        p99_read_ns: report.reads.percentile(99.0),
        mean_write_ns: report.writes.mean(),
        ladder_retries: d(cur.ladder_retries, prev.ladder_retries),
        ecc_uncorrectables: d(cur.ecc_uncorrectables, prev.ecc_uncorrectables),
        scrub_passes: d(cur.scrub_passes, prev.scrub_passes),
        scrub_relocations: d(cur.scrub_relocations, prev.scrub_relocations),
        wear_level_moves: d(cur.wear_level_moves, prev.wear_level_moves),
        refresh_moves: d(cur.refresh_moves, prev.refresh_moves),
        gc_copies: d(cur.gc_copies, prev.gc_copies),
        mean_rber: if reads > 0 {
            rber_e9 as f64 / 1e9 / reads as f64
        } else {
            0.0
        },
    }
}

/// Soak one system through a whole accelerated lifetime.
///
/// `seed` is the run's deterministic stream seed (a sweep cell passes
/// its `stream_seed`); the aging model's ladder stream is derived from
/// it, so the same inputs produce byte-identical outcomes on any worker
/// count.
///
/// # Panics
///
/// Panics on an unknown aging `level` — sweep cells rely on the engine
/// catching this as a per-cell failure.
pub fn run_soak(
    preset: &WorkloadPreset,
    system: SystemUnderTest,
    level: &str,
    epochs: usize,
    seed: u64,
    scale: &ExperimentScale,
) -> SoakRun {
    // The standalone path (CLI `idasim soak`) warms under the run seed
    // itself, exactly as it always has.
    run_soak_cached(preset, system, level, epochs, seed, seed, scale, None)
}

/// [`run_soak`] with a split warm seed and an optional warm-state cache
/// — the sweep-cell path. The simulator warms (or forks) under the
/// shared `warm_seed`; the aging model keeps deriving from the cell's
/// own `seed`, so aging-level siblings share a warm-up yet age through
/// independent streams.
///
/// # Panics
///
/// Panics on an unknown aging `level`, like [`run_soak`].
#[allow(clippy::too_many_arguments)]
pub fn run_soak_cached(
    preset: &WorkloadPreset,
    system: SystemUnderTest,
    level: &str,
    epochs: usize,
    seed: u64,
    warm_seed: u64,
    scale: &ExperimentScale,
    warm: Option<&ida_sweep::WarmCache>,
) -> SoakRun {
    let aging = AgingConfig::preset(level, derive_stream_seed(seed, "aging"))
        .unwrap_or_else(|| panic!("unknown aging level {level:?}"));
    let mut cfg = system_config(
        system,
        scale.geometry,
        FlashTiming::paper_tlc(),
        RetryConfig::disabled(),
    );
    cfg.ftl.seed = warm_seed;
    cfg.ftl.spare_blocks_per_plane = SOAK_SPARES_PER_PLANE;
    let footprint = ((cfg.ftl.exported_pages() as f64 * preset.footprint_frac) as u64).max(1_000);

    let (mut sim, trace) = warmed_simulator_cached(preset, cfg, scale, warm);
    // Arm aging only now: warm-up stays byte-identical to every other
    // experiment, like a device that ages in service.
    sim.arm_aging(aging.clone());
    sim.set_spans(true);
    let ops = to_host_ops(&trace);

    // Walk wear 0 → rated across the epochs (all before the last one).
    let epochs = epochs.max(1);
    let wear_step = if epochs > 1 {
        aging.rated_pe_cycles / (epochs as u32 - 1)
    } else {
        0
    };

    let mut run = SoakRun {
        workload: preset.spec.name.clone(),
        system: system.label(),
        level: level.to_string(),
        epochs: Vec::with_capacity(epochs),
        violations: Vec::new(),
        read_only: None,
    };
    let mut prev = *sim.ftl().stats();
    for epoch in 0..epochs {
        if epoch > 0 {
            // Idle gap: retention ages, the next patrol pass falls due.
            sim.advance_time(aging.scrub_period);
            sim.advance_wear(wear_step);
        }
        let report = sim.run(ops.clone());
        check_epoch(&sim, &report, &prev, footprint, epoch, &mut run.violations);
        run.epochs
            .push(epoch_stats(epoch, wear_step * epoch as u32, &report, &prev));
        prev = report.ftl;
        if let Some(reason) = sim.ftl().read_only_reason() {
            run.read_only = Some(reason.to_string());
            break;
        }
    }
    run
}

/// Serialize a [`SoakRun`] as the deterministic JSON payload a sweep
/// cell returns: headline fresh-vs-aged numbers flat (for renderers),
/// the full per-epoch waterfall nested under `epoch_stats`.
pub fn soak_metrics_json(run: &SoakRun) -> String {
    let fresh = run.epochs.first().cloned().unwrap_or_default();
    let aged = run.epochs.last().cloned().unwrap_or_default();
    let sum = |get: fn(&EpochStats) -> u64| run.epochs.iter().map(get).sum::<u64>();
    let epoch_json = array(run.epochs.iter().map(|e| {
        JsonObj::new()
            .u64("epoch", e.epoch as u64)
            .u64("wear_pe", e.wear_pe as u64)
            .u64("reads", e.reads)
            .f64("mean_read_ns", e.mean_read_ns)
            .u64("p99_read_ns", e.p99_read_ns)
            .f64("mean_write_ns", e.mean_write_ns)
            .u64("ladder_retries", e.ladder_retries)
            .u64("ecc_uncorrectables", e.ecc_uncorrectables)
            .u64("scrub_passes", e.scrub_passes)
            .u64("scrub_relocations", e.scrub_relocations)
            .u64("wear_level_moves", e.wear_level_moves)
            .u64("refresh_moves", e.refresh_moves)
            .u64("gc_copies", e.gc_copies)
            .f64("mean_rber", e.mean_rber)
            .finish()
    }));
    JsonObj::new()
        .str("level", &run.level)
        .u64("epochs", run.epochs.len() as u64)
        .u64("violations", run.violations.len() as u64)
        .str("violation_notes", &run.violations.join("; "))
        .bool("read_only", run.read_only.is_some())
        .str("read_only_reason", run.read_only.as_deref().unwrap_or(""))
        .f64("fresh_mean_read_ns", fresh.mean_read_ns)
        .u64("fresh_p99_read_ns", fresh.p99_read_ns)
        .f64("aged_mean_read_ns", aged.mean_read_ns)
        .u64("aged_p99_read_ns", aged.p99_read_ns)
        .f64("aged_mean_rber", aged.mean_rber)
        .u64("ladder_retries", sum(|e| e.ladder_retries))
        .u64("ecc_uncorrectables", sum(|e| e.ecc_uncorrectables))
        .u64("scrub_relocations", sum(|e| e.scrub_relocations))
        .u64("wear_level_moves", sum(|e| e.wear_level_moves))
        .raw("epoch_stats", &epoch_json)
        .finish()
}

/// Rebuild a renderable [`SoakRun`] view from a sweep cell's JSON
/// payload — the inverse of [`soak_metrics_json`], used by the CLI so
/// its tables are a pure function of the engine's deterministic
/// aggregation (and therefore byte-identical for any worker count).
///
/// # Errors
///
/// Returns a message when the payload is not valid soak JSON.
pub fn soak_run_from_json(workload: &str, system: &str, payload: &str) -> Result<SoakRun, String> {
    use ida_sweep::jsonv::{self, JsonValue};
    let v = jsonv::parse(payload).map_err(|e| format!("bad soak payload: {e}"))?;
    let get_str = |key: &str| {
        v.get(key)
            .and_then(|x| x.as_str())
            .unwrap_or("")
            .to_string()
    };
    let level = get_str("level");
    let notes = get_str("violation_notes");
    let violations = if notes.is_empty() {
        Vec::new()
    } else {
        notes.split("; ").map(String::from).collect()
    };
    let read_only = Some(get_str("read_only_reason")).filter(|s| !s.is_empty());
    let mut epochs = Vec::new();
    if let Some(JsonValue::Arr(items)) = v.get("epoch_stats") {
        for e in items {
            let u = |key: &str| e.get(key).and_then(|x| x.as_u64()).unwrap_or(0);
            let fl = |key: &str| e.get(key).and_then(|x| x.as_f64()).unwrap_or(0.0);
            epochs.push(EpochStats {
                epoch: u("epoch") as usize,
                wear_pe: u("wear_pe") as u32,
                reads: u("reads"),
                mean_read_ns: fl("mean_read_ns"),
                p99_read_ns: u("p99_read_ns"),
                mean_write_ns: fl("mean_write_ns"),
                ladder_retries: u("ladder_retries"),
                ecc_uncorrectables: u("ecc_uncorrectables"),
                scrub_passes: u("scrub_passes"),
                scrub_relocations: u("scrub_relocations"),
                wear_level_moves: u("wear_level_moves"),
                refresh_moves: u("refresh_moves"),
                gc_copies: u("gc_copies"),
                mean_rber: fl("mean_rber"),
            });
        }
    }
    Ok(SoakRun {
        workload: workload.to_string(),
        system: system.to_string(),
        level,
        epochs,
        violations,
        read_only,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ida_sweep::jsonv;
    use ida_workloads::suite::paper_workload;

    fn tiny_scale() -> ExperimentScale {
        ExperimentScale::smoke().with_requests(1_200)
    }

    #[test]
    fn soak_runs_a_lifetime_with_clean_invariants_and_aging_effects() {
        let preset = paper_workload("hm_1").expect("hm_1 exists");
        let run = run_soak(
            &preset,
            SystemUnderTest::Baseline,
            "high",
            3,
            derive_stream_seed(42, "soak-test"),
            &tiny_scale(),
        );
        assert_eq!(run.violations, Vec::<String>::new());
        assert_eq!(run.epochs.len(), 3, "no early read-only at this scale");
        // Wear walks 0 → rated.
        assert_eq!(run.epochs[0].wear_pe, 0);
        assert!(run.epochs[2].wear_pe >= 2_000, "last epoch near rated P/E");
        // Aging bites: the aged device senses a higher RBER and pays for
        // it in retries and mean read latency.
        let fresh = &run.epochs[0];
        let aged = run.epochs.last().unwrap();
        assert!(aged.mean_rber > fresh.mean_rber);
        assert!(aged.ladder_retries > fresh.ladder_retries);
        assert!(
            aged.mean_read_ns > fresh.mean_read_ns,
            "aged epoch mean read {} should exceed fresh {}",
            aged.mean_read_ns,
            fresh.mean_read_ns
        );
        // The table renders every epoch plus the clean-invariant note.
        let table = run.render_table();
        assert!(table.contains("invariants: all epochs clean"));
    }

    #[test]
    fn soak_is_deterministic_for_a_fixed_seed() {
        let preset = paper_workload("proj_3").expect("proj_3 exists");
        let scale = ExperimentScale::smoke().with_requests(600);
        let go = || {
            soak_metrics_json(&run_soak(
                &preset,
                SystemUnderTest::Ida { error_rate: 0.2 },
                "mid",
                2,
                derive_stream_seed(7, "soak-det"),
                &scale,
            ))
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn soak_json_has_the_renderer_keys() {
        let run = SoakRun {
            workload: "hm_0".into(),
            system: "Baseline".into(),
            level: "mid".into(),
            epochs: vec![
                EpochStats {
                    epoch: 0,
                    mean_read_ns: 100_000.0,
                    ..EpochStats::default()
                },
                EpochStats {
                    epoch: 1,
                    wear_pe: 3_000,
                    mean_read_ns: 140_000.0,
                    ladder_retries: 9,
                    ..EpochStats::default()
                },
            ],
            violations: vec![],
            read_only: None,
        };
        let v = jsonv::parse(&soak_metrics_json(&run)).expect("valid json");
        assert_eq!(v.get("epochs").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("violations").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("read_only").unwrap().as_bool(), Some(false));
        assert_eq!(
            v.get("fresh_mean_read_ns").unwrap().as_f64(),
            Some(100_000.0)
        );
        assert_eq!(
            v.get("aged_mean_read_ns").unwrap().as_f64(),
            Some(140_000.0)
        );
        assert_eq!(v.get("ladder_retries").unwrap().as_u64(), Some(9));

        // The payload round-trips into a renderable view.
        let back =
            soak_run_from_json("hm_1", "Baseline", &soak_metrics_json(&run)).expect("round trip");
        assert_eq!(back.level, "mid");
        assert_eq!(back.epochs.len(), 2);
        assert_eq!(back.epochs[1].wear_pe, 3_000);
        assert_eq!(back.epochs[1].ladder_retries, 9);
        assert!(back.violations.is_empty());
        assert!(back.read_only.is_none());
        assert!(back.render_table().contains("lifetime soak"));
    }

    #[test]
    fn unknown_level_panics_for_the_engine_to_catch() {
        let preset = paper_workload("proj_4").expect("proj_4 exists");
        let res = std::panic::catch_unwind(|| {
            run_soak(
                &preset,
                SystemUnderTest::Baseline,
                "molten",
                2,
                1,
                &tiny_scale(),
            )
        });
        assert!(res.is_err());
    }
}
