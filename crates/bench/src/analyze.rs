//! Offline analysis of JSONL event traces (`idasim trace`).
//!
//! Consumes the stream written by `--trace-out`: validates it (schema,
//! timestamp monotonicity, span conservation), replays the per-request
//! attribution spans into the same [`PhaseStats`] aggregates the
//! simulator builds in-sim (byte-identical JSON), ranks the slowest
//! reads with their phase waterfalls, rebuilds per-die / per-channel
//! utilization from the flash events, and diffs two traces
//! phase-by-phase.
//!
//! The loader is streaming and line-oriented: one parsed line at a
//! time, bounded state (the slow-read list is truncated as it grows),
//! so trace size is limited by disk, not memory.

use ida_obs::json::JsonObj;
use ida_obs::span::{Phase, PhaseNs, PhaseStats, ALL_PHASES};
use ida_sweep::jsonv::{self, JsonValue};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

/// Every event kind the trace schema knows; anything else fails
/// validation.
const KNOWN_KINDS: [&str; 28] = [
    "run_start",
    "host_arrival",
    "host_complete",
    "read_issued",
    "sense",
    "program",
    "erase",
    "voltage_adjust",
    "read_retry",
    "gc_run",
    "refresh_block",
    "ida_conversion",
    "fault_program_fail",
    "write_redirect",
    "fault_erase_fail",
    "block_retired",
    "fault_read_transient",
    "read_recovered",
    "fault_power_loss",
    "recovery_scan",
    "read_only_mode",
    "write_rejected",
    "span",
    "host_shed",
    "slo_status",
    "ecc_uncorrectable",
    "scrub_pass",
    "wear_level",
];

/// One read's attribution waterfall, kept for the slowest-reads table.
#[derive(Debug, Clone, Copy)]
pub struct SlowRead {
    /// Host request index.
    pub req: u64,
    /// Response time in simulated nanoseconds.
    pub total_ns: u64,
    /// Where those nanoseconds went.
    pub phases: PhaseNs,
}

/// Everything the analyzer learns from one pass over a trace.
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// Lines in the file.
    pub lines: usize,
    /// The run label from the opening `run_start`, if present.
    pub label: Option<String>,
    /// Replayed attribution over read spans.
    pub reads: PhaseStats,
    /// Replayed attribution over write spans.
    pub writes: PhaseStats,
    /// Spans whose phases did not sum to `total_ns` (gaps/overlaps).
    pub conservation_violations: u64,
    /// Spans disagreeing with their request's `host_complete` latency.
    pub latency_mismatches: u64,
    /// `read_retry` events seen (each is reconciled against its
    /// request's span `retry` phase).
    pub retry_events: u64,
    /// Read spans whose `retry` phase does not equal the summed
    /// `extra × attempt_ns` of their `read_retry` events.
    pub retry_mismatches: u64,
    /// Slowest reads, descending by response time (truncated).
    pub slowest_reads: Vec<SlowRead>,
    /// Per-die busy nanoseconds, unioned from flash-event windows.
    pub die_busy: Vec<u128>,
    /// Per-channel busy nanoseconds from bus-transfer windows.
    pub channel_busy: Vec<u128>,
    /// Timestamp of the first host arrival (measured window start).
    pub first_arrival: Option<u64>,
    /// Timestamp of the last host completion.
    pub last_completion: u64,
}

impl TraceStats {
    /// The measured window `[first_arrival, last_completion]` in ns.
    pub fn duration_ns(&self) -> u64 {
        match self.first_arrival {
            Some(first) => self.last_completion.saturating_sub(first),
            None => 0,
        }
    }

    /// `busy_ns` as a percentage of the measured window (0 when the
    /// trace carries no host traffic to define one).
    pub fn utilization_pct(&self, busy_ns: u128) -> f64 {
        let span = self.duration_ns();
        if span == 0 {
            0.0
        } else {
            busy_ns as f64 * 100.0 / span as f64
        }
    }

    /// The replayed attribution as the same `{"reads":…,"writes":…}`
    /// JSON object `Report::attribution_json` emits — byte-identical to
    /// the in-sim aggregate for an unfiltered trace of the same run.
    pub fn attribution_json(&self) -> String {
        JsonObj::new()
            .raw("reads", &self.reads.to_json())
            .raw("writes", &self.writes.to_json())
            .finish()
    }
}

fn field<'a>(v: &'a JsonValue, key: &str, line_no: usize) -> Result<&'a JsonValue, String> {
    v.get(key)
        .ok_or_else(|| format!("line {line_no}: missing field `{key}`"))
}

fn u64_field(v: &JsonValue, key: &str, line_no: usize) -> Result<u64, String> {
    field(v, key, line_no)?
        .as_u64()
        .ok_or_else(|| format!("line {line_no}: field `{key}` is not an unsigned integer"))
}

fn str_field<'a>(v: &'a JsonValue, key: &str, line_no: usize) -> Result<&'a str, String> {
    field(v, key, line_no)?
        .as_str()
        .ok_or_else(|| format!("line {line_no}: field `{key}` is not a string"))
}

/// Mark `[start, end)` busy on `marks[idx]`, counting only the part not
/// already covered — the same coverage-mark union the simulator uses
/// (windows arrive in non-decreasing `start` order).
fn mark_busy(busy: &mut Vec<u128>, marks: &mut Vec<u64>, idx: usize, start: u64, end: u64) {
    if busy.len() <= idx {
        busy.resize(idx + 1, 0);
        marks.resize(idx + 1, 0);
    }
    let from = start.max(marks[idx]);
    if end > from {
        busy[idx] += (end - from) as u128;
        marks[idx] = end;
    }
}

/// Parse and aggregate a trace, keeping at most `keep` slowest reads.
///
/// # Errors
///
/// Returns a line-tagged message for unreadable files, malformed JSON,
/// unknown event kinds, missing/mistyped fields, or timestamps that go
/// backwards inside the measured window.
pub fn load(path: &Path, keep: usize) -> Result<TraceStats, String> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read trace {}: {e}", path.display()))?;
    let mut stats = TraceStats {
        lines: 0,
        label: None,
        reads: PhaseStats::new(),
        writes: PhaseStats::new(),
        conservation_violations: 0,
        latency_mismatches: 0,
        retry_events: 0,
        retry_mismatches: 0,
        slowest_reads: Vec::new(),
        die_busy: Vec::new(),
        channel_busy: Vec::new(),
        first_arrival: None,
        last_completion: 0,
    };
    let mut die_marks: Vec<u64> = Vec::new();
    let mut channel_marks: Vec<u64> = Vec::new();
    // Latency of each completed-but-not-yet-spanned request; the span
    // follows its host_complete immediately, so this stays tiny.
    let mut pending: HashMap<u64, (u64, u64)> = HashMap::new();
    // Retry nanoseconds charged per request, accumulated from
    // `read_retry` events (`extra × attempt_ns` per flash op) and
    // reconciled against the request's span `retry` phase.
    let mut retry_charge: HashMap<u64, u64> = HashMap::new();
    // Warm-up events (GC/refresh with staggered stamps) may precede the
    // measured window; monotonicity is enforced from the first host
    // arrival on, and always across flash/span events (which only the
    // measured window emits).
    let mut measured = false;
    let mut mono_prev = 0u64;
    let keep = keep.max(1);

    for (i, line) in body.lines().enumerate() {
        let line_no = i + 1;
        stats.lines += 1;
        let v = jsonv::parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
        let kind = str_field(&v, "ev", line_no)?;
        if !KNOWN_KINDS.contains(&kind) {
            return Err(format!("line {line_no}: unknown event kind `{kind}`"));
        }
        let t = u64_field(&v, "t", line_no)?;
        let flash_or_span = matches!(
            kind,
            "sense" | "program" | "erase" | "voltage_adjust" | "span"
        );
        if measured || flash_or_span {
            if t < mono_prev {
                return Err(format!(
                    "line {line_no}: timestamp {t} goes backwards (previous {mono_prev})"
                ));
            }
            mono_prev = t;
        }
        match kind {
            "run_start" if stats.label.is_none() => {
                stats.label = Some(str_field(&v, "label", line_no)?.to_string());
            }
            "host_arrival" => {
                measured = true;
                mono_prev = mono_prev.max(t);
                if stats.first_arrival.is_none() {
                    stats.first_arrival = Some(t);
                }
            }
            "host_complete" => {
                let req = u64_field(&v, "req", line_no)?;
                let latency = u64_field(&v, "latency_ns", line_no)?;
                stats.last_completion = stats.last_completion.max(t);
                pending.insert(req, (latency, t));
            }
            "sense" => {
                let die = u64_field(&v, "die", line_no)? as usize;
                let channel = u64_field(&v, "channel", line_no)? as usize;
                let bus_start = u64_field(&v, "bus_start", line_no)?;
                let bus_end = u64_field(&v, "bus_end", line_no)?;
                // The die is held from issue to the end of the transfer
                // (read-first suspension frees it before ECC decode).
                mark_busy(&mut stats.die_busy, &mut die_marks, die, t, bus_end);
                mark_busy(
                    &mut stats.channel_busy,
                    &mut channel_marks,
                    channel,
                    bus_start,
                    bus_end,
                );
            }
            "program" => {
                let die = u64_field(&v, "die", line_no)? as usize;
                let channel = u64_field(&v, "channel", line_no)? as usize;
                let bus_start = u64_field(&v, "bus_start", line_no)?;
                let bus_end = u64_field(&v, "bus_end", line_no)?;
                let end = u64_field(&v, "end", line_no)?;
                mark_busy(&mut stats.die_busy, &mut die_marks, die, t, end);
                mark_busy(
                    &mut stats.channel_busy,
                    &mut channel_marks,
                    channel,
                    bus_start,
                    bus_end,
                );
            }
            "read_retry" => {
                let req = u64_field(&v, "req", line_no)?;
                let extra = u64_field(&v, "extra", line_no)?;
                let attempt_ns = u64_field(&v, "attempt_ns", line_no)?;
                stats.retry_events += 1;
                // Each retry repeats the op's full sensing procedure, so
                // the span must charge exactly extra × attempt_ns.
                *retry_charge.entry(req).or_default() += extra * attempt_ns;
            }
            "erase" | "voltage_adjust" => {
                let die = u64_field(&v, "die", line_no)? as usize;
                let end = u64_field(&v, "end", line_no)?;
                mark_busy(&mut stats.die_busy, &mut die_marks, die, t, end);
            }
            "span" => {
                let req = u64_field(&v, "req", line_no)?;
                let class = str_field(&v, "class", line_no)?;
                let total_ns = u64_field(&v, "total_ns", line_no)?;
                let mut phases = PhaseNs::zero();
                for p in ALL_PHASES {
                    if let Some(ns) = v.get(p.label()) {
                        let ns = ns.as_u64().ok_or_else(|| {
                            format!("line {line_no}: phase `{}` is not an integer", p.label())
                        })?;
                        phases.set(p, ns);
                    }
                }
                if phases.total() != total_ns {
                    stats.conservation_violations += 1;
                }
                if let Some((latency, done_at)) = pending.remove(&req) {
                    if latency != total_ns || done_at != t {
                        stats.latency_mismatches += 1;
                    }
                }
                // Every read_retry event must reconcile with its span:
                // attempts × per-attempt sense cost == charged retry ns.
                // (Checked only when the request emitted retry events, so
                // kind-filtered traces do not raise false alarms.)
                if let Some(charge) = retry_charge.remove(&req) {
                    if phases.get(Phase::Retry) != charge {
                        stats.retry_mismatches += 1;
                    }
                }
                match class {
                    "read" => {
                        stats.reads.record(&phases);
                        stats.slowest_reads.push(SlowRead {
                            req,
                            total_ns,
                            phases,
                        });
                        // Keep the list bounded: settle to the top `keep`
                        // whenever it grows past a small multiple.
                        if stats.slowest_reads.len() > keep.saturating_mul(4) + 64 {
                            truncate_slowest(&mut stats.slowest_reads, keep);
                        }
                    }
                    "write" => stats.writes.record(&phases),
                    other => {
                        return Err(format!("line {line_no}: unknown span class `{other}`"));
                    }
                }
            }
            _ => {}
        }
    }
    truncate_slowest(&mut stats.slowest_reads, keep);
    Ok(stats)
}

/// Sort descending by response time (request index breaks ties so the
/// order is deterministic) and keep the first `keep`.
fn truncate_slowest(slowest: &mut Vec<SlowRead>, keep: usize) {
    slowest.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.req.cmp(&b.req)));
    slowest.truncate(keep);
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

/// Validate a trace and summarize the result.
///
/// # Errors
///
/// Returns the first schema / monotonicity problem, or a summary of any
/// conservation or latency-consistency violations.
pub fn validate(path: &Path) -> Result<String, String> {
    let stats = load(path, 1)?;
    let spans = stats.reads.count() + stats.writes.count();
    if stats.conservation_violations > 0 {
        return Err(format!(
            "{}: {} of {} spans violate conservation (phases do not sum to total_ns)",
            path.display(),
            stats.conservation_violations,
            spans
        ));
    }
    if stats.latency_mismatches > 0 {
        return Err(format!(
            "{}: {} spans disagree with their host_complete latency",
            path.display(),
            stats.latency_mismatches
        ));
    }
    if stats.retry_mismatches > 0 {
        return Err(format!(
            "{}: {} read spans disagree with their read_retry events \
             (extra × attempt_ns != charged retry ns)",
            path.display(),
            stats.retry_mismatches
        ));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: ok — {} lines{}",
        path.display(),
        stats.lines,
        stats
            .label
            .as_deref()
            .map(|l| format!(" (run {l})"))
            .unwrap_or_default()
    );
    let _ = writeln!(
        out,
        "  schema valid, timestamps monotone in the measured window"
    );
    let _ = writeln!(
        out,
        "  {spans} spans ({} read, {} write), conservation exact on every one",
        stats.reads.count(),
        stats.writes.count()
    );
    if stats.retry_events > 0 {
        let _ = writeln!(
            out,
            "  {} read_retry events, all reconciled with their span retry phase",
            stats.retry_events
        );
    }
    Ok(out)
}

fn render_attribution(out: &mut String, title: &str, stats: &PhaseStats) {
    if stats.is_empty() {
        return;
    }
    let _ = writeln!(
        out,
        "\n{title} ({} requests, mean {:.1} us):",
        stats.count(),
        stats.grand_total() as f64 / stats.count() as f64 / 1e3
    );
    for p in ALL_PHASES {
        if stats.total(p) == 0 {
            continue;
        }
        let h = stats.histogram(p);
        let _ = writeln!(
            out,
            "  {:13} {:10.1} us avg  {:5.1} %   p99 {:10.1} us  ({} touched)",
            p.label(),
            stats.mean(p) / 1e3,
            stats.share_pct(p),
            us(h.percentile(99.0)),
            h.count()
        );
    }
}

/// Full analysis report: validation summary, attribution waterfalls,
/// slowest reads, utilization.
///
/// # Errors
///
/// Same failure modes as [`validate`].
pub fn report(path: &Path, top: usize) -> Result<String, String> {
    let mut out = validate(path)?;
    let stats = load(path, top)?;
    render_attribution(&mut out, "read attribution", &stats.reads);
    render_attribution(&mut out, "write attribution", &stats.writes);
    if !stats.slowest_reads.is_empty() {
        let _ = writeln!(
            out,
            "\ntop {} slowest reads:",
            stats.slowest_reads.len().min(top)
        );
        for s in stats.slowest_reads.iter().take(top) {
            let mut parts = Vec::new();
            for (phase, ns) in s.phases.iter() {
                if ns > 0 {
                    parts.push(format!("{} {:.1}", phase.label(), us(ns)));
                }
            }
            let _ = writeln!(
                out,
                "  req {:<8} {:10.1} us = {}",
                s.req,
                us(s.total_ns),
                parts.join(" + ")
            );
        }
    }
    if !stats.die_busy.is_empty() || !stats.channel_busy.is_empty() {
        let _ = writeln!(
            out,
            "\nutilization (rebuilt from flash events over {:.1} ms):",
            stats.duration_ns() as f64 / 1e6
        );
        for (i, busy) in stats.die_busy.iter().enumerate() {
            let _ = writeln!(out, "  die {i:<5} {:5.1} %", stats.utilization_pct(*busy));
        }
        for (i, busy) in stats.channel_busy.iter().enumerate() {
            let _ = writeln!(
                out,
                "  channel {i:<1} {:5.1} %",
                stats.utilization_pct(*busy)
            );
        }
    }
    Ok(out)
}

/// Compare two traces phase-by-phase (read attribution).
///
/// # Errors
///
/// Fails if either trace fails to load.
pub fn diff(a: &Path, b: &Path) -> Result<String, String> {
    let sa = load(a, 1)?;
    let sb = load(b, 1)?;
    let mut out = String::new();
    let name =
        |s: &TraceStats, p: &Path| s.label.clone().unwrap_or_else(|| p.display().to_string());
    let la = name(&sa, a);
    let lb = name(&sb, b);
    let _ = writeln!(out, "trace diff: {la} vs {lb}");
    let mean = |s: &PhaseStats| {
        if s.count() == 0 {
            0.0
        } else {
            s.grand_total() as f64 / s.count() as f64 / 1e3
        }
    };
    let (ma, mb) = (mean(&sa.reads), mean(&sb.reads));
    let _ = writeln!(
        out,
        "reads: {} vs {}; mean response {:.1} us vs {:.1} us ({:+.1} %)",
        sa.reads.count(),
        sb.reads.count(),
        ma,
        mb,
        if ma > 0.0 {
            (mb - ma) * 100.0 / ma
        } else {
            0.0
        }
    );
    let _ = writeln!(
        out,
        "{:15} {:>12} {:>12} {:>12} {:>9}",
        "phase", "a mean us", "b mean us", "delta us", "delta %"
    );
    for p in ALL_PHASES {
        let (pa, pb) = (sa.reads.mean(p) / 1e3, sb.reads.mean(p) / 1e3);
        if pa == 0.0 && pb == 0.0 {
            continue;
        }
        let pct = if pa > 0.0 {
            format!("{:+8.1}", (pb - pa) * 100.0 / pa)
        } else {
            "      new".to_string()
        };
        let _ = writeln!(
            out,
            "  {:13} {:12.1} {:12.1} {:+12.1} {:>9}",
            p.label(),
            pa,
            pb,
            pb - pa,
            pct
        );
    }
    let _ = writeln!(
        out,
        "conservation violations: {} vs {}",
        sa.conservation_violations, sb.conservation_violations
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ida_obs::span::Phase;
    use std::path::PathBuf;

    fn write_trace(name: &str, lines: &[&str]) -> PathBuf {
        let dir = std::env::temp_dir().join("ida_analyze_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        path
    }

    const SPAN_LINE: &str = "{\"ev\":\"span\",\"t\":216000,\"req\":0,\"class\":\"read\",\
                             \"total_ns\":216000,\"queue_host\":98000,\"sense\":50000,\
                             \"transfer\":48000,\"ecc\":20000}";

    #[test]
    fn validates_and_replays_a_tiny_trace() {
        let path = write_trace(
            "tiny.jsonl",
            &[
                "{\"ev\":\"run_start\",\"t\":0,\"label\":\"T\"}",
                "{\"ev\":\"host_arrival\",\"t\":0,\"req\":0,\"class\":\"read\",\"lpn\":1,\"pages\":1}",
                "{\"ev\":\"sense\",\"t\":0,\"channel\":0,\"die\":0,\"block\":1,\"page\":0,\
                 \"senses\":1,\"retries\":0,\"background\":false,\"bus_start\":98000,\
                 \"bus_end\":146000,\"end\":166000}",
                "{\"ev\":\"host_complete\",\"t\":216000,\"req\":0,\"class\":\"read\",\
                 \"latency_ns\":216000}",
                SPAN_LINE,
            ],
        );
        let ok = validate(&path).unwrap();
        assert!(ok.contains("conservation exact"), "summary: {ok}");
        let stats = load(&path, 5).unwrap();
        assert_eq!(stats.label.as_deref(), Some("T"));
        assert_eq!(stats.reads.count(), 1);
        assert_eq!(stats.reads.grand_total(), 216_000);
        assert_eq!(stats.reads.total(Phase::QueueHost), 98_000);
        assert_eq!(stats.conservation_violations, 0);
        assert_eq!(stats.latency_mismatches, 0);
        assert_eq!(stats.slowest_reads.len(), 1);
        // die busy [0, 146000); channel busy [98000, 146000).
        assert_eq!(stats.die_busy, vec![146_000]);
        assert_eq!(stats.channel_busy, vec![48_000]);
        assert_eq!(stats.duration_ns(), 216_000);
        let text = report(&path, 5).unwrap();
        assert!(text.contains("read attribution"), "report: {text}");
        assert!(text.contains("queue_host"), "report: {text}");
        assert!(text.contains("req 0"), "report: {text}");
    }

    #[test]
    fn rejects_garbage_unknown_kinds_and_broken_spans() {
        let bad_json = write_trace("bad_json.jsonl", &["{nope"]);
        assert!(load(&bad_json, 1).unwrap_err().contains("line 1"));

        let unknown = write_trace("unknown.jsonl", &["{\"ev\":\"frobnicate\",\"t\":3}"]);
        assert!(load(&unknown, 1)
            .unwrap_err()
            .contains("unknown event kind"));

        let broken = write_trace(
            "broken_span.jsonl",
            &[
                "{\"ev\":\"span\",\"t\":5,\"req\":0,\"class\":\"read\",\"total_ns\":100,\
               \"sense\":40}",
            ],
        );
        let stats = load(&broken, 1).unwrap();
        assert_eq!(stats.conservation_violations, 1);
        let err = validate(&broken).unwrap_err();
        assert!(err.contains("conservation"), "error: {err}");
    }

    #[test]
    fn rejects_backwards_timestamps_in_the_measured_window() {
        let path = write_trace(
            "backwards.jsonl",
            &[
                "{\"ev\":\"host_arrival\",\"t\":100,\"req\":0,\"class\":\"read\",\"lpn\":1,\
                 \"pages\":1}",
                "{\"ev\":\"host_complete\",\"t\":50,\"req\":0,\"class\":\"read\",\
                 \"latency_ns\":10}",
            ],
        );
        let err = load(&path, 1).unwrap_err();
        assert!(err.contains("backwards"), "error: {err}");
        // Warm-up events before the first arrival may be staggered.
        let warm = write_trace(
            "warmup.jsonl",
            &[
                "{\"ev\":\"gc_run\",\"t\":900,\"block\":1,\"copies\":2}",
                "{\"ev\":\"gc_run\",\"t\":100,\"block\":2,\"copies\":2}",
                "{\"ev\":\"host_arrival\",\"t\":0,\"req\":0,\"class\":\"read\",\"lpn\":1,\
                 \"pages\":1}",
            ],
        );
        assert!(load(&warm, 1).is_ok());
    }

    #[test]
    fn span_latency_mismatch_fails_validation() {
        let path = write_trace(
            "mismatch.jsonl",
            &[
                "{\"ev\":\"host_complete\",\"t\":216000,\"req\":0,\"class\":\"read\",\
                 \"latency_ns\":999}",
                SPAN_LINE,
            ],
        );
        let stats = load(&path, 1).unwrap();
        assert_eq!(stats.latency_mismatches, 1);
        assert!(validate(&path).unwrap_err().contains("host_complete"));
    }

    #[test]
    fn aging_kinds_parse_and_retry_events_reconcile_with_spans() {
        // Two retried ops on one request: 2×50us + 1×150us = 250us of
        // retry, matching the span's retry phase exactly.
        let path = write_trace(
            "retry_ok.jsonl",
            &[
                "{\"ev\":\"scrub_pass\",\"t\":0,\"scanned\":8,\"relocated\":1,\"wear_moves\":0}",
                "{\"ev\":\"wear_level\",\"t\":1,\"block\":3,\"moves\":2,\"spread\":70}",
                "{\"ev\":\"ecc_uncorrectable\",\"t\":2,\"lpn\":9,\"page\":17,\"block\":1,\
                 \"attempts\":5}",
                "{\"ev\":\"read_retry\",\"t\":3,\"die\":0,\"req\":0,\"extra\":2,\
                 \"attempt_ns\":50000}",
                "{\"ev\":\"read_retry\",\"t\":4,\"die\":1,\"req\":0,\"extra\":1,\
                 \"attempt_ns\":150000}",
                "{\"ev\":\"span\",\"t\":500000,\"req\":0,\"class\":\"read\",\
                 \"total_ns\":500000,\"sense\":182000,\"retry\":250000,\"transfer\":48000,\
                 \"ecc\":20000}",
            ],
        );
        let stats = load(&path, 1).unwrap();
        assert_eq!(stats.retry_events, 2);
        assert_eq!(stats.retry_mismatches, 0);
        let ok = validate(&path).unwrap();
        assert!(ok.contains("2 read_retry events"), "summary: {ok}");
    }

    #[test]
    fn retry_span_disagreement_fails_validation() {
        let path = write_trace(
            "retry_bad.jsonl",
            &[
                "{\"ev\":\"read_retry\",\"t\":3,\"die\":0,\"req\":0,\"extra\":2,\
                 \"attempt_ns\":50000}",
                "{\"ev\":\"span\",\"t\":300000,\"req\":0,\"class\":\"read\",\
                 \"total_ns\":300000,\"sense\":182000,\"retry\":50000,\"transfer\":48000,\
                 \"ecc\":20000}",
            ],
        );
        let stats = load(&path, 1).unwrap();
        assert_eq!(stats.retry_mismatches, 1);
        let err = validate(&path).unwrap_err();
        assert!(err.contains("read_retry"), "error: {err}");
    }

    #[test]
    fn diff_of_a_trace_with_itself_is_all_zero() {
        let path = write_trace(
            "self.jsonl",
            &["{\"ev\":\"run_start\",\"t\":0,\"label\":\"S\"}", SPAN_LINE],
        );
        let text = diff(&path, &path).unwrap();
        assert!(text.contains("trace diff: S vs S"), "diff: {text}");
        assert!(text.contains("(+0.0 %)"), "diff: {text}");
        assert!(
            text.contains("conservation violations: 0 vs 0"),
            "diff: {text}"
        );
    }

    #[test]
    fn attribution_json_matches_phase_stats_encoding() {
        let path = write_trace("attr.jsonl", &[SPAN_LINE]);
        let stats = load(&path, 1).unwrap();
        let json = stats.attribution_json();
        assert!(json.starts_with("{\"reads\":{\"count\":1,"), "json: {json}");
        assert!(json.contains("\"writes\":{\"count\":0,"), "json: {json}");
    }
}
