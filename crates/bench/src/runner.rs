//! The shared warm-up → measure protocol.
//!
//! Every experiment follows the same steps the paper's methodology implies:
//!
//! 1. **Prefill** the workload's footprint (sequential write of every LPN);
//! 2. **Age** with the workload's update traffic, creating the scattered
//!    invalid pages the paper's Figure 4 quantifies;
//! 3. **Steady-state refresh**: every closed block goes through one refresh
//!    cycle (IDA-converting eligible wordlines when the system under test
//!    uses IDA), with staggered timestamps so the next cycle trickles in;
//! 4. **Measure**: replay the timed trace and collect the report.

use ida_core::refresh::RefreshMode;
use ida_faults::FaultConfig;
use ida_flash::geometry::Geometry;
use ida_flash::timing::{FlashTiming, SimTime};
use ida_obs::gauge::GaugeSet;
use ida_obs::trace::{FilterSink, JsonlSink, SinkHandle, TraceEvent};
use ida_ssd::retry::RetryConfig;
use ida_ssd::{HostOp, HostOpKind, Report, SimError, Simulator, SsdConfig};
use ida_sweep::WarmCache;
use ida_workloads::suite::WorkloadPreset;
use ida_workloads::trace::{OpKind, Trace};
use std::path::{Path, PathBuf};

/// Base seed of the warm-phase RNG stream. Cells that differ only in
/// post-warm-up axes (fault level, aging level, offered load, replay
/// mode) derive their simulator seed from this base and their *warm*
/// identity, so their warm-ups are bit-identical and one captured
/// snapshot can fork into all of them. Post-warm-up randomness (fault
/// plans, aging ladders, arrival processes, retry samplers) still
/// derives from the full per-cell stream seed.
pub const WARM_SEED_BASE: u64 = 0x1DA5_EEDA_B1E0_0001;

/// How big an experiment run is.
#[derive(Debug, Clone)]
pub struct ExperimentScale {
    /// Geometry of the simulated SSD.
    pub geometry: Geometry,
    /// Host requests in the measured trace.
    pub requests: usize,
    /// Refresh period as a fraction of the measured trace span.
    pub refresh_period_frac: f64,
}

impl ExperimentScale {
    /// The default experiment scale: the scaled 8 GB geometry and a trace
    /// long enough for stable means.
    ///
    /// The refresh period defaults to 12× the measured span: the paper's
    /// periods (3 days – 3 months) are huge relative to per-second I/O, so
    /// at our compressed timescale almost no block hits its *next* refresh
    /// inside the measured window — the steady state (including IDA
    /// conversions) is established during warm-up, exactly as a long-lived
    /// device would arrive at it. Experiments that want live refresh
    /// traffic inside the window lower `refresh_period_frac` below 1.
    pub fn default_scale() -> Self {
        ExperimentScale {
            geometry: Geometry::scaled_8gb(),
            requests: 40_000,
            refresh_period_frac: 12.0,
        }
    }

    /// A smaller scale for smoke tests and CI.
    pub fn smoke() -> Self {
        ExperimentScale {
            geometry: Geometry::scaled_8gb(),
            requests: 6_000,
            refresh_period_frac: 12.0,
        }
    }

    /// Scale with a different request count.
    pub fn with_requests(mut self, requests: usize) -> Self {
        self.requests = requests;
        self
    }

    /// The scale selected by environment variables: `IDA_SCALE=smoke|full`
    /// (default: the standard scale) and `IDA_REQUESTS=<n>` to override
    /// the request count directly.
    pub fn from_env() -> Self {
        let mut scale = match std::env::var("IDA_SCALE").as_deref() {
            Ok("smoke") => Self::smoke(),
            Ok("full") => Self::default_scale().with_requests(120_000),
            _ => Self::default_scale(),
        };
        if let Ok(n) = std::env::var("IDA_REQUESTS") {
            if let Ok(n) = n.parse() {
                scale.requests = n;
            }
        }
        scale
    }
}

/// Default gauge sampling interval: 1 ms of simulated time.
pub const DEFAULT_GAUGE_INTERVAL_NS: u64 = 1_000_000;

/// Observability options threaded into measured runs: where to write the
/// event trace and metrics report, whether to show progress, and how
/// often to sample gauges. The default (all off) adds no overhead — the
/// simulator keeps its null sink.
#[derive(Debug, Clone, Default)]
pub struct ObsOptions {
    /// Write the run's event trace as JSONL to this path.
    pub trace_out: Option<PathBuf>,
    /// Write the run's [`Report`] as JSON to this path.
    pub metrics_json: Option<PathBuf>,
    /// Report run progress on stderr.
    pub progress: bool,
    /// Gauge sampling interval in simulated ns (`None` = no gauges;
    /// defaults to [`DEFAULT_GAUGE_INTERVAL_NS`] when metrics are
    /// requested).
    pub gauge_interval_ns: Option<u64>,
    /// Comma-separated event-class filter for the trace output
    /// (`host,ftl,gc,refresh,fault,span`; `None` = keep everything), so
    /// span-heavy traces stay bounded.
    pub trace_filter: Option<String>,
}

impl ObsOptions {
    /// Options selected by environment variables, for the experiment
    /// binaries: `IDA_TRACE_OUT=<path>`, `IDA_METRICS_JSON=<path>`,
    /// `IDA_PROGRESS=1`, `IDA_GAUGE_INTERVAL_US=<n>`,
    /// `IDA_TRACE_FILTER=<class>[,<class>...]`.
    pub fn from_env() -> Self {
        ObsOptions {
            trace_out: std::env::var_os("IDA_TRACE_OUT").map(PathBuf::from),
            metrics_json: std::env::var_os("IDA_METRICS_JSON").map(PathBuf::from),
            progress: std::env::var("IDA_PROGRESS").is_ok_and(|v| v != "0" && !v.is_empty()),
            gauge_interval_ns: std::env::var("IDA_GAUGE_INTERVAL_US")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .map(|us| us.max(1) * 1_000),
            trace_filter: std::env::var("IDA_TRACE_FILTER").ok(),
        }
    }

    /// Whether any output or progress option is set.
    pub fn any(&self) -> bool {
        self.trace_out.is_some() || self.metrics_json.is_some() || self.progress
    }

    /// A copy whose output paths carry a per-run `label` suffix
    /// (`trace.jsonl` → `trace.<label>.jsonl`), so one option set can
    /// serve several runs without the later overwriting the earlier.
    pub fn suffixed(&self, label: &str) -> Self {
        ObsOptions {
            trace_out: self.trace_out.as_deref().map(|p| suffix_path(p, label)),
            metrics_json: self.metrics_json.as_deref().map(|p| suffix_path(p, label)),
            ..self.clone()
        }
    }

    /// Attach the selected sinks to `sim`. Call before warm-up so trace
    /// event counts match the cumulative end-of-run FTL counters.
    ///
    /// # Errors
    ///
    /// Fails if the trace file cannot be created, or if the trace filter
    /// names an unknown event class.
    pub fn attach(&self, sim: &mut Simulator, label: &str) -> std::io::Result<()> {
        if let Some(path) = &self.trace_out {
            let jsonl = JsonlSink::create(path)?;
            let handle = match &self.trace_filter {
                Some(spec) => {
                    let filtered = FilterSink::new(jsonl, spec)
                        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
                    SinkHandle::new(filtered)
                }
                None => SinkHandle::new(jsonl),
            };
            handle.emit_with(|| TraceEvent::RunStart {
                t: sim.now(),
                label: label.to_string(),
            });
            sim.set_trace(handle);
            // A trace requested through ObsOptions always carries spans —
            // the analyzer needs them for attribution replay.
            sim.set_spans(true);
        }
        if let Some(interval) = self.gauge_interval_ns {
            sim.set_gauges(GaugeSet::every(interval));
        } else if self.metrics_json.is_some() {
            sim.set_gauges(GaugeSet::every(DEFAULT_GAUGE_INTERVAL_NS));
        }
        sim.set_progress(self.progress);
        Ok(())
    }

    /// Flush the trace and write the metrics report, as configured.
    ///
    /// # Errors
    ///
    /// Fails if either file cannot be written.
    pub fn finish(&self, sim: &Simulator, report: &Report) -> std::io::Result<()> {
        sim.flush_trace()?;
        if let Some(path) = &self.metrics_json {
            std::fs::write(path, report.to_json() + "\n")?;
        }
        Ok(())
    }
}

fn suffix_path(path: &Path, label: &str) -> PathBuf {
    match path.extension().and_then(|e| e.to_str()) {
        Some(ext) => path.with_extension(format!("{label}.{ext}")),
        None => path.with_extension(label),
    }
}

/// How the measured trace is replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// Open loop: honor trace timestamps (response-time experiments).
    OpenLoop,
    /// Closed loop at the given queue depth: saturation replay
    /// (throughput experiments, Figure 10).
    ClosedLoop(usize),
}

/// The system variants the paper compares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SystemUnderTest {
    /// Conventional coding, baseline refresh.
    Baseline,
    /// IDA coding with the given voltage-adjustment error rate
    /// (`IDA-Coding-E20` ⇒ `error_rate = 0.20`).
    Ida {
        /// Fraction of reprogrammed pages corrupted by the adjustment.
        error_rate: f64,
    },
}

impl SystemUnderTest {
    /// Short label used in reports.
    pub fn label(&self) -> String {
        match self {
            SystemUnderTest::Baseline => "Baseline".into(),
            SystemUnderTest::Ida { error_rate } => {
                format!("IDA-E{:.0}", error_rate * 100.0)
            }
        }
    }
}

/// One workload × system measurement.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// Workload name.
    pub workload: String,
    /// System label.
    pub system: String,
    /// The measured report.
    pub report: Report,
}

/// Build the `SsdConfig` for a system under test.
///
/// # Panics
///
/// On a structurally invalid configuration (zero geometry, out-of-range
/// error rate). Cells run under `catch_unwind`, so inside a sweep this
/// becomes a per-cell failure record rather than taking down the run.
pub fn system_config(
    system: SystemUnderTest,
    geometry: Geometry,
    timing: FlashTiming,
    retry: RetryConfig,
) -> SsdConfig {
    let builder = SsdConfig::builder()
        .geometry(geometry)
        .timing(timing)
        .retry(retry);
    let builder = match system {
        SystemUnderTest::Baseline => builder.refresh_mode(RefreshMode::Baseline),
        SystemUnderTest::Ida { error_rate } => builder
            .refresh_mode(RefreshMode::Ida)
            .adjust_error_rate(error_rate),
    };
    match builder.build() {
        Ok(cfg) => cfg,
        Err(e) => panic!("invalid system config: {e}"),
    }
}

/// Convert a workload trace to simulator host ops.
pub fn to_host_ops(trace: &Trace) -> Vec<HostOp> {
    trace
        .records
        .iter()
        .map(|r| HostOp {
            at: r.at,
            kind: match r.kind {
                OpKind::Read => HostOpKind::Read,
                OpKind::Write => HostOpKind::Write,
            },
            lpn: r.page,
            pages: r.pages,
        })
        .collect()
}

/// Run one workload on one pre-built config, following the warm-up →
/// measure protocol. Returns the measured report.
pub fn run_config(preset: &WorkloadPreset, cfg: SsdConfig, scale: &ExperimentScale) -> Report {
    run_config_mode(preset, cfg, scale, ReplayMode::OpenLoop)
}

/// [`run_config`] with an explicit replay mode.
pub fn run_config_mode(
    preset: &WorkloadPreset,
    cfg: SsdConfig,
    scale: &ExperimentScale,
    mode: ReplayMode,
) -> Report {
    run_config_faulted(preset, cfg, scale, mode, None)
}

/// [`run_config_mode`] with a fault plan armed *after* warm-up, so every
/// injected fault lands inside the measured window (warm-up stays clean,
/// like a device that degrades in service).
pub fn run_config_faulted(
    preset: &WorkloadPreset,
    cfg: SsdConfig,
    scale: &ExperimentScale,
    mode: ReplayMode,
    faults: Option<FaultConfig>,
) -> Report {
    run_config_faulted_cached(preset, cfg, scale, mode, faults, None)
}

/// [`run_config_faulted`] with an optional warm-state cache: on a cache
/// hit the warm-up is skipped entirely and the simulator is restored
/// from the captured snapshot — byte-identical state, by the snapshot
/// layer's differential invariant, so results never depend on whether
/// (or how often) the cache hit.
pub fn run_config_faulted_cached(
    preset: &WorkloadPreset,
    cfg: SsdConfig,
    scale: &ExperimentScale,
    mode: ReplayMode,
    faults: Option<FaultConfig>,
    warm: Option<&WarmCache>,
) -> Report {
    let (mut sim, trace) = warmed_simulator_cached(preset, cfg, scale, warm);
    if let Some(faults) = faults {
        sim.arm_faults(faults);
    }
    // Experiment runs always carry attribution spans, so every sweep cell
    // exports its waterfall (the bench suite drives `Simulator::run`
    // directly and so measures the spans-off hot path).
    sim.set_spans(true);
    match mode {
        ReplayMode::OpenLoop => sim.run(to_host_ops(&trace)),
        ReplayMode::ClosedLoop(depth) => sim.run_closed_loop(to_host_ops(&trace), depth),
    }
}

/// Why an imported-trace replay could not produce a report.
#[derive(Debug)]
pub enum ReplayError {
    /// Observability output (trace/metrics files) failed.
    Io(std::io::Error),
    /// The simulator rejected the trace (e.g. unsorted arrivals) — the
    /// typed [`SimError`] instead of the `Simulator::run` panic, because
    /// imported traces are user input, not harness bugs.
    Sim(SimError),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Io(e) => write!(f, "observability output failed: {e}"),
            ReplayError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<std::io::Error> for ReplayError {
    fn from(e: std::io::Error) -> Self {
        ReplayError::Io(e)
    }
}

impl From<SimError> for ReplayError {
    fn from(e: SimError) -> Self {
        ReplayError::Sim(e)
    }
}

/// Replay an imported trace (e.g. an MSR Cambridge volume) on one system.
///
/// Imported traces carry no preset, so warm-up is the minimal honest
/// version: fold the trace onto a footprint-sized slice of the device,
/// prefill that footprint, put refresh on the trace's own span, run one
/// staggered refresh cycle, then measure. Open loop replays the trace's
/// own arrival times through the typed [`Simulator::try_run`] path (a
/// malformed trace is an error, not a panic); closed loop ignores them
/// and keeps `depth` requests in flight.
///
/// # Errors
///
/// [`ReplayError::Sim`] when the simulator rejects the trace,
/// [`ReplayError::Io`] when observability output fails.
pub fn replay_trace(
    trace: &Trace,
    system: SystemUnderTest,
    scale: &ExperimentScale,
    mode: ReplayMode,
    obs: &ObsOptions,
) -> Result<Report, ReplayError> {
    let cfg = system_config(
        system,
        scale.geometry,
        FlashTiming::paper_tlc(),
        RetryConfig::disabled(),
    );
    let mut sim = Simulator::new(cfg);
    obs.attach(&mut sim, &format!("replay {}", system.label()))?;
    // Fold onto at most half the exported space so GC and refresh have
    // room to breathe, like the presets' footprint fractions.
    let exported = sim.ftl().exported_pages();
    let folded = ida_workloads::msr::fold_to_footprint(trace, (exported / 2).max(1_000));
    let footprint = folded.footprint_pages().max(1_000);
    sim.prefill(0..footprint);
    let span = folded.span().max(1);
    let period = (span as f64 * scale.refresh_period_frac) as SimTime;
    sim.set_refresh_period(period.max(1));
    sim.force_refresh_all(span / 2);
    sim.set_spans(true);
    let ops = to_host_ops(&folded);
    let report = match mode {
        ReplayMode::OpenLoop => sim.try_run(ops)?,
        ReplayMode::ClosedLoop(depth) => sim.run_closed_loop(ops, depth),
    };
    obs.finish(&sim, &report)?;
    Ok(report)
}

/// Build a simulator warmed to the steady state for `preset` and return it
/// together with the measured trace, for experiments that need to inspect
/// or drive the device beyond a single measured run.
pub fn warmed_simulator(
    preset: &WorkloadPreset,
    cfg: SsdConfig,
    scale: &ExperimentScale,
) -> (Simulator, Trace) {
    let mut sim = Simulator::new(cfg);
    let trace = warm_up(&mut sim, preset, scale);
    (sim, trace)
}

/// The warm-up cache key: an FNV-1a fingerprint over everything the
/// warm-up protocol reads — the workload (which seeds every generated
/// trace), the experiment scale (request count and refresh-period
/// fraction shape the steady-state refresh), and the full binary-encoded
/// [`SsdConfig`] (geometry, timing, FTL knobs, seed). Post-warm-up
/// inputs — fault plans, aging models, arrival processes, replay mode —
/// are deliberately *not* part of the configuration at warm time (they
/// are armed after), so they fall out of the key and sibling cells
/// share one warm-up.
pub fn warm_cache_key(workload: &str, cfg: &SsdConfig, scale: &ExperimentScale) -> u64 {
    let mut w = ida_snap::Writer::new();
    ida_snap::Snap::encode(&workload.to_string(), &mut w);
    ida_snap::Snap::encode(&scale.geometry, &mut w);
    ida_snap::Snap::encode(&scale.requests, &mut w);
    ida_snap::Snap::encode(&scale.refresh_period_frac, &mut w);
    ida_snap::Snap::encode(cfg, &mut w);
    ida_snap::fnv1a(&w.into_bytes())
}

/// [`warmed_simulator`] through an optional warm-state cache: the first
/// caller per [`warm_cache_key`] runs the warm-up live and snapshots the
/// result; everyone else forks from the captured bytes. The measured
/// trace is regenerated directly from the preset (a pure function of
/// workload, footprint and request count), so a hit touches no
/// simulator at all until the fork.
///
/// The miss path keeps the simulator it just warmed instead of restoring
/// from its own snapshot: the snapshot canonical-form invariant (restore
/// → run is byte-identical to keep running, proven by the differential
/// tests in `ida-ssd`) makes the live simulator and the fork
/// interchangeable, and skipping the self-restore avoids a multi-MB
/// decode per unique warm-up.
pub fn warmed_simulator_cached(
    preset: &WorkloadPreset,
    cfg: SsdConfig,
    scale: &ExperimentScale,
    warm: Option<&WarmCache>,
) -> (Simulator, Trace) {
    let Some(cache) = warm else {
        return warmed_simulator(preset, cfg, scale);
    };
    let key = warm_cache_key(&preset.spec.name, &cfg, scale);
    let mut live = None;
    let snap = cache.get_or_build(key, || {
        let (sim, _) = warmed_simulator(preset, cfg.clone(), scale);
        let bytes = sim.snapshot();
        live = Some(sim);
        bytes
    });
    let sim = live.unwrap_or_else(|| {
        Simulator::from_snapshot(&snap)
            .unwrap_or_else(|e| panic!("warm snapshot for key {key:016x} failed to restore: {e}"))
    });
    let footprint = ((cfg.ftl.exported_pages() as f64 * preset.footprint_frac) as u64).max(1_000);
    let trace = preset.generate(footprint, scale.requests);
    (sim, trace)
}

/// Run the warm-up protocol on an existing simulator (so observability
/// sinks attached at creation see the warm-up events too) and return the
/// measured trace.
pub fn warm_up(sim: &mut Simulator, preset: &WorkloadPreset, scale: &ExperimentScale) -> Trace {
    let exported = sim.ftl().exported_pages();
    let footprint = ((exported as f64 * preset.footprint_frac) as u64).max(1_000);

    // 1. Prefill the footprint.
    sim.prefill(0..footprint);
    // 2. Age with update traffic (layout history + wear).
    let aging = to_host_ops(&preset.aging_trace(footprint));
    sim.age(&aging);
    // 3. Steady-state refresh to the fixed point: two refresh cycles with
    //    update traffic in between, so blocks that absorbed the first
    //    cycle's migrated pages have been through their own refresh too —
    //    the state a long-lived device reaches after many periods.
    let trace = preset.generate(footprint, scale.requests);
    let span = trace.span().max(1);
    let period = (span as f64 * scale.refresh_period_frac) as SimTime;
    sim.set_refresh_period(period.max(1));
    sim.force_refresh_all(span / 2);
    let reage1 = to_host_ops(&preset.reage_trace(footprint));
    sim.age(&reage1);
    sim.force_refresh_all(span / 2);
    // 4. Re-age: updates accumulate between refresh cycles, so the window
    //    opens with partially invalidated blocks (paper Table IV).
    let reage2 = to_host_ops(&preset.reage_trace2(footprint));
    sim.age(&reage2);
    trace
}

/// Run one workload on one system at the paper's TLC timing.
///
/// Observability options are picked up from the environment (see
/// [`ObsOptions::from_env`]); output paths get a `<workload>_<system>`
/// suffix so sweeps over several runs don't overwrite each other.
pub fn run_system(
    preset: &WorkloadPreset,
    system: SystemUnderTest,
    scale: &ExperimentScale,
) -> WorkloadRun {
    let obs = ObsOptions::from_env();
    let obs = obs.suffixed(&format!("{}_{}", preset.spec.name, system.label()));
    run_system_obs(preset, system, scale, &obs).expect("observability output failed")
}

/// [`run_system`] with explicit observability options (used by the CLI;
/// paths are taken as given, without a per-run suffix).
///
/// # Errors
///
/// Fails if a requested trace or metrics file cannot be written.
pub fn run_system_obs(
    preset: &WorkloadPreset,
    system: SystemUnderTest,
    scale: &ExperimentScale,
    obs: &ObsOptions,
) -> std::io::Result<WorkloadRun> {
    let cfg = system_config(
        system,
        scale.geometry,
        FlashTiming::paper_tlc(),
        RetryConfig::disabled(),
    );
    let mut sim = Simulator::new(cfg);
    obs.attach(
        &mut sim,
        &format!("{}/{}", preset.spec.name, system.label()),
    )?;
    sim.set_spans(true);
    let trace = warm_up(&mut sim, preset, scale);
    let report = sim.run(to_host_ops(&trace));
    obs.finish(&sim, &report)?;
    Ok(WorkloadRun {
        workload: preset.spec.name.clone(),
        system: system.label(),
        report,
    })
}

/// Normalized mean read response time of `ida` versus `baseline`
/// (< 1.0 means IDA is faster).
pub fn normalized_read_response(ida: &Report, baseline: &Report) -> f64 {
    let base = baseline.reads.mean();
    if base == 0.0 {
        return 1.0;
    }
    ida.reads.mean() / base
}

#[cfg(test)]
mod tests {
    use super::*;
    use ida_workloads::suite::paper_workload;

    #[test]
    fn smoke_run_produces_reads_and_writes() {
        let preset = paper_workload("hm_1").unwrap();
        let scale = ExperimentScale::smoke().with_requests(1_500);
        let run = run_system(&preset, SystemUnderTest::Baseline, &scale);
        assert!(run.report.reads.count > 500);
        assert!(run.report.writes.count > 0);
        assert!(run.report.reads.mean() > 0.0);
    }

    #[test]
    fn ida_beats_baseline_on_a_read_heavy_workload() {
        let preset = paper_workload("proj_1").unwrap();
        let scale = ExperimentScale::smoke();
        let base = run_system(&preset, SystemUnderTest::Baseline, &scale);
        let ida = run_system(&preset, SystemUnderTest::Ida { error_rate: 0.0 }, &scale);
        let norm = normalized_read_response(&ida.report, &base.report);
        assert!(
            norm < 0.95,
            "IDA-E0 should clearly improve read response, got {norm}"
        );
        assert!(ida.report.breakdown.ida > 0, "IDA reads must occur");
    }
}
