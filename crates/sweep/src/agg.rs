//! Deterministic aggregation of sweep outcomes.
//!
//! Results merge in cell order (the spec's expansion order), and cached
//! payloads are re-emitted as the raw bytes the journal stored, so the
//! aggregated JSON is identical for a 1-worker run, an N-worker run,
//! and a killed-and-resumed run of the same spec. Volatile facts
//! (attempt counts, cache hits) are deliberately excluded from the
//! aggregate — they describe the schedule, not the experiment — and are
//! surfaced in [`SweepOutcome::summary`] instead.

use crate::pool::{CellOutcome, CellStatus};
use ida_obs::json::{array, JsonObj};

/// The collected results of one sweep run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOutcome {
    /// Sweep name.
    pub sweep: String,
    /// Per-cell outcomes, in cell-index order.
    pub outcomes: Vec<CellOutcome>,
}

impl SweepOutcome {
    /// Cells that produced a payload.
    pub fn ok_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.payload().is_some())
            .count()
    }

    /// Cells that exhausted their retries.
    pub fn failed_count(&self) -> usize {
        self.outcomes.len() - self.ok_count()
    }

    /// Cells restored from the checkpoint journal.
    pub fn cached_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.cached).count()
    }

    /// The outcome for `(workload, system)` with every given param pair
    /// matching (replicate 1 — the common single-replicate case).
    pub fn find(
        &self,
        workload: &str,
        system: &str,
        params: &[(&str, &str)],
    ) -> Option<&CellOutcome> {
        self.outcomes.iter().find(|o| {
            o.cell.workload == workload
                && o.cell.system == system
                && params.iter().all(|(k, v)| o.cell.param(k) == Some(*v))
        })
    }

    /// The raw payload for [`SweepOutcome::find`]'s cell.
    pub fn payload(&self, workload: &str, system: &str, params: &[(&str, &str)]) -> Option<&str> {
        self.find(workload, system, params)?.payload()
    }

    /// The deterministic aggregated JSON document: every successful cell
    /// (in cell order) with its coordinates and raw payload, followed by
    /// the failure records.
    pub fn aggregate_json(&self) -> String {
        let cells = self.outcomes.iter().filter_map(|o| {
            let payload = o.payload()?;
            let params = o
                .cell
                .params
                .iter()
                .fold(JsonObj::new(), |obj, (k, v)| obj.str(k, v))
                .finish();
            Some(
                JsonObj::new()
                    .str("cell", &o.cell.id())
                    .str("workload", &o.cell.workload)
                    .str("system", &o.cell.system)
                    .raw("params", &params)
                    .u64("replicate", o.cell.replicate)
                    .raw("result", payload)
                    .finish(),
            )
        });
        let failed = self.outcomes.iter().filter_map(|o| match &o.status {
            CellStatus::Failed { error } => Some(
                JsonObj::new()
                    .str("cell", &o.cell.id())
                    .str("error", error)
                    .finish(),
            ),
            CellStatus::Done { .. } => None,
        });
        JsonObj::new()
            .str("sweep", &self.sweep)
            .u64("cells", self.outcomes.len() as u64)
            .raw("results", &array(cells))
            .raw("failed", &array(failed))
            .finish()
    }

    /// A one-line human summary (`110 cells: 108 ok, 2 failed, 40 cached`).
    pub fn summary(&self) -> String {
        format!(
            "{} cells: {} ok, {} failed, {} cached",
            self.outcomes.len(),
            self.ok_count(),
            self.failed_count(),
            self.cached_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;

    fn outcome(workload: &str, system: &str, index: usize, status: CellStatus) -> CellOutcome {
        CellOutcome {
            cell: Cell {
                index,
                workload: workload.into(),
                system: system.into(),
                params: vec![("k".into(), "1".into())],
                replicate: 1,
                stream_seed: 0,
            },
            status,
            attempts: 1,
            cached: false,
        }
    }

    fn sample() -> SweepOutcome {
        SweepOutcome {
            sweep: "t".into(),
            outcomes: vec![
                outcome(
                    "w1",
                    "a",
                    0,
                    CellStatus::Done {
                        payload: r#"{"m":1}"#.into(),
                    },
                ),
                outcome(
                    "w1",
                    "b",
                    1,
                    CellStatus::Failed {
                        error: "panicked: boom".into(),
                    },
                ),
            ],
        }
    }

    #[test]
    fn aggregate_includes_results_and_failures() {
        let s = sample();
        let json = s.aggregate_json();
        assert_eq!(
            json,
            r#"{"sweep":"t","cells":2,"results":[{"cell":"w1/a/k=1/r1","workload":"w1","system":"a","params":{"k":"1"},"replicate":1,"result":{"m":1}}],"failed":[{"cell":"w1/b/k=1/r1","error":"panicked: boom"}]}"#
        );
        assert_eq!(s.ok_count(), 1);
        assert_eq!(s.failed_count(), 1);
        assert_eq!(s.summary(), "2 cells: 1 ok, 1 failed, 0 cached");
    }

    #[test]
    fn aggregate_is_independent_of_volatile_fields() {
        let mut a = sample();
        let mut b = sample();
        b.outcomes[0].attempts = 2;
        b.outcomes[0].cached = true;
        assert_eq!(a.aggregate_json(), b.aggregate_json());
        // ... but PartialEq still sees them (sanity).
        assert_ne!(a.outcomes, b.outcomes);
        a.outcomes[0].cached = true;
        a.outcomes[0].attempts = 2;
        assert_eq!(a.outcomes, b.outcomes);
    }

    #[test]
    fn find_matches_params() {
        let s = sample();
        assert!(s.find("w1", "a", &[("k", "1")]).is_some());
        assert!(s.find("w1", "a", &[("k", "2")]).is_none());
        assert_eq!(s.payload("w1", "a", &[]), Some(r#"{"m":1}"#));
        assert_eq!(
            s.payload("w1", "b", &[]),
            None,
            "failed cell has no payload"
        );
    }
}
