//! `ida-sweep` — deterministic parallel experiment orchestration.
//!
//! The paper's evaluation is a large grid: Figure 8 alone is 11 workloads
//! × 9 error rates (plus a baseline per workload), Figure 9 adds a ΔtR
//! axis, and the full suite chains a dozen experiments. This crate turns
//! that grid into a typed job model and runs it on a worker pool without
//! giving up the workspace's core guarantee: **a fixed spec produces
//! byte-identical aggregated output no matter how many workers run it, or
//! how often it was killed and resumed along the way.**
//!
//! The pieces:
//!
//! - [`cell`]: a [`cell::Cell`] is one experiment point (workload ×
//!   system × params × replicate) with a stable, human-readable ID and a
//!   per-cell [`ida_obs::rng::Rng64`] stream seed derived from that ID —
//!   randomness is a function of *what* the cell is, never of *when* or
//!   *where* it ran.
//! - [`spec`]: [`spec::SweepSpec`] describes the grid axes and expands
//!   them into cells in a fixed nesting order.
//! - [`pool`]: a `std::thread` worker pool over a shared work queue.
//!   Cells run under `catch_unwind` with bounded retry; a panicking cell
//!   becomes a per-cell error record instead of taking down the run.
//! - [`journal`]: a JSONL checkpoint journal — one appended record per
//!   completed cell. On restart, completed cells are skipped and their
//!   cached payloads reused; a torn final line (killed mid-write) is
//!   ignored.
//! - [`agg`]: deterministic aggregation — results merge in cell order,
//!   so an N-worker (or resumed) run emits the same bytes as a serial
//!   fresh run.
//! - [`jsonv`]: the minimal JSON reader the journal loader uses, kept
//!   dependency-free like the rest of the workspace.
//! - [`warm`]: a keyed, single-flight cache of serialized warm simulator
//!   states, so cells that share a warm-up phase run it once and fork.
//! - [`net`]: the distributed fabric — a TCP coordinator ([`net::serve`])
//!   and worker loop ([`net::run_worker`]) speaking frame-sealed
//!   messages, with lease/requeue fault tolerance. The aggregate stays
//!   byte-identical to a local serial run for any worker population.

pub mod agg;
pub mod cell;
pub mod journal;
pub mod jsonv;
pub mod net;
pub mod pool;
pub mod spec;
pub mod warm;

pub use agg::SweepOutcome;
pub use cell::{derive_stream_seed, Cell};
pub use journal::{JournalRecord, JournalWriter};
pub use net::{run_worker, serve, WarmPort, WorkerReport, PROTO_VERSION};
pub use pool::{run_cells, CellOutcome, CellStatus, SweepConfig};
pub use spec::{SpecError, SweepSpec, SweepSpecBuilder};
pub use warm::{WarmCache, WarmRemote, WarmStats};
