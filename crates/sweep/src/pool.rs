//! The worker pool: N `std::thread` workers over a shared work queue,
//! with panic isolation, bounded retry, checkpointing, and progress.
//!
//! Workers claim cells from an atomic cursor (cheapest possible shared
//! queue — the cell list is fixed up front), run the job closure under
//! `catch_unwind`, and send outcomes back over a channel. The
//! coordinating thread is the only writer of the journal and the only
//! source of progress ticks, so neither needs locking. Because every
//! cell's payload is a pure function of the cell (per-cell RNG streams,
//! deterministic simulator), *where* and *when* a cell runs never shows
//! up in its result — which is what lets [`crate::agg`] promise
//! byte-identical aggregates for any worker count.

use crate::cell::Cell;
use crate::journal::{self, JournalWriter};
use crate::warm::WarmCache;
use ida_obs::progress::Progress;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

/// How a sweep runs: parallelism, retry budget, checkpointing, progress.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Worker threads (≥ 1).
    pub jobs: usize,
    /// Attempts per cell before it is reported as failed (≥ 1).
    pub max_attempts: u32,
    /// Checkpoint journal path (`None` = no checkpointing).
    pub journal: Option<PathBuf>,
    /// Report progress (with ETA) on stderr.
    pub progress: bool,
    /// Shared warm-state snapshot cache (`None` = every cell runs its
    /// own warm-up). Job closures that support forking consult it via
    /// [`SweepConfig::warm_cache`]; because a cache hit restores
    /// byte-identical simulator state, enabling it never changes sweep
    /// output — only how often the warm-up work is repeated.
    pub warm: Option<Arc<WarmCache>>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            jobs: default_jobs(),
            max_attempts: 2,
            journal: None,
            progress: false,
            warm: None,
        }
    }
}

impl SweepConfig {
    /// A serial configuration (one worker), for tests and baselines.
    pub fn serial() -> Self {
        SweepConfig {
            jobs: 1,
            ..Self::default()
        }
    }

    /// Set the worker count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Set the journal path.
    pub fn with_journal(mut self, path: PathBuf) -> Self {
        self.journal = Some(path);
        self
    }

    /// Attach a warm-state snapshot cache, spilling under the journal
    /// directory when checkpointing is on (memory-only otherwise).
    pub fn with_warm_cache(mut self) -> Self {
        let spill = self
            .journal
            .as_deref()
            .map(crate::warm::spill_dir_for_journal);
        self.warm = Some(Arc::new(WarmCache::new(spill)));
        self
    }

    /// The warm cache, if one is attached.
    pub fn warm_cache(&self) -> Option<&WarmCache> {
        self.warm.as_deref()
    }

    /// The configuration selected by environment variables: `IDA_JOBS`
    /// for the worker count (validated — see [`parse_jobs`]) and
    /// `IDA_JOURNAL` for the checkpoint path.
    ///
    /// # Errors
    ///
    /// Returns a clear message when `IDA_JOBS` is zero or non-numeric.
    pub fn from_env() -> Result<Self, String> {
        let mut cfg = Self::default();
        if let Ok(v) = std::env::var("IDA_JOBS") {
            cfg.jobs = parse_jobs(&v)?;
        }
        if let Some(path) = std::env::var_os("IDA_JOURNAL") {
            cfg.journal = Some(PathBuf::from(path));
        }
        Ok(cfg)
    }
}

/// The machine's available parallelism (1 if unknown).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parse a worker count: a positive integer.
///
/// # Errors
///
/// Rejects `0` and non-numeric input with a human-readable message.
pub fn parse_jobs(s: &str) -> Result<usize, String> {
    match s.trim().parse::<usize>() {
        Ok(0) => Err("--jobs must be at least 1 (got 0)".into()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "--jobs needs a positive integer, got {s:?} (e.g. --jobs 4)"
        )),
    }
}

/// Terminal state of one cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellStatus {
    /// The job closure returned a payload (raw JSON text).
    Done {
        /// The cell's result payload, as rendered JSON.
        payload: String,
    },
    /// Every attempt panicked; the last panic message is recorded.
    Failed {
        /// The final panic message.
        error: String,
    },
}

/// One cell's outcome, fresh or restored from the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellOutcome {
    /// The cell that ran.
    pub cell: Cell,
    /// Success or failure.
    pub status: CellStatus,
    /// Attempts taken (1 = first try succeeded).
    pub attempts: u32,
    /// Whether the result was reused from the checkpoint journal.
    pub cached: bool,
}

impl CellOutcome {
    /// The payload, if the cell succeeded.
    pub fn payload(&self) -> Option<&str> {
        match &self.status {
            CellStatus::Done { payload } => Some(payload),
            CellStatus::Failed { .. } => None,
        }
    }
}

/// Run `f` over every cell, in parallel, with checkpoint/resume and
/// panic isolation. Outcomes come back in cell-index order regardless
/// of scheduling.
///
/// `f` must be deterministic in the cell (use [`Cell::rng`] for
/// randomness) for the byte-identical-aggregate guarantee to hold; a
/// panicking invocation is retried up to `cfg.max_attempts` times and
/// then reported as a [`CellStatus::Failed`] record without affecting
/// other cells or the pool.
///
/// # Errors
///
/// Fails only on journal I/O errors; job panics never surface as `Err`.
///
/// # Panics
///
/// Panics if a worker thread is lost without reporting (a bug in the
/// pool itself, not in the job closure).
pub fn run_cells<F>(
    sweep: &str,
    cells: &[Cell],
    cfg: &SweepConfig,
    f: F,
) -> std::io::Result<Vec<CellOutcome>>
where
    F: Fn(&Cell) -> String + Sync,
{
    // Restore finished cells from the journal; failures are retried.
    let cached = match &cfg.journal {
        Some(path) => journal::load(path, sweep)?,
        None => Default::default(),
    };
    let mut outcomes: Vec<Option<CellOutcome>> = cells
        .iter()
        .map(|cell| {
            let rec = cached.get(&cell.id())?;
            let payload = rec.result.as_ref().ok()?;
            Some(CellOutcome {
                cell: cell.clone(),
                status: CellStatus::Done {
                    payload: payload.clone(),
                },
                attempts: rec.attempts,
                cached: true,
            })
        })
        .collect();
    let pending: Vec<usize> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.is_none())
        .map(|(i, _)| i)
        .collect();

    let mut writer = match &cfg.journal {
        Some(path) => Some(JournalWriter::open(path, sweep)?),
        None => None,
    };
    let mut progress = if cfg.progress {
        Progress::new(&format!("sweep {sweep}"), pending.len() as u64).with_check_every(1)
    } else {
        Progress::disabled()
    };

    let jobs = cfg.jobs.clamp(1, pending.len().max(1));
    let max_attempts = cfg.max_attempts.max(1);
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, CellOutcome)>();

    let mut io_result = Ok(());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let cursor = &cursor;
            let pending = &pending;
            let f = &f;
            scope.spawn(move || loop {
                let claim = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&idx) = pending.get(claim) else {
                    break;
                };
                let outcome = run_one(&cells[idx], max_attempts, f);
                if tx.send((idx, outcome)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Coordinator: journal and progress live on this thread only.
        for (idx, outcome) in rx {
            if let Some(w) = &mut writer {
                let id = outcome.cell.id();
                let written = match &outcome.status {
                    CellStatus::Done { payload } => w.record_ok(&id, outcome.attempts, payload),
                    CellStatus::Failed { error } => w.record_failed(&id, outcome.attempts, error),
                };
                if let Err(e) = written {
                    io_result = Err(e);
                }
            }
            outcomes[idx] = Some(outcome);
            progress.tick(1);
        }
    });
    progress.finish();
    io_result?;

    Ok(outcomes
        .into_iter()
        .map(|o| o.expect("every cell reported"))
        .collect())
}

fn run_one<F>(cell: &Cell, max_attempts: u32, f: &F) -> CellOutcome
where
    F: Fn(&Cell) -> String + Sync,
{
    let mut attempts = 0;
    let status = loop {
        attempts += 1;
        match catch_unwind(AssertUnwindSafe(|| f(cell))) {
            Ok(payload) => break CellStatus::Done { payload },
            Err(panic) => {
                // `&*panic`: pass the payload itself, not the Box, to
                // the `dyn Any` downcast.
                let error = panic_message(&*panic);
                if attempts >= max_attempts {
                    break CellStatus::Failed { error };
                }
            }
        }
    };
    CellOutcome {
        cell: cell.clone(),
        status,
        attempts,
        cached: false,
    }
}

/// Render a `catch_unwind` payload the way failure records expect.
/// Shared with the fabric worker loop (`crate::net`) so a cell that
/// panics remotely produces the byte-identical error record a local
/// run would.
pub(crate) fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked: (non-string payload)".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;
    use ida_obs::json::JsonObj;
    use std::sync::atomic::AtomicU32;

    fn grid(n_workloads: usize) -> Vec<Cell> {
        SweepSpec::new(
            "t",
            (0..n_workloads).map(|i| format!("w{i}")).collect(),
            vec!["a".into(), "b".into()],
        )
        .cells()
    }

    fn payload_of(cell: &Cell) -> String {
        let mut rng = cell.rng();
        JsonObj::new()
            .str("cell", &cell.id())
            .u64("draw", rng.next_u64())
            .finish()
    }

    #[test]
    fn outcomes_come_back_in_cell_order_for_any_worker_count() {
        let cells = grid(5);
        let serial = run_cells("t", &cells, &SweepConfig::serial(), payload_of).unwrap();
        for jobs in [2, 4, 8] {
            let cfg = SweepConfig::serial().with_jobs(jobs);
            let parallel = run_cells("t", &cells, &cfg, payload_of).unwrap();
            assert_eq!(serial, parallel, "jobs={jobs} diverged");
        }
        for (i, o) in serial.iter().enumerate() {
            assert_eq!(o.cell.index, i);
            assert_eq!(o.attempts, 1);
            assert!(!o.cached);
        }
    }

    #[test]
    fn a_panicking_cell_is_retried_then_reported() {
        let cells = grid(3);
        let cfg = SweepConfig::serial().with_jobs(4);
        let outcomes = run_cells("t", &cells, &cfg, |cell: &Cell| {
            assert!(cell.workload != "w1", "w1 always fails");
            payload_of(cell)
        })
        .unwrap();
        for o in &outcomes {
            if o.cell.workload == "w1" {
                assert_eq!(o.attempts, cfg.max_attempts);
                match &o.status {
                    CellStatus::Failed { error } => assert!(error.contains("w1 always fails")),
                    other => panic!("expected failure, got {other:?}"),
                }
            } else {
                assert_eq!(o.attempts, 1);
                assert!(o.payload().is_some());
            }
        }
    }

    #[test]
    fn a_flaky_cell_succeeds_on_retry() {
        let cells = grid(1);
        let flaked = AtomicU32::new(0);
        let outcomes = run_cells("t", &cells, &SweepConfig::serial(), |cell: &Cell| {
            if cell.system == "a" && flaked.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient");
            }
            payload_of(cell)
        })
        .unwrap();
        let a = outcomes.iter().find(|o| o.cell.system == "a").unwrap();
        assert_eq!(a.attempts, 2);
        assert!(a.payload().is_some());
    }

    #[test]
    fn parse_jobs_validates() {
        assert_eq!(parse_jobs("4"), Ok(4));
        assert_eq!(parse_jobs(" 16 "), Ok(16));
        assert!(parse_jobs("0").unwrap_err().contains("at least 1"));
        assert!(parse_jobs("four").unwrap_err().contains("positive integer"));
        assert!(parse_jobs("").is_err());
        assert!(parse_jobs("-2").is_err());
        assert!(parse_jobs("2.5").is_err());
    }

    #[test]
    fn journaled_cells_are_skipped_on_resume() {
        let dir = std::env::temp_dir().join(format!("ida-sweep-pool-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.jsonl");
        let _ = std::fs::remove_file(&path);
        let cells = grid(4);
        let cfg = SweepConfig::serial().with_journal(path.clone());

        let ran = AtomicU32::new(0);
        let count_and_run = |cell: &Cell| {
            ran.fetch_add(1, Ordering::SeqCst);
            payload_of(cell)
        };
        let first = run_cells("t", &cells, &cfg, count_and_run).unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), cells.len() as u32);

        ran.store(0, Ordering::SeqCst);
        let resumed = run_cells("t", &cells, &cfg, count_and_run).unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 0, "no cell should re-run");
        assert!(resumed.iter().all(|o| o.cached));
        let strip = |os: &[CellOutcome]| -> Vec<Option<String>> {
            os.iter().map(|o| o.payload().map(String::from)).collect()
        };
        assert_eq!(strip(&first), strip(&resumed));
        let _ = std::fs::remove_file(&path);
    }
}
