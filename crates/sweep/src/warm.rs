//! The warm-state snapshot cache: run each distinct warm-up once, fork
//! every dependent cell from the captured snapshot.
//!
//! Sweep grids repeat the same expensive warm-up (prefill + aging +
//! refresh churn) for every cell that differs only in a *post*-warm-up
//! axis — fault level, aging level, offered load. The cache keys warm
//! states by a caller-computed fingerprint of everything that *does*
//! influence the warm-up and hands back the serialized simulator bytes,
//! so N sibling cells cost one warm-up instead of N.
//!
//! Guarantees:
//!
//! - **Single-flight**: when two workers need the same key concurrently,
//!   exactly one runs the build closure; the other blocks on a condvar
//!   until the snapshot is ready. A build that panics wakes the waiters
//!   and lets the next claimant rebuild — no deadlock, no poisoned key.
//! - **Determinism-neutral**: the cache stores exactly the bytes the
//!   build closure produced, and [`ida_snap`]'s differential invariant
//!   (restore → run ≡ keep running) means a cache hit is byte-for-byte
//!   indistinguishable from re-running the warm-up. The sweep's
//!   any-worker-count byte-identical aggregate guarantee is preserved.
//! - **Spill/resume**: with a spill directory (the journal directory, in
//!   practice), snapshots are persisted as `{key:016x}.snap` and
//!   revalidated by their [`ida_snap::frame`] header on reload, so a
//!   killed-and-resumed sweep skips even the first warm-up per key.
//!   Corrupt or truncated spill files are ignored and rebuilt.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A remote peer that can serve and accept warm snapshots — in
/// practice the distributed-sweep coordinator, reached over a dedicated
/// fabric connection (see `ida_sweep::net::WarmPort`). Both calls are
/// best-effort: a lost or empty peer degrades to building locally,
/// never to an error, and fetched images are revalidated by their
/// [`ida_snap::frame`] header exactly like spill files.
pub trait WarmRemote: Send {
    /// The snapshot bytes for `key`, if the peer holds them.
    fn fetch(&mut self, key: u64) -> Option<Vec<u8>>;
    /// Offer a freshly built snapshot for `key` to the peer.
    fn publish(&mut self, key: u64, bytes: &[u8]);
}

/// One key's state in the in-memory table.
#[derive(Debug)]
enum Slot {
    /// Some worker is running the build closure right now.
    Building,
    /// The snapshot bytes, shared by every forker.
    Ready(Arc<Vec<u8>>),
}

/// Hit/miss counters, snapshotted by [`WarmCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmStats {
    /// Served from memory (includes waits on an in-flight build).
    pub hits: u64,
    /// Served by revalidating a spill file from a previous run.
    pub disk_hits: u64,
    /// Served by a remote peer (the sweep coordinator's image store).
    pub remote_hits: u64,
    /// The build closure ran.
    pub misses: u64,
}

impl WarmStats {
    /// Total snapshots served without running a warm-up.
    pub fn total_hits(&self) -> u64 {
        self.hits + self.disk_hits + self.remote_hits
    }
}

/// A keyed, single-flight cache of serialized warm simulator states.
pub struct WarmCache {
    slots: Mutex<HashMap<u64, Slot>>,
    ready: Condvar,
    spill: Option<PathBuf>,
    remote: Mutex<Option<Box<dyn WarmRemote>>>,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    remote_hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for WarmCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarmCache")
            .field("spill", &self.spill)
            .field("remote", &self.remote.lock().unwrap().is_some())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// Clears a `Building` claim if the build closure unwinds, waking every
/// waiter so one of them can re-claim the key. Disarmed on success.
struct BuildGuard<'a> {
    cache: &'a WarmCache,
    key: u64,
    armed: bool,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut slots = self.cache.slots.lock().unwrap();
            slots.remove(&self.key);
            self.cache.ready.notify_all();
        }
    }
}

/// Keep freed multi-megabyte blocks inside the process instead of
/// returning them to the kernel.
///
/// A warm-cached sweep allocates and frees a decoded simulator image
/// (tens of MB of page map, OOB store and block table) once per cell.
/// glibc serves blocks that big from dedicated `mmap` regions and
/// `munmap`s them on free, so every cell re-faults its whole working
/// set; under a virtualized kernel (where a minor fault costs tens of
/// microseconds, not one) that page churn was costing more system time
/// than the cache saved in user time. Raising `M_MMAP_THRESHOLD` routes
/// the blocks through the ordinary heap and raising `M_TRIM_THRESHOLD`
/// stops `free` from shrinking the heap top between cells — after the
/// first few cells the whole per-cell working set is recycled without a
/// single fault. Both are best-effort process-wide hints: sizing is
/// unchanged, only *where* the bytes come from, so this is invisible to
/// results. No-op off glibc.
fn retain_freed_memory() {
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    {
        // Values from glibc's malloc.h; the libc crate is not a
        // dependency, so declare mallopt directly.
        const M_TRIM_THRESHOLD: i32 = -1;
        const M_MMAP_THRESHOLD: i32 = -3;
        extern "C" {
            fn mallopt(param: i32, value: i32) -> i32;
        }
        // SAFETY: mallopt only adjusts allocator tuning parameters; it
        // touches no caller-owned memory and is safe at any point.
        unsafe {
            mallopt(M_MMAP_THRESHOLD, 64 << 20);
            mallopt(M_TRIM_THRESHOLD, 512 << 20);
        }
    }
}

impl WarmCache {
    /// A cache, optionally spilling snapshots under `spill` (created if
    /// absent; spill failures degrade to memory-only, never to errors).
    pub fn new(spill: Option<PathBuf>) -> Self {
        retain_freed_memory();
        let spill = spill.filter(|dir| std::fs::create_dir_all(dir).is_ok());
        WarmCache {
            slots: Mutex::new(HashMap::new()),
            ready: Condvar::new(),
            spill,
            remote: Mutex::new(None),
            hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            remote_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Attach a remote snapshot peer (builder-style, before the cache is
    /// shared). Once attached, a local miss consults the peer before
    /// running the build closure, and locally built snapshots are
    /// offered back so other workers on the fabric can fork them.
    pub fn with_remote(self, remote: Box<dyn WarmRemote>) -> Self {
        *self.remote.lock().unwrap() = Some(remote);
        self
    }

    /// The snapshot for `key`, building it with `build` exactly once per
    /// key no matter how many workers ask concurrently.
    pub fn get_or_build(&self, key: u64, build: impl FnOnce() -> Vec<u8>) -> Arc<Vec<u8>> {
        {
            let mut slots = self.slots.lock().unwrap();
            loop {
                match slots.get(&key) {
                    Some(Slot::Ready(bytes)) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return bytes.clone();
                    }
                    Some(Slot::Building) => {
                        slots = self.ready.wait(slots).unwrap();
                    }
                    None => {
                        if let Some(bytes) = self.load_spill(key) {
                            let bytes = Arc::new(bytes);
                            slots.insert(key, Slot::Ready(bytes.clone()));
                            self.disk_hits.fetch_add(1, Ordering::Relaxed);
                            self.ready.notify_all();
                            return bytes;
                        }
                        slots.insert(key, Slot::Building);
                        break;
                    }
                }
            }
        }
        // We hold the (lock-free) build claim; the guard releases it if
        // `build` panics so waiters do not deadlock on a dead builder.
        let mut guard = BuildGuard {
            cache: self,
            key,
            armed: true,
        };
        // Peer consult: dearer than disk, far cheaper than a warm-up.
        // Only a locally built snapshot is offered back — a fetched one
        // is already on the peer by definition.
        let bytes = match self.fetch_remote(key) {
            Some(bytes) => {
                self.remote_hits.fetch_add(1, Ordering::Relaxed);
                Arc::new(bytes)
            }
            None => {
                let bytes = Arc::new(build());
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.publish_remote(key, &bytes);
                bytes
            }
        };
        self.store_spill(key, &bytes);
        let mut slots = self.slots.lock().unwrap();
        slots.insert(key, Slot::Ready(bytes.clone()));
        guard.armed = false;
        self.ready.notify_all();
        drop(slots);
        bytes
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WarmStats {
        WarmStats {
            hits: self.hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            remote_hits: self.remote_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// A one-line human/CI-greppable summary, e.g.
    /// `warm-cache: 66 hits (0 from disk, 0 from peers), 22 misses (22 warm-ups for 88 cells)`.
    pub fn stats_line(&self, cells: usize) -> String {
        let s = self.stats();
        format!(
            "warm-cache: {} hits ({} from disk, {} from peers), {} misses ({} warm-ups for {} cells)",
            s.total_hits(),
            s.disk_hits,
            s.remote_hits,
            s.misses,
            s.misses,
            cells
        )
    }

    /// A frame-valid snapshot from the remote peer, if one is attached
    /// and holds the key. Invalid bytes are dropped, same as corrupt
    /// spill files.
    fn fetch_remote(&self, key: u64) -> Option<Vec<u8>> {
        let mut remote = self.remote.lock().unwrap();
        let bytes = remote.as_mut()?.fetch(key)?;
        ida_snap::frame::open(&bytes).ok()?;
        Some(bytes)
    }

    /// Best-effort offer of a locally built snapshot to the peer.
    fn publish_remote(&self, key: u64, bytes: &[u8]) {
        if let Some(remote) = self.remote.lock().unwrap().as_mut() {
            remote.publish(key, bytes);
        }
    }

    fn spill_path(&self, key: u64) -> Option<PathBuf> {
        self.spill
            .as_ref()
            .map(|d| d.join(format!("{key:016x}.snap")))
    }

    /// A spilled snapshot, if present and frame-valid (magic, version,
    /// length and content hash all check out). Anything else — missing,
    /// torn write, corruption — means "rebuild".
    fn load_spill(&self, key: u64) -> Option<Vec<u8>> {
        let path = self.spill_path(key)?;
        let bytes = std::fs::read(&path).ok()?;
        ida_snap::frame::open(&bytes).ok()?;
        Some(bytes)
    }

    /// Persist via temp-file + rename so resumed runs never see a torn
    /// spill file. Failures are silently tolerated (memory still works).
    fn store_spill(&self, key: u64, bytes: &[u8]) {
        let Some(path) = self.spill_path(key) else {
            return;
        };
        let tmp = path.with_extension("snap.tmp");
        if std::fs::write(&tmp, bytes).is_ok() && std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

/// Spill directory for a sweep journal at `journal`: a `warm/` sibling
/// next to the journal file, so `--resume` runs find their snapshots.
pub fn spill_dir_for_journal(journal: &Path) -> PathBuf {
    journal
        .parent()
        .unwrap_or_else(|| Path::new("."))
        .join("warm")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn payload(tag: u8) -> Vec<u8> {
        ida_snap::frame::seal(&[tag; 64])
    }

    #[test]
    fn second_lookup_hits() {
        let cache = WarmCache::new(None);
        let built = AtomicU32::new(0);
        let make = || {
            built.fetch_add(1, Ordering::SeqCst);
            payload(7)
        };
        let a = cache.get_or_build(42, make);
        let b = cache.get_or_build(42, || unreachable!("second lookup must hit"));
        assert_eq!(a, b);
        assert_eq!(built.load(Ordering::SeqCst), 1);
        assert_eq!(
            cache.stats(),
            WarmStats {
                hits: 1,
                disk_hits: 0,
                remote_hits: 0,
                misses: 1
            }
        );
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        let cache = Arc::new(WarmCache::new(None));
        let built = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = cache.clone();
            let built = built.clone();
            handles.push(std::thread::spawn(move || {
                cache.get_or_build(9, || {
                    built.fetch_add(1, Ordering::SeqCst);
                    // Widen the race window so waiters really block.
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    payload(9)
                })
            }));
        }
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(built.load(Ordering::SeqCst), 1, "single-flight violated");
        assert!(results.windows(2).all(|w| w[0] == w[1]));
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 7);
    }

    #[test]
    fn panicking_build_releases_the_key() {
        let cache = Arc::new(WarmCache::new(None));
        let crash = {
            let cache = cache.clone();
            std::thread::spawn(move || {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    cache.get_or_build(5, || panic!("builder died"));
                }));
            })
        };
        crash.join().unwrap();
        // The key is free again: the next claimant rebuilds, no deadlock.
        let bytes = cache.get_or_build(5, || payload(5));
        assert_eq!(*bytes, payload(5));
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn spill_survives_a_new_cache_and_rejects_corruption() {
        let dir = std::env::temp_dir().join(format!("ida-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let first = WarmCache::new(Some(dir.clone()));
        let bytes = first.get_or_build(0xAB, || payload(1));
        assert_eq!(first.stats().misses, 1);

        // A fresh cache (resumed run) finds the spill file.
        let resumed = WarmCache::new(Some(dir.clone()));
        let reloaded = resumed.get_or_build(0xAB, || unreachable!("spill must hit"));
        assert_eq!(bytes, reloaded);
        assert_eq!(
            resumed.stats(),
            WarmStats {
                hits: 0,
                disk_hits: 1,
                remote_hits: 0,
                misses: 0
            }
        );

        // Corrupt the spill file: the next fresh cache rebuilds.
        let path = dir.join(format!("{:016x}.snap", 0xAB_u64));
        let mut raw = std::fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let rebuilt = WarmCache::new(Some(dir.clone()));
        let again = rebuilt.get_or_build(0xAB, || payload(2));
        assert_eq!(*again, payload(2));
        assert_eq!(rebuilt.stats().misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_line_is_greppable() {
        let cache = WarmCache::new(None);
        cache.get_or_build(1, || payload(1));
        cache.get_or_build(1, || unreachable!());
        cache.get_or_build(2, || payload(2));
        assert_eq!(
            cache.stats_line(3),
            "warm-cache: 1 hits (0 from disk, 0 from peers), 2 misses (2 warm-ups for 3 cells)"
        );
    }

    /// An in-memory [`WarmRemote`] stand-in recording the traffic.
    struct FakePeer {
        images: HashMap<u64, Vec<u8>>,
        published: Vec<u64>,
    }

    impl WarmRemote for FakePeer {
        fn fetch(&mut self, key: u64) -> Option<Vec<u8>> {
            self.images.get(&key).cloned()
        }
        fn publish(&mut self, key: u64, bytes: &[u8]) {
            self.published.push(key);
            self.images.insert(key, bytes.to_vec());
        }
    }

    #[test]
    fn remote_peer_is_consulted_before_building_and_offered_local_builds() {
        let peer = FakePeer {
            // Key 1 is on the peer; key 3 is on the peer but corrupt.
            images: HashMap::from([(1, payload(11)), (3, b"garbage".to_vec())]),
            published: Vec::new(),
        };
        let cache = WarmCache::new(None).with_remote(Box::new(peer));

        // Peer hit: the build closure must not run.
        let fetched = cache.get_or_build(1, || unreachable!("peer must serve key 1"));
        assert_eq!(*fetched, payload(11));

        // Peer miss: build locally, then offer the image back.
        let built = cache.get_or_build(2, || payload(22));
        assert_eq!(*built, payload(22));

        // Corrupt peer image: rejected by frame validation, rebuilt.
        let rebuilt = cache.get_or_build(3, || payload(33));
        assert_eq!(*rebuilt, payload(33));

        assert_eq!(
            cache.stats(),
            WarmStats {
                hits: 0,
                disk_hits: 0,
                remote_hits: 1,
                misses: 2
            }
        );
    }

    #[test]
    fn journal_spill_dir_is_a_sibling() {
        assert_eq!(
            spill_dir_for_journal(Path::new("/tmp/run/journal.jsonl")),
            PathBuf::from("/tmp/run/warm")
        );
        assert_eq!(
            spill_dir_for_journal(Path::new("j.jsonl")),
            PathBuf::from("warm")
        );
    }
}
