//! Grid specification: named axes expanded into [`Cell`]s in a fixed
//! nesting order.
//!
//! The expansion order *is* the aggregation order, so it is part of the
//! determinism contract: workloads outermost (matching how the paper's
//! tables are rendered, one row per workload), then each parameter axis
//! in declaration order, then systems, then replicates innermost.

use crate::cell::{derive_stream_seed, Cell};

/// A structurally invalid grid, rejected by [`SweepSpecBuilder::build`]
/// before any cell runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The sweep name is empty — the journal could not tag its records.
    EmptyName,
    /// No workloads: the grid expands to zero cells.
    NoWorkloads,
    /// No systems: the grid expands to zero cells.
    NoSystems,
    /// A parameter axis has no values: the grid expands to zero cells.
    EmptyAxis {
        /// The offending axis key.
        axis: String,
    },
    /// Two parameter axes share a key, which would collapse cell IDs.
    DuplicateAxis {
        /// The repeated axis key.
        axis: String,
    },
    /// No replicates: the grid expands to zero cells.
    NoReplicates,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::EmptyName => write!(f, "sweep spec needs a non-empty name"),
            SpecError::NoWorkloads => write!(f, "sweep spec needs at least one workload"),
            SpecError::NoSystems => write!(f, "sweep spec needs at least one system"),
            SpecError::EmptyAxis { axis } => {
                write!(f, "parameter axis {axis:?} has no values")
            }
            SpecError::DuplicateAxis { axis } => {
                write!(f, "parameter axis {axis:?} declared twice")
            }
            SpecError::NoReplicates => write!(f, "sweep spec needs at least one replicate"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Validating constructor for [`SweepSpec`]: collects axes, then
/// [`build`](Self::build) rejects any combination that would expand to
/// an empty or ambiguous grid.
#[derive(Debug, Clone)]
pub struct SweepSpecBuilder {
    spec: SweepSpec,
}

impl SweepSpecBuilder {
    /// Workload axis.
    pub fn workloads(mut self, workloads: Vec<String>) -> Self {
        self.spec.workloads = workloads;
        self
    }

    /// System axis.
    pub fn systems(mut self, systems: Vec<String>) -> Self {
        self.spec.systems = systems;
        self
    }

    /// Add a parameter axis (expanded between workloads and systems).
    pub fn axis(mut self, key: &str, values: Vec<String>) -> Self {
        self.spec.param_axes.push((key.to_string(), values));
        self
    }

    /// Replace the replicate axis.
    pub fn replicates(mut self, replicates: Vec<u64>) -> Self {
        self.spec.replicates = replicates;
        self
    }

    /// Replace the base seed mixed into every cell's stream seed.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.spec.base_seed = seed;
        self
    }

    /// Validate and produce the spec.
    ///
    /// # Errors
    ///
    /// Any [`SpecError`]: an empty name, an axis with no values (empty
    /// grid), or a duplicated parameter key.
    pub fn build(self) -> Result<SweepSpec, SpecError> {
        let s = &self.spec;
        if s.name.is_empty() {
            return Err(SpecError::EmptyName);
        }
        if s.workloads.is_empty() {
            return Err(SpecError::NoWorkloads);
        }
        if s.systems.is_empty() {
            return Err(SpecError::NoSystems);
        }
        for (i, (key, values)) in s.param_axes.iter().enumerate() {
            if values.is_empty() {
                return Err(SpecError::EmptyAxis { axis: key.clone() });
            }
            if s.param_axes[..i].iter().any(|(k, _)| k == key) {
                return Err(SpecError::DuplicateAxis { axis: key.clone() });
            }
        }
        if s.replicates.is_empty() {
            return Err(SpecError::NoReplicates);
        }
        Ok(self.spec)
    }
}

/// A sweep grid: the cartesian product of its axes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Sweep name — tags the journal and the aggregated output.
    pub name: String,
    /// Workload axis.
    pub workloads: Vec<String>,
    /// System axis (labels such as `Baseline`, `IDA-E20`).
    pub systems: Vec<String>,
    /// Extra parameter axes, each `(key, values)`, expanded in order.
    pub param_axes: Vec<(String, Vec<String>)>,
    /// Replicate axis (seed numbers). Use `vec![1]` for a single run.
    pub replicates: Vec<u64>,
    /// Base seed mixed into every cell's stream seed.
    pub base_seed: u64,
}

impl SweepSpec {
    /// Start a validating builder seeded with a single replicate and no
    /// parameter axes — the checked alternative to [`Self::new`] for
    /// grids assembled from user input.
    pub fn builder(name: &str) -> SweepSpecBuilder {
        SweepSpecBuilder {
            spec: SweepSpec::new(name, Vec::new(), Vec::new()),
        }
    }

    /// A single-replicate spec with no extra parameter axes.
    pub fn new(name: &str, workloads: Vec<String>, systems: Vec<String>) -> Self {
        SweepSpec {
            name: name.to_string(),
            workloads,
            systems,
            param_axes: Vec::new(),
            replicates: vec![1],
            base_seed: 0x1DA_5EED,
        }
    }

    /// Add a parameter axis (expanded between workloads and systems).
    pub fn with_axis(mut self, key: &str, values: Vec<String>) -> Self {
        self.param_axes.push((key.to_string(), values));
        self
    }

    /// Replace the replicate axis.
    pub fn with_replicates(mut self, replicates: Vec<u64>) -> Self {
        self.replicates = replicates;
        self
    }

    /// Number of cells the spec expands to.
    pub fn len(&self) -> usize {
        self.workloads.len()
            * self.systems.len()
            * self.replicates.len()
            * self
                .param_axes
                .iter()
                .map(|(_, vs)| vs.len())
                .product::<usize>()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expand the grid into cells, assigning indices in nesting order
    /// and deriving each cell's stream seed from its ID.
    pub fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::with_capacity(self.len());
        let mut combo: Vec<(String, String)> = Vec::new();
        for workload in &self.workloads {
            self.expand_params(workload, 0, &mut combo, &mut cells);
        }
        cells
    }

    fn expand_params(
        &self,
        workload: &str,
        axis: usize,
        combo: &mut Vec<(String, String)>,
        out: &mut Vec<Cell>,
    ) {
        if axis == self.param_axes.len() {
            for system in &self.systems {
                for &replicate in &self.replicates {
                    let mut cell = Cell {
                        index: out.len(),
                        workload: workload.to_string(),
                        system: system.clone(),
                        params: combo.clone(),
                        replicate,
                        stream_seed: 0,
                    };
                    cell.stream_seed = derive_stream_seed(self.base_seed, &cell.id());
                    out.push(cell);
                }
            }
            return;
        }
        let (key, values) = &self.param_axes[axis];
        for v in values {
            combo.push((key.clone(), v.clone()));
            self.expand_params(workload, axis + 1, combo, out);
            combo.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SweepSpec {
        SweepSpec::new(
            "t",
            vec!["w1".into(), "w2".into()],
            vec!["Baseline".into(), "IDA-E20".into()],
        )
        .with_axis("dtr_us", vec!["30".into(), "50".into()])
    }

    #[test]
    fn expansion_order_is_workload_param_system_replicate() {
        let cells = spec().cells();
        assert_eq!(cells.len(), 8);
        assert_eq!(spec().len(), 8);
        let ids: Vec<String> = cells.iter().map(|c| c.id()).collect();
        assert_eq!(
            ids,
            vec![
                "w1/Baseline/dtr_us=30/r1",
                "w1/IDA-E20/dtr_us=30/r1",
                "w1/Baseline/dtr_us=50/r1",
                "w1/IDA-E20/dtr_us=50/r1",
                "w2/Baseline/dtr_us=30/r1",
                "w2/IDA-E20/dtr_us=30/r1",
                "w2/Baseline/dtr_us=50/r1",
                "w2/IDA-E20/dtr_us=50/r1",
            ]
        );
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn replicates_expand_innermost_with_distinct_seeds() {
        let cells = SweepSpec::new("t", vec!["w".into()], vec!["s".into()])
            .with_replicates(vec![1, 2, 3])
            .cells();
        assert_eq!(cells.len(), 3);
        let seeds: Vec<u64> = cells.iter().map(|c| c.stream_seed).collect();
        assert!(seeds[0] != seeds[1] && seeds[1] != seeds[2]);
    }

    #[test]
    fn expansion_is_reproducible() {
        assert_eq!(spec().cells(), spec().cells());
    }

    #[test]
    fn builder_accepts_a_complete_grid() {
        let spec = SweepSpec::builder("t")
            .workloads(vec!["w1".into()])
            .systems(vec!["Baseline".into()])
            .axis("dtr_us", vec!["30".into()])
            .replicates(vec![1, 2])
            .base_seed(7)
            .build()
            .unwrap();
        assert_eq!(spec.len(), 2);
        assert_eq!(spec.base_seed, 7);
        // The builder produces the same spec (and hence the same cells)
        // as the unchecked constructor.
        let manual = SweepSpec::new("t", vec!["w1".into()], vec!["Baseline".into()])
            .with_axis("dtr_us", vec!["30".into()])
            .with_replicates(vec![1, 2]);
        let mut manual = manual;
        manual.base_seed = 7;
        assert_eq!(spec, manual);
    }

    #[test]
    fn builder_rejects_empty_grids() {
        let base = || {
            SweepSpec::builder("t")
                .workloads(vec!["w".into()])
                .systems(vec!["s".into()])
        };
        assert_eq!(base().build().unwrap().len(), 1);
        assert_eq!(
            SweepSpec::builder("").build().unwrap_err(),
            SpecError::EmptyName
        );
        assert_eq!(
            SweepSpec::builder("t").build().unwrap_err(),
            SpecError::NoWorkloads
        );
        assert_eq!(
            SweepSpec::builder("t")
                .workloads(vec!["w".into()])
                .build()
                .unwrap_err(),
            SpecError::NoSystems
        );
        assert_eq!(
            base().axis("dtr_us", vec![]).build().unwrap_err(),
            SpecError::EmptyAxis {
                axis: "dtr_us".into()
            }
        );
        assert_eq!(
            base()
                .axis("a", vec!["1".into()])
                .axis("a", vec!["2".into()])
                .build()
                .unwrap_err(),
            SpecError::DuplicateAxis { axis: "a".into() }
        );
        assert_eq!(
            base().replicates(vec![]).build().unwrap_err(),
            SpecError::NoReplicates
        );
        assert!(SpecError::NoWorkloads.to_string().contains("workload"));
    }
}
