//! Grid specification: named axes expanded into [`Cell`]s in a fixed
//! nesting order.
//!
//! The expansion order *is* the aggregation order, so it is part of the
//! determinism contract: workloads outermost (matching how the paper's
//! tables are rendered, one row per workload), then each parameter axis
//! in declaration order, then systems, then replicates innermost.

use crate::cell::{derive_stream_seed, Cell};

/// A sweep grid: the cartesian product of its axes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Sweep name — tags the journal and the aggregated output.
    pub name: String,
    /// Workload axis.
    pub workloads: Vec<String>,
    /// System axis (labels such as `Baseline`, `IDA-E20`).
    pub systems: Vec<String>,
    /// Extra parameter axes, each `(key, values)`, expanded in order.
    pub param_axes: Vec<(String, Vec<String>)>,
    /// Replicate axis (seed numbers). Use `vec![1]` for a single run.
    pub replicates: Vec<u64>,
    /// Base seed mixed into every cell's stream seed.
    pub base_seed: u64,
}

impl SweepSpec {
    /// A single-replicate spec with no extra parameter axes.
    pub fn new(name: &str, workloads: Vec<String>, systems: Vec<String>) -> Self {
        SweepSpec {
            name: name.to_string(),
            workloads,
            systems,
            param_axes: Vec::new(),
            replicates: vec![1],
            base_seed: 0x1DA_5EED,
        }
    }

    /// Add a parameter axis (expanded between workloads and systems).
    pub fn with_axis(mut self, key: &str, values: Vec<String>) -> Self {
        self.param_axes.push((key.to_string(), values));
        self
    }

    /// Replace the replicate axis.
    pub fn with_replicates(mut self, replicates: Vec<u64>) -> Self {
        self.replicates = replicates;
        self
    }

    /// Number of cells the spec expands to.
    pub fn len(&self) -> usize {
        self.workloads.len()
            * self.systems.len()
            * self.replicates.len()
            * self
                .param_axes
                .iter()
                .map(|(_, vs)| vs.len())
                .product::<usize>()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expand the grid into cells, assigning indices in nesting order
    /// and deriving each cell's stream seed from its ID.
    pub fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::with_capacity(self.len());
        let mut combo: Vec<(String, String)> = Vec::new();
        for workload in &self.workloads {
            self.expand_params(workload, 0, &mut combo, &mut cells);
        }
        cells
    }

    fn expand_params(
        &self,
        workload: &str,
        axis: usize,
        combo: &mut Vec<(String, String)>,
        out: &mut Vec<Cell>,
    ) {
        if axis == self.param_axes.len() {
            for system in &self.systems {
                for &replicate in &self.replicates {
                    let mut cell = Cell {
                        index: out.len(),
                        workload: workload.to_string(),
                        system: system.clone(),
                        params: combo.clone(),
                        replicate,
                        stream_seed: 0,
                    };
                    cell.stream_seed = derive_stream_seed(self.base_seed, &cell.id());
                    out.push(cell);
                }
            }
            return;
        }
        let (key, values) = &self.param_axes[axis];
        for v in values {
            combo.push((key.clone(), v.clone()));
            self.expand_params(workload, axis + 1, combo, out);
            combo.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SweepSpec {
        SweepSpec::new(
            "t",
            vec!["w1".into(), "w2".into()],
            vec!["Baseline".into(), "IDA-E20".into()],
        )
        .with_axis("dtr_us", vec!["30".into(), "50".into()])
    }

    #[test]
    fn expansion_order_is_workload_param_system_replicate() {
        let cells = spec().cells();
        assert_eq!(cells.len(), 8);
        assert_eq!(spec().len(), 8);
        let ids: Vec<String> = cells.iter().map(|c| c.id()).collect();
        assert_eq!(
            ids,
            vec![
                "w1/Baseline/dtr_us=30/r1",
                "w1/IDA-E20/dtr_us=30/r1",
                "w1/Baseline/dtr_us=50/r1",
                "w1/IDA-E20/dtr_us=50/r1",
                "w2/Baseline/dtr_us=30/r1",
                "w2/IDA-E20/dtr_us=30/r1",
                "w2/Baseline/dtr_us=50/r1",
                "w2/IDA-E20/dtr_us=50/r1",
            ]
        );
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn replicates_expand_innermost_with_distinct_seeds() {
        let cells = SweepSpec::new("t", vec!["w".into()], vec!["s".into()])
            .with_replicates(vec![1, 2, 3])
            .cells();
        assert_eq!(cells.len(), 3);
        let seeds: Vec<u64> = cells.iter().map(|c| c.stream_seed).collect();
        assert!(seeds[0] != seeds[1] && seeds[1] != seeds[2]);
    }

    #[test]
    fn expansion_is_reproducible() {
        assert_eq!(spec().cells(), spec().cells());
    }
}
