//! The distributed sweep fabric: a TCP coordinator/worker protocol
//! over [`ida_snap::frame`]d messages.
//!
//! One process runs [`serve`]: it owns the cell queue, the checkpoint
//! journal, the warm-image rendezvous, and the aggregation — exactly
//! the responsibilities the in-process pool's coordinator thread has.
//! Any number of processes run [`run_worker`]: each opens one
//! connection per worker thread, claims cells one at a time, executes
//! them under `catch_unwind`, and streams results back.
//!
//! Wire format: every message is one [`frame`]-sealed [`Snap`] payload,
//! so torn, bit-flipped, or version-skewed frames are rejected by the
//! same magic/version/length/hash checks that guard snapshot files, and
//! a protocol-version handshake ([`PROTO_VERSION`]) rejects skewed
//! peers before any work is assigned.
//!
//! Fault tolerance is lease-based: a claim leases exactly one cell to
//! one connection. If the connection dies before its `Result` arrives,
//! the lease is released — the cell goes back on the queue (bounded by
//! `max_attempts`, the same retry budget the local pool uses) for
//! another worker to claim. A worker-side panic is reported as a failed
//! attempt and retried by *reassignment*, so a deterministically
//! panicking cell exhausts the same budget and records the same
//! `panicked: ...` error a serial run would.
//!
//! Determinism: cell payloads are pure functions of the cell, outcomes
//! are settled into cell-index order, and the aggregate excludes
//! scheduling facts (attempts, cache hits) — so the aggregate is
//! byte-identical to a serial [`crate::pool::run_cells`] run for any
//! worker count, join/leave order, or kill point.

use crate::cell::Cell;
use crate::journal::{self, JournalWriter};
use crate::pool::{panic_message, CellOutcome, CellStatus, SweepConfig};
use crate::warm::WarmRemote;
use ida_obs::fabric::FabricEvent;
use ida_snap::{frame, Reader, Snap, SnapError, Writer};
use std::collections::{HashMap, VecDeque};
use std::io::{self, ErrorKind};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Fabric protocol version, checked in the `Hello`/`Welcome` handshake.
/// Bump on any wire-visible change to [`Msg`].
pub const PROTO_VERSION: u32 = 1;

/// One fabric message. The wire form is a [`frame`]-sealed [`Snap`]
/// encoding: a `u8` tag followed by the variant's fields.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Worker → coordinator: opens every connection.
    Hello {
        /// The worker's [`PROTO_VERSION`].
        proto: u32,
    },
    /// Coordinator → worker: handshake accepted; here is the job.
    Welcome {
        /// Sweep name (journal scope, report labels).
        sweep: String,
        /// Experiment-setup payload (JSON), interpreted by the job
        /// closure — the fabric itself never reads it.
        setup: String,
    },
    /// Coordinator → worker: handshake refused (version skew).
    Reject {
        /// Human-readable refusal.
        reason: String,
    },
    /// Worker → coordinator: give me a cell. Blocks server-side until
    /// a cell is claimable or the sweep is finished.
    Claim,
    /// Coordinator → worker: a cell lease.
    Assign {
        /// The fully derived cell (seed included).
        cell: Cell,
        /// Which attempt this lease is (1 = first).
        attempt: u32,
    },
    /// Coordinator → worker: no work left, ever; disconnect.
    Done,
    /// Worker → coordinator: the leased cell's outcome.
    Result {
        /// [`Cell::index`] of the leased cell.
        index: u64,
        /// Whether the job closure returned (vs panicked).
        ok: bool,
        /// Payload JSON on success, panic message on failure.
        body: String,
    },
    /// Worker → coordinator: fetch a warm image.
    WarmGet {
        /// Warm-identity fingerprint.
        key: u64,
    },
    /// Coordinator → worker: the warm image, if any worker published it.
    WarmImage {
        /// Frame-sealed snapshot bytes.
        bytes: Option<Vec<u8>>,
    },
    /// Worker → coordinator: publish a freshly built warm image.
    WarmPut {
        /// Warm-identity fingerprint.
        key: u64,
        /// Frame-sealed snapshot bytes.
        bytes: Vec<u8>,
    },
    /// Coordinator → worker: `Result`/`WarmPut` acknowledged.
    Ack,
}

impl Snap for Msg {
    fn encode(&self, w: &mut Writer) {
        match self {
            Msg::Hello { proto } => {
                0u8.encode(w);
                proto.encode(w);
            }
            Msg::Welcome { sweep, setup } => {
                1u8.encode(w);
                sweep.encode(w);
                setup.encode(w);
            }
            Msg::Reject { reason } => {
                2u8.encode(w);
                reason.encode(w);
            }
            Msg::Claim => 3u8.encode(w),
            Msg::Assign { cell, attempt } => {
                4u8.encode(w);
                cell.encode(w);
                attempt.encode(w);
            }
            Msg::Done => 5u8.encode(w),
            Msg::Result { index, ok, body } => {
                6u8.encode(w);
                index.encode(w);
                ok.encode(w);
                body.encode(w);
            }
            Msg::WarmGet { key } => {
                7u8.encode(w);
                key.encode(w);
            }
            Msg::WarmImage { bytes } => {
                8u8.encode(w);
                bytes.encode(w);
            }
            Msg::WarmPut { key, bytes } => {
                9u8.encode(w);
                key.encode(w);
                bytes.encode(w);
            }
            Msg::Ack => 10u8.encode(w),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(match u8::decode(r)? {
            0 => Msg::Hello {
                proto: u32::decode(r)?,
            },
            1 => Msg::Welcome {
                sweep: String::decode(r)?,
                setup: String::decode(r)?,
            },
            2 => Msg::Reject {
                reason: String::decode(r)?,
            },
            3 => Msg::Claim,
            4 => Msg::Assign {
                cell: Cell::decode(r)?,
                attempt: u32::decode(r)?,
            },
            5 => Msg::Done,
            6 => Msg::Result {
                index: u64::decode(r)?,
                ok: bool::decode(r)?,
                body: String::decode(r)?,
            },
            7 => Msg::WarmGet {
                key: u64::decode(r)?,
            },
            8 => Msg::WarmImage {
                bytes: Option::<Vec<u8>>::decode(r)?,
            },
            9 => Msg::WarmPut {
                key: u64::decode(r)?,
                bytes: Vec::<u8>::decode(r)?,
            },
            10 => Msg::Ack,
            tag => return Err(SnapError::new(format!("unknown fabric message tag {tag}"))),
        })
    }
}

/// Send one message as a sealed frame and flush it.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn send_msg<W: io::Write>(w: &mut W, msg: &Msg) -> io::Result<()> {
    frame::write_frame(w, &msg.to_snap_bytes())
}

/// Receive one message. `Ok(None)` means the peer closed cleanly at a
/// frame boundary.
///
/// # Errors
///
/// Socket errors, torn/corrupt/oversized frames, and undecodable
/// payloads (all as `InvalidData` with the frame/codec detail).
pub fn recv_msg<R: io::Read>(r: &mut R) -> io::Result<Option<Msg>> {
    match frame::read_frame(r)? {
        None => Ok(None),
        Some(payload) => Msg::from_snap_bytes(&payload)
            .map(Some)
            .map_err(|e| io::Error::new(ErrorKind::InvalidData, e)),
    }
}

fn proto_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, msg.into())
}

/// Coordinator-side shared state: the queue, the leases, the outcomes,
/// the journal, and the warm-image rendezvous.
struct CoordState {
    /// Claimable cell indices.
    queue: VecDeque<usize>,
    /// Attempts consumed per cell (a lease counts when granted).
    attempts: Vec<u32>,
    /// Settled outcomes, cell-index order (cached entries prefilled).
    outcomes: Vec<Option<CellOutcome>>,
    /// Cells not yet settled.
    remaining: usize,
    /// Checkpoint journal (coordinator is the only writer).
    writer: Option<JournalWriter>,
    /// First journal I/O error, surfaced after the sweep drains.
    journal_err: Option<io::Error>,
    /// Warm images published by workers, by warm-identity key.
    warm: HashMap<u64, Vec<u8>>,
    /// All cells settled; the accept loop should exit.
    done: bool,
}

impl CoordState {
    /// Record a terminal status for `cell` (journal + outcome slot).
    fn settle(&mut self, cell: &Cell, status: CellStatus, attempts: u32) {
        if let Some(w) = &mut self.writer {
            let id = cell.id();
            let written = match &status {
                CellStatus::Done { payload } => w.record_ok(&id, attempts, payload),
                CellStatus::Failed { error } => w.record_failed(&id, attempts, error),
            };
            if let Err(e) = written {
                self.journal_err.get_or_insert(e);
            }
        }
        self.outcomes[cell.index] = Some(CellOutcome {
            cell: cell.clone(),
            status,
            attempts,
            cached: false,
        });
        self.remaining -= 1;
    }
}

/// The coordinator: wraps [`CoordState`] with the condvar protocol and
/// the immutable sweep facts every connection handler needs.
struct Coordinator<'a, E: Fn(FabricEvent) + Sync> {
    sweep: &'a str,
    setup: &'a str,
    cells: &'a [Cell],
    max_attempts: u32,
    state: Mutex<CoordState>,
    wake: Condvar,
    on_event: E,
}

impl<E: Fn(FabricEvent) + Sync> Coordinator<'_, E> {
    /// Lease the next claimable cell, blocking while the queue is empty
    /// but work is still in flight elsewhere. `None` = sweep finished.
    fn claim(&self) -> Option<(Cell, u32)> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.remaining == 0 {
                return None;
            }
            if let Some(idx) = st.queue.pop_front() {
                st.attempts[idx] += 1;
                return Some((self.cells[idx].clone(), st.attempts[idx]));
            }
            st = self.wake.wait(st).unwrap();
        }
    }

    /// Settle a worker-reported result: success records the payload; a
    /// failed attempt is requeued until the shared `max_attempts`
    /// budget is spent, then recorded as the failure.
    fn settle_result(&self, idx: usize, ok: bool, body: String) {
        let requeued = {
            let mut st = self.state.lock().unwrap();
            if st.outcomes[idx].is_some() {
                return; // Stale duplicate; the cell already settled.
            }
            let attempts = st.attempts[idx];
            let requeued = if ok {
                st.settle(
                    &self.cells[idx],
                    CellStatus::Done { payload: body },
                    attempts,
                );
                None
            } else if attempts >= self.max_attempts {
                st.settle(
                    &self.cells[idx],
                    CellStatus::Failed { error: body },
                    attempts,
                );
                None
            } else {
                st.queue.push_back(idx);
                Some(attempts)
            };
            self.wake.notify_all();
            requeued
        };
        if let Some(attempts) = requeued {
            (self.on_event)(FabricEvent::CellRequeue {
                cell: self.cells[idx].id(),
                attempts,
            });
        }
    }

    /// Release a lease whose connection died before reporting: requeue,
    /// or — budget spent — record the disconnect as the failure.
    fn release(&self, idx: usize) {
        let requeued = {
            let mut st = self.state.lock().unwrap();
            if st.outcomes[idx].is_some() {
                return;
            }
            let attempts = st.attempts[idx];
            let requeued = if attempts >= self.max_attempts {
                let error = format!(
                    "worker disconnected mid-cell (attempt {attempts} of {})",
                    self.max_attempts
                );
                st.settle(&self.cells[idx], CellStatus::Failed { error }, attempts);
                None
            } else {
                st.queue.push_back(idx);
                Some(attempts)
            };
            self.wake.notify_all();
            requeued
        };
        if let Some(attempts) = requeued {
            (self.on_event)(FabricEvent::CellRequeue {
                cell: self.cells[idx].id(),
                attempts,
            });
        }
    }

    /// One connection, handshake to EOF. Any exit releases an open
    /// lease and emits the disconnect event.
    fn handle(&self, mut stream: TcpStream) {
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "?".into());
        let mut lease: Option<usize> = None;
        let mut greeted = false;
        let _ = self.converse(&mut stream, &peer, &mut lease, &mut greeted);
        if let Some(idx) = lease {
            (self.on_event)(FabricEvent::WorkerDisconnect {
                peer,
                mid_cell: Some(self.cells[idx].id()),
            });
            self.release(idx);
        } else if greeted {
            (self.on_event)(FabricEvent::WorkerDisconnect {
                peer,
                mid_cell: None,
            });
        }
    }

    fn converse(
        &self,
        stream: &mut TcpStream,
        peer: &str,
        lease: &mut Option<usize>,
        greeted: &mut bool,
    ) -> io::Result<()> {
        match recv_msg(stream)? {
            Some(Msg::Hello { proto }) if proto == PROTO_VERSION => {}
            Some(Msg::Hello { proto }) => {
                let reason = format!(
                    "protocol version mismatch: worker speaks v{proto}, coordinator v{PROTO_VERSION}"
                );
                send_msg(
                    stream,
                    &Msg::Reject {
                        reason: reason.clone(),
                    },
                )?;
                return Err(proto_err(reason));
            }
            other => return Err(proto_err(format!("expected Hello, got {other:?}"))),
        }
        send_msg(
            stream,
            &Msg::Welcome {
                sweep: self.sweep.to_string(),
                setup: self.setup.to_string(),
            },
        )?;
        *greeted = true;
        (self.on_event)(FabricEvent::WorkerConnect { peer: peer.into() });
        loop {
            let Some(msg) = recv_msg(stream)? else {
                return Ok(()); // Clean close.
            };
            match msg {
                Msg::Claim => match self.claim() {
                    Some((cell, attempt)) => {
                        *lease = Some(cell.index);
                        send_msg(stream, &Msg::Assign { cell, attempt })?;
                    }
                    None => send_msg(stream, &Msg::Done)?,
                },
                Msg::Result { index, ok, body } => {
                    let idx = index as usize;
                    if *lease != Some(idx) {
                        return Err(proto_err(format!(
                            "result for cell {index} without a lease"
                        )));
                    }
                    *lease = None;
                    self.settle_result(idx, ok, body);
                    send_msg(stream, &Msg::Ack)?;
                }
                Msg::WarmGet { key } => {
                    let bytes = self.state.lock().unwrap().warm.get(&key).cloned();
                    send_msg(stream, &Msg::WarmImage { bytes })?;
                }
                Msg::WarmPut { key, bytes } => {
                    // First publisher wins; images for one key are
                    // byte-identical by the warm cache's determinism
                    // contract, so this is a pure dedup.
                    self.state.lock().unwrap().warm.entry(key).or_insert(bytes);
                    send_msg(stream, &Msg::Ack)?;
                }
                other => return Err(proto_err(format!("unexpected message {other:?}"))),
            }
        }
    }
}

/// Run a sweep as the fabric coordinator: resume from the journal,
/// serve cells to workers over `listener`, and return the settled
/// outcomes in cell-index order — byte-compatible with
/// [`crate::pool::run_cells`] on the same inputs.
///
/// `setup` is an opaque experiment-setup payload (JSON by convention)
/// handed to every worker in the `Welcome` message. `on_event` receives
/// fabric diagnostics (connects, disconnects, requeues); it must never
/// influence results.
///
/// Returns immediately (without accepting a single connection) when the
/// journal already covers every cell. Otherwise blocks until every cell
/// settles and every accepted connection closes.
///
/// # Errors
///
/// Journal I/O errors and listener failures. Worker panics and
/// disconnects never surface as `Err` — they become per-cell failure
/// records, exactly like local pool panics.
pub fn serve<E>(
    sweep: &str,
    cells: &[Cell],
    cfg: &SweepConfig,
    setup: &str,
    listener: TcpListener,
    on_event: E,
) -> io::Result<Vec<CellOutcome>>
where
    E: Fn(FabricEvent) + Sync,
{
    // Journal resume: identical restore semantics to the local pool —
    // only recorded successes are cached; failures are retried.
    let cached = match &cfg.journal {
        Some(path) => journal::load(path, sweep)?,
        None => Default::default(),
    };
    let outcomes: Vec<Option<CellOutcome>> = cells
        .iter()
        .map(|cell| {
            let rec = cached.get(&cell.id())?;
            let payload = rec.result.as_ref().ok()?;
            Some(CellOutcome {
                cell: cell.clone(),
                status: CellStatus::Done {
                    payload: payload.clone(),
                },
                attempts: rec.attempts,
                cached: true,
            })
        })
        .collect();
    let queue: VecDeque<usize> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.is_none())
        .map(|(i, _)| i)
        .collect();
    let remaining = queue.len();
    if remaining == 0 {
        return Ok(outcomes
            .into_iter()
            .map(|o| o.expect("all cells cached"))
            .collect());
    }

    let writer = match &cfg.journal {
        Some(path) => Some(JournalWriter::open(path, sweep)?),
        None => None,
    };
    let coord = Coordinator {
        sweep,
        setup,
        cells,
        max_attempts: cfg.max_attempts.max(1),
        state: Mutex::new(CoordState {
            queue,
            attempts: vec![0; cells.len()],
            outcomes,
            remaining,
            writer,
            journal_err: None,
            warm: HashMap::new(),
            done: false,
        }),
        wake: Condvar::new(),
        on_event,
    };
    let unblock_addr = listener.local_addr()?;

    std::thread::scope(|scope| {
        let coord = &coord;
        // Watcher: once every cell settles, mark done and poke the
        // accept loop awake with a throwaway self-connection.
        scope.spawn(move || {
            let mut st = coord.state.lock().unwrap();
            while st.remaining > 0 {
                st = coord.wake.wait(st).unwrap();
            }
            st.done = true;
            drop(st);
            let _ = TcpStream::connect(unblock_addr);
        });
        for conn in listener.incoming() {
            let Ok(stream) = conn else { continue };
            if coord.state.lock().unwrap().done {
                break; // The poke (or a late joiner); sweep is over.
            }
            scope.spawn(move || coord.handle(stream));
        }
        // Scope exit joins every handler: open connections drain their
        // final Claim→Done exchanges before we aggregate.
    });

    let mut st = coord.state.into_inner().unwrap();
    if let Some(e) = st.journal_err.take() {
        return Err(e);
    }
    Ok(st
        .outcomes
        .into_iter()
        .map(|o| o.expect("every cell settled"))
        .collect())
}

/// What one worker process did, summed over its connections.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Sweep name from the coordinator's `Welcome`.
    pub sweep: String,
    /// Cells executed (attempts, not unique cells).
    pub ran: usize,
    /// Attempts whose job closure returned a payload.
    pub ok: usize,
    /// Attempts that panicked (reported, possibly retried elsewhere).
    pub failed: usize,
}

/// Connect with retry until `wait` elapses — workers may legitimately
/// start before the coordinator binds its listener.
fn connect_retry(addr: &str, wait: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + wait;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// The `Hello` → `Welcome` handshake. `Ok(None)` means the coordinator
/// closed before greeting (sweep already finished): nothing to do.
fn handshake(stream: &mut TcpStream) -> io::Result<Option<(String, String)>> {
    send_msg(
        stream,
        &Msg::Hello {
            proto: PROTO_VERSION,
        },
    )?;
    match recv_msg(stream)? {
        Some(Msg::Welcome { sweep, setup }) => Ok(Some((sweep, setup))),
        Some(Msg::Reject { reason }) => Err(proto_err(reason)),
        None => Ok(None),
        other => Err(proto_err(format!("expected Welcome, got {other:?}"))),
    }
}

/// One claim→run→report connection loop.
fn worker_conn<F>(addr: &str, wait: Duration, run: &F) -> io::Result<WorkerReport>
where
    F: Fn(&Cell, &str) -> String + Sync,
{
    let mut stream = connect_retry(addr, wait)?;
    let Some((sweep, setup)) = handshake(&mut stream)? else {
        return Ok(WorkerReport::default());
    };
    let mut report = WorkerReport {
        sweep,
        ..WorkerReport::default()
    };
    loop {
        send_msg(&mut stream, &Msg::Claim)?;
        match recv_msg(&mut stream)? {
            Some(Msg::Assign { cell, attempt: _ }) => {
                let (ok, body) = match catch_unwind(AssertUnwindSafe(|| run(&cell, &setup))) {
                    Ok(payload) => (true, payload),
                    Err(panic) => (false, panic_message(&*panic)),
                };
                report.ran += 1;
                if ok {
                    report.ok += 1;
                } else {
                    report.failed += 1;
                }
                send_msg(
                    &mut stream,
                    &Msg::Result {
                        index: cell.index as u64,
                        ok,
                        body,
                    },
                )?;
                match recv_msg(&mut stream)? {
                    Some(Msg::Ack) => {}
                    other => return Err(proto_err(format!("expected Ack, got {other:?}"))),
                }
            }
            Some(Msg::Done) | None => return Ok(report),
            other => return Err(proto_err(format!("expected Assign/Done, got {other:?}"))),
        }
    }
}

/// Run a fabric worker: `threads` connections to the coordinator at
/// `addr`, each claiming and executing cells until the coordinator says
/// `Done`. `run(cell, setup)` is the job closure — it must be
/// deterministic in the cell (same contract as
/// [`crate::pool::run_cells`]); panics are caught per cell and reported
/// to the coordinator as failed attempts.
///
/// # Errors
///
/// Returns the first connection error only when *every* connection
/// failed; if any connection completed its loop, their summed
/// [`WorkerReport`] is returned (the coordinator requeues whatever the
/// failed connections held).
pub fn run_worker<F>(addr: &str, threads: usize, wait: Duration, run: F) -> io::Result<WorkerReport>
where
    F: Fn(&Cell, &str) -> String + Sync,
{
    let threads = threads.max(1);
    let results: Vec<io::Result<WorkerReport>> = std::thread::scope(|scope| {
        let run = &run;
        let handles: Vec<_> = (0..threads)
            .map(|_| scope.spawn(move || worker_conn(addr, wait, run)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker connection thread panicked"))
            .collect()
    });
    let mut merged = WorkerReport::default();
    let mut first_err = None;
    let mut any_ok = false;
    for r in results {
        match r {
            Ok(part) => {
                any_ok = true;
                if merged.sweep.is_empty() {
                    merged.sweep = part.sweep;
                }
                merged.ran += part.ran;
                merged.ok += part.ok;
                merged.failed += part.failed;
            }
            Err(e) => {
                first_err.get_or_insert(e);
            }
        }
    }
    match (any_ok, first_err) {
        (false, Some(e)) => Err(e),
        _ => Ok(merged),
    }
}

/// A [`WarmRemote`] over a dedicated fabric connection: worker threads
/// fetch warm images other workers already built, and publish their own
/// builds, through the coordinator's rendezvous map. All failures
/// degrade to `None`/no-op — the warm cache then simply builds locally.
#[derive(Debug)]
pub struct WarmPort {
    stream: TcpStream,
    broken: bool,
}

impl WarmPort {
    /// Connect and handshake a dedicated warm-exchange connection.
    ///
    /// # Errors
    ///
    /// Connection or handshake failures (including version skew).
    pub fn connect(addr: &str, wait: Duration) -> io::Result<WarmPort> {
        let mut stream = connect_retry(addr, wait)?;
        // The Welcome content is redundant here (the cell connections
        // carry it); the handshake is still required so version skew is
        // rejected on every connection.
        handshake(&mut stream)?;
        Ok(WarmPort {
            stream,
            broken: false,
        })
    }

    fn exchange(&mut self, msg: &Msg) -> Option<Msg> {
        if self.broken {
            return None;
        }
        let ok = send_msg(&mut self.stream, msg)
            .and_then(|()| recv_msg(&mut self.stream))
            .ok()
            .flatten();
        if ok.is_none() {
            self.broken = true;
        }
        ok
    }
}

impl WarmRemote for WarmPort {
    fn fetch(&mut self, key: u64) -> Option<Vec<u8>> {
        match self.exchange(&Msg::WarmGet { key })? {
            Msg::WarmImage { bytes } => bytes,
            _ => {
                self.broken = true;
                None
            }
        }
    }

    fn publish(&mut self, key: u64, bytes: &[u8]) {
        let sent = self.exchange(&Msg::WarmPut {
            key,
            bytes: bytes.to_vec(),
        });
        if !matches!(sent, Some(Msg::Ack)) {
            self.broken = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::SweepOutcome;
    use crate::pool::run_cells;
    use crate::spec::SweepSpec;
    use ida_obs::json::JsonObj;
    use std::sync::Arc;

    fn grid(n_workloads: usize) -> Vec<Cell> {
        SweepSpec::new(
            "net-t",
            (0..n_workloads).map(|i| format!("w{i}")).collect(),
            vec!["a".into(), "b".into()],
        )
        .cells()
    }

    fn payload_of(cell: &Cell) -> String {
        let mut rng = cell.rng();
        JsonObj::new()
            .str("cell", &cell.id())
            .u64("draw", rng.next_u64())
            .finish()
    }

    fn aggregate(outcomes: Vec<CellOutcome>) -> String {
        SweepOutcome {
            sweep: "net-t".into(),
            outcomes,
        }
        .aggregate_json()
    }

    /// Bind a loopback listener, run `serve` on a thread, and hand the
    /// address back for workers/raw clients.
    fn spawn_serve(
        cells: Vec<Cell>,
        cfg: SweepConfig,
        events: Arc<Mutex<Vec<FabricEvent>>>,
    ) -> (
        String,
        std::thread::JoinHandle<io::Result<Vec<CellOutcome>>>,
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            serve(
                "net-t",
                &cells,
                &cfg,
                r#"{"kind":"test"}"#,
                listener,
                |ev| events.lock().unwrap().push(ev),
            )
        });
        (addr, handle)
    }

    const WAIT: Duration = Duration::from_secs(10);

    #[test]
    fn messages_round_trip_and_reject_corruption() {
        let msgs = [
            Msg::Hello { proto: 1 },
            Msg::Welcome {
                sweep: "s".into(),
                setup: "{}".into(),
            },
            Msg::Reject {
                reason: "no".into(),
            },
            Msg::Claim,
            Msg::Assign {
                cell: grid(1).remove(0),
                attempt: 2,
            },
            Msg::Done,
            Msg::Result {
                index: 7,
                ok: false,
                body: "panicked: x".into(),
            },
            Msg::WarmGet { key: 9 },
            Msg::WarmImage { bytes: None },
            Msg::WarmImage {
                bytes: Some(vec![1, 2, 3]),
            },
            Msg::WarmPut {
                key: 9,
                bytes: vec![4, 5],
            },
            Msg::Ack,
        ];
        let mut wire = Vec::new();
        for m in &msgs {
            send_msg(&mut wire, m).unwrap();
        }
        let mut r = &wire[..];
        for m in &msgs {
            assert_eq!(recv_msg(&mut r).unwrap().as_ref(), Some(m));
        }
        assert_eq!(recv_msg(&mut r).unwrap(), None, "clean EOF after last");

        // A flipped payload bit is caught by the frame hash.
        let mut torn = wire.clone();
        let last = torn.len() - 1;
        torn[last] ^= 0x01;
        let mut r = &torn[..];
        let err = loop {
            match recv_msg(&mut r) {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("corruption not detected"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), ErrorKind::InvalidData);

        // An unknown tag is rejected by the codec even with a valid frame.
        let mut bogus = Vec::new();
        frame::write_frame(&mut bogus, &[42u8]).unwrap();
        let err = recv_msg(&mut &bogus[..]).unwrap_err();
        assert!(err.to_string().contains("unknown fabric message tag 42"));
    }

    #[test]
    fn loopback_workers_match_serial_bytes_for_any_count() {
        let cells = grid(4);
        let serial = run_cells("net-t", &cells, &SweepConfig::serial(), payload_of).unwrap();
        for workers in [1usize, 2] {
            let events = Arc::new(Mutex::new(Vec::new()));
            let (addr, handle) = spawn_serve(cells.clone(), SweepConfig::serial(), events);
            let report = run_worker(&addr, workers, WAIT, |cell, setup| {
                assert_eq!(setup, r#"{"kind":"test"}"#);
                payload_of(cell)
            })
            .unwrap();
            let distributed = handle.join().unwrap().unwrap();
            assert_eq!(report.sweep, "net-t");
            assert_eq!(report.ran, cells.len());
            assert_eq!(report.failed, 0);
            assert_eq!(
                aggregate(serial.clone()),
                aggregate(distributed),
                "aggregate diverged at {workers} worker connections"
            );
        }
    }

    #[test]
    fn a_panicking_cell_fails_with_serial_identical_bytes() {
        let cells = grid(3);
        let job = |cell: &Cell| {
            assert!(cell.workload != "w1", "w1 always fails");
            payload_of(cell)
        };
        let serial = run_cells("net-t", &cells, &SweepConfig::serial(), job).unwrap();

        let events = Arc::new(Mutex::new(Vec::new()));
        let (addr, handle) = spawn_serve(cells.clone(), SweepConfig::serial(), events.clone());
        let report = run_worker(&addr, 2, WAIT, |cell, _| job(cell)).unwrap();
        let distributed = handle.join().unwrap().unwrap();

        // Workload w1 spans two cells (systems a and b); each burns the
        // shared max_attempts budget of 2, then records the same
        // failure a serial run produces.
        assert_eq!(report.failed, 4);
        assert_eq!(aggregate(serial), aggregate(distributed));
        let requeues: Vec<_> = events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.kind() == "cell_requeue")
            .cloned()
            .collect();
        assert_eq!(requeues.len(), 2, "one requeue per failing workload cell");
    }

    #[test]
    fn a_killed_worker_mid_cell_requeues_and_the_bytes_still_match() {
        let cells = grid(3);
        let serial = run_cells("net-t", &cells, &SweepConfig::serial(), payload_of).unwrap();

        let events = Arc::new(Mutex::new(Vec::new()));
        let (addr, handle) = spawn_serve(cells.clone(), SweepConfig::serial(), events.clone());

        // A raw client claims a cell and dies holding the lease.
        let killed_cell = {
            let mut s = TcpStream::connect(&addr).unwrap();
            let (_, _) = handshake(&mut s).unwrap().expect("greeted");
            send_msg(&mut s, &Msg::Claim).unwrap();
            match recv_msg(&mut s).unwrap() {
                Some(Msg::Assign { cell, attempt }) => {
                    assert_eq!(attempt, 1);
                    cell.id()
                }
                other => panic!("expected a lease, got {other:?}"),
            }
            // Drop: connection dies mid-cell.
        };

        // A real worker joins afterwards and finishes everything,
        // including the abandoned cell.
        run_worker(&addr, 1, WAIT, |cell, _| payload_of(cell)).unwrap();
        let distributed = handle.join().unwrap().unwrap();
        assert_eq!(aggregate(serial), aggregate(distributed));

        let events = events.lock().unwrap();
        assert!(
            events.iter().any(|e| matches!(
                e,
                FabricEvent::WorkerDisconnect { mid_cell: Some(c), .. } if *c == killed_cell
            )),
            "no mid-cell disconnect recorded: {events:?}"
        );
        assert!(
            events.iter().any(|e| matches!(
                e,
                FabricEvent::CellRequeue { cell, .. } if *cell == killed_cell
            )),
            "killed cell never requeued: {events:?}"
        );
    }

    #[test]
    fn version_skew_is_rejected_at_the_handshake() {
        let cells = grid(1);
        let events = Arc::new(Mutex::new(Vec::new()));
        let (addr, handle) = spawn_serve(cells, SweepConfig::serial(), events);

        let mut s = TcpStream::connect(&addr).unwrap();
        send_msg(&mut s, &Msg::Hello { proto: 99 }).unwrap();
        match recv_msg(&mut s).unwrap() {
            Some(Msg::Reject { reason }) => {
                assert!(reason.contains("v99"), "unhelpful reject: {reason}")
            }
            other => panic!("expected Reject, got {other:?}"),
        }
        drop(s);

        // The sweep is unharmed: a current-version worker finishes it.
        run_worker(&addr, 1, WAIT, |cell, _| payload_of(cell)).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn warm_images_rendezvous_through_the_coordinator() {
        let cells = grid(1);
        let events = Arc::new(Mutex::new(Vec::new()));
        let (addr, handle) = spawn_serve(cells.clone(), SweepConfig::serial(), events);

        let mut port = WarmPort::connect(&addr, WAIT).unwrap();
        assert_eq!(port.fetch(5), None, "nothing published yet");
        let image = frame::seal(&[7u8; 32]);
        port.publish(5, &image);
        assert_eq!(port.fetch(5), Some(image.clone()));

        // A second worker's port sees the first worker's image.
        let mut other = WarmPort::connect(&addr, WAIT).unwrap();
        assert_eq!(other.fetch(5), Some(image));

        // Finish the sweep so serve returns; ports must be dropped or
        // serve would (correctly) wait for their connections to close.
        drop(port);
        drop(other);
        run_worker(&addr, 1, WAIT, |cell, _| payload_of(cell)).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn a_journaled_serve_resumes_without_accepting_any_connection() {
        let dir = std::env::temp_dir().join(format!("ida-net-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&journal);

        let cells = grid(2);
        let cfg = SweepConfig::serial().with_journal(journal.clone());
        let events = Arc::new(Mutex::new(Vec::new()));
        let (addr, handle) = spawn_serve(cells.clone(), cfg.clone(), events);
        run_worker(&addr, 2, WAIT, |cell, _| payload_of(cell)).unwrap();
        let first = handle.join().unwrap().unwrap();
        assert!(first.iter().all(|o| !o.cached));

        // Second serve: every cell is journaled, so it returns without
        // a listener interaction (no worker is even started).
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let resumed = serve("net-t", &cells, &cfg, "{}", listener, |_| ()).unwrap();
        assert!(resumed.iter().all(|o| o.cached), "cells were recomputed");
        assert_eq!(aggregate(first), aggregate(resumed));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
