//! A minimal JSON reader — the counterpart of `ida_obs::json`'s writer.
//!
//! The journal loader needs two things a writer can't give it: parse a
//! record line into fields, and recover the *raw text* of a cached
//! payload so it can be re-emitted byte-for-byte (re-rendering through
//! `f64` would corrupt `u128` counters like `total_ns`). Hence
//! [`parse`] for structure and [`top_level_fields`] for raw spans.
//!
//! Deliberately small: UTF-8 input, numbers surfaced as `f64` (with the
//! raw text kept for lossless integer access), no trailing garbage.

use std::collections::HashMap;
use std::ops::Range;

/// A parsed JSON value. Object fields keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, with its raw source text (for lossless u64/u128).
    Num(f64, String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, fields in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n, _) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, parsed losslessly from the source
    /// text (so counters above 2^53 survive).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(_, raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse a complete JSON document.
///
/// # Errors
///
/// Returns a position-tagged message for malformed input (including
/// trailing garbage — the property that lets the journal loader reject
/// a torn line).
pub fn parse(s: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(format!("trailing characters at byte {}", p.i));
    }
    Ok(v)
}

/// Parse the top level of a JSON object and return each field's key and
/// the byte range of its (raw) value text — the lossless path for
/// re-emitting cached payloads.
///
/// # Errors
///
/// Returns a message if `s` is not a well-formed JSON object.
pub fn top_level_fields(s: &str) -> Result<Vec<(String, Range<usize>)>, String> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.i += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let start = p.i;
            p.value()?;
            fields.push((key, start..p.i));
            p.skip_ws();
            match p.peek() {
                Some(b',') => p.i += 1,
                Some(b'}') => {
                    p.i += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", p.i)),
            }
        }
    }
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(format!("trailing characters at byte {}", p.i));
    }
    Ok(fields)
}

/// [`top_level_fields`] as a map from key to raw value text.
///
/// # Errors
///
/// Propagates [`top_level_fields`] errors.
pub fn raw_fields(s: &str) -> Result<HashMap<String, &str>, String> {
    Ok(top_level_fields(s)?
        .into_iter()
        .map(|(k, r)| (k, &s[r]))
        .collect())
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn lit(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", JsonValue::Null),
            Some(b't') => self.lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.lit("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.i)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.i + 4 > self.s.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.s[self.i..self.i + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.i += 4;
                            // Surrogate pairs are not emitted by our own
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        c => return Err(format!("bad escape '\\{}'", c as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through untouched).
                    let rest = std::str::from_utf8(&self.s[self.i..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let raw = std::str::from_utf8(&self.s[start..self.i]).expect("ascii");
        let n: f64 = raw
            .parse()
            .map_err(|_| format!("bad number at byte {start}"))?;
        Ok(JsonValue::Num(n, raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ida_obs::json::JsonObj;

    #[test]
    fn round_trips_our_own_writer() {
        let src = JsonObj::new()
            .str("name", "hm_1")
            .u64("count", 42)
            .f64("mean", 1.5)
            .bool("ok", true)
            .raw("nested", "{\"a\":[1,2,3],\"b\":null}")
            .finish();
        let v = parse(&src).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("hm_1"));
        assert_eq!(v.get("count").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("mean").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        let nested = v.get("nested").unwrap();
        assert_eq!(
            nested.get("a"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Num(1.0, "1".into()),
                JsonValue::Num(2.0, "2".into()),
                JsonValue::Num(3.0, "3".into()),
            ]))
        );
        assert_eq!(nested.get("b"), Some(&JsonValue::Null));
    }

    #[test]
    fn big_integers_survive_via_raw_text() {
        let big = u64::MAX;
        let v = parse(&format!("{{\"x\":{big}}}")).unwrap();
        assert_eq!(v.get("x").unwrap().as_u64(), Some(big));
    }

    #[test]
    fn escapes_decode() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn torn_lines_are_rejected() {
        for bad in [
            "{\"a\":1",
            "{\"a\":",
            "{\"a",
            "{",
            "",
            "{\"a\":1}x",
            "{\"a\":1}{",
        ] {
            assert!(parse(bad).is_err(), "accepted torn line {bad:?}");
        }
    }

    #[test]
    fn raw_field_spans_preserve_bytes() {
        let src = r#"{"cell":"w/s/r1","payload":{"total_ns":18446744073709551615,"m":1.25}}"#;
        let raw = raw_fields(src).unwrap();
        assert_eq!(raw["cell"], "\"w/s/r1\"");
        assert_eq!(
            raw["payload"],
            r#"{"total_ns":18446744073709551615,"m":1.25}"#
        );
        assert!(raw_fields("{\"a\":1,").is_err());
    }

    #[test]
    fn whitespace_and_empty_containers() {
        assert_eq!(parse(" { } ").unwrap(), JsonValue::Obj(vec![]));
        assert_eq!(parse("[ ]").unwrap(), JsonValue::Arr(vec![]));
        assert_eq!(
            parse("{\"a\": [ 1 , 2 ] }").unwrap().get("a").unwrap(),
            &JsonValue::Arr(vec![
                JsonValue::Num(1.0, "1".into()),
                JsonValue::Num(2.0, "2".into()),
            ])
        );
    }

    #[test]
    fn negative_and_exponent_numbers() {
        let v = parse("[-1.5e3,2E-2,-7]").unwrap();
        match v {
            JsonValue::Arr(items) => {
                assert_eq!(items[0].as_f64(), Some(-1500.0));
                assert_eq!(items[1].as_f64(), Some(0.02));
                assert_eq!(items[2].as_f64(), Some(-7.0));
            }
            other => panic!("not an array: {other:?}"),
        }
    }
}
