//! The typed job model: one [`Cell`] per experiment point.
//!
//! A cell's identity is its coordinates — workload, system, ordered
//! parameter pairs, and a replicate number — rendered into a stable
//! string ID. Everything downstream keys off that ID: the checkpoint
//! journal uses it to recognise finished work across restarts, and the
//! per-cell RNG stream seed is derived from it, so a cell draws the same
//! random sequence whether it runs first on a single worker or last on
//! sixteen.

use ida_obs::rng::Rng64;

/// One experiment point in a sweep grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Position in the spec's expansion order (the aggregation order).
    pub index: usize,
    /// Workload name, e.g. `proj_1`.
    pub workload: String,
    /// System label, e.g. `Baseline` or `IDA-E20`.
    pub system: String,
    /// Ordered extra parameters, e.g. `[("dtr_us", "50")]`.
    pub params: Vec<(String, String)>,
    /// Replicate number (the seed axis of the grid).
    pub replicate: u64,
    /// Derived per-cell RNG stream seed (a pure function of the ID and
    /// the spec's base seed).
    pub stream_seed: u64,
}

// Cells travel over the distributed-sweep fabric inside Assign
// messages; the coordinator ships the fully derived cell (including
// the stream seed), so a worker never needs the spec.
ida_snap::snap_struct!(Cell {
    index,
    workload,
    system,
    params,
    replicate,
    stream_seed
});

impl Cell {
    /// The stable cell ID: `workload/system[/k=v...]/r<replicate>`.
    pub fn id(&self) -> String {
        let mut id = format!("{}/{}", self.workload, self.system);
        for (k, v) in &self.params {
            id.push('/');
            id.push_str(k);
            id.push('=');
            id.push_str(v);
        }
        id.push_str(&format!("/r{}", self.replicate));
        id
    }

    /// The value of parameter `key`, if the cell carries it.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// A fresh deterministic RNG on this cell's private stream.
    pub fn rng(&self) -> Rng64 {
        Rng64::seed_from_u64(self.stream_seed)
    }
}

/// FNV-1a over a byte string — the ID hash feeding seed derivation.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One SplitMix64 round — decorrelates similar hash/base combinations.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a cell's RNG stream seed from the sweep's base seed and the
/// cell ID. Scheduling-independent by construction: the inputs are the
/// cell's coordinates, nothing else.
pub fn derive_stream_seed(base_seed: u64, cell_id: &str) -> u64 {
    splitmix(base_seed ^ fnv1a(cell_id.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> Cell {
        let workload = "proj_1".to_string();
        let system = "IDA-E20".to_string();
        let params = vec![("dtr_us".to_string(), "50".to_string())];
        Cell {
            index: 3,
            workload,
            system,
            params,
            replicate: 1,
            stream_seed: 0,
        }
    }

    #[test]
    fn id_renders_all_coordinates_in_order() {
        assert_eq!(cell().id(), "proj_1/IDA-E20/dtr_us=50/r1");
        let mut plain = cell();
        plain.params.clear();
        assert_eq!(plain.id(), "proj_1/IDA-E20/r1");
    }

    #[test]
    fn param_lookup() {
        assert_eq!(cell().param("dtr_us"), Some("50"));
        assert_eq!(cell().param("nope"), None);
    }

    #[test]
    fn stream_seed_is_a_function_of_id_and_base() {
        let a = derive_stream_seed(7, "proj_1/Baseline/r1");
        let b = derive_stream_seed(7, "proj_1/Baseline/r1");
        let c = derive_stream_seed(7, "proj_1/Baseline/r2");
        let d = derive_stream_seed(8, "proj_1/Baseline/r1");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn sibling_cells_draw_unrelated_streams() {
        let mut a = Rng64::seed_from_u64(derive_stream_seed(1, "w/x/r1"));
        let mut b = Rng64::seed_from_u64(derive_stream_seed(1, "w/x/r2"));
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams look correlated ({same}/64 equal)");
    }
}
