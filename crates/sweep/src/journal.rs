//! The JSONL checkpoint journal.
//!
//! One line is appended per *finished* cell (success or exhausted
//! retries). A sweep killed mid-run leaves a valid prefix — at worst one
//! torn final line, which the loader ignores — so a re-invocation skips
//! every journaled success and re-runs only incomplete cells. Failed
//! records are loaded for reporting but never satisfy a cell: failures
//! are retried on resume.
//!
//! Record shape (`status` is `"ok"` or `"failed"`):
//!
//! ```json
//! {"v":1,"sweep":"fig8","cell":"proj_1/IDA-E20/r1","attempts":1,"status":"ok","payload":{...}}
//! {"v":1,"sweep":"fig8","cell":"usr_1/Baseline/r1","attempts":3,"status":"failed","error":"..."}
//! ```
//!
//! The payload is stored and re-read as raw JSON text, so a resumed
//! sweep emits cached results byte-identically.

use crate::jsonv;
use ida_obs::json::JsonObj;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// Journal format version.
pub const JOURNAL_VERSION: u64 = 1;

/// One journal record, as loaded from disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Cell ID.
    pub cell: String,
    /// Attempts the original run took.
    pub attempts: u32,
    /// `Ok(raw payload JSON)` or `Err(error message)`.
    pub result: Result<String, String>,
}

/// Append-only journal writer. Each record is written as one line and
/// flushed immediately, so a killed process loses at most the line in
/// flight.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    sweep: String,
}

impl JournalWriter {
    /// Open `path` for appending (creating it if absent).
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be opened.
    pub fn open(path: &Path, sweep: &str) -> std::io::Result<Self> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JournalWriter {
            file,
            sweep: sweep.to_string(),
        })
    }

    /// Append a success record carrying the cell's raw JSON payload.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn record_ok(
        &mut self,
        cell_id: &str,
        attempts: u32,
        payload: &str,
    ) -> std::io::Result<()> {
        let line = self
            .header(cell_id, attempts)
            .str("status", "ok")
            .raw("payload", payload)
            .finish();
        self.append(&line)
    }

    /// Append a failure record carrying the final error message.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn record_failed(
        &mut self,
        cell_id: &str,
        attempts: u32,
        error: &str,
    ) -> std::io::Result<()> {
        let line = self
            .header(cell_id, attempts)
            .str("status", "failed")
            .str("error", error)
            .finish();
        self.append(&line)
    }

    fn header(&self, cell_id: &str, attempts: u32) -> JsonObj {
        JsonObj::new()
            .u64("v", JOURNAL_VERSION)
            .str("sweep", &self.sweep)
            .str("cell", cell_id)
            .u64("attempts", attempts as u64)
    }

    fn append(&mut self, line: &str) -> std::io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()
    }
}

/// Load the journal at `path` for sweep `sweep`, returning the last
/// record per cell ID. Missing files yield an empty map; unparsable or
/// torn lines and records from other sweeps are skipped.
///
/// # Errors
///
/// Fails only on I/O errors reading an existing file.
pub fn load(path: &Path, sweep: &str) -> std::io::Result<HashMap<String, JournalRecord>> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(HashMap::new()),
        Err(e) => return Err(e),
    };
    let mut records = HashMap::new();
    for line in BufReader::new(file).split(b'\n') {
        let line = line?;
        let Ok(line) = std::str::from_utf8(&line) else {
            continue;
        };
        if let Some(rec) = parse_line(line, sweep) {
            records.insert(rec.cell.clone(), rec);
        }
    }
    Ok(records)
}

fn parse_line(line: &str, sweep: &str) -> Option<JournalRecord> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    let raw = jsonv::raw_fields(line).ok()?;
    let field = |k: &str| jsonv::parse(raw.get(k)?).ok();
    if field("v")?.as_u64()? != JOURNAL_VERSION {
        return None;
    }
    if field("sweep")?.as_str()? != sweep {
        return None;
    }
    let cell = field("cell")?.as_str()?.to_string();
    let attempts = field("attempts")?.as_u64()? as u32;
    let result = match field("status")?.as_str()? {
        "ok" => Ok(raw.get("payload")?.to_string()),
        "failed" => Err(field("error")?.as_str()?.to_string()),
        _ => return None,
    };
    Some(JournalRecord {
        cell,
        attempts,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ida-sweep-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn write_then_load_round_trips() {
        let path = tmp("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut w = JournalWriter::open(&path, "fig8").unwrap();
        w.record_ok("w1/Baseline/r1", 1, r#"{"mean_ns":12.5}"#)
            .unwrap();
        w.record_failed("w2/IDA-E20/r1", 3, "panicked: boom")
            .unwrap();
        let recs = load(&path, "fig8").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(
            recs["w1/Baseline/r1"].result.as_deref(),
            Ok(r#"{"mean_ns":12.5}"#)
        );
        assert_eq!(recs["w1/Baseline/r1"].attempts, 1);
        assert_eq!(
            recs["w2/IDA-E20/r1"].result,
            Err("panicked: boom".to_string())
        );
    }

    #[test]
    fn torn_final_line_is_ignored() {
        let path = tmp("torn.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut w = JournalWriter::open(&path, "s").unwrap();
        w.record_ok("a/x/r1", 1, "{}").unwrap();
        w.record_ok("b/x/r1", 1, "{}").unwrap();
        // Simulate a kill mid-append: truncate into the second record.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.len() - 7;
        std::fs::write(&path, &text[..cut]).unwrap();
        let recs = load(&path, "s").unwrap();
        assert_eq!(recs.len(), 1);
        assert!(recs.contains_key("a/x/r1"));
    }

    #[test]
    fn missing_file_is_empty() {
        let recs = load(&tmp("nonexistent.jsonl"), "s").unwrap();
        assert!(recs.is_empty());
    }

    #[test]
    fn records_from_other_sweeps_are_skipped() {
        let path = tmp("mixed.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut w = JournalWriter::open(&path, "fig8").unwrap();
        w.record_ok("a/x/r1", 1, "{}").unwrap();
        assert!(load(&path, "fig9").unwrap().is_empty());
        assert_eq!(load(&path, "fig8").unwrap().len(), 1);
    }

    #[test]
    fn later_records_win() {
        let path = tmp("dup.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut w = JournalWriter::open(&path, "s").unwrap();
        w.record_failed("a/x/r1", 2, "first try").unwrap();
        w.record_ok("a/x/r1", 1, r#"{"v":2}"#).unwrap();
        let recs = load(&path, "s").unwrap();
        assert_eq!(recs["a/x/r1"].result.as_deref(), Ok(r#"{"v":2}"#));
    }
}
