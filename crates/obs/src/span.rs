//! Request-scoped latency attribution spans.
//!
//! The simulator decomposes every completed host request's response time
//! into phase-tagged intervals of simulated nanoseconds: where each
//! nanosecond between issue and completion went. The decomposition is a
//! *partition* — phases tile `[issue, complete]` with no gaps and no
//! overlaps, so for every request the phase values in its [`PhaseNs`] sum
//! byte-exactly to the reported response time (the conservation
//! invariant `tests/latency_attribution.rs` checks).
//!
//! The attributed request is the *critical op*: the flash operation whose
//! completion finishes the request. Its queue wait is charged to the
//! class of whoever held the die while it waited ([`Phase::QueueHost`],
//! [`Phase::QueueGc`], [`Phase::QueueRefresh`], [`Phase::Recovery`]; any
//! residual is [`Phase::QueueOther`]), and its service time splits into
//! the timing model's exact components (channel wait, sensing, retry
//! re-senses, transfer, ECC decode, fault backoff, program).
//!
//! Aggregation ([`PhaseStats`]) keeps exact per-phase totals plus a
//! [`LogHistogram`] per phase, and serializes deterministically — the
//! same bytes whether built in-sim or replayed from a JSONL trace by the
//! offline analyzer.

use crate::hist::LogHistogram;
use crate::json::JsonObj;

/// Number of attribution phases.
pub const PHASE_COUNT: usize = 12;

/// Number of queue-interference classes (the first `QUEUE_CLASSES`
/// variants of [`Phase`], in order: host, GC, refresh, recovery).
pub const QUEUE_CLASSES: usize = 4;

/// One attribution phase of a request's lifetime.
///
/// The first four variants classify queue wait by who held the die; the
/// rest are the service-time components of the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Queued behind host traffic holding the die.
    QueueHost,
    /// Queued behind garbage-collection traffic holding the die.
    QueueGc,
    /// Queued behind refresh traffic holding the die.
    QueueRefresh,
    /// Stalled behind a power-loss recovery scan.
    Recovery,
    /// Queue wait not covered by an observed hold (scheduling residual).
    QueueOther,
    /// Waiting for the transfer channel before the array could start.
    Channel,
    /// First sensing attempt of the wordline.
    Sense,
    /// Extra sensing attempts (read retry + injected transient faults).
    Retry,
    /// Channel transfer of the page data.
    Transfer,
    /// Controller ECC decode.
    Ecc,
    /// Controller backoff between transient-fault retries.
    Backoff,
    /// ISPP programming of the page.
    Program,
}

/// Every phase, in stable serialization order.
pub const ALL_PHASES: [Phase; PHASE_COUNT] = [
    Phase::QueueHost,
    Phase::QueueGc,
    Phase::QueueRefresh,
    Phase::Recovery,
    Phase::QueueOther,
    Phase::Channel,
    Phase::Sense,
    Phase::Retry,
    Phase::Transfer,
    Phase::Ecc,
    Phase::Backoff,
    Phase::Program,
];

impl Phase {
    /// Stable snake_case label, used as the JSON key in span trace events
    /// and attribution reports.
    pub fn label(self) -> &'static str {
        match self {
            Phase::QueueHost => "queue_host",
            Phase::QueueGc => "queue_gc",
            Phase::QueueRefresh => "queue_refresh",
            Phase::Recovery => "recovery",
            Phase::QueueOther => "queue_other",
            Phase::Channel => "channel",
            Phase::Sense => "sense",
            Phase::Retry => "retry",
            Phase::Transfer => "transfer",
            Phase::Ecc => "ecc",
            Phase::Backoff => "backoff",
            Phase::Program => "program",
        }
    }

    /// The phase with the given `label`, if any.
    pub fn from_label(label: &str) -> Option<Phase> {
        ALL_PHASES.into_iter().find(|p| p.label() == label)
    }

    /// The phase's index in [`ALL_PHASES`] (and in [`PhaseNs`]).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One request's attribution waterfall: nanoseconds per phase.
///
/// `Copy` and allocation-free so the simulator can carry one per queued
/// operation without touching the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseNs {
    ns: [u64; PHASE_COUNT],
}

impl PhaseNs {
    /// The all-zero waterfall (e.g. an instantly-completed request).
    pub fn zero() -> Self {
        Self::default()
    }

    /// Nanoseconds attributed to `phase`.
    pub fn get(&self, phase: Phase) -> u64 {
        self.ns[phase.index()]
    }

    /// Add `ns` to `phase`.
    pub fn add(&mut self, phase: Phase, ns: u64) {
        self.ns[phase.index()] += ns;
    }

    /// Set `phase` to `ns`.
    pub fn set(&mut self, phase: Phase, ns: u64) {
        self.ns[phase.index()] = ns;
    }

    /// Sum over all phases — equals the request's response time under the
    /// conservation invariant.
    pub fn total(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// `(phase, ns)` pairs in stable order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, u64)> + '_ {
        ALL_PHASES.into_iter().map(|p| (p, self.get(p)))
    }
}

/// Aggregated attribution over many requests: exact per-phase totals and
/// a latency histogram per phase (zero-valued phases are not recorded
/// into the histograms, so percentiles describe requests that actually
/// touched the phase).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStats {
    count: u64,
    totals: [u128; PHASE_COUNT],
    hists: Vec<LogHistogram>,
}

impl Default for PhaseStats {
    fn default() -> Self {
        PhaseStats {
            count: 0,
            totals: [0; PHASE_COUNT],
            hists: vec![LogHistogram::new(); PHASE_COUNT],
        }
    }
}

impl PhaseStats {
    /// Empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one request's waterfall in.
    pub fn record(&mut self, phases: &PhaseNs) {
        self.count += 1;
        for (phase, ns) in phases.iter() {
            self.totals[phase.index()] += ns as u128;
            if ns > 0 {
                self.hists[phase.index()].record(ns);
            }
        }
    }

    /// Merge another aggregate in.
    pub fn merge(&mut self, other: &PhaseStats) {
        self.count += other.count;
        for i in 0..PHASE_COUNT {
            self.totals[i] += other.totals[i];
            self.hists[i].merge(&other.hists[i]);
        }
    }

    /// Requests folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no request has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact total nanoseconds attributed to `phase`.
    pub fn total(&self, phase: Phase) -> u128 {
        self.totals[phase.index()]
    }

    /// Exact total across all phases — equals the class's summed response
    /// time under the conservation invariant.
    pub fn grand_total(&self) -> u128 {
        self.totals.iter().sum()
    }

    /// Mean nanoseconds per request attributed to `phase` (over *all*
    /// recorded requests, including those that never touched the phase).
    pub fn mean(&self, phase: Phase) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total(phase) as f64 / self.count as f64
        }
    }

    /// `phase`'s share of the grand total, in percent.
    pub fn share_pct(&self, phase: Phase) -> f64 {
        let g = self.grand_total();
        if g == 0 {
            0.0
        } else {
            self.total(phase) as f64 * 100.0 / g as f64
        }
    }

    /// The histogram of nonzero per-request values for `phase`.
    pub fn histogram(&self, phase: Phase) -> &LogHistogram {
        &self.hists[phase.index()]
    }

    /// Deterministic JSON: request count, grand total, and per-phase
    /// `{total_ns, touched, mean_ns, p99_ns, max_ns}` where `touched`
    /// counts requests with a nonzero value in the phase. Byte-identical
    /// whether built in-sim or replayed from a trace.
    pub fn to_json(&self) -> String {
        let mut phases = JsonObj::new();
        for p in ALL_PHASES {
            let h = self.histogram(p);
            let o = JsonObj::new()
                .u128("total_ns", self.total(p))
                .u64("touched", h.count())
                .f64("mean_ns", self.mean(p))
                .u64("p99_ns", h.percentile(99.0))
                .u64("max_ns", h.max());
            phases = phases.raw(p.label(), &o.finish());
        }
        JsonObj::new()
            .u64("count", self.count)
            .u128("total_ns", self.grand_total())
            .raw("phases", &phases.finish())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_and_are_unique() {
        for p in ALL_PHASES {
            assert_eq!(Phase::from_label(p.label()), Some(p));
        }
        assert_eq!(Phase::from_label("nope"), None);
        let mut labels: Vec<_> = ALL_PHASES.iter().map(|p| p.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), PHASE_COUNT);
    }

    #[test]
    fn queue_classes_lead_the_phase_order() {
        // The simulator indexes its per-op charge array by the first
        // QUEUE_CLASSES phases; pin their positions.
        assert_eq!(Phase::QueueHost.index(), 0);
        assert_eq!(Phase::QueueGc.index(), 1);
        assert_eq!(Phase::QueueRefresh.index(), 2);
        assert_eq!(Phase::Recovery.index(), 3);
        assert_eq!(QUEUE_CLASSES, 4);
    }

    #[test]
    fn phase_ns_sums_exactly() {
        let mut p = PhaseNs::zero();
        p.add(Phase::Sense, 50_000);
        p.add(Phase::Transfer, 48_000);
        p.add(Phase::Ecc, 20_000);
        p.add(Phase::Sense, 1);
        assert_eq!(p.get(Phase::Sense), 50_001);
        assert_eq!(p.total(), 118_001);
        p.set(Phase::Sense, 50_000);
        assert_eq!(p.total(), 118_000);
    }

    #[test]
    fn stats_record_and_merge_agree() {
        let mut a = PhaseStats::new();
        let mut b = PhaseStats::new();
        let mut all = PhaseStats::new();
        for i in 0..10u64 {
            let mut p = PhaseNs::zero();
            p.add(Phase::Sense, 50_000 + i);
            if i % 2 == 0 {
                p.add(Phase::QueueHost, 1_000 * i);
            }
            if i < 5 {
                a.record(&p);
            } else {
                b.record(&p);
            }
            all.record(&p);
        }
        a.merge(&b);
        assert_eq!(a, all);
        assert_eq!(all.count(), 10);
        // i=0 contributes a zero queue value: only 4 requests touched it.
        assert_eq!(all.histogram(Phase::QueueHost).count(), 4);
        assert_eq!(
            all.grand_total(),
            (0..10u64)
                .map(|i| (50_000 + i) as u128 + if i % 2 == 0 { (1_000 * i) as u128 } else { 0 })
                .sum()
        );
    }

    #[test]
    fn stats_json_is_deterministic_and_complete() {
        let mut s = PhaseStats::new();
        let mut p = PhaseNs::zero();
        p.add(Phase::Sense, 50_000);
        p.add(Phase::QueueGc, 7_000);
        s.record(&p);
        let a = s.to_json();
        assert_eq!(a, s.to_json());
        for key in [
            "\"count\":1",
            "\"queue_gc\":",
            "\"sense\":",
            "\"total_ns\":57000",
        ] {
            assert!(a.contains(key), "missing {key} in {a}");
        }
        // Empty stats serialize all phases with zero totals.
        let e = PhaseStats::new().to_json();
        assert!(e.contains("\"count\":0"));
        assert!(e.contains("\"program\":"));
    }
}
