//! A wall-clock progress heartbeat for long experiment runs.
//!
//! Writes to stderr so it never contaminates machine-readable stdout.
//! Reporting is driven by a completed-event counter with a cheap modulo
//! check; the wall clock is only consulted every `check_every` events.

use std::time::Instant;

/// Progress reporter printing at most one line per `min_secs` of wall time.
#[derive(Debug)]
pub struct Progress {
    label: String,
    total: u64,
    done: u64,
    check_every: u64,
    min_secs: f64,
    started: Instant,
    last_report: Instant,
    enabled: bool,
}

impl Progress {
    /// A reporter for a run of `total` units (0 if unknown).
    pub fn new(label: &str, total: u64) -> Self {
        let now = Instant::now();
        Progress {
            label: label.to_string(),
            total,
            done: 0,
            check_every: 1024,
            min_secs: 1.0,
            started: now,
            last_report: now,
            enabled: true,
        }
    }

    /// A disabled reporter: `tick` is a counter bump, nothing prints.
    pub fn disabled() -> Self {
        let mut p = Progress::new("", 0);
        p.enabled = false;
        p
    }

    /// Consult the wall clock every `n` completed units instead of the
    /// default 1024 — for coarse-grained work (e.g. one tick per sweep
    /// cell) where units take seconds and the default would mute
    /// reporting entirely.
    pub fn with_check_every(mut self, n: u64) -> Self {
        self.check_every = n.max(1);
        self
    }

    /// Estimated seconds to completion from the observed rate (`None`
    /// when the total is unknown or nothing has completed yet).
    pub fn eta_secs(&self) -> Option<f64> {
        if self.total == 0 || self.done == 0 {
            return None;
        }
        let secs = self.started.elapsed().as_secs_f64();
        let rate = self.done as f64 / secs.max(1e-9);
        Some((self.total.saturating_sub(self.done)) as f64 / rate)
    }

    /// Count `n` completed units, printing a heartbeat when due.
    #[inline]
    pub fn tick(&mut self, n: u64) {
        self.done += n;
        if self.enabled && self.done % self.check_every < n {
            self.maybe_report();
        }
    }

    fn maybe_report(&mut self) {
        if self.last_report.elapsed().as_secs_f64() < self.min_secs {
            return;
        }
        self.last_report = Instant::now();
        let secs = self.started.elapsed().as_secs_f64();
        let rate = if secs > 0.0 {
            self.done as f64 / secs
        } else {
            0.0
        };
        if self.total > 0 {
            let eta = match self.eta_secs() {
                Some(eta) => format!(" eta {eta:.0}s"),
                None => String::new(),
            };
            eprintln!(
                "[{}] {}/{} ({:.1}%) {:.1}/s{}",
                self.label,
                self.done,
                self.total,
                self.done as f64 / self.total as f64 * 100.0,
                rate,
                eta
            );
        } else {
            eprintln!("[{}] {} done, {:.0}/s", self.label, self.done, rate);
        }
    }

    /// Print the final line (no-op when disabled).
    pub fn finish(&self) {
        if !self.enabled {
            return;
        }
        let secs = self.started.elapsed().as_secs_f64();
        eprintln!("[{}] finished: {} in {:.2}s", self.label, self.done, secs);
    }

    /// Units counted so far.
    pub fn done(&self) -> u64 {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_accumulate() {
        let mut p = Progress::disabled();
        p.tick(3);
        p.tick(2);
        assert_eq!(p.done(), 5);
        p.finish(); // no-op, must not print or panic
    }

    #[test]
    fn enabled_reporter_counts_without_panicking() {
        let mut p = Progress::new("test", 10_000);
        for _ in 0..20 {
            p.tick(600);
        }
        assert_eq!(p.done(), 12_000);
    }

    #[test]
    fn eta_needs_a_total_and_some_completions() {
        let mut unknown_total = Progress::new("t", 0);
        unknown_total.tick(5);
        assert_eq!(unknown_total.eta_secs(), None);

        let fresh = Progress::new("t", 10);
        assert_eq!(fresh.eta_secs(), None);

        let mut p = Progress::new("t", 10).with_check_every(1);
        p.tick(5);
        let eta = p.eta_secs().expect("eta once work completed");
        assert!(eta >= 0.0 && eta.is_finite());
    }

    #[test]
    fn finished_run_eta_is_zero() {
        let mut p = Progress::new("t", 4).with_check_every(1);
        p.tick(4);
        assert_eq!(p.eta_secs(), Some(0.0));
    }
}
