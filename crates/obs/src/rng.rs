//! Deterministic pseudo-random number generation (xoshiro256**).
//!
//! Replaces the external `rand` dependency across the workspace. The
//! generator is seeded through SplitMix64 (so small, similar seeds give
//! unrelated streams) and its output is fully specified: the same seed
//! produces the same sequence on every platform, which is what lets a
//! fixed-seed simulation emit a byte-identical trace.

/// A small, fast, deterministic PRNG (xoshiro256** 1.0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

ida_snap::snap_struct!(Rng64 { s });

impl Rng64 {
    /// Seed the generator from a single `u64` via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng64 {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 bits of precision).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.gen_f64() * (hi - lo)
    }

    /// A Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.gen_f64() < p
        }
    }

    /// A uniform integer in `[0, n)` via Lemire's multiply-shift reduction
    /// (unbiased for the sample counts used here).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.gen_below(hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        assert!((0..16).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn f64_is_uniform_in_unit_interval() {
        let mut r = Rng64::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_rate_tracks_probability() {
        let mut r = Rng64::seed_from_u64(9);
        let hits = (0..50_000).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / 50_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn gen_below_covers_the_range() {
        let mut r = Rng64::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_integer_range_rejected() {
        let _ = Rng64::seed_from_u64(0).gen_below(0);
    }

    #[test]
    fn snapshot_resumes_mid_stream() {
        use ida_snap::Snap;
        let mut r = Rng64::seed_from_u64(0xFEED);
        for _ in 0..17 {
            r.next_u64();
        }
        let mut restored = Rng64::from_snap_bytes(&r.to_snap_bytes()).unwrap();
        for _ in 0..100 {
            assert_eq!(restored.next_u64(), r.next_u64());
        }
    }
}
