//! Time-series gauges sampled on a simulated-time interval.
//!
//! A [`GaugeSet`] is configured with a sampling interval; the simulator
//! asks [`GaugeSet::due`] whether the interval has elapsed and, if so,
//! hands the current values of its instantaneous quantities (queue depth,
//! in-use blocks, dirty wordlines) to [`GaugeSet::sample`]. Disabled sets
//! cost one branch per check and store nothing.

use crate::json::{array, JsonObj};

/// One sample: simulated time (ns) and value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugePoint {
    /// Simulated time of the sample, ns.
    pub t: u64,
    /// Sampled value.
    pub v: u64,
}

/// A named series of samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSeries {
    /// Gauge name (e.g. `queue_depth`).
    pub name: String,
    /// Samples in time order.
    pub points: Vec<GaugePoint>,
}

impl GaugeSeries {
    /// Render as a JSON object `{"name":...,"points":[[t,v],...]}`.
    pub fn to_json(&self) -> String {
        let pts = array(self.points.iter().map(|p| format!("[{},{}]", p.t, p.v)));
        JsonObj::new()
            .str("name", &self.name)
            .raw("points", &pts)
            .finish()
    }
}

/// A set of gauges sharing one sampling clock.
#[derive(Debug, Clone, Default)]
pub struct GaugeSet {
    interval_ns: u64,
    next_due: u64,
    series: Vec<GaugeSeries>,
}

impl GaugeSet {
    /// A disabled set: `due` is always false, nothing is stored.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A set sampling every `interval_ns` of simulated time.
    ///
    /// # Panics
    ///
    /// Panics if `interval_ns` is 0.
    pub fn every(interval_ns: u64) -> Self {
        assert!(interval_ns > 0, "zero sampling interval");
        GaugeSet {
            interval_ns,
            next_due: 0,
            series: Vec::new(),
        }
    }

    /// Whether sampling is enabled at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.interval_ns > 0
    }

    /// Whether a sample is due at simulated time `now`.
    #[inline]
    pub fn due(&self, now: u64) -> bool {
        self.interval_ns > 0 && now >= self.next_due
    }

    /// Record one sample per `(name, value)` pair and advance the clock
    /// past `now`. Series are created on first use; names must be passed
    /// in a consistent order.
    pub fn sample(&mut self, now: u64, values: &[(&str, u64)]) {
        if self.interval_ns == 0 {
            return;
        }
        for (i, &(name, v)) in values.iter().enumerate() {
            if i >= self.series.len() {
                self.series.push(GaugeSeries {
                    name: name.to_string(),
                    points: Vec::new(),
                });
            }
            debug_assert_eq!(self.series[i].name, name, "gauge order changed");
            self.series[i].points.push(GaugePoint { t: now, v });
        }
        // Next tick strictly after `now`, aligned to the interval grid.
        self.next_due = (now / self.interval_ns + 1) * self.interval_ns;
    }

    /// Drain the collected series, leaving the set empty (and still
    /// armed) for the next run.
    pub fn take_series(&mut self) -> Vec<GaugeSeries> {
        std::mem::take(&mut self.series)
    }

    /// The collected series, by reference.
    pub fn series(&self) -> &[GaugeSeries] {
        &self.series
    }

    /// Render all series as a JSON array.
    pub fn to_json(&self) -> String {
        array(self.series.iter().map(|s| s.to_json()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_set_stores_nothing() {
        let mut g = GaugeSet::disabled();
        assert!(!g.enabled());
        assert!(!g.due(0));
        assert!(!g.due(u64::MAX));
        g.sample(100, &[("x", 1)]);
        assert!(g.series().is_empty());
    }

    #[test]
    fn samples_land_on_the_interval_grid() {
        let mut g = GaugeSet::every(1_000);
        assert!(g.due(0));
        g.sample(0, &[("depth", 3), ("blocks", 10)]);
        assert!(!g.due(999));
        assert!(g.due(1_000));
        g.sample(1_500, &[("depth", 5), ("blocks", 11)]);
        assert!(!g.due(1_999));
        assert!(g.due(2_000));

        let series = g.take_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].name, "depth");
        assert_eq!(
            series[0].points,
            vec![GaugePoint { t: 0, v: 3 }, GaugePoint { t: 1_500, v: 5 }]
        );
        assert_eq!(series[1].name, "blocks");
        assert_eq!(series[1].points.len(), 2);
    }

    #[test]
    fn json_rendering_is_stable() {
        let mut g = GaugeSet::every(10);
        g.sample(0, &[("q", 1)]);
        g.sample(10, &[("q", 2)]);
        assert_eq!(g.to_json(), r#"[{"name":"q","points":[[0,1],[10,2]]}]"#);
    }

    #[test]
    #[should_panic(expected = "zero sampling interval")]
    fn zero_interval_rejected() {
        let _ = GaugeSet::every(0);
    }
}
