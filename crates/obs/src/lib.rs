//! Observability for the IDA-coding simulation stack.
//!
//! Three pillars, all dependency-free so the offline tier-1 build stays
//! green:
//!
//! - **structured event tracing** ([`trace`]): typed [`trace::TraceEvent`]s
//!   carrying the simulated timestamp, flowing through a pluggable
//!   [`trace::TraceSink`] (a zero-cost null sink, a bounded ring buffer,
//!   and a JSONL file sink). A fixed-seed run produces a byte-identical
//!   trace.
//! - **streaming metrics** ([`hist`], [`gauge`]): a fixed-memory
//!   log-bucketed histogram for latency percentiles without keeping every
//!   sample, and time-series gauges sampled on a sim-time interval.
//! - **run reporting** ([`json`], [`progress`]): a minimal deterministic
//!   JSON writer used by `Report::to_json` and the JSONL sink, plus a
//!   wall-clock progress heartbeat for long experiment runs.
//!
//! The crate also hosts the workspace's deterministic RNG ([`rng`]):
//! reproducible seeded randomness is what makes byte-identical traces
//! possible, and keeping it here (instead of the external `rand` crate)
//! lets every other crate build offline.

pub mod fabric;
pub mod gauge;
pub mod hist;
pub mod json;
pub mod progress;
pub mod rng;
pub mod span;
pub mod trace;

pub use fabric::FabricEvent;
pub use gauge::{GaugePoint, GaugeSeries, GaugeSet};
pub use hist::LogHistogram;
pub use progress::Progress;
pub use rng::Rng64;
pub use span::{Phase, PhaseNs, PhaseStats, ALL_PHASES, PHASE_COUNT, QUEUE_CLASSES};
pub use trace::{
    FilterSink, HostClass, JsonlSink, NullSink, RingSink, SinkHandle, TraceEvent, TraceSink,
    VecSink,
};
