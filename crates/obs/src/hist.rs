//! A fixed-memory log-bucketed histogram for latency samples.
//!
//! Values are `u64` (nanoseconds in practice). Bucketing is HDR-style:
//! values below `2^SUB_BITS` get exact unit buckets; above that, each
//! power-of-two range is split into `2^SUB_BITS` linear sub-buckets, so the
//! relative bucket width is at most `2^-SUB_BITS` (≈ 3.1 % with the default
//! of 5 sub-bucket bits). Memory is a fixed 1 920 × 8 B counter array
//! regardless of sample count, and percentile queries walk the buckets —
//! O(buckets), not O(n log n) over a cloned sample vector.

/// Sub-bucket resolution: each power-of-two range has `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;
/// Index space: the linear region (one group) plus one group per exponent
/// from `SUB_BITS` to 63 inclusive.
const BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) * (SUB as usize);

/// Streaming histogram with logarithmic buckets and exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn index(v: u64) -> usize {
        if v < SUB {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS
        let group = msb - SUB_BITS;
        let sub = ((v >> group) - SUB) as usize;
        ((group as usize) + 1) * (SUB as usize) + sub
    }

    /// Lowest value mapping to bucket `i`.
    fn bucket_lo(i: usize) -> u64 {
        if i < SUB as usize {
            return i as u64;
        }
        let group = (i / SUB as usize - 1) as u32;
        let sub = (i % SUB as usize) as u64;
        (SUB + sub) << group
    }

    /// Width of the bucket containing `v` (1 in the exact region).
    pub fn width_of(v: u64) -> u64 {
        if v < SUB {
            1
        } else {
            1u64 << (63 - v.leading_zeros() - SUB_BITS)
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `p`-th percentile (`0 <= p <= 100`), accurate to one bucket
    /// width. `p = 0` returns the exact minimum and `p = 100` the exact
    /// maximum. Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` (including NaN).
    pub fn percentile(&self, p: f64) -> u64 {
        assert!(
            (0.0..=100.0).contains(&p),
            "percentile {p} outside [0, 100]"
        );
        if self.count == 0 {
            return 0;
        }
        if p <= 0.0 {
            return self.min;
        }
        if p >= 100.0 {
            return self.max;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            if cum >= rank {
                // Representative value: bucket upper edge, clamped to the
                // observed range. (`width - 1` first: the top bucket's edge
                // is `u64::MAX` and `lo + width` would overflow.)
                let lo = Self::bucket_lo(i);
                let hi = lo + (Self::width_of(lo) - 1);
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower_edge, width, count)` triples, for
    /// serialization.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let lo = Self::bucket_lo(i);
                (lo, Self::width_of(lo), c)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    /// Exact percentile over a sample vector, the reference the histogram
    /// is checked against.
    fn exact_percentile(samples: &mut [u64], p: f64) -> u64 {
        samples.sort_unstable();
        let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
        samples[rank.saturating_sub(1).min(samples.len() - 1)]
    }

    fn check_within_one_bucket(samples: Vec<u64>, label: &str) {
        let mut h = LogHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples;
        for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0] {
            let exact = exact_percentile(&mut sorted, p);
            let approx = h.percentile(p);
            let width = LogHistogram::width_of(exact);
            assert!(
                approx.abs_diff(exact) <= width,
                "{label} p{p}: approx {approx} vs exact {exact} (bucket width {width})"
            );
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..SUB {
            h.record(v);
        }
        for v in 0..SUB {
            let p = (v + 1) as f64 / SUB as f64 * 100.0;
            assert_eq!(h.percentile(p), v);
        }
    }

    #[test]
    fn uniform_distribution_percentiles() {
        let mut rng = Rng64::seed_from_u64(11);
        let samples: Vec<u64> = (0..50_000)
            .map(|_| rng.gen_range_u64(1_000, 1_000_000))
            .collect();
        check_within_one_bucket(samples, "uniform");
    }

    #[test]
    fn bimodal_sense_latency_percentiles() {
        // 50 µs / 150 µs shaped: the two sense-latency modes of TLC reads.
        let mut rng = Rng64::seed_from_u64(12);
        let samples: Vec<u64> = (0..50_000)
            .map(|_| {
                let base = if rng.gen_bool(0.6) { 50_000 } else { 150_000 };
                base + rng.gen_range_u64(0, 2_000)
            })
            .collect();
        check_within_one_bucket(samples, "bimodal");
    }

    #[test]
    fn heavy_tail_percentiles() {
        // Pareto-like: u^-2 scaled, exercising buckets across 5 decades.
        let mut rng = Rng64::seed_from_u64(13);
        let samples: Vec<u64> = (0..50_000)
            .map(|_| {
                let u = rng.gen_range_f64(0.01, 1.0);
                (50_000.0 / (u * u)) as u64
            })
            .collect();
        check_within_one_bucket(samples, "heavy-tail");
    }

    #[test]
    fn mean_min_max_are_exact() {
        let mut h = LogHistogram::new();
        for v in [100u64, 200, 300, 400] {
            h.record(v);
        }
        assert_eq!(h.mean(), 250.0);
        assert_eq!(h.min(), 100);
        assert_eq!(h.max(), 400);
        assert_eq!(h.percentile(100.0), 400);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LogHistogram::new();
        for p in [0.0, 0.1, 50.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), 0, "p{p} of empty");
        }
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.is_empty());
        assert!(h.mean().is_finite(), "empty mean must not be NaN");
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = LogHistogram::new();
        h.record(1_234_567);
        for p in [0.0, 0.1, 50.0, 99.9, 100.0] {
            // Clamping to the observed range makes a lone sample exact.
            assert_eq!(h.percentile(p), 1_234_567, "p{p} of single sample");
        }
        assert_eq!(h.mean(), 1_234_567.0);
    }

    #[test]
    fn zero_percentile_is_the_minimum() {
        let mut h = LogHistogram::new();
        for v in [500u64, 9_000, 70_000] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 500);
        assert_eq!(h.percentile(100.0), 70_000);
    }

    #[test]
    fn merge_equals_recording_both() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        let mut rng = Rng64::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.gen_range_u64(1, 1 << 40);
            if rng.gen_bool(0.5) {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn index_round_trips_bucket_bounds() {
        for i in 0..BUCKETS {
            let lo = LogHistogram::bucket_lo(i);
            assert_eq!(LogHistogram::index(lo), i, "lo of bucket {i}");
            let hi = lo + (LogHistogram::width_of(lo) - 1);
            assert_eq!(LogHistogram::index(hi), i, "hi of bucket {i}");
        }
        assert_eq!(LogHistogram::index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    #[should_panic(expected = "outside [0, 100]")]
    fn out_of_range_percentile_rejected() {
        let _ = LogHistogram::new().percentile(100.1);
    }

    #[test]
    #[should_panic(expected = "outside [0, 100]")]
    fn nan_percentile_rejected() {
        let _ = LogHistogram::new().percentile(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "outside [0, 100]")]
    fn negative_percentile_rejected() {
        let _ = LogHistogram::new().percentile(-0.5);
    }
}
