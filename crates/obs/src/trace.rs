//! Structured event tracing.
//!
//! Every layer of the simulation stack emits typed [`TraceEvent`]s carrying
//! the simulated timestamp. Events flow through a pluggable [`TraceSink`]:
//! the zero-cost [`NullSink`] (the default — emission sites skip event
//! construction entirely when the sink is off), a bounded [`RingSink`]
//! keeping the last N events in memory, a [`JsonlSink`] appending one JSON
//! object per line to a file, and a [`VecSink`] for tests.
//!
//! Determinism contract: simulation inputs (config + seeds) fully determine
//! the event sequence, and [`TraceEvent::to_json_line`] renders fields in a
//! fixed order with integer-only values — so a fixed-seed run produces a
//! byte-identical JSONL trace.

use crate::json::JsonObj;
use crate::span::PhaseNs;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::rc::Rc;

/// Simulated time in nanoseconds (mirrors `ida_flash::timing::SimTime`
/// without a dependency edge).
pub type SimNs = u64;

/// Host operation class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostClass {
    /// Host read.
    Read,
    /// Host write.
    Write,
}

impl HostClass {
    /// Stable lowercase label used in the JSONL encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            HostClass::Read => "read",
            HostClass::Write => "write",
        }
    }
}

/// One simulation event. The `t` field is always the simulated timestamp
/// (ns) at which the event occurred; the stream a run emits is
/// monotonically non-decreasing in `t`.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A labeled run began (written by the harness, not the simulator).
    RunStart {
        /// Simulated time of the run start.
        t: SimNs,
        /// Harness-chosen label (workload × system).
        label: String,
    },
    /// A host request entered the device.
    HostArrival {
        /// Arrival time.
        t: SimNs,
        /// Request index within the run.
        req: u64,
        /// Read or write.
        class: HostClass,
        /// First logical page.
        lpn: u64,
        /// Extent length in pages.
        pages: u32,
    },
    /// A host request completed (its last flash op finished).
    HostComplete {
        /// Completion time.
        t: SimNs,
        /// Request index within the run.
        req: u64,
        /// Read or write.
        class: HostClass,
        /// Response time (completion − arrival), ns.
        latency_ns: u64,
    },
    /// A host read page was translated and classified by the FTL.
    ReadIssued {
        /// Issue time.
        t: SimNs,
        /// Logical page.
        lpn: u64,
        /// Physical page.
        page: u64,
        /// Page type within its wordline (`lsb`/`csb`/`msb`/...).
        page_type: &'static str,
        /// Sensing operations under the wordline's current coding.
        senses: u32,
        /// Figure 4 validity scenario label.
        scenario: &'static str,
    },
    /// A page sense started on a die.
    FlashSense {
        /// Start time.
        t: SimNs,
        /// Executing die.
        die: u32,
        /// Transfer channel.
        channel: u32,
        /// Physical block.
        block: u64,
        /// Physical page.
        page: u64,
        /// Sensing operations charged.
        senses: u32,
        /// Extra read-retry attempts charged.
        retries: u32,
        /// Whether this is background (GC/refresh) traffic.
        background: bool,
        /// When the channel transfer window opened.
        bus_start: SimNs,
        /// When the array+transfer window closed (die and channel freed).
        bus_end: SimNs,
        /// End-to-end completion (after ECC decode and fault backoff).
        end: SimNs,
    },
    /// A page program started on a die.
    FlashProgram {
        /// Start time.
        t: SimNs,
        /// Executing die.
        die: u32,
        /// Transfer channel.
        channel: u32,
        /// Physical block.
        block: u64,
        /// Physical page.
        page: u64,
        /// Whether this is background (GC/refresh) traffic.
        background: bool,
        /// When the channel transfer window opened.
        bus_start: SimNs,
        /// When the channel transfer window closed.
        bus_end: SimNs,
        /// End of ISPP programming (die program track freed).
        end: SimNs,
    },
    /// A block erase started on a die.
    FlashErase {
        /// Start time.
        t: SimNs,
        /// Executing die.
        die: u32,
        /// Erased block.
        block: u64,
        /// Erase completion (die program track freed).
        end: SimNs,
    },
    /// An IDA voltage adjustment of one wordline started on a die.
    VoltageAdjust {
        /// Start time.
        t: SimNs,
        /// Executing die.
        die: u32,
        /// Adjusted block.
        block: u64,
        /// Adjustment completion (die program track freed).
        end: SimNs,
    },
    /// A host read needed extra sensing attempts (read retry), from the
    /// RBER-driven ladder and/or injected transient faults.
    ReadRetry {
        /// Start time of the retried read.
        t: SimNs,
        /// Executing die.
        die: u32,
        /// The host request the retried read served.
        req: u64,
        /// Extra attempts beyond the first.
        extra: u32,
        /// Array cost of one attempt, ns (`extra × attempt_ns` is the
        /// span's `retry` phase charge for this read).
        attempt_ns: SimNs,
    },
    /// A read exhausted its retry ladder; the data was recovered by the
    /// final heroic read and relocated to a fresh block (never silent
    /// corruption).
    EccUncorrectable {
        /// Exhaustion time.
        t: SimNs,
        /// Logical page being read.
        lpn: u64,
        /// The at-risk physical page (retired until its block's erase).
        page: u64,
        /// Block holding the page.
        block: u64,
        /// Ladder attempts charged before exhaustion.
        attempts: u32,
    },
    /// A background patrol-scrub pass completed.
    ScrubPass {
        /// Pass time.
        t: SimNs,
        /// Blocks examined this pass.
        scanned: u32,
        /// At-risk pages relocated (disturb/retention thresholds).
        relocated: u32,
        /// Pages migrated by the wear-leveler this pass.
        wear_moves: u32,
    },
    /// The wear-leveler migrated cold data off the least-worn block.
    WearLevel {
        /// Migration time.
        t: SimNs,
        /// The cold block emptied and erased.
        block: u64,
        /// Valid pages migrated.
        moves: u32,
        /// Device wear spread (max − min erase count) that triggered it.
        spread: u32,
    },
    /// Garbage collection reclaimed one victim block.
    GcRun {
        /// GC time.
        t: SimNs,
        /// Victim block.
        block: u64,
        /// Valid pages copied out.
        copies: u32,
    },
    /// A block went through data refresh.
    RefreshBlock {
        /// Refresh time.
        t: SimNs,
        /// Refreshed block.
        block: u64,
        /// Pages migrated to new blocks.
        moves: u32,
        /// Wordlines voltage-adjusted (0 under baseline refresh).
        adjusted_wordlines: u32,
        /// Whether the IDA flow ran (vs. baseline move-all).
        ida: bool,
    },
    /// A block was converted to IDA coding.
    IdaConversion {
        /// Conversion time.
        t: SimNs,
        /// Converted block.
        block: u64,
        /// Wordlines now carrying a merged coding.
        wordlines: u32,
    },
    /// An injected program failure: the page is marked bad in OOB.
    FaultProgramFail {
        /// Failure time.
        t: SimNs,
        /// Block holding the failed page.
        block: u64,
        /// The failed physical page.
        page: u64,
    },
    /// Recovery from program failure: the write was re-issued to a fresh
    /// page after one or more failed attempts.
    WriteRedirect {
        /// Redirect time.
        t: SimNs,
        /// Logical page being written.
        lpn: u64,
        /// The page that finally took the data.
        page: u64,
        /// Failed attempts absorbed before success.
        attempts: u32,
    },
    /// An injected erase failure: the block can no longer be reclaimed.
    FaultEraseFail {
        /// Failure time.
        t: SimNs,
        /// The block whose erase failed.
        block: u64,
    },
    /// A block was retired to the grown-bad list (erase failure or too
    /// many program failures), optionally replaced from the spare pool.
    BlockRetired {
        /// Retirement time.
        t: SimNs,
        /// The retired block.
        block: u64,
        /// Why it was retired (`erase_failure` / `program_failures`).
        reason: &'static str,
        /// Whether a spare block was promoted to replace it.
        spare_used: bool,
    },
    /// An injected transient read fault on a host read.
    FaultReadTransient {
        /// Fault time.
        t: SimNs,
        /// Logical page being read.
        lpn: u64,
        /// Retry attempts the fault forced.
        attempts: u32,
    },
    /// Recovery from a transient read fault via bounded retry-with-backoff.
    ReadRecovered {
        /// Recovery time.
        t: SimNs,
        /// Logical page recovered.
        lpn: u64,
        /// Retry attempts it took.
        attempts: u32,
        /// Total controller backoff charged, ns.
        backoff_ns: u64,
    },
    /// An injected power loss: the persistent operation at `op_index` was
    /// lost and the device must run recovery.
    FaultPowerLoss {
        /// Crash time.
        t: SimNs,
        /// Persistent-operation index at which power failed.
        op_index: u64,
    },
    /// Post-crash recovery scan finished: volatile state was rebuilt from
    /// simulated OOB metadata.
    RecoveryScan {
        /// Scan completion time.
        t: SimNs,
        /// L2P mappings rebuilt from OOB program records.
        rebuilt_mappings: u64,
        /// Refresh-interrupted wordlines rolled forward to fully merged.
        rolled_forward: u32,
        /// Pages conservatively relocated off rolled-forward wordlines.
        scrubbed: u32,
        /// Grown-bad blocks restored from OOB.
        bad_blocks: u32,
    },
    /// The device degraded to read-only mode (spares exhausted or
    /// relocation space gone); host writes are rejected from here on.
    ReadOnlyMode {
        /// Degradation time.
        t: SimNs,
        /// Why writes were disabled.
        reason: &'static str,
    },
    /// A host write was rejected because the device is read-only.
    WriteRejected {
        /// Rejection time.
        t: SimNs,
        /// The rejected logical page.
        lpn: u64,
    },
    /// A completed host request's latency attribution waterfall: how its
    /// response time partitions into phases (conservation invariant: the
    /// phase values sum exactly to `total_ns`). Emitted only when spans
    /// are enabled on the simulator.
    Span {
        /// Completion time (matches the request's `host_complete`).
        t: SimNs,
        /// Request index within the run.
        req: u64,
        /// Read or write.
        class: HostClass,
        /// Response time (completion − arrival), ns.
        total_ns: u64,
        /// Per-phase attribution; zero phases are omitted from the JSONL
        /// encoding.
        phases: PhaseNs,
    },
    /// The host frontend shed (dropped) an arriving request at admission:
    /// its tenant's bounded queue was full. Emitted at the frontend's
    /// dispatch instant, which may be later than the intended arrival
    /// carried in `at` (the stream stays monotone in `t`).
    HostShed {
        /// Emission time (monotone).
        t: SimNs,
        /// Shedding tenant index.
        tenant: u64,
        /// The request's intended arrival time.
        at: SimNs,
        /// First logical page of the dropped request.
        lpn: u64,
        /// Extent length in pages.
        pages: u32,
    },
    /// A tenant's end-of-run SLO verdict: observed read tail latency
    /// against its target.
    SloStatus {
        /// Emission time (end of the measured run).
        t: SimNs,
        /// Tenant index.
        tenant: u64,
        /// Observed read p99 latency, ns.
        p99_ns: u64,
        /// The tenant's p99 target, ns.
        target_ns: u64,
        /// Whether the target was met (`p99_ns <= target_ns`).
        met: bool,
    },
}

impl TraceEvent {
    /// The simulated timestamp of the event.
    pub fn timestamp(&self) -> SimNs {
        match *self {
            TraceEvent::RunStart { t, .. }
            | TraceEvent::HostArrival { t, .. }
            | TraceEvent::HostComplete { t, .. }
            | TraceEvent::ReadIssued { t, .. }
            | TraceEvent::FlashSense { t, .. }
            | TraceEvent::FlashProgram { t, .. }
            | TraceEvent::FlashErase { t, .. }
            | TraceEvent::VoltageAdjust { t, .. }
            | TraceEvent::ReadRetry { t, .. }
            | TraceEvent::EccUncorrectable { t, .. }
            | TraceEvent::ScrubPass { t, .. }
            | TraceEvent::WearLevel { t, .. }
            | TraceEvent::GcRun { t, .. }
            | TraceEvent::RefreshBlock { t, .. }
            | TraceEvent::IdaConversion { t, .. }
            | TraceEvent::FaultProgramFail { t, .. }
            | TraceEvent::WriteRedirect { t, .. }
            | TraceEvent::FaultEraseFail { t, .. }
            | TraceEvent::BlockRetired { t, .. }
            | TraceEvent::FaultReadTransient { t, .. }
            | TraceEvent::ReadRecovered { t, .. }
            | TraceEvent::FaultPowerLoss { t, .. }
            | TraceEvent::RecoveryScan { t, .. }
            | TraceEvent::ReadOnlyMode { t, .. }
            | TraceEvent::WriteRejected { t, .. }
            | TraceEvent::Span { t, .. }
            | TraceEvent::HostShed { t, .. }
            | TraceEvent::SloStatus { t, .. } => t,
        }
    }

    /// Stable event-kind label (the `ev` field of the JSONL encoding).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RunStart { .. } => "run_start",
            TraceEvent::HostArrival { .. } => "host_arrival",
            TraceEvent::HostComplete { .. } => "host_complete",
            TraceEvent::ReadIssued { .. } => "read_issued",
            TraceEvent::FlashSense { .. } => "sense",
            TraceEvent::FlashProgram { .. } => "program",
            TraceEvent::FlashErase { .. } => "erase",
            TraceEvent::VoltageAdjust { .. } => "voltage_adjust",
            TraceEvent::ReadRetry { .. } => "read_retry",
            TraceEvent::EccUncorrectable { .. } => "ecc_uncorrectable",
            TraceEvent::ScrubPass { .. } => "scrub_pass",
            TraceEvent::WearLevel { .. } => "wear_level",
            TraceEvent::GcRun { .. } => "gc_run",
            TraceEvent::RefreshBlock { .. } => "refresh_block",
            TraceEvent::IdaConversion { .. } => "ida_conversion",
            TraceEvent::FaultProgramFail { .. } => "fault_program_fail",
            TraceEvent::WriteRedirect { .. } => "write_redirect",
            TraceEvent::FaultEraseFail { .. } => "fault_erase_fail",
            TraceEvent::BlockRetired { .. } => "block_retired",
            TraceEvent::FaultReadTransient { .. } => "fault_read_transient",
            TraceEvent::ReadRecovered { .. } => "read_recovered",
            TraceEvent::FaultPowerLoss { .. } => "fault_power_loss",
            TraceEvent::RecoveryScan { .. } => "recovery_scan",
            TraceEvent::ReadOnlyMode { .. } => "read_only_mode",
            TraceEvent::WriteRejected { .. } => "write_rejected",
            TraceEvent::Span { .. } => "span",
            TraceEvent::HostShed { .. } => "host_shed",
            TraceEvent::SloStatus { .. } => "slo_status",
        }
    }

    /// The event's filter class (see [`TRACE_CLASSES`]): `host` for host
    /// traffic and run markers, `ftl` for flash-level operations, `gc` /
    /// `refresh` for background maintenance, `fault` for injected faults
    /// and recovery, `span` for latency attribution waterfalls.
    pub fn class(&self) -> &'static str {
        match self {
            TraceEvent::RunStart { .. }
            | TraceEvent::HostArrival { .. }
            | TraceEvent::HostComplete { .. }
            | TraceEvent::ReadIssued { .. }
            | TraceEvent::HostShed { .. }
            | TraceEvent::SloStatus { .. } => "host",
            TraceEvent::FlashSense { .. }
            | TraceEvent::FlashProgram { .. }
            | TraceEvent::FlashErase { .. }
            | TraceEvent::VoltageAdjust { .. }
            | TraceEvent::ReadRetry { .. } => "ftl",
            TraceEvent::GcRun { .. } => "gc",
            TraceEvent::RefreshBlock { .. }
            | TraceEvent::IdaConversion { .. }
            | TraceEvent::ScrubPass { .. }
            | TraceEvent::WearLevel { .. } => "refresh",
            TraceEvent::EccUncorrectable { .. }
            | TraceEvent::FaultProgramFail { .. }
            | TraceEvent::WriteRedirect { .. }
            | TraceEvent::FaultEraseFail { .. }
            | TraceEvent::BlockRetired { .. }
            | TraceEvent::FaultReadTransient { .. }
            | TraceEvent::ReadRecovered { .. }
            | TraceEvent::FaultPowerLoss { .. }
            | TraceEvent::RecoveryScan { .. }
            | TraceEvent::ReadOnlyMode { .. }
            | TraceEvent::WriteRejected { .. } => "fault",
            TraceEvent::Span { .. } => "span",
        }
    }

    /// Render as one JSONL line (no trailing newline). Field order is
    /// fixed; all values are integers or short strings, so the encoding is
    /// byte-deterministic.
    pub fn to_json_line(&self) -> String {
        let o = JsonObj::new()
            .str("ev", self.kind())
            .u64("t", self.timestamp());
        match self {
            TraceEvent::RunStart { label, .. } => o.str("label", label),
            TraceEvent::HostArrival {
                req,
                class,
                lpn,
                pages,
                ..
            } => o
                .u64("req", *req)
                .str("class", class.as_str())
                .u64("lpn", *lpn)
                .u64("pages", *pages as u64),
            TraceEvent::HostComplete {
                req,
                class,
                latency_ns,
                ..
            } => o
                .u64("req", *req)
                .str("class", class.as_str())
                .u64("latency_ns", *latency_ns),
            TraceEvent::ReadIssued {
                lpn,
                page,
                page_type,
                senses,
                scenario,
                ..
            } => o
                .u64("lpn", *lpn)
                .u64("page", *page)
                .str("page_type", page_type)
                .u64("senses", *senses as u64)
                .str("scenario", scenario),
            TraceEvent::FlashSense {
                die,
                channel,
                block,
                page,
                senses,
                retries,
                background,
                bus_start,
                bus_end,
                end,
                ..
            } => o
                .u64("die", *die as u64)
                .u64("channel", *channel as u64)
                .u64("block", *block)
                .u64("page", *page)
                .u64("senses", *senses as u64)
                .u64("retries", *retries as u64)
                .bool("background", *background)
                .u64("bus_start", *bus_start)
                .u64("bus_end", *bus_end)
                .u64("end", *end),
            TraceEvent::FlashProgram {
                die,
                channel,
                block,
                page,
                background,
                bus_start,
                bus_end,
                end,
                ..
            } => o
                .u64("die", *die as u64)
                .u64("channel", *channel as u64)
                .u64("block", *block)
                .u64("page", *page)
                .bool("background", *background)
                .u64("bus_start", *bus_start)
                .u64("bus_end", *bus_end)
                .u64("end", *end),
            TraceEvent::FlashErase {
                die, block, end, ..
            } => o
                .u64("die", *die as u64)
                .u64("block", *block)
                .u64("end", *end),
            TraceEvent::VoltageAdjust {
                die, block, end, ..
            } => o
                .u64("die", *die as u64)
                .u64("block", *block)
                .u64("end", *end),
            TraceEvent::ReadRetry {
                die,
                req,
                extra,
                attempt_ns,
                ..
            } => o
                .u64("die", *die as u64)
                .u64("req", *req)
                .u64("extra", *extra as u64)
                .u64("attempt_ns", *attempt_ns),
            TraceEvent::EccUncorrectable {
                lpn,
                page,
                block,
                attempts,
                ..
            } => o
                .u64("lpn", *lpn)
                .u64("page", *page)
                .u64("block", *block)
                .u64("attempts", *attempts as u64),
            TraceEvent::ScrubPass {
                scanned,
                relocated,
                wear_moves,
                ..
            } => o
                .u64("scanned", *scanned as u64)
                .u64("relocated", *relocated as u64)
                .u64("wear_moves", *wear_moves as u64),
            TraceEvent::WearLevel {
                block,
                moves,
                spread,
                ..
            } => o
                .u64("block", *block)
                .u64("moves", *moves as u64)
                .u64("spread", *spread as u64),
            TraceEvent::GcRun { block, copies, .. } => {
                o.u64("block", *block).u64("copies", *copies as u64)
            }
            TraceEvent::RefreshBlock {
                block,
                moves,
                adjusted_wordlines,
                ida,
                ..
            } => o
                .u64("block", *block)
                .u64("moves", *moves as u64)
                .u64("adjusted_wordlines", *adjusted_wordlines as u64)
                .bool("ida", *ida),
            TraceEvent::IdaConversion {
                block, wordlines, ..
            } => o.u64("block", *block).u64("wordlines", *wordlines as u64),
            TraceEvent::FaultProgramFail { block, page, .. } => {
                o.u64("block", *block).u64("page", *page)
            }
            TraceEvent::WriteRedirect {
                lpn,
                page,
                attempts,
                ..
            } => o
                .u64("lpn", *lpn)
                .u64("page", *page)
                .u64("attempts", *attempts as u64),
            TraceEvent::FaultEraseFail { block, .. } => o.u64("block", *block),
            TraceEvent::BlockRetired {
                block,
                reason,
                spare_used,
                ..
            } => o
                .u64("block", *block)
                .str("reason", reason)
                .bool("spare_used", *spare_used),
            TraceEvent::FaultReadTransient { lpn, attempts, .. } => {
                o.u64("lpn", *lpn).u64("attempts", *attempts as u64)
            }
            TraceEvent::ReadRecovered {
                lpn,
                attempts,
                backoff_ns,
                ..
            } => o
                .u64("lpn", *lpn)
                .u64("attempts", *attempts as u64)
                .u64("backoff_ns", *backoff_ns),
            TraceEvent::FaultPowerLoss { op_index, .. } => o.u64("op_index", *op_index),
            TraceEvent::RecoveryScan {
                rebuilt_mappings,
                rolled_forward,
                scrubbed,
                bad_blocks,
                ..
            } => o
                .u64("rebuilt_mappings", *rebuilt_mappings)
                .u64("rolled_forward", *rolled_forward as u64)
                .u64("scrubbed", *scrubbed as u64)
                .u64("bad_blocks", *bad_blocks as u64),
            TraceEvent::ReadOnlyMode { reason, .. } => o.str("reason", reason),
            TraceEvent::WriteRejected { lpn, .. } => o.u64("lpn", *lpn),
            TraceEvent::Span {
                req,
                class,
                total_ns,
                phases,
                ..
            } => {
                let mut o = o
                    .u64("req", *req)
                    .str("class", class.as_str())
                    .u64("total_ns", *total_ns);
                for (phase, ns) in phases.iter() {
                    if ns > 0 {
                        o = o.u64(phase.label(), ns);
                    }
                }
                o
            }
            TraceEvent::HostShed {
                tenant,
                at,
                lpn,
                pages,
                ..
            } => o
                .u64("tenant", *tenant)
                .u64("at", *at)
                .u64("lpn", *lpn)
                .u64("pages", *pages as u64),
            TraceEvent::SloStatus {
                tenant,
                p99_ns,
                target_ns,
                met,
                ..
            } => o
                .u64("tenant", *tenant)
                .u64("p99_ns", *p99_ns)
                .u64("target_ns", *target_ns)
                .bool("met", *met),
        }
        .finish()
    }
}

/// A consumer of trace events.
pub trait TraceSink: std::fmt::Debug {
    /// Whether events should be constructed and delivered at all.
    /// Emission sites skip event construction when this is `false`,
    /// making the disabled path effectively free.
    fn enabled(&self) -> bool {
        true
    }

    /// Consume one event.
    fn record(&mut self, ev: &TraceEvent);

    /// Flush any buffered output.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from file-backed sinks.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The zero-cost default sink: reports itself disabled, drops everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _ev: &TraceEvent) {}
}

/// A bounded in-memory sink keeping the most recent `capacity` events —
/// the "flight recorder" for post-mortem inspection without unbounded
/// memory.
#[derive(Debug, Clone, Default)]
pub struct RingSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    /// Events dropped because the ring was full.
    dropped: u64,
}

impl RingSink {
    /// A ring keeping the last `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity,
            events: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// How many events were evicted to honor the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: &TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev.clone());
    }
}

/// An unbounded in-memory sink retaining every event — for tests.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// All recorded events, in emission order.
    pub events: Vec<TraceEvent>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Render every event as JSONL (one line per event, trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json_line());
            out.push('\n');
        }
        out
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, ev: &TraceEvent) {
        self.events.push(ev.clone());
    }
}

/// The event classes a [`FilterSink`] can select (see
/// [`TraceEvent::class`]).
pub const TRACE_CLASSES: [&str; 6] = ["host", "ftl", "gc", "refresh", "fault", "span"];

/// Parse a `--trace-filter` specification: a comma-separated list of
/// class names from [`TRACE_CLASSES`]. Returns the allow mask, indexed
/// like `TRACE_CLASSES`.
///
/// # Errors
///
/// Returns a message naming the offending class when the spec contains
/// an unknown or empty class name.
pub fn parse_trace_filter(spec: &str) -> Result<[bool; TRACE_CLASSES.len()], String> {
    let mut allow = [false; TRACE_CLASSES.len()];
    let mut any = false;
    for raw in spec.split(',') {
        let name = raw.trim();
        let Some(i) = TRACE_CLASSES.iter().position(|c| *c == name) else {
            return Err(format!(
                "unknown trace class `{name}` (known classes: {})",
                TRACE_CLASSES.join(", ")
            ));
        };
        allow[i] = true;
        any = true;
    }
    if !any {
        return Err("empty trace filter".into());
    }
    Ok(allow)
}

/// A sink decorator that forwards only events whose
/// [`TraceEvent::class`] is in the allow list. `run_start` always passes
/// so a filtered trace still identifies its run.
#[derive(Debug)]
pub struct FilterSink<S> {
    allow: [bool; TRACE_CLASSES.len()],
    inner: S,
}

impl<S: TraceSink> FilterSink<S> {
    /// Wrap `inner`, keeping only the classes named in `spec`
    /// (comma-separated, e.g. `"host,span"`).
    ///
    /// # Errors
    ///
    /// Propagates [`parse_trace_filter`] errors for unknown classes.
    pub fn new(inner: S, spec: &str) -> Result<Self, String> {
        Ok(FilterSink {
            allow: parse_trace_filter(spec)?,
            inner,
        })
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: TraceSink> TraceSink for FilterSink<S> {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn record(&mut self, ev: &TraceEvent) {
        let passes = matches!(ev, TraceEvent::RunStart { .. })
            || TRACE_CLASSES
                .iter()
                .position(|c| *c == ev.class())
                .is_some_and(|i| self.allow[i]);
        if passes {
            self.inner.record(ev);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A file sink writing one JSON object per line (JSONL).
#[derive(Debug)]
pub struct JsonlSink {
    out: BufWriter<File>,
    lines: u64,
}

impl JsonlSink {
    /// Create (truncate) `path` and return a sink writing to it.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(JsonlSink {
            out: BufWriter::new(File::create(path)?),
            lines: 0,
        })
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, ev: &TraceEvent) {
        // I/O errors on a best-effort trace must not abort the simulation;
        // they surface on the explicit flush instead.
        let _ = writeln!(self.out, "{}", ev.to_json_line());
        self.lines += 1;
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// A cloneable handle to a shared sink, so the simulator and the FTL it
/// owns can write interleaved events to one stream. The enabled flag is
/// cached at construction: `on()` is a branch on a local bool, and
/// emission sites construct events only behind it.
#[derive(Debug, Clone)]
pub struct SinkHandle {
    on: bool,
    inner: Rc<RefCell<dyn TraceSink>>,
}

impl Default for SinkHandle {
    fn default() -> Self {
        Self::null()
    }
}

impl SinkHandle {
    /// The disabled handle (wraps [`NullSink`]).
    pub fn null() -> Self {
        SinkHandle {
            on: false,
            inner: Rc::new(RefCell::new(NullSink)),
        }
    }

    /// Wrap an owned sink.
    pub fn new<S: TraceSink + 'static>(sink: S) -> Self {
        let on = sink.enabled();
        SinkHandle {
            on,
            inner: Rc::new(RefCell::new(sink)),
        }
    }

    /// Wrap an externally shared sink (the caller keeps its typed `Rc` to
    /// inspect the sink afterwards — how tests read back a `VecSink`).
    pub fn from_shared(sink: Rc<RefCell<dyn TraceSink>>) -> Self {
        let on = sink.borrow().enabled();
        SinkHandle { on, inner: sink }
    }

    /// Whether emission sites should construct events.
    #[inline]
    pub fn on(&self) -> bool {
        self.on
    }

    /// Deliver an event built by `f` if the sink is enabled. The closure
    /// is never called on the disabled path.
    #[inline]
    pub fn emit_with<F: FnOnce() -> TraceEvent>(&self, f: F) {
        if self.on {
            self.inner.borrow_mut().record(&f());
        }
    }

    /// Flush the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from file-backed sinks.
    pub fn flush(&self) -> io::Result<()> {
        self.inner.borrow_mut().flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::span::Phase;

    fn ev(t: SimNs) -> TraceEvent {
        TraceEvent::FlashErase {
            t,
            die: 1,
            block: 9,
            end: t + 3_000,
        }
    }

    #[test]
    fn jsonl_encoding_is_stable() {
        let e = TraceEvent::HostArrival {
            t: 5,
            req: 2,
            class: HostClass::Read,
            lpn: 77,
            pages: 4,
        };
        assert_eq!(
            e.to_json_line(),
            r#"{"ev":"host_arrival","t":5,"req":2,"class":"read","lpn":77,"pages":4}"#
        );
        assert_eq!(e.timestamp(), 5);
        assert_eq!(e.kind(), "host_arrival");
    }

    #[test]
    fn span_encoding_omits_zero_phases() {
        let mut phases = PhaseNs::zero();
        phases.add(Phase::QueueHost, 98_000);
        phases.add(Phase::Sense, 50_000);
        phases.add(Phase::Transfer, 48_000);
        phases.add(Phase::Ecc, 20_000);
        let e = TraceEvent::Span {
            t: 216_000,
            req: 3,
            class: HostClass::Read,
            total_ns: 216_000,
            phases,
        };
        assert_eq!(
            e.to_json_line(),
            "{\"ev\":\"span\",\"t\":216000,\"req\":3,\"class\":\"read\",\"total_ns\":216000,\
             \"queue_host\":98000,\"sense\":50000,\"transfer\":48000,\"ecc\":20000}"
        );
        assert_eq!(e.kind(), "span");
        assert_eq!(e.class(), "span");
    }

    #[test]
    fn host_frontend_events_encode_stably() {
        let shed = TraceEvent::HostShed {
            t: 9_000,
            tenant: 1,
            at: 8_500,
            lpn: 42,
            pages: 2,
        };
        assert_eq!(
            shed.to_json_line(),
            r#"{"ev":"host_shed","t":9000,"tenant":1,"at":8500,"lpn":42,"pages":2}"#
        );
        assert_eq!(shed.kind(), "host_shed");
        assert_eq!(shed.class(), "host");
        let slo = TraceEvent::SloStatus {
            t: 50_000,
            tenant: 0,
            p99_ns: 1_900_000,
            target_ns: 2_000_000,
            met: true,
        };
        assert_eq!(
            slo.to_json_line(),
            "{\"ev\":\"slo_status\",\"t\":50000,\"tenant\":0,\"p99_ns\":1900000,\
             \"target_ns\":2000000,\"met\":true}"
        );
        assert_eq!(slo.kind(), "slo_status");
        assert_eq!(slo.class(), "host");
    }

    #[test]
    fn aging_events_encode_stably() {
        let retry = TraceEvent::ReadRetry {
            t: 7,
            die: 2,
            req: 5,
            extra: 3,
            attempt_ns: 50_000,
        };
        assert_eq!(
            retry.to_json_line(),
            r#"{"ev":"read_retry","t":7,"die":2,"req":5,"extra":3,"attempt_ns":50000}"#
        );
        assert_eq!(retry.class(), "ftl");
        let ecc = TraceEvent::EccUncorrectable {
            t: 8,
            lpn: 1,
            page: 2,
            block: 3,
            attempts: 5,
        };
        assert_eq!(
            ecc.to_json_line(),
            r#"{"ev":"ecc_uncorrectable","t":8,"lpn":1,"page":2,"block":3,"attempts":5}"#
        );
        assert_eq!(ecc.class(), "fault");
        let scrub = TraceEvent::ScrubPass {
            t: 9,
            scanned: 8,
            relocated: 2,
            wear_moves: 1,
        };
        assert_eq!(
            scrub.to_json_line(),
            r#"{"ev":"scrub_pass","t":9,"scanned":8,"relocated":2,"wear_moves":1}"#
        );
        assert_eq!(scrub.class(), "refresh");
        let wl = TraceEvent::WearLevel {
            t: 10,
            block: 4,
            moves: 6,
            spread: 17,
        };
        assert_eq!(
            wl.to_json_line(),
            r#"{"ev":"wear_level","t":10,"block":4,"moves":6,"spread":17}"#
        );
        assert_eq!(wl.class(), "refresh");
    }

    #[test]
    fn every_event_class_is_known() {
        assert_eq!(ev(1).class(), "ftl");
        assert_eq!(
            TraceEvent::RunStart {
                t: 0,
                label: "x".into()
            }
            .class(),
            "host"
        );
        assert_eq!(
            TraceEvent::GcRun {
                t: 0,
                block: 1,
                copies: 2
            }
            .class(),
            "gc"
        );
        assert_eq!(
            TraceEvent::IdaConversion {
                t: 0,
                block: 1,
                wordlines: 2
            }
            .class(),
            "refresh"
        );
        assert_eq!(TraceEvent::WriteRejected { t: 0, lpn: 1 }.class(), "fault");
    }

    #[test]
    fn filter_sink_keeps_selected_classes_and_run_start() {
        let mut f = FilterSink::new(VecSink::new(), "gc, span").unwrap();
        f.record(&TraceEvent::RunStart {
            t: 0,
            label: "r".into(),
        });
        f.record(&ev(1)); // ftl: dropped
        f.record(&TraceEvent::GcRun {
            t: 2,
            block: 1,
            copies: 0,
        });
        f.record(&TraceEvent::HostArrival {
            t: 3,
            req: 0,
            class: HostClass::Read,
            lpn: 0,
            pages: 1,
        }); // host: dropped
        let kinds: Vec<&str> = f.inner().events.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds, vec!["run_start", "gc_run"]);
    }

    #[test]
    fn filter_rejects_unknown_and_empty_classes() {
        let err = parse_trace_filter("host,bogus").unwrap_err();
        assert!(err.contains("unknown trace class `bogus`"), "{err}");
        assert!(err.contains("host, ftl, gc, refresh, fault, span"), "{err}");
        assert!(parse_trace_filter("").is_err());
        assert!(parse_trace_filter("host").is_ok());
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
        let h = SinkHandle::null();
        assert!(!h.on());
        // The closure must not run on the disabled path.
        h.emit_with(|| unreachable!("disabled sink constructed an event"));
    }

    #[test]
    fn ring_sink_keeps_the_tail() {
        let mut r = RingSink::new(3);
        for t in 0..10 {
            r.record(&ev(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 7);
        let ts: Vec<SimNs> = r.events().map(|e| e.timestamp()).collect();
        assert_eq!(ts, vec![7, 8, 9]);
    }

    #[test]
    fn vec_sink_records_everything_in_order() {
        let sink = Rc::new(RefCell::new(VecSink::new()));
        let h = SinkHandle::from_shared(sink.clone());
        assert!(h.on());
        for t in [1, 2, 3] {
            h.emit_with(|| ev(t));
        }
        assert_eq!(sink.borrow().events.len(), 3);
        let jsonl = sink.borrow().to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.starts_with(r#"{"ev":"erase","t":1"#));
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join("ida_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        {
            let mut s = JsonlSink::create(&path).unwrap();
            for t in 0..5 {
                s.record(&ev(t));
            }
            assert_eq!(s.lines(), 5);
            s.flush().unwrap();
        }
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 5);
        std::fs::remove_file(&path).unwrap();
    }
}
