//! Fabric events: worker membership and cell-lease traffic in the
//! distributed sweep coordinator.
//!
//! Unlike [`crate::trace::TraceEvent`]s, these describe the *schedule*,
//! not the experiment: they carry no simulated timestamp (fabric time is
//! wall-clock, which must never leak into deterministic output) and are
//! emitted to stderr-style diagnostic logs only — the aggregated sweep
//! JSON stays byte-identical whatever these report.

use crate::json::JsonObj;

/// One coordinator-side fabric observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricEvent {
    /// A worker connection completed the handshake.
    WorkerConnect {
        /// Peer address (`ip:port`), best-effort.
        peer: String,
    },
    /// A worker connection closed (cleanly or not).
    WorkerDisconnect {
        /// Peer address (`ip:port`), best-effort.
        peer: String,
        /// The cell the worker held a lease on when it vanished, if any.
        mid_cell: Option<String>,
    },
    /// A leased cell went back on the queue (worker lost or cell
    /// attempt failed) for another worker to claim.
    CellRequeue {
        /// Cell ID.
        cell: String,
        /// Attempts consumed so far (the requeued run will be
        /// `attempts + 1`).
        attempts: u32,
    },
}

impl FabricEvent {
    /// Stable event-kind label.
    pub fn kind(&self) -> &'static str {
        match self {
            FabricEvent::WorkerConnect { .. } => "worker_connect",
            FabricEvent::WorkerDisconnect { .. } => "worker_disconnect",
            FabricEvent::CellRequeue { .. } => "cell_requeue",
        }
    }

    /// One JSON object (no trailing newline) describing the event.
    pub fn to_json_line(&self) -> String {
        let obj = JsonObj::new().str("event", self.kind());
        match self {
            FabricEvent::WorkerConnect { peer } => obj.str("peer", peer).finish(),
            FabricEvent::WorkerDisconnect { peer, mid_cell } => {
                let obj = obj.str("peer", peer);
                match mid_cell {
                    Some(cell) => obj.str("mid_cell", cell).finish(),
                    None => obj.finish(),
                }
            }
            FabricEvent::CellRequeue { cell, attempts } => obj
                .str("cell", cell)
                .u64("attempts", u64::from(*attempts))
                .finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_with_stable_kinds() {
        assert_eq!(
            FabricEvent::WorkerConnect {
                peer: "127.0.0.1:9".into()
            }
            .to_json_line(),
            r#"{"event":"worker_connect","peer":"127.0.0.1:9"}"#
        );
        assert_eq!(
            FabricEvent::WorkerDisconnect {
                peer: "p".into(),
                mid_cell: Some("w/a/r1".into())
            }
            .to_json_line(),
            r#"{"event":"worker_disconnect","peer":"p","mid_cell":"w/a/r1"}"#
        );
        assert_eq!(
            FabricEvent::WorkerDisconnect {
                peer: "p".into(),
                mid_cell: None
            }
            .to_json_line(),
            r#"{"event":"worker_disconnect","peer":"p"}"#
        );
        let requeue = FabricEvent::CellRequeue {
            cell: "w/a/r1".into(),
            attempts: 1,
        };
        assert_eq!(requeue.kind(), "cell_requeue");
        assert_eq!(
            requeue.to_json_line(),
            r#"{"event":"cell_requeue","cell":"w/a/r1","attempts":1}"#
        );
    }
}
