//! A minimal, deterministic JSON writer.
//!
//! Fields are emitted in insertion order with no whitespace, so the same
//! data always serializes to the same bytes — the property the trace
//! determinism guarantee rests on. Floats use Rust's shortest-roundtrip
//! `Display`, which is also deterministic.

use std::fmt::Write as _;

/// Escape `s` for use inside a JSON string literal (without quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Builder for one JSON object, `{...}`.
#[derive(Debug, Default)]
pub struct JsonObj {
    buf: String,
}

impl JsonObj {
    /// An empty object.
    pub fn new() -> Self {
        JsonObj { buf: String::new() }
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
    }

    /// Add a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.sep();
        let _ = write!(self.buf, "\"{}\":\"{}\"", escape(key), escape(value));
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.sep();
        let _ = write!(self.buf, "\"{}\":{}", escape(key), value);
        self
    }

    /// Add a 128-bit unsigned integer field.
    pub fn u128(mut self, key: &str, value: u128) -> Self {
        self.sep();
        let _ = write!(self.buf, "\"{}\":{}", escape(key), value);
        self
    }

    /// Add a float field (`null` for non-finite values).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.sep();
        if value.is_finite() {
            let _ = write!(self.buf, "\"{}\":{}", escape(key), value);
        } else {
            let _ = write!(self.buf, "\"{}\":null", escape(key));
        }
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.sep();
        let _ = write!(self.buf, "\"{}\":{}", escape(key), value);
        self
    }

    /// Add a field whose value is already-rendered JSON.
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.sep();
        let _ = write!(self.buf, "\"{}\":{}", escape(key), json);
        self
    }

    /// Render the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Render an iterator of already-rendered JSON values as an array.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let body: Vec<String> = items.into_iter().collect();
    format!("[{}]", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_renders_in_insertion_order() {
        let s = JsonObj::new()
            .str("name", "hm_1")
            .u64("count", 42)
            .f64("mean", 1.5)
            .bool("ok", true)
            .finish();
        assert_eq!(s, r#"{"name":"hm_1","count":42,"mean":1.5,"ok":true}"#);
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let s = JsonObj::new().f64("x", f64::NAN).finish();
        assert_eq!(s, r#"{"x":null}"#);
    }

    #[test]
    fn arrays_join_rendered_values() {
        assert_eq!(array(["1".into(), "2".into()]), "[1,2]");
        assert_eq!(array(Vec::<String>::new()), "[]");
    }
}
