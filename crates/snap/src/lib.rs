//! Deterministic binary snapshot encoding.
//!
//! The warm-state cache (ISSUE 9) needs every piece of mutable simulator
//! state serialized so a restored simulator is *bit-for-bit* equivalent to
//! one that ran warm-up live. JSON would work but is slow and bulky for
//! multi-megabyte L2P maps, so this crate provides a minimal fixed-width
//! little-endian binary codec:
//!
//! - [`Snap`]: encode/decode for primitives, tuples, arrays and the
//!   standard containers used by the simulator (`Vec`, `VecDeque`,
//!   `Option`, `BTreeSet`, `String`).
//! - [`snap_struct!`] / [`snap_enum!`]: field-by-field impl macros invoked
//!   *inside* the defining crate (they need access to private fields).
//! - [`frame`]: a self-describing outer frame (`magic ‖ version ‖ len ‖
//!   fnv1a ‖ payload`) so corrupt or stale spill files are detected and
//!   rebuilt instead of silently restored.
//! - [`fnv1a`]: the same hash used repo-wide, reused both for frame
//!   integrity and for warm-up cache keys.
//!
//! Determinism rules: every integer is fixed-width little-endian, `usize`
//! travels as `u64`, `f64` as its IEEE-754 bit pattern, and containers are
//! length-prefixed. There is no varint, no alignment and no padding — the
//! byte stream is a pure function of the value, which is what makes
//! snapshot bytes usable as cache-key material.

use std::collections::{BTreeSet, VecDeque};

/// Decode failure: the byte stream does not describe a value of the
/// requested type (truncated, bad tag, bad frame, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapError(pub String);

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot decode error: {}", self.0)
    }
}

impl std::error::Error for SnapError {}

impl SnapError {
    /// Shorthand constructor.
    pub fn new(msg: impl Into<String>) -> Self {
        SnapError(msg.into())
    }
}

/// Append-only encode sink.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Append raw bytes.
    #[inline]
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Finish, yielding the encoded payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Cursor over an encoded payload.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Take the next `n` bytes.
    #[inline]
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        // `n <= remaining` implies `pos + n <= len`, so the arithmetic
        // cannot overflow; keeping the hot path to one compare lets the
        // per-field calls in big decode loops inline away.
        if n <= self.buf.len() - self.pos {
            let out = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Ok(out)
        } else {
            Err(self.truncated(n))
        }
    }

    #[cold]
    fn truncated(&self, n: usize) -> SnapError {
        SnapError::new(format!(
            "truncated: need {n} bytes at offset {}, have {}",
            self.pos,
            self.buf.len() - self.pos
        ))
    }

    /// Bytes remaining.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless the payload was fully consumed (catches layout drift
    /// between the encoder and decoder).
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::new(format!(
                "{} trailing bytes after decode",
                self.remaining()
            )))
        }
    }
}

/// Deterministic binary encode/decode.
pub trait Snap: Sized {
    /// Append this value's canonical byte form.
    fn encode(&self, w: &mut Writer);
    /// Decode one value from the cursor.
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError>;

    /// Encode a whole slice of values. Containers route through this so
    /// primitive element types can override it with a bulk byte copy;
    /// the byte form is identical to element-by-element encoding.
    fn encode_slice(slice: &[Self], w: &mut Writer) {
        for v in slice {
            v.encode(w);
        }
    }

    /// Decode `len` values. The bulk counterpart of [`Snap::encode_slice`];
    /// overrides must consume exactly the bytes element-wise decoding
    /// would.
    fn decode_vec(len: usize, r: &mut Reader<'_>) -> Result<Vec<Self>, SnapError> {
        // Bound the pre-allocation by what the stream could possibly hold
        // (1 byte per element minimum) so a corrupt length cannot OOM.
        let mut out = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            out.push(Self::decode(r)?);
        }
        Ok(out)
    }

    /// Convenience: encode to a fresh buffer.
    fn to_snap_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Convenience: decode a value that must span the whole buffer.
    fn from_snap_bytes(buf: &[u8]) -> Result<Self, SnapError> {
        let mut r = Reader::new(buf);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

macro_rules! snap_int {
    ($($ty:ty),*) => {
        $(
            impl Snap for $ty {
                // `#[inline]` matters here: the workspace builds without LTO,
                // so without it these one-liners stay as cross-crate calls in
                // the multi-megabyte snapshot loops of ida-ftl/ida-ssd.
                #[inline]
                fn encode(&self, w: &mut Writer) {
                    w.bytes(&self.to_le_bytes());
                }
                #[inline]
                fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
                    let b = r.take(std::mem::size_of::<$ty>())?;
                    Ok(<$ty>::from_le_bytes(b.try_into().expect("sized take")))
                }
                // Bulk forms: the little-endian byte layout of a run of
                // integers IS the element-wise encoding, so the whole
                // slice moves as one copy instead of one call per value.
                fn encode_slice(slice: &[Self], w: &mut Writer) {
                    w.buf.reserve(std::mem::size_of::<$ty>() * slice.len());
                    for v in slice {
                        w.buf.extend_from_slice(&v.to_le_bytes());
                    }
                }
                fn decode_vec(len: usize, r: &mut Reader<'_>) -> Result<Vec<Self>, SnapError> {
                    const W: usize = std::mem::size_of::<$ty>();
                    let bytes = len
                        .checked_mul(W)
                        .ok_or_else(|| SnapError::new(format!("vec length overflow: {len}")))?;
                    let b = r.take(bytes)?;
                    Ok(b.chunks_exact(W)
                        .map(|c| <$ty>::from_le_bytes(c.try_into().expect("sized chunk")))
                        .collect())
                }
            }
        )*
    };
}

snap_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl Snap for usize {
    #[inline]
    fn encode(&self, w: &mut Writer) {
        (*self as u64).encode(w);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let v = u64::decode(r)?;
        usize::try_from(v).map_err(|_| SnapError::new(format!("usize overflow: {v}")))
    }
}

impl Snap for bool {
    #[inline]
    fn encode(&self, w: &mut Writer) {
        (*self as u8).encode(w);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::new(format!("bad bool byte {b}"))),
        }
    }
    fn encode_slice(slice: &[Self], w: &mut Writer) {
        w.buf.reserve(slice.len());
        w.buf.extend(slice.iter().map(|&v| v as u8));
    }
    fn decode_vec(len: usize, r: &mut Reader<'_>) -> Result<Vec<Self>, SnapError> {
        let b = r.take(len)?;
        if let Some(bad) = b.iter().find(|&&x| x > 1) {
            return Err(SnapError::new(format!("bad bool byte {bad}")));
        }
        Ok(b.iter().map(|&x| x == 1).collect())
    }
}

impl Snap for f64 {
    #[inline]
    fn encode(&self, w: &mut Writer) {
        self.to_bits().encode(w);
    }
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl Snap for String {
    fn encode(&self, w: &mut Writer) {
        self.len().encode(w);
        w.bytes(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let len = usize::decode(r)?;
        let b = r.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|e| SnapError::new(format!("bad utf-8: {e}")))
    }
}

impl<T: Snap> Snap for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => 0u8.encode(w),
            Some(v) => {
                1u8.encode(w);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            b => Err(SnapError::new(format!("bad option tag {b}"))),
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        self.len().encode(w);
        T::encode_slice(self, w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let len = usize::decode(r)?;
        T::decode_vec(len, r)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn encode(&self, w: &mut Writer) {
        self.len().encode(w);
        let (head, tail) = self.as_slices();
        T::encode_slice(head, w);
        T::encode_slice(tail, w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(Vec::<T>::decode(r)?.into())
    }
}

impl<T: Snap + Ord> Snap for BTreeSet<T> {
    fn encode(&self, w: &mut Writer) {
        self.len().encode(w);
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let len = usize::decode(r)?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap, const N: usize> Snap for [T; N] {
    fn encode(&self, w: &mut Writer) {
        T::encode_slice(self, w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        T::decode_vec(N, r)?
            .try_into()
            .map_err(|_| SnapError::new("array length mismatch"))
    }
}

macro_rules! snap_tuple {
    ($($name:ident),+) => {
        impl<$($name: Snap),+> Snap for ($($name,)+) {
            fn encode(&self, w: &mut Writer) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $( $name.encode(w); )+
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    };
}

snap_tuple!(A);
snap_tuple!(A, B);
snap_tuple!(A, B, C);
snap_tuple!(A, B, C, D);

/// Implement [`Snap`] for a struct field-by-field, in declaration order.
/// Must be invoked in the struct's own module (it reads private fields).
#[macro_export]
macro_rules! snap_struct {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::Snap for $ty {
            fn encode(&self, w: &mut $crate::Writer) {
                $( $crate::Snap::encode(&self.$field, w); )*
            }
            fn decode(r: &mut $crate::Reader<'_>) -> Result<Self, $crate::SnapError> {
                Ok(Self { $( $field: $crate::Snap::decode(r)? ),* })
            }
        }
    };
}

/// Implement [`Snap`] for a unit-variant enum with explicit `u8` tags.
#[macro_export]
macro_rules! snap_enum {
    ($ty:ty { $($idx:literal => $variant:path),* $(,)? }) => {
        impl $crate::Snap for $ty {
            fn encode(&self, w: &mut $crate::Writer) {
                let tag: u8 = match self {
                    $( $variant => $idx, )*
                };
                $crate::Snap::encode(&tag, w);
            }
            fn decode(r: &mut $crate::Reader<'_>) -> Result<Self, $crate::SnapError> {
                match <u8 as $crate::Snap>::decode(r)? {
                    $( $idx => Ok($variant), )*
                    tag => Err($crate::SnapError::new(format!(
                        concat!("bad ", stringify!($ty), " tag {}"),
                        tag
                    ))),
                }
            }
        }
    };
}

/// FNV-1a 64-bit over `bytes` — the repo's standard content hash, reused
/// here for frame integrity and warm-up cache keys.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Self-describing outer frame: `IDASNAP1 ‖ version:u32 ‖ len:u64 ‖
/// fnv1a:u64 ‖ payload`. Spill files and CLI snapshot files always travel
/// framed so truncation and corruption are detected before decode.
pub mod frame {
    use super::{fnv1a, SnapError};

    /// Frame magic, also the file signature of `.snap` spill files.
    pub const MAGIC: &[u8; 8] = b"IDASNAP1";
    /// Current payload-layout version. Bump whenever any `Snap` impl's
    /// field order changes; stale spill files are then rebuilt, not
    /// misdecoded.
    pub const VERSION: u32 = 1;
    /// Frame header length in bytes.
    pub const HEADER_LEN: usize = 8 + 4 + 8 + 8;

    /// Decoded frame metadata (for `idasim snapshot inspect`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Meta {
        /// Layout version recorded in the header.
        pub version: u32,
        /// Payload length in bytes.
        pub payload_len: u64,
        /// FNV-1a hash of the payload.
        pub hash: u64,
    }

    /// Wrap `payload` in a verified frame.
    pub fn seal(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a(payload).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    /// Parse and verify a frame, returning its metadata and payload.
    pub fn open(buf: &[u8]) -> Result<(Meta, &[u8]), SnapError> {
        if buf.len() < HEADER_LEN {
            return Err(SnapError::new("frame shorter than header"));
        }
        if &buf[..8] != MAGIC {
            return Err(SnapError::new("bad frame magic"));
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().expect("sized"));
        if version != VERSION {
            return Err(SnapError::new(format!(
                "frame version {version}, expected {VERSION}"
            )));
        }
        let payload_len = u64::from_le_bytes(buf[12..20].try_into().expect("sized"));
        let hash = u64::from_le_bytes(buf[20..28].try_into().expect("sized"));
        let payload = &buf[HEADER_LEN..];
        if payload.len() as u64 != payload_len {
            return Err(SnapError::new(format!(
                "frame declares {payload_len} payload bytes, carries {}",
                payload.len()
            )));
        }
        if fnv1a(payload) != hash {
            return Err(SnapError::new("frame hash mismatch (corrupt payload)"));
        }
        Ok((
            Meta {
                version,
                payload_len,
                hash,
            },
            payload,
        ))
    }

    /// Largest payload a *streamed* frame may declare (64 MiB). A peer
    /// sending a corrupt length field must not make the reader allocate
    /// unboundedly; warm-state images — the largest legitimate frames —
    /// are a few MB.
    pub const MAX_STREAM_PAYLOAD: u64 = 64 << 20;

    fn invalid(msg: impl Into<String>) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, SnapError::new(msg))
    }

    /// Write `payload` to `w` as one sealed frame and flush it.
    ///
    /// # Errors
    ///
    /// Propagates the writer's I/O errors.
    pub fn write_frame<W: std::io::Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
        w.write_all(&seal(payload))?;
        w.flush()
    }

    /// Read and verify one sealed frame from a byte stream.
    ///
    /// Returns `Ok(None)` on clean end-of-stream at a frame boundary
    /// (the peer closed between messages). A stream that ends *inside* a
    /// frame, or carries a bad magic/version/length/hash, is an
    /// `InvalidData`/`UnexpectedEof` error — never a panic, never an
    /// unbounded allocation (lengths above [`MAX_STREAM_PAYLOAD`] are
    /// rejected before any buffer is reserved).
    ///
    /// # Errors
    ///
    /// The reader's I/O errors, plus `InvalidData` for structurally
    /// invalid frames.
    pub fn read_frame<R: std::io::Read>(r: &mut R) -> std::io::Result<Option<Vec<u8>>> {
        let mut header = [0u8; HEADER_LEN];
        let mut filled = 0;
        while filled < HEADER_LEN {
            match r.read(&mut header[filled..]) {
                Ok(0) if filled == 0 => return Ok(None),
                Ok(0) => return Err(invalid("stream closed mid-frame header")),
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if &header[..8] != MAGIC {
            return Err(invalid("bad frame magic"));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("sized"));
        if version != VERSION {
            return Err(invalid(format!(
                "frame version {version}, expected {VERSION}"
            )));
        }
        let payload_len = u64::from_le_bytes(header[12..20].try_into().expect("sized"));
        let hash = u64::from_le_bytes(header[20..28].try_into().expect("sized"));
        if payload_len > MAX_STREAM_PAYLOAD {
            return Err(invalid(format!(
                "frame declares {payload_len} payload bytes, over the \
                 {MAX_STREAM_PAYLOAD}-byte stream limit"
            )));
        }
        let mut payload = vec![0u8; payload_len as usize];
        r.read_exact(&mut payload)?;
        if fnv1a(&payload) != hash {
            return Err(invalid("frame hash mismatch (corrupt payload)"));
        }
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Snap + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_snap_bytes();
        assert_eq!(T::from_snap_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u8::MAX);
        round_trip(0xBEEFu16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX - 7);
        round_trip(u128::MAX / 3);
        round_trip(-42i64);
        round_trip(true);
        round_trip(false);
        round_trip(1.6180339887f64);
        round_trip(f64::NEG_INFINITY);
        round_trip(usize::MAX / 2);
        round_trip(String::from("warm-up cache κλειδί"));
    }

    #[test]
    fn nan_bit_pattern_preserved() {
        let v = f64::from_bits(0x7FF8_0000_0000_1234);
        let bytes = v.to_snap_bytes();
        assert_eq!(f64::from_snap_bytes(&bytes).unwrap().to_bits(), v.to_bits());
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(Some(vec![0u8, 9]));
        round_trip(Option::<u32>::None);
        round_trip(VecDeque::from([7u64, 8, 9]));
        round_trip(BTreeSet::from([(3u32, 1u32), (1, 2)]));
        round_trip([1u64, 2, 3]);
        round_trip((1u32, 2u64, true));
        round_trip(vec![Some((1u32, false)), None]);
    }

    #[test]
    fn encoding_is_deterministic() {
        let a = vec![(1u64, Some(2u32)), (3, None)];
        assert_eq!(a.to_snap_bytes(), a.to_snap_bytes());
    }

    #[test]
    fn truncated_stream_errors() {
        let bytes = 0xABCDu64.to_snap_bytes();
        assert!(u64::from_snap_bytes(&bytes[..7]).is_err());
        // Trailing bytes also rejected by from_snap_bytes.
        let mut long = bytes.clone();
        long.push(0);
        assert!(u64::from_snap_bytes(&long).is_err());
    }

    #[test]
    fn corrupt_length_does_not_allocate_wildly() {
        // A Vec claiming u64::MAX elements must error, not OOM.
        let mut w = Writer::new();
        u64::MAX.encode(&mut w);
        let bytes = w.into_bytes();
        assert!(Vec::<u8>::from_snap_bytes(&bytes).is_err());
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        a: u32,
        b: Vec<bool>,
    }
    snap_struct!(Demo { a, b });

    #[derive(Debug, PartialEq)]
    enum Mode {
        Off,
        On,
    }
    snap_enum!(Mode { 0 => Mode::Off, 1 => Mode::On });

    #[test]
    fn macros_round_trip() {
        round_trip(Demo {
            a: 5,
            b: vec![true, false],
        });
        round_trip(Mode::Off);
        round_trip(Mode::On);
        assert!(Mode::from_snap_bytes(&[9]).is_err());
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn stream_frames_round_trip_and_signal_clean_eof() {
        let mut stream = Vec::new();
        frame::write_frame(&mut stream, b"first").unwrap();
        frame::write_frame(&mut stream, b"").unwrap();
        frame::write_frame(&mut stream, b"third message").unwrap();
        let mut r = std::io::Cursor::new(stream);
        assert_eq!(frame::read_frame(&mut r).unwrap().unwrap(), b"first");
        assert_eq!(frame::read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(
            frame::read_frame(&mut r).unwrap().unwrap(),
            b"third message"
        );
        // Clean EOF at a frame boundary is None, repeatedly.
        assert!(frame::read_frame(&mut r).unwrap().is_none());
        assert!(frame::read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn stream_reader_rejects_torn_and_corrupt_frames() {
        let mut whole = Vec::new();
        frame::write_frame(&mut whole, b"payload bytes").unwrap();
        // Torn header.
        let mut r = std::io::Cursor::new(whole[..frame::HEADER_LEN / 2].to_vec());
        assert!(frame::read_frame(&mut r).is_err());
        // Torn payload.
        let mut r = std::io::Cursor::new(whole[..whole.len() - 3].to_vec());
        assert!(frame::read_frame(&mut r).is_err());
        // Flipped payload bit.
        let mut bad = whole.clone();
        *bad.last_mut().unwrap() ^= 0x40;
        assert!(frame::read_frame(&mut std::io::Cursor::new(bad)).is_err());
        // Version skew.
        let mut vers = whole.clone();
        vers[8] ^= 0xFF;
        assert!(frame::read_frame(&mut std::io::Cursor::new(vers)).is_err());
        // Bad magic.
        let mut magic = whole.clone();
        magic[0] = b'Z';
        assert!(frame::read_frame(&mut std::io::Cursor::new(magic)).is_err());
        // A corrupt length field errors without trying to allocate it.
        let mut huge = whole;
        huge[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(frame::read_frame(&mut std::io::Cursor::new(huge)).is_err());
    }

    #[test]
    fn frame_round_trip_and_rejects_corruption() {
        let payload = b"hello snapshot".to_vec();
        let framed = frame::seal(&payload);
        let (meta, got) = frame::open(&framed).unwrap();
        assert_eq!(got, payload.as_slice());
        assert_eq!(meta.payload_len, payload.len() as u64);
        assert_eq!(meta.version, frame::VERSION);

        // Flip one payload byte: hash mismatch.
        let mut bad = framed.clone();
        *bad.last_mut().unwrap() ^= 1;
        assert!(frame::open(&bad).is_err());
        // Truncate: length mismatch.
        assert!(frame::open(&framed[..framed.len() - 1]).is_err());
        // Bad magic.
        let mut nomagic = framed.clone();
        nomagic[0] = b'X';
        assert!(frame::open(&nomagic).is_err());
        // Wrong version.
        let mut vers = framed;
        vers[8] ^= 0xFF;
        assert!(frame::open(&vers).is_err());
    }
}
