//! The synthetic trace generator.
//!
//! Each workload is a [`WorkloadSpec`]: target request mix, size means,
//! access skew, update intensity and burstiness. `generate` produces a
//! deterministic page-aligned [`Trace`] for a given footprint and request
//! count.
//!
//! The generator's structure mirrors what matters to the IDA experiments:
//!
//! - reads follow a Zipf distribution over the footprint (hot data is read
//!   often) with occasional sequential runs;
//! - writes are *updates*: they follow their own, typically more skewed,
//!   Zipf distribution, which invalidates previously written pages — the
//!   source of the invalid-LSB/CSB wordlines IDA coding exploits;
//! - arrivals are bursty: requests cluster in bursts separated by longer
//!   idle gaps, so device latency differences show up as queueing-time
//!   differences exactly as in the paper's open trace replay.

use crate::dist::{exponential_gap, Scatter, SizeMix, Zipf};
use crate::trace::{OpKind, Trace, TraceRecord};
use ida_obs::rng::Rng64;

/// Parameters of one synthetic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name (e.g. `proj_1`).
    pub name: String,
    /// Fraction of requests that are reads.
    pub read_ratio: f64,
    /// Mean read request size in pages.
    pub read_size_pages: f64,
    /// Mean write request size in pages.
    pub write_size_pages: f64,
    /// Zipf exponent of the read address distribution.
    pub read_theta: f64,
    /// Zipf exponent of the write (update) address distribution. Writes
    /// hit a subset of the footprint (`update_fraction`).
    pub write_theta: f64,
    /// Fraction of the footprint eligible for updates.
    pub update_fraction: f64,
    /// Probability that a write targets the *read-hot* mapping instead of
    /// the independent update mapping — the knob for how often reads land
    /// on freshly rewritten (conventional) blocks.
    pub rw_correlation: f64,
    /// Probability that a read continues the previous read sequentially.
    pub seq_read_prob: f64,
    /// Mean gap between bursts (ns).
    pub burst_gap_ns: f64,
    /// Mean gap within a burst (ns).
    pub intra_gap_ns: f64,
    /// Mean burst length in requests.
    pub burst_len: f64,
    /// Page size assumed by the trace (bytes).
    pub page_size: u32,
    /// RNG seed (deterministic generation).
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            name: "default".into(),
            read_ratio: 0.9,
            read_size_pages: 4.0,
            write_size_pages: 2.0,
            read_theta: 0.6,
            write_theta: 1.1,
            update_fraction: 0.6,
            rw_correlation: 0.2,
            seq_read_prob: 0.3,
            burst_gap_ns: 2_000_000.0, // 2 ms between bursts
            intra_gap_ns: 20_000.0,    // 20 µs inside a burst
            burst_len: 16.0,
            page_size: 8 * 1024,
            seed: 0x0001_DA77,
        }
    }
}

impl WorkloadSpec {
    /// A writes-only trace over `footprint_pages` whose total volume is
    /// `volume × footprint` pages, with the given seed salt — the building
    /// block of the aging passes.
    pub fn scaled_writes(&self, footprint_pages: u64, volume: f64, salt: u64) -> Trace {
        let target_pages = (footprint_pages as f64 * volume) as u64;
        let mean_write = self.write_size_pages.max(1.0);
        let requests = ((target_pages as f64 / mean_write).ceil() as usize).max(1);
        let spec = WorkloadSpec {
            read_ratio: 0.0,
            seed: self.seed.wrapping_add(salt),
            name: format!("{}-writes", self.name),
            ..self.clone()
        };
        spec.generate(footprint_pages, requests)
    }

    /// Generate `requests` records over a footprint of `footprint_pages`
    /// logical pages. Deterministic in the spec (including its seed).
    ///
    /// # Panics
    ///
    /// Panics if `footprint_pages == 0` or the spec's ratios are outside
    /// `[0, 1]`.
    pub fn generate(&self, footprint_pages: u64, requests: usize) -> Trace {
        assert!(footprint_pages > 0, "footprint must be non-empty");
        for (what, v) in [
            ("read_ratio", self.read_ratio),
            ("update_fraction", self.update_fraction),
            ("rw_correlation", self.rw_correlation),
            ("seq_read_prob", self.seq_read_prob),
        ] {
            assert!((0.0..=1.0).contains(&v), "{what} must be in [0,1], got {v}");
        }
        let mut rng = Rng64::seed_from_u64(self.seed);
        let read_zipf = Zipf::new(footprint_pages.min(1 << 22) as usize, self.read_theta);
        let update_domain = ((footprint_pages as f64 * self.update_fraction) as u64).max(1);
        let write_zipf = Zipf::new(update_domain.min(1 << 22) as usize, self.write_theta);
        let scatter = Scatter::new(footprint_pages);
        let write_scatter = Scatter::with_salt(footprint_pages, 1);
        let read_sizes = SizeMix::new(self.read_size_pages.max(1.0), 64);
        let write_sizes = SizeMix::new(self.write_size_pages.max(1.0), 64);

        let mut records = Vec::with_capacity(requests);
        let mut now = 0u64;
        let mut burst_remaining = 0u64;
        let mut last_read_end: Option<u64> = None;
        for _ in 0..requests {
            if burst_remaining == 0 {
                now += exponential_gap(&mut rng, self.burst_gap_ns);
                burst_remaining = 1 + exponential_gap(&mut rng, self.burst_len.max(1.0) - 1.0);
            } else {
                now += exponential_gap(&mut rng, self.intra_gap_ns);
            }
            burst_remaining -= 1;

            let is_read = rng.gen_bool(self.read_ratio);
            let (kind, pages, page) = if is_read {
                let pages = read_sizes.sample(&mut rng);
                let page = if last_read_end.is_some() && rng.gen_bool(self.seq_read_prob) {
                    last_read_end.take().expect("just checked")
                } else {
                    scatter.apply(read_zipf.sample(&mut rng) as u64)
                };
                let page = page.min(footprint_pages.saturating_sub(pages as u64));
                last_read_end = Some((page + pages as u64) % footprint_pages);
                (OpKind::Read, pages, page)
            } else {
                let pages = write_sizes.sample(&mut rng);
                let rank = write_zipf.sample(&mut rng) as u64;
                let page = if rng.gen_bool(self.rw_correlation) {
                    scatter.apply(rank) // update the read-hot set
                } else {
                    write_scatter.apply(rank)
                };
                let page = page.min(footprint_pages.saturating_sub(pages as u64));
                (OpKind::Write, pages, page)
            };
            records.push(TraceRecord {
                at: now,
                kind,
                page,
                pages,
            });
        }
        Trace {
            page_size: self.page_size,
            records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::default();
        let a = spec.generate(10_000, 500);
        let b = spec.generate(10_000, 500);
        assert_eq!(a, b);
    }

    #[test]
    fn records_are_time_sorted_and_in_bounds() {
        let spec = WorkloadSpec::default();
        let t = spec.generate(5_000, 2_000);
        assert!(t.records.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(t.records.iter().all(|r| r.page + r.pages as u64 <= 5_000));
        assert_eq!(t.records.len(), 2_000);
    }

    #[test]
    fn read_ratio_is_respected() {
        let spec = WorkloadSpec {
            read_ratio: 0.8,
            ..WorkloadSpec::default()
        };
        let t = spec.generate(10_000, 20_000);
        let reads = t.records.iter().filter(|r| r.kind == OpKind::Read).count() as f64;
        let ratio = reads / t.records.len() as f64;
        assert!((ratio - 0.8).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn mean_read_size_tracks_spec() {
        let spec = WorkloadSpec {
            read_size_pages: 5.0,
            ..WorkloadSpec::default()
        };
        let t = spec.generate(50_000, 20_000);
        let (sum, n) = t
            .records
            .iter()
            .filter(|r| r.kind == OpKind::Read)
            .fold((0u64, 0u64), |(s, n), r| (s + r.pages as u64, n + 1));
        let mean = sum as f64 / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean read pages {mean}");
    }

    #[test]
    fn writes_concentrate_on_the_update_set() {
        // With a very skewed write distribution, a small set of pages
        // receives most updates.
        let spec = WorkloadSpec {
            read_ratio: 0.0,
            write_theta: 1.2,
            write_size_pages: 1.0,
            ..WorkloadSpec::default()
        };
        let t = spec.generate(10_000, 20_000);
        let mut counts = std::collections::HashMap::new();
        for r in &t.records {
            *counts.entry(r.page).or_insert(0u32) += 1;
        }
        let mut by_count: Vec<u32> = counts.values().copied().collect();
        by_count.sort_unstable_by(|a, b| b.cmp(a));
        let top100: u32 = by_count.iter().take(100).sum();
        assert!(
            top100 as f64 / 20_000.0 > 0.3,
            "hot pages should dominate updates"
        );
    }

    #[test]
    #[should_panic(expected = "footprint")]
    fn zero_footprint_rejected() {
        let _ = WorkloadSpec::default().generate(0, 10);
    }
}
