//! Importer for MSR Cambridge block traces (SNIA IOTTA format \[25\]).
//!
//! The paper's 11 workloads are volumes from this suite. The raw traces
//! are not redistributable with this repository, but anyone who obtains
//! them (`http://iotta.snia.org/traces/388`) can replay them directly:
//!
//! ```text
//! Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//! 128166372003061419,hm,1,Read,2216306688,4096,3440
//! ```
//!
//! - `Timestamp` is a Windows filetime (100 ns ticks since 1601);
//! - `Offset`/`Size` are bytes;
//! - `Type` is `Read` or `Write` (case-insensitive).
//!
//! Records are rebased to nanoseconds from the first arrival, byte extents
//! are aligned to pages, and offsets are compacted modulo the device's
//! exported space by the caller if needed.

use crate::trace::{OpKind, Trace, TraceRecord};
use std::io::{self, BufRead};

/// Windows-filetime ticks per nanosecond step (1 tick = 100 ns).
const NS_PER_TICK: u64 = 100;

/// Parse an MSR Cambridge CSV into a page-aligned [`Trace`].
///
/// Lines that are empty or start with `#` are skipped. Records are sorted
/// by timestamp (the raw traces are almost, but not exactly, ordered).
///
/// # Errors
///
/// Returns `InvalidData` on malformed rows.
pub fn parse_msr<R: BufRead>(r: R, page_size: u32) -> io::Result<Trace> {
    assert!(page_size > 0, "page size must be positive");
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut records = Vec::new();
    let mut first_ts: Option<u64> = None;
    for line in r.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split(',');
        let mut next = |what: &str| {
            fields
                .next()
                .ok_or_else(|| bad(format!("missing {what} in: {line}")))
        };
        let ts: u64 = next("timestamp")?
            .trim()
            .parse()
            .map_err(|e| bad(format!("bad timestamp: {e}")))?;
        let _hostname = next("hostname")?;
        let _disk = next("disk number")?;
        let kind = match next("type")?.trim().to_ascii_lowercase().as_str() {
            "read" => OpKind::Read,
            "write" => OpKind::Write,
            other => return Err(bad(format!("bad op type: {other}"))),
        };
        let offset: u64 = next("offset")?
            .trim()
            .parse()
            .map_err(|e| bad(format!("bad offset: {e}")))?;
        let size: u64 = next("size")?
            .trim()
            .parse()
            .map_err(|e| bad(format!("bad size: {e}")))?;
        // ResponseTime (and any trailing fields) are ignored.

        let first = *first_ts.get_or_insert(ts);
        let at = ts.saturating_sub(first) * NS_PER_TICK;
        let page = offset / page_size as u64;
        let end = offset + size.max(1);
        let last_page = (end - 1) / page_size as u64;
        let pages = (last_page - page + 1) as u32;
        records.push(TraceRecord {
            at,
            kind,
            page,
            pages,
        });
    }
    records.sort_by_key(|r| r.at);
    Ok(Trace { page_size, records })
}

/// Remap a parsed trace onto a smaller device: every page is taken modulo
/// `footprint_pages` (a common technique for replaying volume traces on
/// scaled-down simulated devices).
pub fn fold_to_footprint(trace: &Trace, footprint_pages: u64) -> Trace {
    assert!(footprint_pages > 0, "footprint must be non-empty");
    let records = trace
        .records
        .iter()
        .map(|r| {
            let page = r.page % footprint_pages;
            let pages = (r.pages as u64).min(footprint_pages - page) as u32;
            TraceRecord {
                at: r.at,
                kind: r.kind,
                page,
                pages: pages.max(1),
            }
        })
        .collect();
    Trace {
        page_size: trace.page_size,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
128166372003061419,hm,1,Read,2216306688,4096,3440
128166372003062000,hm,1,Write,2216306688,16384,2010
128166372003061500,hm,1,Read,0,512,100
";

    #[test]
    fn parses_and_rebases_timestamps() {
        let t = parse_msr(SAMPLE.as_bytes(), 8192).unwrap();
        assert_eq!(t.records.len(), 3);
        // Sorted by time; first record at 0 ns.
        assert_eq!(t.records[0].at, 0);
        assert_eq!(t.records[1].at, (1500 - 1419) * 100);
        assert_eq!(t.records[2].at, (2000 - 1419) * 100);
    }

    #[test]
    fn byte_extents_align_to_pages() {
        let t = parse_msr(SAMPLE.as_bytes(), 8192).unwrap();
        // 4096 bytes at a 2 KiB-misaligned offset still fit one 8K page.
        assert_eq!(t.records[0].pages, 1);
        assert_eq!(t.records[0].page, 2216306688 / 8192);
        // The misaligned 16K write straddles three pages.
        let w = t.records.iter().find(|r| r.kind == OpKind::Write).unwrap();
        assert_eq!(w.pages, 3);
        // A 512-byte read still costs one page.
        assert_eq!(t.records[1].pages, 1);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let src = format!("# header\n\n{SAMPLE}");
        let t = parse_msr(src.as_bytes(), 4096).unwrap();
        assert_eq!(t.records.len(), 3);
    }

    #[test]
    fn malformed_rows_rejected() {
        assert!(parse_msr(&b"1,hm,1,Erase,0,512,9"[..], 4096).is_err());
        assert!(parse_msr(&b"nonsense"[..], 4096).is_err());
        assert!(parse_msr(&b"1,hm,1,Read,xyz,512,9"[..], 4096).is_err());
    }

    #[test]
    fn zero_size_records_still_cost_one_page() {
        // Some raw volumes carry 0-byte records; they must round up to a
        // one-page touch, never a zero-page op the simulator would choke on.
        let t = parse_msr(&b"100,hm,1,Read,8192,0,5"[..], 4096).unwrap();
        assert_eq!(t.records[0].pages, 1);
        assert_eq!(t.records[0].page, 2);
    }

    #[test]
    fn out_of_order_rows_are_sorted_not_rejected() {
        // Raw MSR volumes are almost-but-not-exactly time ordered; the
        // importer sorts so the open-loop replay path never hits the
        // simulator's unsorted-trace error.
        let src = "\
300,hm,1,Read,0,512,1
100,hm,1,Read,4096,512,1
200,hm,1,Write,8192,512,1
";
        let t = parse_msr(src.as_bytes(), 4096).unwrap();
        let ats: Vec<u64> = t.records.iter().map(|r| r.at).collect();
        assert!(ats.windows(2).all(|w| w[0] <= w[1]), "unsorted: {ats:?}");
        // Rebase anchors on the *first row read* (ts 300), so earlier
        // rows saturate to 0 instead of underflowing.
        assert_eq!(ats, vec![0, 0, 0]);
    }

    #[test]
    fn rebase_anchors_on_the_first_row() {
        let src = "\
128166372003061419,hm,1,Read,0,512,1
128166372003061519,hm,1,Read,0,512,1
";
        let t = parse_msr(src.as_bytes(), 4096).unwrap();
        // 100 filetime ticks = 10 µs.
        assert_eq!(t.records[0].at, 0);
        assert_eq!(t.records[1].at, 100 * NS_PER_TICK);
    }

    #[test]
    fn malformed_op_types_and_short_rows_rejected() {
        for bad in [
            &b"1,hm,1,Trim,0,512,9"[..],                   // unknown op type
            &b"1,hm,1,Read,0"[..],                         // missing size column
            &b"1,hm,1"[..],                                // missing type column
            &b"1,hm,1,Read,0,abc,9"[..],                   // non-numeric size
            &b"9999999999999999999999,h,1,Read,0,1,1"[..], // ts overflow
        ] {
            assert!(parse_msr(bad, 4096).is_err(), "accepted: {bad:?}");
        }
        // Case-insensitive op types are fine.
        let t = parse_msr(&b"1,hm,1,WRITE,0,512,9"[..], 4096).unwrap();
        assert_eq!(t.records[0].kind, OpKind::Write);
    }

    #[test]
    fn folding_keeps_pages_in_bounds() {
        let t = parse_msr(SAMPLE.as_bytes(), 8192).unwrap();
        let folded = fold_to_footprint(&t, 1000);
        assert!(folded
            .records
            .iter()
            .all(|r| r.page + r.pages as u64 <= 1000));
        assert_eq!(folded.records.len(), t.records.len());
    }
}
