//! Workload presets: the 11 paper workloads (Table III) and the 9 extra
//! read-ratio-binned workloads of Figure 4 (right).
//!
//! Each preset couples a generator spec (tuned to the workload's published
//! request mix, sizes and update behaviour) with the paper's reported
//! numbers so experiment binaries can print paper-vs-measured side by side.

use crate::synth::WorkloadSpec;

/// The values Table III reports for one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Read request ratio, percent.
    pub read_ratio_pct: f64,
    /// Mean read size, KB.
    pub read_kb: f64,
    /// Read share of transferred data, percent.
    pub read_data_pct: f64,
    /// Fraction of MSB reads whose LSB and/or CSB is invalid, percent.
    pub msb_invalid_pct: f64,
}

/// A runnable workload: generator spec + paper reference + sizing hints.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadPreset {
    /// The trace generator parameters.
    pub spec: WorkloadSpec,
    /// The paper's Table III row (for reporting).
    pub paper: PaperRow,
    /// Workload footprint as a fraction of exported SSD capacity
    /// (the paper's volumes span 20–110 GB of a 512 GB device).
    pub footprint_frac: f64,
    /// Pages written during the aging pass, as a multiple of the
    /// footprint — establishes layout history and wear before the
    /// steady-state refresh.
    pub aging_volume: f64,
    /// Pages written *after* the steady-state refresh, as a multiple of
    /// the footprint — re-creates the mid-refresh-cycle invalidation the
    /// device exhibits when the measured window opens (the paper's blocks
    /// are partially invalidated between refreshes, Table IV).
    pub reage_volume: f64,
}

const PAGE_KB: f64 = 8.0;

fn preset(
    name: &str,
    read_ratio_pct: f64,
    read_kb: f64,
    read_data_pct: f64,
    msb_invalid_pct: f64,
    footprint_frac: f64,
    seed: u64,
) -> WorkloadPreset {
    // Update set breadth: P(some lower page invalid) ≈ 1-(1-u)^2 for a TLC
    // wordline, so u ≈ 1 - sqrt(1 - target). Reads correlate with updates
    // through the shared scatter, which pushes the observed value up.
    let target = msb_invalid_pct / 100.0;
    let update_fraction = (1.0 - (1.0 - target).sqrt()).clamp(0.02, 0.6);
    // Write sizes: derived from the read/write data balance.
    let read_ratio = read_ratio_pct / 100.0;
    let read_pages = (read_kb / PAGE_KB).max(1.0);
    let read_data = read_data_pct / 100.0;
    // read_data = rR*sR / (rR*sR + (1-rR)*sW)  ⇒ solve for sW.
    let write_pages = if read_ratio < 1.0 && read_data > 0.0 && read_data < 1.0 {
        (read_ratio * read_pages * (1.0 - read_data) / (read_data * (1.0 - read_ratio)))
            .clamp(1.0, 64.0)
    } else {
        2.0
    };
    // Arrival intensity: scale gaps so every workload loads the device to
    // roughly the same utilization (ρ ≈ 0.55 of the 4-channel read path at
    // baseline latencies), as the paper's volume traces each keep their
    // device comfortably busy but stable. A read holds its channel for
    // sense+transfer (~196 µs/page at baseline), a write for the transfer.
    let per_req_channel_us =
        read_ratio * read_pages * 196.0 + (1.0 - read_ratio) * write_pages * 48.0;
    let target_util = 0.55;
    let interarrival_us = per_req_channel_us / (4.0 * target_util);
    let burst_len = 8.0;
    let intra_gap_ns = interarrival_us * 0.35 * 1_000.0;
    let burst_gap_ns =
        (burst_len * interarrival_us - (burst_len - 1.0) * interarrival_us * 0.35) * 1_000.0;
    WorkloadPreset {
        spec: WorkloadSpec {
            name: name.into(),
            read_ratio,
            read_size_pages: read_pages,
            write_size_pages: write_pages,
            read_theta: 0.6,
            write_theta: 0.6,
            update_fraction,
            rw_correlation: 0.2,
            seq_read_prob: 0.3,
            burst_gap_ns,
            intra_gap_ns,
            burst_len,
            page_size: 8 * 1024,
            seed,
        },
        paper: PaperRow {
            read_ratio_pct,
            read_kb,
            read_data_pct,
            msb_invalid_pct,
        },
        footprint_frac,
        aging_volume: 1.2,
        // Enough update volume to sweep most of the update set once.
        reage_volume: (2.2 * update_fraction).clamp(0.05, 0.6),
    }
}

/// The 11 read-intensive workloads of Table III, in paper order.
pub fn paper_workloads() -> Vec<WorkloadPreset> {
    vec![
        preset("proj_1", 89.43, 37.45, 96.71, 22.12, 0.12, 101),
        preset("proj_2", 87.61, 41.64, 85.77, 32.47, 0.16, 102),
        preset("proj_3", 94.82, 8.99, 87.41, 20.81, 0.06, 103),
        preset("proj_4", 98.52, 23.72, 99.30, 24.63, 0.10, 104),
        preset("hm_1", 95.34, 14.93, 93.83, 20.54, 0.05, 105),
        preset("src1_0", 56.43, 36.47, 47.42, 33.31, 0.14, 106),
        preset("src1_1", 95.26, 35.87, 98.00, 34.79, 0.13, 107),
        preset("src2_0", 97.86, 60.32, 99.51, 21.27, 0.20, 108),
        preset("stg_1", 63.74, 59.68, 92.99, 38.76, 0.18, 109),
        preset("usr_1", 91.48, 52.72, 97.37, 45.44, 0.21, 110),
        preset("usr_2", 81.13, 50.89, 94.01, 21.43, 0.15, 111),
    ]
}

/// The 9 additional workloads of Figure 4 (right), binned by read ratio
/// from 55 % to 95 %.
pub fn extra_workloads() -> Vec<WorkloadPreset> {
    (0..9)
        .map(|i| {
            let read_pct = 55.0 + 5.0 * i as f64;
            let msb_invalid = 18.0 + 3.0 * (i % 4) as f64;
            preset(
                &format!("read{:.0}", read_pct),
                read_pct,
                32.0,
                read_pct + 2.0,
                msb_invalid,
                0.10,
                200 + i,
            )
        })
        .collect()
}

/// Look up one of the 11 paper workloads by name.
pub fn paper_workload(name: &str) -> Option<WorkloadPreset> {
    paper_workloads().into_iter().find(|p| p.spec.name == name)
}

impl WorkloadPreset {
    /// Generate the measured trace: `requests` host requests over a
    /// footprint of `footprint_pages`.
    pub fn generate(&self, footprint_pages: u64, requests: usize) -> crate::trace::Trace {
        self.spec.generate(footprint_pages, requests)
    }

    /// Generate the aging trace: writes-only traffic whose volume is
    /// `aging_volume × footprint` pages, hitting the same update set as
    /// the measured trace (same seed-derived scatter).
    pub fn aging_trace(&self, footprint_pages: u64) -> crate::trace::Trace {
        self.writes_only(footprint_pages, self.aging_volume, 0xA61)
    }

    /// Generate the re-aging trace applied between steady-state refresh
    /// cycles: `reage_volume × footprint` pages of update traffic that
    /// restores the mid-refresh-cycle invalidation pattern.
    pub fn reage_trace(&self, footprint_pages: u64) -> crate::trace::Trace {
        self.writes_only(footprint_pages, self.reage_volume, 0xA62)
    }

    /// A second, independent re-aging trace (different seed) for the final
    /// inter-refresh interval before measurement.
    pub fn reage_trace2(&self, footprint_pages: u64) -> crate::trace::Trace {
        self.writes_only(footprint_pages, self.reage_volume, 0xA63)
    }

    fn writes_only(&self, footprint_pages: u64, volume: f64, salt: u64) -> crate::trace::Trace {
        let target_pages = (footprint_pages as f64 * volume) as u64;
        let mean_write = self.spec.write_size_pages.max(1.0);
        let requests = ((target_pages as f64 / mean_write).ceil() as usize).max(1);
        let spec = WorkloadSpec {
            read_ratio: 0.0,
            seed: self.spec.seed.wrapping_add(salt),
            name: format!("{}-aging", self.spec.name),
            ..self.spec.clone()
        };
        spec.generate(footprint_pages, requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::characterize;

    #[test]
    fn eleven_paper_workloads_in_order() {
        let ws = paper_workloads();
        assert_eq!(ws.len(), 11);
        assert_eq!(ws[0].spec.name, "proj_1");
        assert_eq!(ws[10].spec.name, "usr_2");
    }

    #[test]
    fn lookup_by_name() {
        assert!(paper_workload("stg_1").is_some());
        assert!(paper_workload("nope").is_none());
    }

    #[test]
    fn nine_extra_workloads_cover_the_read_ratio_range() {
        let ws = extra_workloads();
        assert_eq!(ws.len(), 9);
        assert!((ws[0].spec.read_ratio - 0.55).abs() < 1e-9);
        assert!((ws[8].spec.read_ratio - 0.95).abs() < 1e-9);
    }

    #[test]
    fn generated_traces_match_table_iii_request_mix() {
        for p in paper_workloads() {
            let t = p.generate(40_000, 8_000);
            let s = characterize(&t);
            assert!(
                (s.read_ratio * 100.0 - p.paper.read_ratio_pct).abs() < 3.0,
                "{}: read ratio {} vs paper {}",
                p.spec.name,
                s.read_ratio * 100.0,
                p.paper.read_ratio_pct
            );
            assert!(
                (s.mean_read_kb - p.paper.read_kb).abs() / p.paper.read_kb < 0.25,
                "{}: read size {} vs paper {}",
                p.spec.name,
                s.mean_read_kb,
                p.paper.read_kb
            );
        }
    }

    #[test]
    fn aging_trace_is_writes_only_with_requested_volume() {
        let p = paper_workload("proj_1").unwrap();
        let t = p.aging_trace(10_000);
        assert!(t
            .records
            .iter()
            .all(|r| r.kind == crate::trace::OpKind::Write));
        let written: u64 = t.records.iter().map(|r| r.pages as u64).sum();
        let target = (10_000.0 * p.aging_volume) as u64;
        assert!(
            written as f64 > target as f64 * 0.8,
            "volume {written} below target {target}"
        );
    }
}
