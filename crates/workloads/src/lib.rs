//! Synthetic workloads for the IDA-coding reproduction.
//!
//! The paper evaluates on 11 read-intensive volumes of the MSR Cambridge
//! block-trace suite \[25\] (Table III) plus 9 further workloads grouped by
//! read ratio (Figure 4, right). The raw traces are not redistributable
//! offline, so this crate synthesizes traces matched to each workload's
//! *published characteristics*: request read ratio, mean read size, read
//! data ratio, footprint, access skew and update intensity — the
//! distributional properties the paper's results actually depend on.
//!
//! - [`trace`] — the page-aligned trace representation and CSV I/O;
//! - [`dist`] — the samplers (zipf ranks, exponential gaps, size mixes)
//!   built directly on `rand`;
//! - [`synth`] — the trace generator;
//! - [`suite`] — presets for the 11 paper workloads and the 9 extra
//!   read-ratio-binned workloads;
//! - [`stats`] — trace characterization (regenerates Table III columns).
//!
//! # Example
//!
//! ```
//! use ida_workloads::suite;
//!
//! let preset = suite::paper_workload("proj_1").expect("known workload");
//! let trace = preset.generate(64 * 1024 /* footprint pages */, 2_000 /* requests */);
//! let stats = ida_workloads::stats::characterize(&trace);
//! assert!((stats.read_ratio - 0.894).abs() < 0.05);
//! ```

pub mod dist;
pub mod msr;
pub mod stats;
pub mod suite;
pub mod synth;
pub mod trace;

pub use stats::WorkloadStats;
pub use synth::WorkloadSpec;
pub use trace::{OpKind, Trace, TraceRecord};
