//! Page-aligned block traces.
//!
//! Records are already aligned to logical pages (the simulator's unit), so
//! converting to simulator host ops is a field-for-field mapping. A small
//! CSV codec allows traces to be saved and replayed.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Host read.
    Read,
    /// Host write.
    Write,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OpKind::Read => "R",
            OpKind::Write => "W",
        })
    }
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Arrival time in nanoseconds from trace start.
    pub at: u64,
    /// Read or write.
    pub kind: OpKind,
    /// First logical page.
    pub page: u64,
    /// Number of consecutive pages.
    pub pages: u32,
}

/// A complete trace plus the page size its records assume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Logical page size in bytes.
    pub page_size: u32,
    /// Records sorted by arrival time.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Total duration from first to last arrival (ns).
    pub fn span(&self) -> u64 {
        match (self.records.first(), self.records.last()) {
            (Some(f), Some(l)) => l.at - f.at,
            _ => 0,
        }
    }

    /// The highest page touched plus one (the footprint bound).
    pub fn footprint_pages(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.page + r.pages as u64)
            .max()
            .unwrap_or(0)
    }

    /// Write as CSV (`at_ns,kind,page,pages` after a `# page_size=` header).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_csv<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "# page_size={}", self.page_size)?;
        for r in &self.records {
            writeln!(w, "{},{},{},{}", r.at, r.kind, r.page, r.pages)?;
        }
        Ok(())
    }

    /// Parse the CSV form produced by [`Trace::write_csv`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed lines or a missing header.
    pub fn read_csv<R: BufRead>(r: R) -> io::Result<Self> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let mut lines = r.lines();
        let header = lines.next().ok_or_else(|| bad("empty trace".into()))??;
        let page_size: u32 = header
            .strip_prefix("# page_size=")
            .ok_or_else(|| bad(format!("bad header: {header}")))?
            .trim()
            .parse()
            .map_err(|e| bad(format!("bad page size: {e}")))?;
        let mut records = Vec::new();
        for line in lines {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split(',');
            let mut next = || {
                parts
                    .next()
                    .ok_or_else(|| bad(format!("short line: {line}")))
            };
            let at = next()?.parse().map_err(|e| bad(format!("bad time: {e}")))?;
            let kind = match next()? {
                "R" => OpKind::Read,
                "W" => OpKind::Write,
                other => return Err(bad(format!("bad op kind: {other}"))),
            };
            let page = next()?.parse().map_err(|e| bad(format!("bad page: {e}")))?;
            let pages = next()?
                .parse()
                .map_err(|e| bad(format!("bad count: {e}")))?;
            records.push(TraceRecord {
                at,
                kind,
                page,
                pages,
            });
        }
        Ok(Trace { page_size, records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            page_size: 8192,
            records: vec![
                TraceRecord {
                    at: 0,
                    kind: OpKind::Write,
                    page: 0,
                    pages: 4,
                },
                TraceRecord {
                    at: 100,
                    kind: OpKind::Read,
                    page: 2,
                    pages: 1,
                },
                TraceRecord {
                    at: 250,
                    kind: OpKind::Read,
                    page: 10,
                    pages: 8,
                },
            ],
        }
    }

    #[test]
    fn csv_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let parsed = Trace::read_csv(&buf[..]).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn span_and_footprint() {
        let t = sample();
        assert_eq!(t.span(), 250);
        assert_eq!(t.footprint_pages(), 18);
    }

    #[test]
    fn empty_trace_metrics_are_zero() {
        let t = Trace {
            page_size: 4096,
            records: vec![],
        };
        assert_eq!(t.span(), 0);
        assert_eq!(t.footprint_pages(), 0);
    }

    #[test]
    fn malformed_csv_rejected() {
        assert!(Trace::read_csv(&b"nonsense"[..]).is_err());
        assert!(Trace::read_csv(&b"# page_size=8192\n1,X,0,1"[..]).is_err());
        assert!(Trace::read_csv(&b"# page_size=8192\n1,R,0"[..]).is_err());
    }
}
