//! Distribution samplers used by the trace generator.
//!
//! Implemented directly on the workspace's deterministic RNG
//! ([`ida_obs::rng::Rng64`]) so the crate needs no external dependencies:
//! a Zipf rank sampler (precomputed CDF + binary search), an
//! exponential gap sampler (inverse CDF), and a rank-scattering
//! multiplicative hash that spreads hot ranks over the address space.

use ida_obs::rng::Rng64;

/// Zipf(θ) distribution over ranks `0..n` (rank 0 hottest).
///
/// Sampling uses a precomputed cumulative table and binary search —
/// O(n) memory, O(log n) per sample, exact.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A Zipf distribution over `n` ranks with exponent `theta`
    /// (`theta = 0` is uniform; ≈ 0.8–1.2 matches storage-trace skew).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(theta >= 0.0, "zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is degenerate (single rank).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Sample a rank.
    pub fn sample(&self, rng: &mut Rng64) -> usize {
        let u = rng.gen_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Sample an exponential gap with the given mean (ns), via inverse CDF.
pub fn exponential_gap(rng: &mut Rng64, mean_ns: f64) -> u64 {
    let u = rng.gen_range_f64(f64::EPSILON, 1.0);
    (-mean_ns * u.ln()).round().max(0.0) as u64
}

/// A bijective rank scatterer: maps rank `i` to `(i·g) mod n` with
/// `gcd(g, n) = 1`, so the hottest ranks do not cluster at the start of
/// the address space (which would concentrate them in a handful of flash
/// blocks) yet every page is reachable exactly once.
#[derive(Debug, Clone, Copy)]
pub struct Scatter {
    n: u64,
    mult: u64,
}

impl Scatter {
    /// A scatterer over `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64) -> Self {
        Self::with_salt(n, 0)
    }

    /// A scatterer over `0..n` whose mapping differs per `salt`, so two
    /// streams (e.g. reads and updates) can rank the same domain with
    /// different hot sets.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_salt(n: u64, salt: u64) -> Self {
        assert!(n > 0, "scatter domain must be non-empty");
        // Start near a salt-dependent fraction of n and walk down to the
        // nearest multiplier coprime with n (guaranteed to exist: 1 is
        // coprime with everything).
        let frac = [
            0.618_033_988_75,
            0.414_213_562_37,
            0.324_717_957_24,
            0.754_877_666_25,
        ][(salt % 4) as usize];
        let mut mult = ((n as f64 * frac) as u64).max(1);
        while gcd(mult, n) != 1 {
            mult -= 1;
        }
        Scatter { n, mult }
    }

    /// The scattered position of rank `i`.
    pub fn apply(&self, i: u64) -> u64 {
        ((i % self.n) as u128 * self.mult as u128 % self.n as u128) as u64
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// A request-size sampler: a mix of small (1-page), medium and large
/// extents tuned to hit a target mean while keeping the long-tailed shape
/// of real block traces.
#[derive(Debug, Clone)]
pub struct SizeMix {
    mean_pages: f64,
    max_pages: u32,
}

impl SizeMix {
    /// A size distribution with the given mean (pages ≥ 1) and cap.
    ///
    /// # Panics
    ///
    /// Panics if `mean_pages < 1` or the cap is below the mean.
    pub fn new(mean_pages: f64, max_pages: u32) -> Self {
        assert!(mean_pages >= 1.0, "mean size must be at least one page");
        assert!(
            max_pages as f64 >= mean_pages,
            "size cap below the requested mean"
        );
        SizeMix {
            mean_pages,
            max_pages,
        }
    }

    /// Sample a request size in pages (≥ 1).
    ///
    /// Geometric-like: with probability 1/mean stop at each page. The
    /// geometric mean is exactly `mean_pages` (before capping).
    pub fn sample(&self, rng: &mut Rng64) -> u32 {
        if self.mean_pages <= 1.0 {
            return 1;
        }
        let p_stop = 1.0 / self.mean_pages;
        let mut size = 1;
        while size < self.max_pages && !rng.gen_bool(p_stop) {
            size += 1;
        }
        size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_rank_zero_is_hottest() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = Rng64::seed_from_u64(1);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[500]);
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = Rng64::seed_from_u64(2);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.1, "uniform spread expected");
    }

    #[test]
    fn exponential_gap_has_requested_mean() {
        let mut rng = Rng64::seed_from_u64(3);
        let n = 100_000;
        let total: u64 = (0..n).map(|_| exponential_gap(&mut rng, 1000.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1000.0).abs() < 20.0, "mean {mean}");
    }

    #[test]
    fn scatter_is_a_bijection_for_any_n() {
        for n in [1u64, 2, 7, 4096, 5000, 12345] {
            let sc = Scatter::new(n);
            let mut seen = vec![false; n as usize];
            for i in 0..n {
                let s = sc.apply(i);
                assert!(!seen[s as usize], "collision at {i} for n={n}");
                seen[s as usize] = true;
            }
        }
    }

    #[test]
    fn scatter_spreads_adjacent_ranks() {
        let sc = Scatter::new(100_000);
        let d = sc.apply(1).abs_diff(sc.apply(0));
        assert!(d > 1_000, "adjacent ranks should land far apart, got {d}");
    }

    #[test]
    fn size_mix_hits_the_mean() {
        let s = SizeMix::new(5.0, 256);
        let mut rng = Rng64::seed_from_u64(4);
        let n = 100_000;
        let total: u64 = (0..n).map(|_| s.sample(&mut rng) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn size_mix_of_one_is_constant() {
        let s = SizeMix::new(1.0, 16);
        let mut rng = Rng64::seed_from_u64(5);
        assert!((0..100).all(|_| s.sample(&mut rng) == 1));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty_domain() {
        let _ = Zipf::new(0, 1.0);
    }
}
