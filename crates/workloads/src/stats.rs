//! Trace characterization — regenerates the Table III columns from a
//! trace (except the MSB-invalid fraction, which is a *device-side*
//! property measured by the simulator's read breakdown).

use crate::trace::{OpKind, Trace};

/// Aggregate characteristics of a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkloadStats {
    /// Total requests.
    pub requests: u64,
    /// Fraction of requests that are reads.
    pub read_ratio: f64,
    /// Mean read request size, KB.
    pub mean_read_kb: f64,
    /// Mean write request size, KB.
    pub mean_write_kb: f64,
    /// Read share of transferred bytes.
    pub read_data_ratio: f64,
    /// Trace duration, seconds.
    pub span_s: f64,
    /// Footprint, MB.
    pub footprint_mb: f64,
}

/// Compute [`WorkloadStats`] for `trace`.
pub fn characterize(trace: &Trace) -> WorkloadStats {
    let page_kb = trace.page_size as f64 / 1024.0;
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut read_pages = 0u64;
    let mut write_pages = 0u64;
    for r in &trace.records {
        match r.kind {
            OpKind::Read => {
                reads += 1;
                read_pages += r.pages as u64;
            }
            OpKind::Write => {
                writes += 1;
                write_pages += r.pages as u64;
            }
        }
    }
    let total = reads + writes;
    let total_pages = read_pages + write_pages;
    WorkloadStats {
        requests: total,
        read_ratio: if total == 0 {
            0.0
        } else {
            reads as f64 / total as f64
        },
        mean_read_kb: if reads == 0 {
            0.0
        } else {
            read_pages as f64 * page_kb / reads as f64
        },
        mean_write_kb: if writes == 0 {
            0.0
        } else {
            write_pages as f64 * page_kb / writes as f64
        },
        read_data_ratio: if total_pages == 0 {
            0.0
        } else {
            read_pages as f64 / total_pages as f64
        },
        span_s: trace.span() as f64 / 1e9,
        footprint_mb: trace.footprint_pages() as f64 * page_kb / 1024.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecord;

    #[test]
    fn characterize_counts_mix_and_sizes() {
        let t = Trace {
            page_size: 8192,
            records: vec![
                TraceRecord {
                    at: 0,
                    kind: OpKind::Read,
                    page: 0,
                    pages: 4,
                },
                TraceRecord {
                    at: 10,
                    kind: OpKind::Read,
                    page: 8,
                    pages: 2,
                },
                TraceRecord {
                    at: 20,
                    kind: OpKind::Write,
                    page: 0,
                    pages: 3,
                },
                TraceRecord {
                    at: 1_000_000_000,
                    kind: OpKind::Read,
                    page: 16,
                    pages: 6,
                },
            ],
        };
        let s = characterize(&t);
        assert_eq!(s.requests, 4);
        assert!((s.read_ratio - 0.75).abs() < 1e-9);
        assert!((s.mean_read_kb - 32.0).abs() < 1e-9); // (4+2+6)/3 pages * 8KB
        assert!((s.mean_write_kb - 24.0).abs() < 1e-9);
        assert!((s.read_data_ratio - 12.0 / 15.0).abs() < 1e-9);
        assert!((s.span_s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let t = Trace {
            page_size: 4096,
            records: vec![],
        };
        assert_eq!(characterize(&t), WorkloadStats::default());
    }
}
