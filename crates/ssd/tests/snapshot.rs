//! Differential snapshot invariant (ISSUE 9): a simulator restored from a
//! snapshot must continue *byte-for-bit* identically to the one that kept
//! running — same report JSON, same trace event stream — across randomized
//! configurations, fault plans (including power-loss crash points), aging
//! models and snapshot points (before and after arming).

use ida_faults::{AgingConfig, FaultConfig};
use ida_flash::geometry::Geometry;
use ida_ftl::config::FtlConfig;
use ida_obs::rng::Rng64;
use ida_obs::trace::{SinkHandle, TraceSink, VecSink};
use ida_ssd::config::SsdConfig;
use ida_ssd::request::{HostOp, HostOpKind};
use ida_ssd::sim::Simulator;
use std::cell::RefCell;
use std::rc::Rc;

/// A randomized tiny-geometry configuration.
fn random_cfg(rng: &mut Rng64) -> SsdConfig {
    let mut cfg = SsdConfig::tiny_test();
    cfg.ftl.geometry = Geometry::tiny().with_bits_per_cell(2 + rng.gen_below(2) as u32);
    cfg.ftl.refresh_mode = if rng.gen_bool(0.5) {
        ida_core::refresh::RefreshMode::Ida
    } else {
        ida_core::refresh::RefreshMode::Baseline
    };
    cfg.ftl.adjust_error_rate = rng.gen_range_f64(0.0, 0.4);
    cfg.ftl.seed = rng.next_u64();
    // Spares so injected retirements do not immediately degrade the device.
    cfg.ftl.spare_blocks_per_plane = rng.gen_below(3) as u32;
    if rng.gen_bool(0.3) {
        cfg.retry = ida_ssd::retry::RetryConfig::late_lifetime(0.2, rng.next_u64());
    }
    cfg
}

/// A sorted random host trace over the exported LPN space.
fn random_trace(rng: &mut Rng64, cfg: &FtlConfig, requests: usize, write_frac: f64) -> Vec<HostOp> {
    let exported = cfg.exported_pages();
    let mut at = 0;
    (0..requests)
        .map(|_| {
            at += rng.gen_range_u64(1_000, 400_000);
            let kind = if rng.gen_bool(write_frac) {
                HostOpKind::Write
            } else {
                HostOpKind::Read
            };
            let pages = 1 + rng.gen_below(3) as u32;
            let lpn = rng.gen_below(exported.saturating_sub(pages as u64).max(1));
            HostOp {
                at,
                kind,
                lpn,
                pages,
            }
        })
        .collect()
}

fn attach_vec_sink(sim: &mut Simulator) -> Rc<RefCell<VecSink>> {
    let sink = Rc::new(RefCell::new(VecSink::default()));
    let dynamic: Rc<RefCell<dyn TraceSink>> = sink.clone();
    sim.set_trace(SinkHandle::from_shared(dynamic));
    sink
}

fn trace_lines(sink: &Rc<RefCell<VecSink>>) -> Vec<String> {
    sink.borrow()
        .events
        .iter()
        .map(|e| e.to_json_line())
        .collect()
}

/// Warm a simulator the way the bench runner does: prefill, age, refresh.
fn warm(sim: &mut Simulator, rng: &mut Rng64) {
    let cfg = sim.config().ftl.clone();
    let exported = cfg.exported_pages();
    sim.prefill(0..exported / 2);
    let aging = random_trace(rng, &cfg, 300, 0.8);
    sim.age(&aging);
    let span = aging.last().map(|op| op.at).unwrap_or(1).max(1);
    sim.set_refresh_period(span * 4);
    sim.force_refresh_all(span / 2);
}

/// Continue both simulators identically past the snapshot point and demand
/// byte-equal reports and traces.
fn assert_identical_continuation(
    mut cold: Simulator,
    mut restored: Simulator,
    measured: Vec<HostOp>,
    spans: bool,
) {
    cold.set_spans(spans);
    restored.set_spans(spans);
    let cold_sink = attach_vec_sink(&mut cold);
    let restored_sink = attach_vec_sink(&mut restored);
    let cold_report = cold.run(measured.clone());
    let restored_report = restored.run(measured);
    assert_eq!(
        cold_report.to_json(),
        restored_report.to_json(),
        "restored run diverged from cold run (report)"
    );
    assert_eq!(
        trace_lines(&cold_sink),
        trace_lines(&restored_sink),
        "restored run diverged from cold run (trace)"
    );
    // And the post-run states are still interchangeable.
    assert_eq!(cold.snapshot(), restored.snapshot());
}

#[test]
fn restore_then_run_byte_equals_cold_run() {
    let mut rng = Rng64::seed_from_u64(0x5AAF_0001);
    for iter in 0..6 {
        let cfg = random_cfg(&mut rng);
        let mut cold = Simulator::new(cfg.clone());
        warm(&mut cold, &mut rng);

        let snap = cold.snapshot();
        let restored = Simulator::from_snapshot(&snap)
            .unwrap_or_else(|e| panic!("iteration {iter}: restore failed: {e}"));
        // Canonical form: re-encoding the restored state reproduces the
        // exact snapshot bytes.
        assert_eq!(restored.snapshot(), snap, "iteration {iter}: not canonical");

        let measured = random_trace(&mut rng, &cfg.ftl, 400, 0.5);
        assert_identical_continuation(cold, restored, measured, iter % 2 == 0);
    }
}

#[test]
fn restore_under_armed_faults_and_aging_is_identical() {
    let mut rng = Rng64::seed_from_u64(0x5AAF_0002);
    let levels = ["low", "mid", "high"];
    for (iter, level) in levels.iter().enumerate() {
        let cfg = random_cfg(&mut rng);
        let mut cold = Simulator::new(cfg.clone());
        warm(&mut cold, &mut rng);

        // Arm faults (the "high" level schedules power-loss crash points
        // mid-run) and aging *before* the snapshot: the injector's armed
        // RNG/counter state must survive the round-trip.
        let fault_seed = rng.next_u64();
        let aging_seed = rng.next_u64();
        cold.arm_faults(FaultConfig::preset(level, fault_seed).unwrap());
        cold.arm_aging(AgingConfig::preset(level, aging_seed).unwrap());

        let snap = cold.snapshot();
        let restored = Simulator::from_snapshot(&snap)
            .unwrap_or_else(|e| panic!("level {level}: restore failed: {e}"));
        assert_eq!(restored.snapshot(), snap, "level {level}: not canonical");

        let measured = random_trace(&mut rng, &cfg.ftl, 500, 0.5);
        assert_identical_continuation(cold, restored, measured, iter % 2 == 1);
    }
}

#[test]
fn snapshot_mid_crash_schedule_resumes_pending_losses() {
    // Snapshot *between* two power-loss events: the restored injector must
    // fire the remaining crash point at the same operation index.
    let mut rng = Rng64::seed_from_u64(0x5AAF_0003);
    let cfg = random_cfg(&mut rng);
    let mut cold = Simulator::new(cfg.clone());
    warm(&mut cold, &mut rng);

    let mut faults = FaultConfig::preset("mid", rng.next_u64()).unwrap();
    faults.power_loss_ops = vec![200, 900];
    cold.arm_faults(faults);
    // Drive past the first crash point only.
    let first = random_trace(&mut rng, &cfg.ftl, 150, 0.8);
    cold.run(first);

    let snap = cold.snapshot();
    let restored = Simulator::from_snapshot(&snap).expect("restore");
    assert_eq!(restored.snapshot(), snap);

    let measured = random_trace(&mut rng, &cfg.ftl, 600, 0.6);
    assert_identical_continuation(cold, restored, measured, true);
}

#[test]
fn corrupt_snapshots_are_rejected() {
    let mut rng = Rng64::seed_from_u64(0x5AAF_0004);
    let cfg = random_cfg(&mut rng);
    let mut sim = Simulator::new(cfg);
    warm(&mut sim, &mut rng);
    let snap = sim.snapshot();

    assert!(Simulator::from_snapshot(&snap[..snap.len() - 1]).is_err());
    let mut flipped = snap.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    assert!(Simulator::from_snapshot(&flipped).is_err());
    let mut nomagic = snap;
    nomagic[0] = b'Z';
    assert!(Simulator::from_snapshot(&nomagic).is_err());
}
