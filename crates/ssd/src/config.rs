//! Simulator configuration.

use crate::retry::RetryConfig;
use ida_core::refresh::RefreshMode;
use ida_flash::geometry::Geometry;
use ida_flash::timing::FlashTiming;
use ida_ftl::FtlConfig;

/// Full configuration of a simulated SSD.
#[derive(Debug, Clone, PartialEq)]
pub struct SsdConfig {
    /// FTL configuration (geometry, refresh, GC, IDA error rate).
    pub ftl: FtlConfig,
    /// Flash timing parameters.
    pub timing: FlashTiming,
    /// Read-retry model (disabled by default; Section V-F experiments
    /// enable it).
    pub retry: RetryConfig,
}

ida_snap::snap_struct!(SsdConfig { ftl, timing, retry });

impl SsdConfig {
    /// The paper's baseline TLC SSD at experiment scale (scaled geometry,
    /// Table II timing, baseline refresh).
    pub fn paper_baseline() -> Self {
        SsdConfig {
            ftl: FtlConfig::default(),
            timing: FlashTiming::paper_tlc(),
            retry: RetryConfig::disabled(),
        }
    }

    /// The paper baseline with the IDA-modified refresh at corruption rate
    /// `error_rate` (e.g. `0.20` for IDA-Coding-E20).
    pub fn paper_ida(error_rate: f64) -> Self {
        let mut cfg = Self::paper_baseline();
        cfg.ftl.refresh_mode = RefreshMode::Ida;
        cfg.ftl.adjust_error_rate = error_rate;
        cfg
    }

    /// An MLC variant of the paper configuration (Section V-G).
    pub fn paper_mlc(mode: RefreshMode, error_rate: f64) -> Self {
        let mut cfg = Self::paper_baseline();
        cfg.ftl.geometry = cfg.ftl.geometry.with_bits_per_cell(2);
        cfg.ftl.refresh_mode = mode;
        cfg.ftl.adjust_error_rate = error_rate;
        cfg.timing = FlashTiming::paper_mlc();
        cfg
    }

    /// A QLC variant (the paper's future-work device, Figure 6).
    pub fn paper_qlc(mode: RefreshMode, error_rate: f64) -> Self {
        let mut cfg = Self::paper_baseline();
        cfg.ftl.geometry = cfg.ftl.geometry.with_bits_per_cell(4);
        cfg.ftl.refresh_mode = mode;
        cfg.ftl.adjust_error_rate = error_rate;
        cfg
    }

    /// A tiny configuration for unit tests: tiny geometry, paper timing.
    pub fn tiny_test() -> Self {
        SsdConfig {
            ftl: FtlConfig {
                geometry: Geometry::tiny(),
                ..FtlConfig::default()
            },
            timing: FlashTiming::paper_tlc(),
            retry: RetryConfig::disabled(),
        }
    }
}

impl Default for SsdConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ida_config_flips_refresh_mode() {
        let cfg = SsdConfig::paper_ida(0.2);
        assert_eq!(cfg.ftl.refresh_mode, RefreshMode::Ida);
        assert_eq!(cfg.ftl.adjust_error_rate, 0.2);
    }

    #[test]
    fn mlc_config_uses_two_bits_and_mlc_timing() {
        let cfg = SsdConfig::paper_mlc(RefreshMode::Ida, 0.2);
        assert_eq!(cfg.ftl.geometry.bits_per_cell, 2);
        assert_eq!(cfg.timing, FlashTiming::paper_mlc());
    }

    #[test]
    fn qlc_config_uses_four_bits() {
        let cfg = SsdConfig::paper_qlc(RefreshMode::Baseline, 0.0);
        assert_eq!(cfg.ftl.geometry.bits_per_cell, 4);
    }
}
