//! Simulator configuration.

use crate::retry::RetryConfig;
use ida_core::refresh::RefreshMode;
use ida_flash::geometry::Geometry;
use ida_flash::timing::FlashTiming;
use ida_ftl::FtlConfig;

/// A structurally invalid [`SsdConfig`], rejected by
/// [`SsdConfigBuilder::build`] before a simulator is ever constructed.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A geometry dimension is zero — the array would hold no pages.
    ZeroGeometry {
        /// The zero dimension.
        field: &'static str,
    },
    /// `bits_per_cell` outside the modeled 1–4 (SLC–QLC) range.
    BadBitsPerCell {
        /// The rejected value.
        bits: u32,
    },
    /// A fraction-valued knob outside its domain (over-provisioning must
    /// be in `[0, 1)`, the IDA adjust error rate in `[0, 1]`).
    BadFraction {
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A zero refresh period: every block would be due at once, forever.
    ZeroRefreshPeriod,
    /// GC watermarks inverted or zero — collection could never settle.
    BadWatermarks {
        /// The low (trigger) watermark.
        low: u32,
        /// The high (stop) watermark.
        high: u32,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroGeometry { field } => {
                write!(f, "geometry dimension {field} must be positive")
            }
            ConfigError::BadBitsPerCell { bits } => {
                write!(f, "bits_per_cell must be 1-4 (SLC-QLC), got {bits}")
            }
            ConfigError::BadFraction { field, value } => {
                write!(f, "{field} out of range: {value}")
            }
            ConfigError::ZeroRefreshPeriod => write!(f, "refresh_period must be positive"),
            ConfigError::BadWatermarks { low, high } => write!(
                f,
                "GC watermarks must satisfy 0 < low <= high, got low={low} high={high}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full configuration of a simulated SSD.
#[derive(Debug, Clone, PartialEq)]
pub struct SsdConfig {
    /// FTL configuration (geometry, refresh, GC, IDA error rate).
    pub ftl: FtlConfig,
    /// Flash timing parameters.
    pub timing: FlashTiming,
    /// Read-retry model (disabled by default; Section V-F experiments
    /// enable it).
    pub retry: RetryConfig,
}

ida_snap::snap_struct!(SsdConfig { ftl, timing, retry });

/// Validating constructor for [`SsdConfig`]: starts from
/// [`SsdConfig::paper_baseline`], lets callers override the pieces they
/// care about, and [`build`](Self::build) rejects configurations no real
/// device could have (zero geometry, out-of-range fractions, inverted GC
/// watermarks) with a typed [`ConfigError`].
#[derive(Debug, Clone)]
pub struct SsdConfigBuilder {
    cfg: SsdConfig,
}

impl SsdConfigBuilder {
    /// Replace the whole FTL configuration.
    pub fn ftl(mut self, ftl: FtlConfig) -> Self {
        self.cfg.ftl = ftl;
        self
    }

    /// Replace the array geometry.
    pub fn geometry(mut self, geometry: Geometry) -> Self {
        self.cfg.ftl.geometry = geometry;
        self
    }

    /// Replace the flash timing parameters.
    pub fn timing(mut self, timing: FlashTiming) -> Self {
        self.cfg.timing = timing;
        self
    }

    /// Replace the read-retry model.
    pub fn retry(mut self, retry: RetryConfig) -> Self {
        self.cfg.retry = retry;
        self
    }

    /// Select the refresh flow (baseline or IDA-modified).
    pub fn refresh_mode(mut self, mode: RefreshMode) -> Self {
        self.cfg.ftl.refresh_mode = mode;
        self
    }

    /// Set the IDA voltage-adjustment corruption rate (the E0–E80 knob).
    pub fn adjust_error_rate(mut self, rate: f64) -> Self {
        self.cfg.ftl.adjust_error_rate = rate;
        self
    }

    /// Validate and produce the configuration.
    ///
    /// # Errors
    ///
    /// Any [`ConfigError`]: zero geometry dimensions, `bits_per_cell`
    /// outside 1–4, fractions outside their domain, a zero refresh
    /// period, or inverted GC watermarks.
    pub fn build(self) -> Result<SsdConfig, ConfigError> {
        let cfg = self.cfg;
        let g = cfg.ftl.geometry;
        for (field, v) in [
            ("channels", g.channels),
            ("chips_per_channel", g.chips_per_channel),
            ("dies_per_chip", g.dies_per_chip),
            ("planes_per_die", g.planes_per_die),
            ("blocks_per_plane", g.blocks_per_plane),
            ("wordlines_per_block", g.wordlines_per_block),
            ("page_size_bytes", g.page_size_bytes),
        ] {
            if v == 0 {
                return Err(ConfigError::ZeroGeometry { field });
            }
        }
        if !(1..=4).contains(&g.bits_per_cell) {
            return Err(ConfigError::BadBitsPerCell {
                bits: g.bits_per_cell,
            });
        }
        let op = cfg.ftl.overprovision;
        if !(0.0..1.0).contains(&op) {
            return Err(ConfigError::BadFraction {
                field: "overprovision",
                value: op,
            });
        }
        let err = cfg.ftl.adjust_error_rate;
        if !(0.0..=1.0).contains(&err) {
            return Err(ConfigError::BadFraction {
                field: "adjust_error_rate",
                value: err,
            });
        }
        if cfg.ftl.refresh_period == 0 {
            return Err(ConfigError::ZeroRefreshPeriod);
        }
        let (low, high) = (cfg.ftl.gc_low_watermark, cfg.ftl.gc_high_watermark);
        if low == 0 || low > high {
            return Err(ConfigError::BadWatermarks { low, high });
        }
        Ok(cfg)
    }
}

impl SsdConfig {
    /// Start a validating builder seeded with [`Self::paper_baseline`].
    pub fn builder() -> SsdConfigBuilder {
        SsdConfigBuilder {
            cfg: Self::paper_baseline(),
        }
    }

    /// The paper's baseline TLC SSD at experiment scale (scaled geometry,
    /// Table II timing, baseline refresh).
    pub fn paper_baseline() -> Self {
        SsdConfig {
            ftl: FtlConfig::default(),
            timing: FlashTiming::paper_tlc(),
            retry: RetryConfig::disabled(),
        }
    }

    /// The paper baseline with the IDA-modified refresh at corruption rate
    /// `error_rate` (e.g. `0.20` for IDA-Coding-E20).
    pub fn paper_ida(error_rate: f64) -> Self {
        let mut cfg = Self::paper_baseline();
        cfg.ftl.refresh_mode = RefreshMode::Ida;
        cfg.ftl.adjust_error_rate = error_rate;
        cfg
    }

    /// An MLC variant of the paper configuration (Section V-G).
    pub fn paper_mlc(mode: RefreshMode, error_rate: f64) -> Self {
        let mut cfg = Self::paper_baseline();
        cfg.ftl.geometry = cfg.ftl.geometry.with_bits_per_cell(2);
        cfg.ftl.refresh_mode = mode;
        cfg.ftl.adjust_error_rate = error_rate;
        cfg.timing = FlashTiming::paper_mlc();
        cfg
    }

    /// A QLC variant (the paper's future-work device, Figure 6).
    pub fn paper_qlc(mode: RefreshMode, error_rate: f64) -> Self {
        let mut cfg = Self::paper_baseline();
        cfg.ftl.geometry = cfg.ftl.geometry.with_bits_per_cell(4);
        cfg.ftl.refresh_mode = mode;
        cfg.ftl.adjust_error_rate = error_rate;
        cfg
    }

    /// A tiny configuration for unit tests: tiny geometry, paper timing.
    pub fn tiny_test() -> Self {
        SsdConfig {
            ftl: FtlConfig {
                geometry: Geometry::tiny(),
                ..FtlConfig::default()
            },
            timing: FlashTiming::paper_tlc(),
            retry: RetryConfig::disabled(),
        }
    }
}

impl Default for SsdConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ida_config_flips_refresh_mode() {
        let cfg = SsdConfig::paper_ida(0.2);
        assert_eq!(cfg.ftl.refresh_mode, RefreshMode::Ida);
        assert_eq!(cfg.ftl.adjust_error_rate, 0.2);
    }

    #[test]
    fn mlc_config_uses_two_bits_and_mlc_timing() {
        let cfg = SsdConfig::paper_mlc(RefreshMode::Ida, 0.2);
        assert_eq!(cfg.ftl.geometry.bits_per_cell, 2);
        assert_eq!(cfg.timing, FlashTiming::paper_mlc());
    }

    #[test]
    fn qlc_config_uses_four_bits() {
        let cfg = SsdConfig::paper_qlc(RefreshMode::Baseline, 0.0);
        assert_eq!(cfg.ftl.geometry.bits_per_cell, 4);
    }

    #[test]
    fn builder_accepts_every_paper_preset() {
        assert_eq!(
            SsdConfig::builder().build().unwrap(),
            SsdConfig::paper_baseline()
        );
        let ida = SsdConfig::builder()
            .refresh_mode(RefreshMode::Ida)
            .adjust_error_rate(0.2)
            .build()
            .unwrap();
        assert_eq!(ida, SsdConfig::paper_ida(0.2));
        let tiny = SsdConfig::builder()
            .geometry(Geometry::tiny())
            .build()
            .unwrap();
        assert_eq!(tiny, SsdConfig::tiny_test());
    }

    #[test]
    fn builder_rejects_zero_geometry() {
        let mut g = Geometry::tiny();
        g.blocks_per_plane = 0;
        assert_eq!(
            SsdConfig::builder().geometry(g).build().unwrap_err(),
            ConfigError::ZeroGeometry {
                field: "blocks_per_plane"
            }
        );
        let mut g = Geometry::tiny();
        g.channels = 0;
        let err = SsdConfig::builder().geometry(g).build().unwrap_err();
        assert!(err.to_string().contains("channels"));
    }

    #[test]
    fn builder_rejects_out_of_range_knobs() {
        let mut g = Geometry::tiny();
        g.bits_per_cell = 5;
        assert_eq!(
            SsdConfig::builder().geometry(g).build().unwrap_err(),
            ConfigError::BadBitsPerCell { bits: 5 }
        );
        assert_eq!(
            SsdConfig::builder()
                .adjust_error_rate(1.5)
                .build()
                .unwrap_err(),
            ConfigError::BadFraction {
                field: "adjust_error_rate",
                value: 1.5
            }
        );
        let ftl = FtlConfig {
            overprovision: 1.0,
            ..FtlConfig::default()
        };
        assert!(matches!(
            SsdConfig::builder().ftl(ftl).build().unwrap_err(),
            ConfigError::BadFraction {
                field: "overprovision",
                ..
            }
        ));
        let ftl = FtlConfig {
            refresh_period: 0,
            ..FtlConfig::default()
        };
        assert_eq!(
            SsdConfig::builder().ftl(ftl).build().unwrap_err(),
            ConfigError::ZeroRefreshPeriod
        );
        let ftl = FtlConfig {
            gc_low_watermark: 6,
            gc_high_watermark: 4,
            ..FtlConfig::default()
        };
        assert_eq!(
            SsdConfig::builder().ftl(ftl).build().unwrap_err(),
            ConfigError::BadWatermarks { low: 6, high: 4 }
        );
    }
}
