//! Event-driven SSD simulator.
//!
//! This crate plays the role DiskSim + the Microsoft SSD extension played
//! in the paper's evaluation: it takes a host I/O trace, drives the FTL
//! (`ida-ftl`), and charges every flash operation with realistic timing
//! and resource contention:
//!
//! - each **die** executes one array operation (sense / program / erase /
//!   voltage-adjust) at a time;
//! - each **channel** moves one page at a time between chip and controller;
//! - **ECC decode** adds a fixed pipeline latency to reads;
//! - **read-first scheduling**: host reads overtake queued writes and
//!   background (GC/refresh) work on the same die;
//! - the optional **read-retry model** (Section V-F) re-senses pages when
//!   ECC decoding fails, multiplying the array time.
//!
//! Host requests are split into page-sized flash operations; a request
//! completes when its last page completes, and its **response time**
//! (completion − arrival, queueing included) feeds the metrics that
//! reproduce the paper's figures.
//!
//! # Example
//!
//! ```
//! use ida_ssd::{HostOp, HostOpKind, Simulator, SsdConfig};
//!
//! let mut sim = Simulator::new(SsdConfig::tiny_test());
//! // Write four pages back-to-back, then read them.
//! let mut trace = Vec::new();
//! for i in 0..4 {
//!     trace.push(HostOp { at: 0, kind: HostOpKind::Write, lpn: i, pages: 1 });
//! }
//! for i in 0..4 {
//!     trace.push(HostOp { at: 50_000_000, kind: HostOpKind::Read, lpn: i, pages: 1 });
//! }
//! let report = sim.run(trace);
//! assert_eq!(report.reads.count, 4);
//! assert!(report.reads.mean() > 0.0);
//! ```

pub mod config;
pub mod event;
pub mod metrics;
pub mod request;
pub mod retry;
pub mod sim;
pub mod source;

pub use config::{ConfigError, SsdConfig, SsdConfigBuilder};
pub use metrics::{LatencyStats, ReadBreakdown, Report};
pub use request::{HostOp, HostOpKind};
pub use retry::RetryModel;
pub use sim::{SimError, Simulator};
pub use source::{ArrivalSource, ClosedLoopSource, ListSource, Pull, SourcedOp};
