//! The event-driven simulation engine.

use crate::config::SsdConfig;
use crate::event::EventQueue;
use crate::metrics::Report;
use crate::request::{HostOp, HostOpKind, PendingRequest};
use crate::retry::{ReadLadder, RetryModel};
use crate::source::{ArrivalSource, Pull};
use ida_faults::{AgingConfig, FaultConfig};
use ida_flash::addr::BlockAddr;
use ida_flash::timing::SimTime;
use ida_ftl::block::BlockState;
use ida_ftl::{FlashOp, FlashOpKind, Ftl, FtlError, Lpn, OpOrigin, Priority};
use ida_obs::gauge::GaugeSet;
use ida_obs::progress::Progress;
use ida_obs::span::{Phase, PhaseNs, ALL_PHASES, QUEUE_CLASSES};
use ida_obs::trace::{HostClass, SinkHandle, TraceEvent};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

fn host_class(kind: HostOpKind) -> HostClass {
    match kind {
        HostOpKind::Read => HostClass::Read,
        HostOpKind::Write => HostClass::Write,
    }
}

/// Queue-interference class of an op's origin: the index into
/// [`SimOp::charges`] and the leading [`QUEUE_CLASSES`] phases
/// (positions pinned by `ida_obs::span` tests).
fn queue_class(origin: OpOrigin) -> u8 {
    match origin {
        OpOrigin::Host => 0,    // Phase::QueueHost
        OpOrigin::Gc => 1,      // Phase::QueueGc
        OpOrigin::Refresh => 2, // Phase::QueueRefresh
    }
}

/// Charge class for power-loss recovery stalls ([`Phase::Recovery`]).
const RECOVERY_CLASS: u8 = 3;

/// A run rejected before (or while) simulating — the typed alternative to
/// the panics in [`Simulator::run`] / [`Simulator::run_closed_loop`], for
/// user-supplied traces reaching the simulator through the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// The trace is not sorted by arrival time: entry `index` arrives at
    /// `at`, earlier than its predecessor's `prev`.
    UnsortedTrace {
        /// Index of the offending trace entry.
        index: usize,
        /// Its arrival offset.
        at: SimTime,
        /// The (later) arrival offset of the entry before it.
        prev: SimTime,
    },
    /// An [`ArrivalSource`] reported [`Pull::Blocked`] with no request in
    /// flight: no completion can ever unblock it.
    StalledSource,
    /// A closed-loop run was requested with a zero queue depth: no
    /// request could ever be admitted.
    ZeroQueueDepth,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnsortedTrace { index, at, prev } => write!(
                f,
                "trace not sorted by arrival time: entry {index} arrives at \
                 {at} ns, before the previous entry's {prev} ns"
            ),
            SimError::StalledSource => write!(
                f,
                "arrival source blocked with no request in flight (deadlock)"
            ),
            SimError::ZeroQueueDepth => {
                write!(f, "closed-loop queue depth must be positive")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// An operation queued on a die, with its request linkage and sampled
/// retry count.
#[derive(Debug, Clone, Copy)]
struct SimOp {
    op: FlashOp,
    req: Option<usize>,
    retries: u32,
    /// Injected transient-fault retries (reads only): each one re-senses
    /// the wordline on top of the `retries` charged by the retry model.
    fault_attempts: u32,
    /// Controller backoff between transient-fault retries, charged off the
    /// critical resource (like ECC decode).
    fault_backoff: SimTime,
    /// When the op entered its die queue (the request's arrival for host
    /// ops — spans partition `[enqueued_at, completion]`).
    enqueued_at: SimTime,
    /// Attribution watermark: queue wait is charged up to this instant,
    /// so overlapping holds never double-count.
    charged_until: SimTime,
    /// Queue wait charged per interference class (spans enabled only).
    charges: [u64; QUEUE_CLASSES],
}

impl SimOp {
    /// Charge the wait interval `[from, until]` to queue class `class`,
    /// clipped against the watermark of what was already charged.
    fn charge(&mut self, class: u8, from: SimTime, until: SimTime) {
        let from = from.max(self.charged_until);
        if until > from {
            self.charges[class as usize] += until - from;
            self.charged_until = until;
        }
    }
}

/// Per-die scheduler state: one queue per priority class.
///
/// Two occupancy tracks model program/erase *suspension* (read-first
/// scheduling): reads serialize on `read_free_at` only — an in-flight
/// program yields its array to an arriving read — while programs, erases
/// and voltage adjustments wait for both tracks.
#[derive(Debug, Clone, Default)]
struct DieState {
    /// When the sensing path is next free (reads gate on this alone).
    read_free_at: SimTime,
    /// When the program/erase path is next free.
    other_free_at: SimTime,
    /// Earliest already-scheduled wake-up, to avoid event storms.
    wake_at: Option<SimTime>,
    /// Whether this die is in [`Simulator::dirty_dies`] (work enqueued
    /// since the last scheduling pass).
    dirty: bool,
    /// Queue class of whoever last extended `read_free_at` (attribution).
    read_hold: u8,
    /// Queue class of whoever last extended `other_free_at` (attribution).
    other_hold: u8,
    /// Busy-time coverage mark: hold windows all open at the (monotone)
    /// current instant, so time past this mark is newly busy — giving the
    /// exact union of overlapping read/program holds for utilization.
    busy_until: SimTime,
    queues: [VecDeque<SimOp>; 3],
}

impl DieState {
    fn enqueue(&mut self, op: SimOp) {
        let q = match op.op.priority {
            Priority::HostRead => 0,
            Priority::HostWrite => 1,
            Priority::Background => 2,
        };
        self.queues[q].push_back(op);
    }

    /// Peek the next op in priority order.
    fn peek(&self) -> Option<&SimOp> {
        self.queues.iter().find_map(|q| q.front())
    }

    fn dequeue(&mut self) -> Option<SimOp> {
        self.queues.iter_mut().find_map(|q| q.pop_front())
    }

    fn pending(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }
}

ida_snap::snap_struct!(SimOp {
    op,
    req,
    retries,
    fault_attempts,
    fault_backoff,
    enqueued_at,
    charged_until,
    charges,
});

ida_snap::snap_struct!(DieState {
    read_free_at,
    other_free_at,
    wake_at,
    dirty,
    read_hold,
    other_hold,
    busy_until,
    queues,
});

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// The `i`-th trace entry arrives.
    Arrival(usize),
    /// A die's array/register became free; try to start its next op.
    DieFree(u32),
    /// A host-linked flash op completed end-to-end. `span` indexes the
    /// run-local attribution waterfalls (`u32::MAX` when spans are off).
    OpDone { req: usize, span: u32 },
    /// Wake up to run due refreshes.
    RefreshWake,
}

/// The SSD simulator. Owns the FTL; state (mapping, wear, IDA blocks)
/// persists across [`Simulator::run`] calls so experiments can warm up
/// (prefill + age + steady-state refresh) and then measure.
#[derive(Debug)]
pub struct Simulator {
    cfg: SsdConfig,
    ftl: Ftl,
    retry: RetryModel,
    /// The RBER-driven read-retry ladder, armed with the aging model
    /// (`None` while aging is off — reads take the flat [`RetryModel`]
    /// draw only).
    ladder: Option<ReadLadder>,
    dies: Vec<DieState>,
    channels: Vec<SimTime>,
    /// Base simulation time: measured runs start where warmup ended.
    clock: SimTime,
    /// Trace sink handle (shared with the FTL). Null by default.
    trace: SinkHandle,
    /// Time-series gauge sampler. Disabled by default.
    gauges: GaugeSet,
    /// Whether runs report progress on stderr.
    progress: bool,
    /// Cumulative flash ops enqueued to dies (runs report the delta).
    flash_ops: u64,
    /// Ops currently queued across all dies (enqueued, not yet started);
    /// lets gauge sampling skip the per-die queue walk.
    queued_ops: u64,
    /// Dies with work enqueued since the last scheduling pass
    /// (deduplicated through [`DieState::dirty`]).
    dirty_dies: Vec<u32>,
    /// Min-heap mirror of every scheduled die wake-up `(wake_at, die)`.
    /// Entries whose time no longer matches the die's `wake_at` are stale
    /// and dropped on pop. Persists across runs: a run's event queue dies
    /// with it, so leftover queued work re-enters scheduling through the
    /// heap in the next run.
    wake_heap: BinaryHeap<Reverse<(SimTime, u32)>>,
    /// Whether per-request attribution spans are recorded. Off by default:
    /// the disabled path allocates nothing and skips all charging.
    spans: bool,
    /// Cumulative busy (held) nanoseconds per die; runs report the delta.
    die_busy: Vec<u128>,
    /// Cumulative busy nanoseconds per channel; runs report the delta.
    channel_busy: Vec<u128>,
}

// Snapshot payload: every field that influences future simulation,
// verbatim — including live RNG streams, die/channel occupancy and
// leftover queued work. Excluded as process-local observers: the trace
// sink (restored null), the gauge sampler (restored disabled) and the
// stderr progress flag (restored off); callers re-attach observability
// after restore exactly as they would after `Simulator::new`.
impl ida_snap::Snap for Simulator {
    fn encode(&self, w: &mut ida_snap::Writer) {
        self.cfg.encode(w);
        self.ftl.encode(w);
        self.retry.encode(w);
        self.ladder.encode(w);
        self.dies.encode(w);
        self.channels.encode(w);
        self.clock.encode(w);
        self.flash_ops.encode(w);
        self.queued_ops.encode(w);
        self.dirty_dies.encode(w);
        // The wake heap's internal layout depends on insertion history;
        // its *multiset* of (time, die) entries — a total order, so the
        // pop sequence is fully determined — travels as a sorted vec.
        let mut wakes: Vec<(SimTime, u32)> = self.wake_heap.iter().map(|Reverse(e)| *e).collect();
        wakes.sort_unstable();
        wakes.encode(w);
        self.spans.encode(w);
        self.die_busy.encode(w);
        self.channel_busy.encode(w);
    }

    fn decode(r: &mut ida_snap::Reader<'_>) -> Result<Self, ida_snap::SnapError> {
        let cfg = SsdConfig::decode(r)?;
        let ftl = Ftl::decode(r)?;
        let retry = RetryModel::decode(r)?;
        let ladder = Option::decode(r)?;
        let dies = Vec::decode(r)?;
        let channels = Vec::decode(r)?;
        let clock = SimTime::decode(r)?;
        let flash_ops = u64::decode(r)?;
        let queued_ops = u64::decode(r)?;
        let dirty_dies = Vec::decode(r)?;
        let wakes: Vec<(SimTime, u32)> = Vec::decode(r)?;
        let spans = bool::decode(r)?;
        let die_busy = Vec::decode(r)?;
        let channel_busy = Vec::decode(r)?;
        Ok(Simulator {
            cfg,
            ftl,
            retry,
            ladder,
            dies,
            channels,
            clock,
            trace: SinkHandle::null(),
            gauges: GaugeSet::disabled(),
            progress: false,
            flash_ops,
            queued_ops,
            dirty_dies,
            wake_heap: wakes.into_iter().map(Reverse).collect(),
            spans,
            die_busy,
            channel_busy,
        })
    }
}

impl Simulator {
    /// Build a simulator over an empty SSD.
    pub fn new(cfg: SsdConfig) -> Self {
        let g = cfg.ftl.geometry;
        Simulator {
            ftl: Ftl::new(cfg.ftl.clone()),
            retry: RetryModel::new(cfg.retry),
            ladder: (cfg.ftl.aging.is_active() && cfg.ftl.aging.ladder_depth > 0).then(|| {
                ReadLadder::new(
                    cfg.ftl.aging.ladder_gain,
                    cfg.ftl.aging.ladder_depth,
                    cfg.ftl.aging.seed,
                )
            }),
            dies: (0..g.total_dies()).map(|_| DieState::default()).collect(),
            channels: vec![0; g.channels as usize],
            cfg,
            clock: 0,
            trace: SinkHandle::null(),
            gauges: GaugeSet::disabled(),
            progress: false,
            flash_ops: 0,
            queued_ops: 0,
            dirty_dies: Vec::new(),
            wake_heap: BinaryHeap::new(),
            spans: false,
            die_busy: vec![0; g.total_dies() as usize],
            channel_busy: vec![0; g.channels as usize],
        }
    }

    /// Serialize the complete mutable simulation state into a framed,
    /// deterministic byte blob. A simulator restored from it with
    /// [`Simulator::from_snapshot`] continues bit-for-bit identically to
    /// this one (reports, traces and RNG draws included), which is what
    /// lets the sweep engine run one warm-up and fork every dependent
    /// cell from the cached bytes.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = ida_snap::Writer::new();
        ida_snap::Snap::encode(self, &mut w);
        ida_snap::frame::seal(&w.into_bytes())
    }

    /// Rebuild a simulator from [`Simulator::snapshot`] bytes. The frame
    /// is verified (magic, version, length, content hash) before decode,
    /// so corrupt or stale spill files fail loudly instead of restoring
    /// silently wrong state. Observability (trace sink, gauges, progress)
    /// is reset to off — re-attach after restore as after `new`.
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self, ida_snap::SnapError> {
        let (_, payload) = ida_snap::frame::open(bytes)?;
        ida_snap::Snap::from_snap_bytes(payload)
    }

    /// Attach a trace sink. The handle is shared with the FTL, so FTL
    /// events (GC, refresh, IDA conversion) and simulator events (host
    /// traffic, flash ops) interleave into one stream. Attach before any
    /// warmup if trace counters must match end-of-run [`ida_ftl::FtlStats`].
    pub fn set_trace(&mut self, trace: SinkHandle) {
        self.ftl.set_trace(trace.clone());
        self.trace = trace;
    }

    /// A handle onto the attached trace sink (the null handle when no
    /// sink is attached), so host-side layers can interleave their own
    /// events — admission sheds, SLO verdicts — into the same stream.
    pub fn trace_handle(&self) -> SinkHandle {
        self.trace.clone()
    }

    /// Flush the attached trace sink (no-op for the null sink).
    pub fn flush_trace(&self) -> std::io::Result<()> {
        self.trace.flush()
    }

    /// Attach a gauge sampler; queue depth, in-use blocks and adjusted
    /// wordlines are sampled on its interval during timed runs, and the
    /// collected series are drained into each run's [`Report::gauges`].
    pub fn set_gauges(&mut self, gauges: GaugeSet) {
        self.gauges = gauges;
    }

    /// Enable or disable stderr progress reporting for timed runs.
    pub fn set_progress(&mut self, on: bool) {
        self.progress = on;
    }

    /// Enable per-request latency attribution spans: every completed host
    /// request gets a phase waterfall that partitions `[issue, complete]`
    /// exactly, aggregated into [`Report::read_attribution`] /
    /// [`Report::write_attribution`] (and emitted as `span` trace events
    /// when a sink is attached). Off by default — the disabled path does
    /// no charging and no allocation, so timed runs cost the same as
    /// before the feature existed.
    pub fn set_spans(&mut self, on: bool) {
        self.spans = on;
    }

    /// Whether attribution spans are being recorded.
    pub fn spans_enabled(&self) -> bool {
        self.spans
    }

    /// The configuration in force.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// The underlying FTL (for inspection in tests and experiments).
    pub fn ftl(&self) -> &Ftl {
        &self.ftl
    }

    /// The current simulation clock (advances across runs).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Warm-up: write `lpns` logically (no timing, no metrics), e.g. to
    /// pre-fill the workload's footprint.
    pub fn prefill(&mut self, lpns: impl IntoIterator<Item = u64>) {
        let now = self.clock;
        for lpn in lpns {
            self.warmup_write(Lpn(lpn), now);
        }
    }

    /// Warm-up: apply the write traffic of `trace` logically (reads are
    /// skipped, timestamps ignored). Establishes the invalidation pattern
    /// without charging time.
    pub fn age(&mut self, trace: &[HostOp]) {
        let now = self.clock;
        for op in trace {
            if op.kind == HostOpKind::Write {
                for lpn in op.lpns() {
                    self.warmup_write(Lpn(lpn), now);
                }
            }
        }
    }

    /// One untimed warm-up write. Experiments normally arm faults *after*
    /// warm-up, but if a power loss does strike here the device recovers
    /// (untimed) and the write is retried once; read-only rejections are
    /// dropped.
    fn warmup_write(&mut self, lpn: Lpn, now: SimTime) {
        if self.ftl.write(lpn, now) == Err(FtlError::PowerLoss) {
            // Untimed recovery: warm-up charges no latency anywhere.
            self.ftl.recover(now);
            let _ = self.ftl.write(lpn, now);
        }
    }

    /// Arm (or replace) the fault plan in force. Sweeps call this after
    /// warm-up so injected faults land only in the measured window.
    pub fn arm_faults(&mut self, faults: FaultConfig) {
        self.cfg.ftl.faults = faults.clone();
        self.ftl.arm_faults(faults);
    }

    /// Arm (or replace) the device-aging model: the FTL starts charging
    /// read-disturb counters and stamping RBER, the retry ladder replaces
    /// the flat draw, and the first patrol-scrub pass is scheduled one
    /// period from now. Soak runs arm aging *after* warm-up so the warmed
    /// population is byte-identical to an aging-free run.
    pub fn arm_aging(&mut self, aging: AgingConfig) {
        self.ladder = (aging.is_active() && aging.ladder_depth > 0)
            .then(|| ReadLadder::new(aging.ladder_gain, aging.ladder_depth, aging.seed));
        self.cfg.ftl.aging = aging.clone();
        self.ftl.arm_aging(aging, self.clock);
    }

    /// Apply `cycles` of uniform background P/E wear to every block (the
    /// accelerated-lifetime lever pulled between soak epochs).
    pub fn advance_wear(&mut self, cycles: u32) {
        self.ftl.advance_wear(cycles);
    }

    /// Jump the simulation clock forward by `ns` without serving any
    /// requests: models device idle time between soak epochs. Retention
    /// clocks age across the gap and any patrol scrub or refresh that
    /// falls due fires at the start of the next `run`.
    pub fn advance_time(&mut self, ns: u64) {
        self.clock = self.clock.saturating_add(ns);
    }

    /// The earliest pending background maintenance instant — data refresh
    /// or patrol scrub, whichever is due first.
    fn next_background_due(&self) -> Option<SimTime> {
        match (self.ftl.next_refresh_due(), self.ftl.next_scrub_due()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Run the power-loss recovery scan and charge its cost: every die and
    /// channel stalls while the controller rescans OOB metadata (an
    /// erase-scale window), rolls forward interrupted merges, and scrubs
    /// unverified pages.
    fn recover_now(&mut self, now: SimTime) {
        let report = self.ftl.recover(now);
        let t = self.cfg.timing;
        let scrub_cost = t.read_latency(1) + t.transfer + t.program;
        let stall = t.erase
            + t.voltage_adjust * report.rolled_forward as SimTime
            + scrub_cost * report.scrubbed as SimTime;
        let free_at = now + stall;
        let spans = self.spans;
        let Simulator {
            dies,
            channels,
            die_busy,
            channel_busy,
            ..
        } = self;
        for (i, d) in dies.iter_mut().enumerate() {
            die_busy[i] += free_at.saturating_sub(now.max(d.busy_until)) as u128;
            d.busy_until = d.busy_until.max(free_at);
            if free_at > d.read_free_at {
                d.read_free_at = free_at;
                d.read_hold = RECOVERY_CLASS;
            }
            if free_at > d.other_free_at {
                d.other_free_at = free_at;
                d.other_hold = RECOVERY_CLASS;
            }
            if spans {
                // Every queued host op on every die stalls behind the
                // recovery scan; charge the window to Phase::Recovery.
                for q in &mut d.queues[..2] {
                    for op in q.iter_mut() {
                        op.charge(RECOVERY_CLASS, now, free_at);
                    }
                }
            }
        }
        for (i, ch) in channels.iter_mut().enumerate() {
            // `*ch` is the end of the channel's last busy window, so it
            // doubles as the coverage mark for the exact busy union.
            channel_busy[i] += free_at.saturating_sub(now.max(*ch)) as u128;
            *ch = (*ch).max(free_at);
        }
    }

    /// Change the refresh period applied to blocks scheduled from now on.
    pub fn set_refresh_period(&mut self, period: SimTime) {
        self.cfg.ftl.refresh_period = period;
        self.ftl.set_refresh_period(period);
    }

    /// Warm-up: refresh every closed block that still holds valid pages,
    /// without charging time. Establishes the steady state in which
    /// long-lived blocks have been through at least one refresh cycle
    /// (IDA-converting them when the mode says so).
    ///
    /// Block refresh timestamps are staggered across `stagger_span` ns so
    /// that the *next* refresh cycle (IDA-block reclaims in particular)
    /// trickles through the measured run instead of arriving as one storm —
    /// mirroring the staggered block ages of a long-running device.
    pub fn force_refresh_all(&mut self, stagger_span: SimTime) {
        let base = self.clock;
        let candidates: Vec<BlockAddr> = self
            .ftl
            .blocks()
            .reclaimable_blocks()
            .filter(|&(b, valid, _)| valid > 0 && self.ftl.blocks().state(b) == BlockState::Closed)
            .map(|(b, _, _)| b)
            .collect();
        let n = candidates.len().max(1) as u64;
        let mut discard = Vec::new();
        for (i, b) in candidates.into_iter().enumerate() {
            let when = base + stagger_span * i as u64 / n;
            self.ftl.refresh_block(b, when, &mut discard);
            discard.clear();
            if self.ftl.power_lost() {
                // Untimed recovery during warm-up; remaining blocks still
                // get their staggered refresh.
                self.ftl.recover(when);
            }
        }
    }

    /// Run a timed simulation of `trace` (must be sorted by arrival time;
    /// arrival times are offsets added to the current clock). Returns the
    /// run's metrics; FTL state persists for subsequent runs.
    ///
    /// A thin wrapper over [`Self::run_source`] with a
    /// [`ListSource`](crate::ListSource): the pull-based driver is the
    /// single simulation engine.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival time (the documented
    /// precondition; [`Self::try_run`] is the non-panicking form).
    pub fn run(&mut self, trace: Vec<HostOp>) -> Report {
        assert!(
            trace.windows(2).all(|w| w[0].at <= w[1].at),
            "trace must be sorted by arrival time"
        );
        match self.run_source(&mut crate::source::ListSource::new(trace)) {
            Ok(report) => report,
            // A ListSource never reports Blocked, so the driver cannot
            // fail on it; keep the impossible branch loud rather than
            // silently fabricating a Report.
            Err(e) => unreachable!("list source cannot stall: {e}"),
        }
    }

    /// Like [`Self::run`], but returns a typed error instead of panicking
    /// on an unsorted trace — the entry point for user-supplied traces
    /// (e.g. `idasim replay`).
    ///
    /// # Errors
    ///
    /// [`SimError::UnsortedTrace`] when an entry arrives earlier than its
    /// predecessor.
    pub fn try_run(&mut self, trace: Vec<HostOp>) -> Result<Report, SimError> {
        if let Some(i) = trace.windows(2).position(|w| w[0].at > w[1].at) {
            return Err(SimError::UnsortedTrace {
                index: i + 1,
                at: trace[i + 1].at,
                prev: trace[i].at,
            });
        }
        self.run_source(&mut crate::source::ListSource::new(trace))
    }

    /// Run `trace` in closed-loop mode: arrival timestamps are ignored and
    /// the host keeps exactly `queue_depth` requests outstanding — the
    /// saturation replay used for device-throughput comparisons (Figure
    /// 10). Returns the run's metrics.
    ///
    /// A thin wrapper over [`Self::run_source`] with a
    /// [`ClosedLoopSource`](crate::source::ClosedLoopSource).
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth == 0` (the documented precondition;
    /// [`Self::try_run_closed_loop`] is the non-panicking form).
    pub fn run_closed_loop(&mut self, trace: Vec<HostOp>, queue_depth: usize) -> Report {
        assert!(queue_depth > 0, "queue depth must be positive");
        match self.try_run_closed_loop(trace, queue_depth) {
            Ok(report) => report,
            // Depth was just checked and a ClosedLoopSource only blocks
            // with requests in flight, so the driver cannot fail.
            Err(e) => unreachable!("closed-loop source cannot stall: {e}"),
        }
    }

    /// Like [`Self::run_closed_loop`], but returns a typed error instead
    /// of panicking on a zero queue depth.
    ///
    /// # Errors
    ///
    /// [`SimError::ZeroQueueDepth`] when `queue_depth == 0`.
    pub fn try_run_closed_loop(
        &mut self,
        trace: Vec<HostOp>,
        queue_depth: usize,
    ) -> Result<Report, SimError> {
        let mut source = crate::source::ClosedLoopSource::new(trace, queue_depth)?;
        self.run_source(&mut source)
    }

    /// Run a timed simulation pulling arrivals from `source` until it
    /// reports [`Pull::Done`] and every in-flight request has completed.
    /// The source decides admission in simulation time: it is pulled for
    /// the next op while the current one is being served (open-loop
    /// lookahead) and re-pulled after each completion when it had reported
    /// [`Pull::Blocked`], so window-limited and rate-limited sources
    /// compose.
    ///
    /// This is the **single event-loop driver**: [`Self::run`],
    /// [`Self::try_run`], [`Self::run_closed_loop`], and
    /// [`Self::try_run_closed_loop`] are thin wrappers handing it a
    /// [`ListSource`](crate::ListSource) or a
    /// [`ClosedLoopSource`](crate::source::ClosedLoopSource).
    ///
    /// # Errors
    ///
    /// [`SimError::StalledSource`] when the source blocks with nothing in
    /// flight (no completion can ever unblock it).
    pub fn run_source(&mut self, source: &mut dyn ArrivalSource) -> Result<Report, SimError> {
        let base = self.clock;
        let mut report = Report {
            first_arrival: base,
            last_completion: base,
            ..Report::default()
        };
        let mut events: EventQueue<Ev> = EventQueue::new();
        // Ops pulled so far, indexed by `Ev::Arrival`; `tokens` rides
        // along for completion callbacks.
        let mut pending_ops: Vec<HostOp> = Vec::new();
        let mut tokens: Vec<u64> = Vec::new();
        let mut requests: Vec<PendingRequest> = Vec::new();
        let mut completed = 0usize;
        let mut events_processed = 0u64;
        let flash_ops_before = self.flash_ops;
        let die_busy_before = self.die_busy.clone();
        let channel_busy_before = self.channel_busy.clone();
        let mut span_ns: Vec<PhaseNs> = Vec::new();
        let mut wake_at: Option<SimTime> = None;
        let mut source_done = false;
        // Whether an Arrival event is scheduled but not yet processed; at
        // most one is in flight so the source sees completions in between.
        let mut arrival_pending = false;
        let mut progress = if self.progress {
            Progress::new("sim", source.size_hint().unwrap_or(0))
        } else {
            Progress::disabled()
        };

        // Schedule a pulled op's arrival. Past arrivals clamp to `now`.
        fn schedule(
            sop: crate::source::SourcedOp,
            now: SimTime,
            base: SimTime,
            events: &mut EventQueue<Ev>,
            pending_ops: &mut Vec<HostOp>,
            tokens: &mut Vec<u64>,
        ) -> SimTime {
            let at = (base + sop.op.at).max(now);
            events.push(at, Ev::Arrival(pending_ops.len()));
            pending_ops.push(sop.op);
            tokens.push(sop.token);
            at
        }

        // Prime the queue (mirrors run()'s initial Arrival push, so event
        // sequence numbers — and hence tie-breaking — stay identical).
        match source.next(0) {
            Pull::Op(sop) => {
                report.first_arrival =
                    schedule(sop, base, base, &mut events, &mut pending_ops, &mut tokens);
                arrival_pending = true;
            }
            Pull::Blocked => return Err(SimError::StalledSource),
            Pull::Done => source_done = true,
        }

        while let Some((now, ev)) = events.pop() {
            self.clock = now;
            events_processed += 1;
            if self.gauges.enabled() && self.gauges.due(now) {
                self.sample_gauges(now);
            }
            let done_before = completed;
            // Serve due refreshes before anything else at this instant.
            if self.ftl.next_refresh_due().is_some_and(|d| d <= now) {
                let ops = self.ftl.run_due_refreshes(now);
                self.enqueue_all(now, ops, None);
                if self.ftl.power_lost() {
                    self.recover_now(now);
                }
            }
            // ... then any due patrol-scrub pass (same dirty-die path, so
            // scrub traffic never preempts queued host reads).
            if self.ftl.next_scrub_due().is_some_and(|d| d <= now) {
                let ops = self.ftl.run_scrub_pass(now);
                self.enqueue_all(now, ops, None);
                if self.ftl.power_lost() {
                    self.recover_now(now);
                }
            }
            match ev {
                Ev::Arrival(i) => {
                    arrival_pending = false;
                    let host = pending_ops[i];
                    // Pull the next op *before* serving this one — the
                    // push-then-serve order of run_inner.
                    if !source_done {
                        match source.next(now - base) {
                            Pull::Op(sop) => {
                                schedule(
                                    sop,
                                    now,
                                    base,
                                    &mut events,
                                    &mut pending_ops,
                                    &mut tokens,
                                );
                                arrival_pending = true;
                            }
                            // The request served below will complete and
                            // re-pull, so this is never a stall.
                            Pull::Blocked => {}
                            Pull::Done => source_done = true,
                        }
                    }
                    self.serve_host(now, host, &mut requests, &mut report, &mut completed);
                    // Instant completion (nothing mapped): report it so a
                    // window-limited source frees the slot now.
                    if requests.last().is_some_and(|r| r.outstanding == 0) {
                        source.on_complete(now - base, tokens[requests.len() - 1], host.kind, 0);
                        if !arrival_pending && !source_done {
                            match source.next(now - base) {
                                Pull::Op(sop) => {
                                    schedule(
                                        sop,
                                        now,
                                        base,
                                        &mut events,
                                        &mut pending_ops,
                                        &mut tokens,
                                    );
                                    arrival_pending = true;
                                }
                                Pull::Blocked => {
                                    if completed == requests.len() {
                                        return Err(SimError::StalledSource);
                                    }
                                }
                                Pull::Done => source_done = true,
                            }
                        }
                    }
                }
                Ev::DieFree(die) => self.try_start(die, now, &mut events, &mut span_ns),
                Ev::OpDone { req, span } => {
                    let r = &mut requests[req];
                    r.outstanding -= 1;
                    if r.outstanding == 0 {
                        let resp = now - r.arrival;
                        let kind = r.kind;
                        match kind {
                            HostOpKind::Read => report.reads.record(resp),
                            HostOpKind::Write => report.writes.record(resp),
                        }
                        self.trace.emit_with(|| TraceEvent::HostComplete {
                            t: now,
                            req: req as u64,
                            class: host_class(kind),
                            latency_ns: resp,
                        });
                        if self.spans {
                            let phases = span_ns.get(span as usize).copied().unwrap_or_default();
                            debug_assert_eq!(
                                phases.total(),
                                resp,
                                "attribution must partition the response time"
                            );
                            match kind {
                                HostOpKind::Read => report.read_attribution.record(&phases),
                                HostOpKind::Write => report.write_attribution.record(&phases),
                            }
                            self.trace.emit_with(|| TraceEvent::Span {
                                t: now,
                                req: req as u64,
                                class: host_class(kind),
                                total_ns: resp,
                                phases,
                            });
                        }
                        report.last_completion = report.last_completion.max(now);
                        completed += 1;
                        source.on_complete(now - base, tokens[req], kind, resp);
                        // A completion may unblock a window-limited
                        // source; re-pull if nothing is scheduled.
                        if !arrival_pending && !source_done {
                            match source.next(now - base) {
                                Pull::Op(sop) => {
                                    schedule(
                                        sop,
                                        now,
                                        base,
                                        &mut events,
                                        &mut pending_ops,
                                        &mut tokens,
                                    );
                                    arrival_pending = true;
                                }
                                Pull::Blocked => {
                                    if completed == requests.len() {
                                        return Err(SimError::StalledSource);
                                    }
                                }
                                Pull::Done => source_done = true,
                            }
                        }
                    }
                }
                Ev::RefreshWake => {
                    wake_at = None;
                }
            }
            if completed > done_before {
                progress.tick((completed - done_before) as u64);
            }
            // Start any dies made runnable by newly enqueued work or a
            // wake-up that came due at this instant.
            self.kick_dirty_dies(now, &mut events, &mut span_ns);
            // Stop once the source is drained and every request completed.
            if source_done && !arrival_pending && completed == requests.len() {
                break;
            }
            // Keep a wake event pending for the next refresh/scrub so idle
            // gaps still run background maintenance at the right time.
            if let Some(due) = self.next_background_due() {
                let due = due.max(now);
                if wake_at.is_none_or(|w| due < w) {
                    events.push(due, Ev::RefreshWake);
                    wake_at = Some(due);
                }
            }
        }
        progress.finish();
        if self.gauges.enabled() {
            // One final sample so every run ends with a data point.
            self.sample_gauges(self.clock);
            report.gauges = self.gauges.take_series();
        }
        report.ftl = *self.ftl.stats();
        report.in_use_blocks = self.ftl.blocks().in_use_blocks();
        report.events_processed = events_processed;
        report.flash_ops = self.flash_ops - flash_ops_before;
        report.die_busy_ns = self
            .die_busy
            .iter()
            .zip(&die_busy_before)
            .map(|(a, b)| a - b)
            .collect();
        report.channel_busy_ns = self
            .channel_busy
            .iter()
            .zip(&channel_busy_before)
            .map(|(a, b)| a - b)
            .collect();
        Ok(report)
    }

    fn sample_gauges(&mut self, now: SimTime) {
        let queued = self.queued_ops;
        let in_use = self.ftl.blocks().in_use_blocks() as u64;
        let adjusted = self.ftl.blocks().adjusted_wordlines();
        self.gauges.sample(
            now,
            &[
                ("queue_depth", queued),
                ("in_use_blocks", in_use),
                ("adjusted_wordlines", adjusted),
            ],
        );
    }

    fn serve_host(
        &mut self,
        now: SimTime,
        host: HostOp,
        requests: &mut Vec<PendingRequest>,
        report: &mut Report,
        completed: &mut usize,
    ) {
        let page_bytes = self.cfg.ftl.geometry.page_size_bytes as u64;
        let req_idx = requests.len();
        requests.push(PendingRequest {
            arrival: now,
            kind: host.kind,
            outstanding: 0,
        });
        self.trace.emit_with(|| TraceEvent::HostArrival {
            t: now,
            req: req_idx as u64,
            class: host_class(host.kind),
            lpn: host.lpn,
            pages: host.pages,
        });
        match host.kind {
            HostOpKind::Read => {
                report.bytes_read += host.pages as u64 * page_bytes;
                let mut ops = Vec::new();
                for lpn in host.lpns() {
                    if let Some(read) = self.ftl.read_at(Lpn(lpn), now) {
                        report.breakdown.record(read.scenario);
                        self.trace.emit_with(|| TraceEvent::ReadIssued {
                            t: now,
                            lpn,
                            page: read.page.0,
                            page_type: read.page_type.label(),
                            senses: read.senses,
                            scenario: read.scenario.label(),
                        });
                        if read.fault_attempts > 0 {
                            let attempts = read.fault_attempts;
                            let backoff_ns =
                                attempts as u64 * self.cfg.ftl.faults.transient_backoff_ns;
                            self.trace.emit_with(|| TraceEvent::FaultReadTransient {
                                t: now,
                                lpn,
                                attempts,
                            });
                            // Bounded retry always recovers the data; the
                            // pair of events keeps the inject/recover
                            // pairing invariant checkable from the trace.
                            self.trace.emit_with(|| TraceEvent::ReadRecovered {
                                t: now,
                                lpn,
                                attempts,
                                backoff_ns,
                            });
                        }
                        // The RBER-driven ladder: extra attempts scale
                        // with the wordline's modeled error rate *and* its
                        // sense count, so IDA-coded wordlines climb a
                        // shallower ladder.
                        let (ladder_extra, uncorrectable) = match self.ladder.as_mut() {
                            Some(l) if read.rber > 0.0 => l.sample(read.rber, read.senses),
                            _ => (0, false),
                        };
                        if ladder_extra > 0 {
                            self.ftl.note_ladder_retries(ladder_extra);
                        }
                        ops.push((
                            FlashOp {
                                kind: FlashOpKind::Read {
                                    senses: read.senses,
                                },
                                die: read.die,
                                channel: read.channel,
                                block: read.page.block(&self.cfg.ftl.geometry),
                                page: Some(read.page),
                                priority: Priority::HostRead,
                                origin: OpOrigin::Host,
                            },
                            read.fault_attempts,
                            ladder_extra,
                        ));
                        if uncorrectable {
                            // The full ladder was charged to the read
                            // above; the recovered data relocates to a
                            // fresh block in the background (remap —
                            // never silent corruption).
                            let bg = self.ftl.handle_uncorrectable(Lpn(lpn), read.page, now);
                            self.enqueue_all(now, bg, None);
                        }
                    }
                }
                requests[req_idx].outstanding = self.enqueue_faulted(now, ops, Some(req_idx));
            }
            HostOpKind::Write => {
                report.bytes_written += host.pages as u64 * page_bytes;
                let mut all_ops = Vec::new();
                for lpn in host.lpns() {
                    match self.ftl.write(Lpn(lpn), now) {
                        Ok(ops) => all_ops.extend(ops),
                        Err(FtlError::PowerLoss) => {
                            // The in-flight page is lost; the device
                            // recovers (stalling all dies and channels)
                            // and the host retries the write once.
                            self.recover_now(now);
                            if let Ok(ops) = self.ftl.write(Lpn(lpn), now) {
                                all_ops.extend(ops);
                            }
                        }
                        // Read-only degradation / out of space: the FTL
                        // already counted and traced the rejection; the
                        // write completes with no flash work.
                        Err(FtlError::ReadOnly { .. } | FtlError::OutOfSpace) => {}
                    }
                }
                requests[req_idx].outstanding = self.enqueue_all(now, all_ops, Some(req_idx));
            }
        }
        // A write whose program ops were all background (cannot happen) or
        // a request with zero linked ops completes immediately.
        if requests[req_idx].outstanding == 0 {
            match requests[req_idx].kind {
                HostOpKind::Read => report.reads.record(0),
                HostOpKind::Write => report.writes.record(0),
            }
            self.trace.emit_with(|| TraceEvent::HostComplete {
                t: now,
                req: req_idx as u64,
                class: host_class(host.kind),
                latency_ns: 0,
            });
            if self.spans {
                // Instant completions still record a (zero) waterfall so
                // attribution counts match the latency statistics.
                let phases = PhaseNs::zero();
                match host.kind {
                    HostOpKind::Read => report.read_attribution.record(&phases),
                    HostOpKind::Write => report.write_attribution.record(&phases),
                }
                self.trace.emit_with(|| TraceEvent::Span {
                    t: now,
                    req: req_idx as u64,
                    class: host_class(host.kind),
                    total_ns: 0,
                    phases,
                });
            }
            report.last_completion = report.last_completion.max(now);
            *completed += 1;
        }
    }

    /// Enqueue ops to their dies; host-priority ops link to `req`.
    /// Returns how many ops were linked to the request.
    fn enqueue_all(
        &mut self,
        now: SimTime,
        ops: impl IntoIterator<Item = FlashOp>,
        req: Option<usize>,
    ) -> u32 {
        self.enqueue_faulted(now, ops.into_iter().map(|op| (op, 0, 0)), req)
    }

    /// Like [`Self::enqueue_all`], but each op carries the transient-fault
    /// retry count and the ladder retry count its read must absorb.
    fn enqueue_faulted(
        &mut self,
        now: SimTime,
        ops: impl IntoIterator<Item = (FlashOp, u32, u32)>,
        req: Option<usize>,
    ) -> u32 {
        let backoff = self.cfg.ftl.faults.transient_backoff_ns;
        let spans = self.spans;
        let mut linked_count = 0;
        for (op, fault_attempts, ladder_retries) in ops {
            let linked = match op.priority {
                Priority::HostRead | Priority::HostWrite => req,
                Priority::Background => None,
            };
            if linked.is_some() {
                linked_count += 1;
            }
            let retries = if matches!(op.kind, FlashOpKind::Read { .. })
                && op.priority == Priority::HostRead
            {
                ladder_retries + self.retry.sample_retries()
            } else {
                0
            };
            self.flash_ops += 1;
            self.queued_ops += 1;
            let die = op.die.0;
            let d = &mut self.dies[die as usize];
            if !d.dirty {
                d.dirty = true;
                self.dirty_dies.push(die);
            }
            let mut sim_op = SimOp {
                op,
                req: linked,
                retries,
                fault_attempts,
                fault_backoff: fault_attempts as SimTime * backoff,
                enqueued_at: now,
                charged_until: now,
                charges: [0; QUEUE_CLASSES],
            };
            if spans && linked.is_some() {
                // Charge the holds already in force on the die, earlier-
                // ending first so an overlap goes to whichever class frees
                // the die first. Reads gate on the sensing track only;
                // everything else waits for both tracks.
                if matches!(op.kind, FlashOpKind::Read { .. }) {
                    if d.read_free_at > now {
                        sim_op.charge(d.read_hold, now, d.read_free_at);
                    }
                } else {
                    let mut holds = [
                        (d.read_free_at, d.read_hold),
                        (d.other_free_at, d.other_hold),
                    ];
                    holds.sort_unstable_by_key(|&(end, _)| end);
                    for (end, class) in holds {
                        if end > now {
                            sim_op.charge(class, now, end);
                        }
                    }
                }
            }
            d.enqueue(sim_op);
        }
        linked_count
    }

    /// Run a scheduling pass: offer [`Self::try_start`] exactly the dies
    /// that could have become runnable — those with freshly enqueued work
    /// (the dirty set) and those whose scheduled wake time has arrived
    /// (popped from the wake heap) — in ascending die order, reproducing
    /// the visit order (and hence event-sequence numbering) of a full
    /// scan over all dies. Dies outside this set either have an empty
    /// queue or an untouched queue behind a future wake, where a
    /// `try_start` call is a proven no-op.
    fn kick_dirty_dies(
        &mut self,
        now: SimTime,
        events: &mut EventQueue<Ev>,
        span_ns: &mut Vec<PhaseNs>,
    ) {
        let mut due = std::mem::take(&mut self.dirty_dies);
        for &die in &due {
            self.dies[die as usize].dirty = false;
        }
        while let Some(&Reverse((t, die))) = self.wake_heap.peek() {
            if t > now {
                break;
            }
            self.wake_heap.pop();
            // Drop stale entries: the wake was superseded by an earlier
            // one, or already consumed by the die's own DieFree event.
            if self.dies[die as usize].wake_at == Some(t) {
                due.push(die);
            }
        }
        due.sort_unstable();
        due.dedup();
        for die in due.drain(..) {
            if self.dies[die as usize].pending() > 0 {
                self.try_start(die, now, events, span_ns);
            }
        }
        // Hand the (drained) buffer back to reuse its allocation.
        self.dirty_dies = due;
    }

    /// Start every queued op on `die` that can begin at `now`, scheduling
    /// a wake-up for the first one that cannot.
    fn try_start(
        &mut self,
        die: u32,
        now: SimTime,
        events: &mut EventQueue<Ev>,
        span_ns: &mut Vec<PhaseNs>,
    ) {
        let Simulator {
            cfg,
            dies,
            channels,
            trace,
            wake_heap,
            queued_ops,
            spans,
            die_busy,
            channel_busy,
            ..
        } = self;
        let t = cfg.timing;
        let d = &mut dies[die as usize];
        if d.wake_at.is_some_and(|w| w <= now) {
            d.wake_at = None;
        }
        loop {
            let Some(next) = d.peek() else {
                return;
            };
            let is_read = matches!(next.op.kind, FlashOpKind::Read { .. });
            // Reads gate on the sensing path only (program/erase
            // suspension under read-first scheduling); everything else
            // waits for both tracks.
            let ready_at = if is_read {
                d.read_free_at
            } else {
                d.read_free_at.max(d.other_free_at)
            };
            if ready_at > now {
                // Schedule a wake-up unless an earlier one is pending.
                if d.wake_at.is_none_or(|w| ready_at < w) {
                    events.push(ready_at, Ev::DieFree(die));
                    wake_heap.push(Reverse((ready_at, die)));
                    d.wake_at = Some(ready_at);
                }
                return;
            }
            // The peek above guarantees a queued op; bail out rather than
            // panic if that invariant is ever broken.
            let Some(sim_op) = d.dequeue() else {
                return;
            };
            *queued_ops -= 1;
            let want_span = *spans && sim_op.req.is_some();
            let mut ph = PhaseNs::zero();
            if want_span {
                let mut charged = 0u64;
                for (i, phase) in ALL_PHASES[..QUEUE_CLASSES].iter().enumerate() {
                    ph.set(*phase, sim_op.charges[i]);
                    charged += sim_op.charges[i];
                }
                // Queue wait not covered by an observed hold is
                // scheduling residual.
                ph.set(Phase::QueueOther, (now - sim_op.enqueued_at) - charged);
            }
            let hold_class = queue_class(sim_op.op.origin);
            let ch = sim_op.op.channel as usize;
            let op = sim_op.op;
            let background = op.priority == Priority::Background;
            let block = op.block.0 as u64;
            let page = op.page.map_or(0, |p| p.0);
            // Per-attempt array cost of a read, captured for the
            // `read_retry` event (validators cross-check it against the
            // span's retry phase).
            let mut read_attempt_ns: SimTime = 0;
            let (completion, die_held_until) = match op.kind {
                FlashOpKind::Read { senses } => {
                    // Sense (× retries, including injected transient-fault
                    // re-senses) then transfer, serialized on the channel
                    // as one window (DiskSim SSD-extension style: the chip
                    // holds the bus for the whole read), then ECC decode
                    // and any fault backoff off the critical resource.
                    let attempts = (1 + sim_op.retries + sim_op.fault_attempts) as SimTime;
                    read_attempt_ns = t.read_latency(senses);
                    let array = t.read_latency(senses) * attempts;
                    let start = now.max(channels[ch]);
                    let tx_end = start + array + t.transfer;
                    channel_busy[ch] += (tx_end - start) as u128;
                    channels[ch] = tx_end;
                    d.read_free_at = tx_end;
                    d.read_hold = hold_class;
                    if *spans {
                        // A read-track hold gates every queued host op
                        // (reads serialize on it; writes wait for both
                        // tracks). Background queue ops carry no spans.
                        for q in &mut d.queues[..2] {
                            for w in q.iter_mut() {
                                w.charge(hold_class, now, tx_end);
                            }
                        }
                    }
                    let end = tx_end + t.ecc_decode + sim_op.fault_backoff;
                    if want_span {
                        ph.set(Phase::Channel, start - now);
                        ph.set(Phase::Sense, t.read_latency(senses));
                        ph.set(Phase::Retry, array - t.read_latency(senses));
                        ph.set(Phase::Transfer, t.transfer);
                        ph.set(Phase::Ecc, t.ecc_decode);
                        ph.set(Phase::Backoff, sim_op.fault_backoff);
                    }
                    trace.emit_with(|| TraceEvent::FlashSense {
                        t: now,
                        die,
                        channel: op.channel,
                        block,
                        page,
                        senses,
                        retries: sim_op.retries,
                        background,
                        bus_start: start,
                        bus_end: tx_end,
                        end,
                    });
                    (end, tx_end)
                }
                FlashOpKind::Program => {
                    let tx_start = now.max(channels[ch]);
                    let tx_end = tx_start + t.transfer;
                    channel_busy[ch] += (tx_end - tx_start) as u128;
                    channels[ch] = tx_end;
                    let array_end = tx_end + t.program;
                    d.other_free_at = array_end;
                    d.other_hold = hold_class;
                    if *spans {
                        // Program/erase holds gate queued writes only
                        // (reads suspend them).
                        for w in d.queues[1].iter_mut() {
                            w.charge(hold_class, now, array_end);
                        }
                    }
                    if want_span {
                        ph.set(Phase::Channel, tx_start - now);
                        ph.set(Phase::Transfer, t.transfer);
                        ph.set(Phase::Program, t.program);
                    }
                    trace.emit_with(|| TraceEvent::FlashProgram {
                        t: now,
                        die,
                        channel: op.channel,
                        block,
                        page,
                        background,
                        bus_start: tx_start,
                        bus_end: tx_end,
                        end: array_end,
                    });
                    (array_end, array_end)
                }
                FlashOpKind::Erase => {
                    let end = now + t.erase;
                    d.other_free_at = end;
                    d.other_hold = hold_class;
                    if *spans {
                        for w in d.queues[1].iter_mut() {
                            w.charge(hold_class, now, end);
                        }
                    }
                    trace.emit_with(|| TraceEvent::FlashErase {
                        t: now,
                        die,
                        block,
                        end,
                    });
                    (end, end)
                }
                FlashOpKind::VoltageAdjust => {
                    let end = now + t.voltage_adjust;
                    d.other_free_at = end;
                    d.other_hold = hold_class;
                    if *spans {
                        for w in d.queues[1].iter_mut() {
                            w.charge(hold_class, now, end);
                        }
                    }
                    trace.emit_with(|| TraceEvent::VoltageAdjust {
                        t: now,
                        die,
                        block,
                        end,
                    });
                    (end, end)
                }
            };
            let extra = sim_op.retries + sim_op.fault_attempts;
            if extra > 0 {
                // Only host reads carry retries/fault attempts, so a
                // request linkage always exists here.
                debug_assert!(sim_op.req.is_some(), "retried read must be host-linked");
                let req = sim_op.req.map_or(0, |r| r as u64);
                trace.emit_with(|| TraceEvent::ReadRetry {
                    t: now,
                    die,
                    req,
                    extra,
                    attempt_ns: read_attempt_ns,
                });
            }
            // Exact busy union: hold windows open at the (monotone)
            // current instant, so anything past the mark is newly busy.
            die_busy[die as usize] += die_held_until.saturating_sub(now.max(d.busy_until)) as u128;
            d.busy_until = d.busy_until.max(die_held_until);
            if let Some(req) = sim_op.req {
                debug_assert!(
                    !want_span || ph.total() == completion - sim_op.enqueued_at,
                    "span must partition [enqueue, completion]"
                );
                let span = if want_span {
                    span_ns.push(ph);
                    (span_ns.len() - 1) as u32
                } else {
                    u32::MAX
                };
                events.push(completion, Ev::OpDone { req, span });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SsdConfig;
    use ida_flash::timing::NS_PER_US;

    fn write_then_read_trace(n: u64, gap: SimTime) -> Vec<HostOp> {
        let mut t = Vec::new();
        for i in 0..n {
            t.push(HostOp {
                at: i * gap,
                kind: HostOpKind::Write,
                lpn: i,
                pages: 1,
            });
        }
        for i in 0..n {
            t.push(HostOp {
                at: (n + i) * gap,
                kind: HostOpKind::Read,
                lpn: i,
                pages: 1,
            });
        }
        t
    }

    #[test]
    fn single_uncontended_read_costs_the_three_stages() {
        let mut sim = Simulator::new(SsdConfig::tiny_test());
        sim.prefill(0..1);
        let report = sim.run(vec![HostOp {
            at: 0,
            kind: HostOpKind::Read,
            lpn: 0,
            pages: 1,
        }]);
        // LSB read: 50 µs sense + 48 µs transfer + 20 µs ECC.
        assert_eq!(report.reads.count, 1);
        assert_eq!(report.reads.mean() as u64, 118 * NS_PER_US);
    }

    #[test]
    fn writes_and_reads_complete() {
        let mut sim = Simulator::new(SsdConfig::tiny_test());
        let report = sim.run(write_then_read_trace(64, 100 * NS_PER_US));
        assert_eq!(report.reads.count, 64);
        assert_eq!(report.writes.count, 64);
        assert!(report.reads.mean() > 0.0);
        assert!(report.writes.mean() >= 2_300.0 * NS_PER_US as f64);
        assert!(report.last_completion > report.first_arrival);
    }

    #[test]
    fn unmapped_read_is_instant() {
        let mut sim = Simulator::new(SsdConfig::tiny_test());
        let report = sim.run(vec![HostOp {
            at: 0,
            kind: HostOpKind::Read,
            lpn: 5,
            pages: 1,
        }]);
        assert_eq!(report.reads.count, 1);
        assert_eq!(report.reads.mean(), 0.0);
    }

    #[test]
    fn queueing_inflates_response_times() {
        let mut sim = Simulator::new(SsdConfig::tiny_test());
        sim.prefill(0..8);
        // 8 simultaneous reads of pages that share dies.
        let trace: Vec<HostOp> = (0..8)
            .map(|i| HostOp {
                at: 0,
                kind: HostOpKind::Read,
                lpn: i,
                pages: 1,
            })
            .collect();
        let report = sim.run(trace);
        // With 2 dies, the last read waits behind three others.
        assert!(report.reads.percentile(100.0) > 2 * 118 * NS_PER_US);
    }

    #[test]
    fn multi_page_request_completes_once() {
        let mut sim = Simulator::new(SsdConfig::tiny_test());
        sim.prefill(0..16);
        let report = sim.run(vec![HostOp {
            at: 0,
            kind: HostOpKind::Read,
            lpn: 0,
            pages: 16,
        }]);
        assert_eq!(report.reads.count, 1);
        assert_eq!(report.bytes_read, 16 * 4096);
    }

    #[test]
    fn clock_persists_across_runs() {
        let mut sim = Simulator::new(SsdConfig::tiny_test());
        sim.prefill(0..1);
        let r1 = sim.run(vec![HostOp {
            at: 0,
            kind: HostOpKind::Read,
            lpn: 0,
            pages: 1,
        }]);
        let t1 = sim.now();
        assert!(t1 >= r1.last_completion);
        let r2 = sim.run(vec![HostOp {
            at: 10,
            kind: HostOpKind::Read,
            lpn: 0,
            pages: 1,
        }]);
        assert!(r2.first_arrival >= t1);
    }

    #[test]
    fn retry_model_inflates_read_latency() {
        let mut cfg = SsdConfig::tiny_test();
        cfg.retry = crate::retry::RetryConfig {
            failure_prob: 0.9999,
            max_retries: 2,
            seed: 7,
        };
        let mut slow = Simulator::new(cfg);
        slow.prefill(0..1);
        let r_slow = slow.run(vec![HostOp {
            at: 0,
            kind: HostOpKind::Read,
            lpn: 0,
            pages: 1,
        }]);
        // 3 sensing attempts of 50 µs instead of 1.
        assert_eq!(r_slow.reads.mean() as u64, (150 + 48 + 20) * NS_PER_US);
    }

    #[test]
    fn closed_loop_completes_all_requests() {
        let mut sim = Simulator::new(SsdConfig::tiny_test());
        sim.prefill(0..256);
        let trace: Vec<HostOp> = (0..256)
            .map(|i| HostOp {
                at: 0, // timestamps ignored in closed loop
                kind: HostOpKind::Read,
                lpn: i,
                pages: 1,
            })
            .collect();
        let report = sim.run_closed_loop(trace, 8);
        assert_eq!(report.reads.count, 256);
        assert!(report.throughput_mbps() > 0.0);
    }

    #[test]
    fn closed_loop_throughput_grows_with_queue_depth() {
        let trace: Vec<HostOp> = (0..512)
            .map(|i| HostOp {
                at: 0,
                kind: HostOpKind::Read,
                lpn: i % 256,
                pages: 1,
            })
            .collect();
        let mut tp = Vec::new();
        for depth in [1usize, 16] {
            let mut sim = Simulator::new(SsdConfig::tiny_test());
            sim.prefill(0..256);
            let report = sim.run_closed_loop(trace.clone(), depth);
            tp.push(report.throughput_mbps());
        }
        assert!(
            tp[1] > tp[0] * 1.5,
            "parallelism should raise throughput: qd1={} qd16={}",
            tp[0],
            tp[1]
        );
    }

    #[test]
    #[should_panic(expected = "queue depth")]
    fn closed_loop_rejects_zero_depth() {
        let mut sim = Simulator::new(SsdConfig::tiny_test());
        let _ = sim.run_closed_loop(vec![], 0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_trace_rejected() {
        let mut sim = Simulator::new(SsdConfig::tiny_test());
        let _ = sim.run(vec![
            HostOp {
                at: 10,
                kind: HostOpKind::Read,
                lpn: 0,
                pages: 1,
            },
            HostOp {
                at: 5,
                kind: HostOpKind::Read,
                lpn: 1,
                pages: 1,
            },
        ]);
    }

    #[test]
    fn refresh_fires_inside_the_measured_window() {
        let mut cfg = SsdConfig::tiny_test();
        cfg.ftl.refresh_mode = ida_core::refresh::RefreshMode::Ida;
        cfg.ftl.adjust_error_rate = 0.0;
        cfg.ftl.refresh_period = 1_000_000; // 1 ms, in force before prefill
        let mut sim = Simulator::new(cfg);
        // Close a block's worth of pages, then run a trace that spans past
        // the refresh due time.
        let g = sim.config().ftl.geometry;
        let to_write = g.pages_per_block() as u64 * g.total_planes() as u64;
        sim.prefill(0..to_write);
        let before = sim.ftl().stats().refreshes;
        let report = sim.run(vec![
            HostOp {
                at: 0,
                kind: HostOpKind::Read,
                lpn: 0,
                pages: 1,
            },
            HostOp {
                at: 50_000_000,
                kind: HostOpKind::Read,
                lpn: 1,
                pages: 1,
            },
        ]);
        // Prefilled blocks were due 1 ms after close; the 50 ms idle gap
        // must have run them via the refresh wake event.
        assert!(sim.ftl().stats().refreshes > before);
        assert!(sim.ftl().stats().ida_conversions > 0 || report.reads.count == 2);
    }

    #[test]
    fn faulty_run_completes_and_pairs_losses_with_recoveries() {
        let mut cfg = SsdConfig::tiny_test();
        cfg.ftl.spare_blocks_per_plane = 2;
        let mut sim = Simulator::new(cfg);
        sim.prefill(0..256);
        sim.arm_faults(FaultConfig::preset("high", 0x5EED).expect("known level"));
        let mut trace = Vec::new();
        for i in 0..600u64 {
            trace.push(HostOp {
                at: i * 10_000,
                kind: HostOpKind::Write,
                lpn: i % 256,
                pages: 1,
            });
        }
        for i in 0..400u64 {
            trace.push(HostOp {
                at: (600 + i) * 10_000,
                kind: HostOpKind::Read,
                lpn: i % 256,
                pages: 1,
            });
        }
        let report = sim.run(trace);
        assert_eq!(report.writes.count, 600);
        assert_eq!(report.reads.count, 400);
        let fs = sim.ftl().fault_stats();
        assert!(
            fs.program_fails > 0,
            "high preset must inject program fails"
        );
        assert!(fs.transient_reads > 0, "10% of reads should see transients");
        assert!(fs.power_losses >= 1, "op 500 crosses the first crash point");
        assert_eq!(sim.ftl().stats().recoveries, fs.power_losses);
        assert!(!sim.ftl().power_lost(), "every loss must be recovered");
        sim.ftl()
            .check_consistency()
            .expect("consistent after faults");
    }

    #[test]
    fn try_run_reports_the_offending_entry() {
        let mut sim = Simulator::new(SsdConfig::tiny_test());
        let err = sim
            .try_run(vec![
                HostOp {
                    at: 10,
                    kind: HostOpKind::Read,
                    lpn: 0,
                    pages: 1,
                },
                HostOp {
                    at: 5,
                    kind: HostOpKind::Read,
                    lpn: 1,
                    pages: 1,
                },
            ])
            .unwrap_err();
        assert_eq!(
            err,
            crate::sim::SimError::UnsortedTrace {
                index: 1,
                at: 5,
                prev: 10
            }
        );
        assert!(err.to_string().contains("not sorted"));
        // A sorted trace runs normally through the same entry point.
        sim.prefill(0..1);
        let report = sim
            .try_run(vec![HostOp {
                at: 0,
                kind: HostOpKind::Read,
                lpn: 0,
                pages: 1,
            }])
            .unwrap();
        assert_eq!(report.reads.count, 1);
    }

    #[test]
    fn sourced_run_matches_the_trace_path() {
        // The same warmed device state, the same trace: the pull path and
        // the push path must agree on the full report.
        let trace = write_then_read_trace(48, 70 * NS_PER_US);
        let mut a = Simulator::new(SsdConfig::tiny_test());
        a.prefill(0..48);
        let ra = a.run(trace.clone());
        let mut b = Simulator::new(SsdConfig::tiny_test());
        b.prefill(0..48);
        let mut src = crate::source::ListSource::new(trace);
        let rb = b.run_source(&mut src).expect("list source never stalls");
        assert_eq!(ra, rb);
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn sourced_run_with_empty_source_is_empty() {
        let mut sim = Simulator::new(SsdConfig::tiny_test());
        let mut src = crate::source::ListSource::new(Vec::new());
        let report = sim.run_source(&mut src).expect("empty source");
        assert_eq!(report.reads.count + report.writes.count, 0);
        assert_eq!(report.events_processed, 0);
    }

    #[test]
    fn blocked_source_with_nothing_in_flight_errors() {
        struct AlwaysBlocked;
        impl crate::source::ArrivalSource for AlwaysBlocked {
            fn next(&mut self, _now: SimTime) -> crate::source::Pull {
                crate::source::Pull::Blocked
            }
        }
        let mut sim = Simulator::new(SsdConfig::tiny_test());
        let err = sim.run_source(&mut AlwaysBlocked).unwrap_err();
        assert_eq!(err, crate::sim::SimError::StalledSource);
    }

    #[test]
    fn window_limited_source_is_repulled_on_completion() {
        // A source holding a 1-deep window: returns Blocked while its one
        // request is in flight, relies on on_complete to free the slot.
        struct OneDeep {
            left: u64,
            in_flight: bool,
            completions: u64,
        }
        impl crate::source::ArrivalSource for OneDeep {
            fn next(&mut self, _now: SimTime) -> crate::source::Pull {
                if self.left == 0 {
                    return crate::source::Pull::Done;
                }
                if self.in_flight {
                    return crate::source::Pull::Blocked;
                }
                self.left -= 1;
                self.in_flight = true;
                crate::source::Pull::Op(crate::source::SourcedOp {
                    // Always lpn 0: an LSB page, so every read costs the
                    // same uncontended 118 µs.
                    op: HostOp {
                        at: 0,
                        kind: HostOpKind::Read,
                        lpn: 0,
                        pages: 1,
                    },
                    token: self.left,
                })
            }
            fn on_complete(
                &mut self,
                _now: SimTime,
                _token: u64,
                _kind: HostOpKind,
                _latency_ns: SimTime,
            ) {
                self.in_flight = false;
                self.completions += 1;
            }
        }
        let mut sim = Simulator::new(SsdConfig::tiny_test());
        sim.prefill(0..8);
        let mut src = OneDeep {
            left: 16,
            in_flight: false,
            completions: 0,
        };
        let report = sim.run_source(&mut src).expect("window source drains");
        assert_eq!(report.reads.count, 16);
        assert_eq!(src.completions, 16);
        // Serialized closed-loop at depth 1: every read pays the full
        // uncontended latency, none of them queue behind each other.
        assert_eq!(report.reads.mean() as u64, 118 * NS_PER_US);
    }

    #[test]
    fn closed_loop_source_matches_the_closed_loop_path() {
        // The driver contract behind run_closed_loop: a manually built
        // ClosedLoopSource driven through run_source must reproduce the
        // wrapper's Report byte-for-byte at every depth, including
        // depth 1 (fully serialized) and depths larger than the trace.
        // (This test was written against the pre-unification run_inner
        // body and proved byte-identity before that body was deleted.)
        let mut trace = write_then_read_trace(48, 0);
        // Unmapped reads complete instantly, exercising the
        // instant-completion slot-free path.
        for i in 0..8u64 {
            trace.push(HostOp {
                at: 0,
                kind: HostOpKind::Read,
                lpn: 1_000 + i,
                pages: 1,
            });
        }
        for depth in [1usize, 4, 32, 100] {
            let mut a = Simulator::new(SsdConfig::tiny_test());
            a.prefill(0..48);
            let ra = a.run_closed_loop(trace.clone(), depth);
            let mut b = Simulator::new(SsdConfig::tiny_test());
            b.prefill(0..48);
            let mut src =
                crate::source::ClosedLoopSource::new(trace.clone(), depth).expect("positive depth");
            let rb = b.run_source(&mut src).expect("closed loop never stalls");
            assert_eq!(ra, rb, "reports diverge at depth {depth}");
            assert_eq!(a.now(), b.now(), "clocks diverge at depth {depth}");
        }
    }

    #[test]
    fn closed_loop_source_matches_on_empty_trace() {
        let mut a = Simulator::new(SsdConfig::tiny_test());
        let ra = a.run_closed_loop(Vec::new(), 8);
        let mut b = Simulator::new(SsdConfig::tiny_test());
        let mut src = crate::source::ClosedLoopSource::new(Vec::new(), 8).expect("positive depth");
        let rb = b.run_source(&mut src).expect("empty source");
        assert_eq!(ra, rb);
        assert_eq!(ra.events_processed, 0);
    }

    #[test]
    fn zero_depth_closed_loop_source_is_a_typed_error() {
        let err = crate::source::ClosedLoopSource::new(Vec::new(), 0).unwrap_err();
        assert_eq!(err, SimError::ZeroQueueDepth);
        assert!(err.to_string().contains("queue depth"));
    }

    #[test]
    fn try_run_closed_loop_matches_the_panicking_wrapper() {
        let trace = write_then_read_trace(16, 0);
        let mut a = Simulator::new(SsdConfig::tiny_test());
        a.prefill(0..16);
        let ra = a.run_closed_loop(trace.clone(), 4);
        let mut b = Simulator::new(SsdConfig::tiny_test());
        b.prefill(0..16);
        let rb = b.try_run_closed_loop(trace, 4).expect("valid depth");
        assert_eq!(ra, rb);
        let err = b.try_run_closed_loop(Vec::new(), 0).unwrap_err();
        assert_eq!(err, SimError::ZeroQueueDepth);
    }

    #[test]
    fn open_loop_wrapper_matches_a_manual_list_source() {
        // The driver contract behind run/try_run: identical Reports to a
        // manually driven ListSource, including the persistent-clock
        // second run. (Also written against the pre-unification body.)
        let trace = write_then_read_trace(32, 70 * NS_PER_US);
        let mut a = Simulator::new(SsdConfig::tiny_test());
        a.prefill(0..32);
        let ra1 = a.run(trace.clone());
        let ra2 = a.run(trace.clone());
        let mut b = Simulator::new(SsdConfig::tiny_test());
        b.prefill(0..32);
        let rb1 = b
            .run_source(&mut crate::source::ListSource::new(trace.clone()))
            .expect("list source never stalls");
        let rb2 = b
            .run_source(&mut crate::source::ListSource::new(trace))
            .expect("list source never stalls");
        assert_eq!(ra1, rb1);
        assert_eq!(ra2, rb2);
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn background_ops_do_not_block_host_read_starts() {
        // A read arriving while a program is in flight on the same die
        // starts sensing immediately (suspension).
        let mut sim = Simulator::new(SsdConfig::tiny_test());
        sim.prefill(0..64);
        // One write then an immediate read of a page on the same die: the
        // read's response must not include the 2.3 ms program.
        let victim_page = 0u64;
        let report = sim.run(vec![
            HostOp {
                at: 0,
                kind: HostOpKind::Write,
                lpn: 62,
                pages: 2,
            },
            HostOp {
                at: 1_000,
                kind: HostOpKind::Read,
                lpn: victim_page,
                pages: 1,
            },
        ]);
        assert!(
            report.reads.mean() < 1_000_000.0,
            "read should bypass the in-flight program, got {} ns",
            report.reads.mean()
        );
    }
}
