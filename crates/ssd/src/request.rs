//! Host request model.

use ida_flash::timing::SimTime;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostOpKind {
    /// Host read.
    Read,
    /// Host write.
    Write,
}

/// One host I/O request, already aligned to logical pages.
///
/// Traces produced by `ida-workloads` are sequences of `HostOp`s sorted by
/// arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostOp {
    /// Arrival time (ns).
    pub at: SimTime,
    /// Read or write.
    pub kind: HostOpKind,
    /// First logical page touched.
    pub lpn: u64,
    /// Number of consecutive logical pages.
    pub pages: u32,
}

impl HostOp {
    /// The logical pages this request touches.
    pub fn lpns(&self) -> impl Iterator<Item = u64> + '_ {
        self.lpn..self.lpn + self.pages as u64
    }
}

/// In-flight bookkeeping for one host request.
#[derive(Debug, Clone)]
pub(crate) struct PendingRequest {
    pub arrival: SimTime,
    pub kind: HostOpKind,
    pub outstanding: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpns_iterates_the_extent() {
        let op = HostOp {
            at: 0,
            kind: HostOpKind::Read,
            lpn: 10,
            pages: 3,
        };
        assert_eq!(op.lpns().collect::<Vec<_>>(), vec![10, 11, 12]);
    }
}
