//! Run metrics: response-time statistics, the Figure 4 read breakdown,
//! and throughput.

use ida_flash::timing::SimTime;
use ida_ftl::ReadScenario;
use serde::{Deserialize, Serialize};

/// Response-time statistics for one operation class.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of completed requests.
    pub count: u64,
    /// Sum of response times (ns).
    pub total_ns: u128,
    /// All response times, for percentile queries (ns).
    samples: Vec<u64>,
}

impl LatencyStats {
    /// Record one response time.
    pub fn record(&mut self, ns: SimTime) {
        self.count += 1;
        self.total_ns += ns as u128;
        self.samples.push(ns);
    }

    /// Mean response time in ns (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Mean response time in µs.
    pub fn mean_us(&self) -> f64 {
        self.mean() / 1_000.0
    }

    /// The `p`-th percentile response time in ns (`0 < p <= 100`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p) && p > 0.0, "percentile out of range");
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
    }
}

/// Counts of host reads per validity scenario — the data behind Figure 4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadBreakdown {
    /// LSB reads.
    pub lsb: u64,
    /// CSB reads with all lower pages valid.
    pub csb_lower_valid: u64,
    /// CSB reads with the LSB invalid.
    pub csb_lower_invalid: u64,
    /// MSB reads with all lower pages valid.
    pub msb_lower_valid: u64,
    /// MSB reads with some lower page invalid.
    pub msb_lower_invalid: u64,
    /// Reads served from IDA-coded wordlines.
    pub ida: u64,
}

impl ReadBreakdown {
    /// Record one classified read.
    pub fn record(&mut self, scenario: ReadScenario) {
        match scenario {
            ReadScenario::Lsb => self.lsb += 1,
            ReadScenario::CsbLowerValid => self.csb_lower_valid += 1,
            ReadScenario::CsbLowerInvalid => self.csb_lower_invalid += 1,
            ReadScenario::MsbLowerValid => self.msb_lower_valid += 1,
            ReadScenario::MsbLowerInvalid => self.msb_lower_invalid += 1,
            ReadScenario::IdaCoded => self.ida += 1,
        }
    }

    /// Total classified reads.
    pub fn total(&self) -> u64 {
        self.lsb
            + self.csb_lower_valid
            + self.csb_lower_invalid
            + self.msb_lower_valid
            + self.msb_lower_invalid
            + self.ida
    }

    /// Fraction of CSB reads whose LSB is invalid (the paper's 18 %
    /// average), ignoring IDA-coded reads.
    pub fn csb_invalid_fraction(&self) -> f64 {
        let csb = self.csb_lower_valid + self.csb_lower_invalid;
        if csb == 0 {
            0.0
        } else {
            self.csb_lower_invalid as f64 / csb as f64
        }
    }

    /// Fraction of MSB reads whose LSB and/or CSB is invalid (the paper's
    /// 30 % average), ignoring IDA-coded reads.
    pub fn msb_invalid_fraction(&self) -> f64 {
        let msb = self.msb_lower_valid + self.msb_lower_invalid;
        if msb == 0 {
            0.0
        } else {
            self.msb_lower_invalid as f64 / msb as f64
        }
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Host read response times.
    pub reads: LatencyStats,
    /// Host write response times.
    pub writes: LatencyStats,
    /// Read classification (Figure 4).
    pub breakdown: ReadBreakdown,
    /// First host arrival (ns).
    pub first_arrival: SimTime,
    /// Last host completion (ns).
    pub last_completion: SimTime,
    /// Host bytes read.
    pub bytes_read: u64,
    /// Host bytes written.
    pub bytes_written: u64,
    /// FTL statistics snapshot at end of run.
    pub ftl: ida_ftl::FtlStats,
    /// Blocks not free at the end of the run (Section III-C tracks the
    /// in-use block increase caused by IDA coding).
    pub in_use_blocks: u32,
}

impl Report {
    /// Device throughput over the run's makespan, in MB/s.
    pub fn throughput_mbps(&self) -> f64 {
        let span = self.last_completion.saturating_sub(self.first_arrival);
        if span == 0 {
            return 0.0;
        }
        let bytes = (self.bytes_read + self.bytes_written) as f64;
        bytes / (span as f64 / 1e9) / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_mean_and_percentiles() {
        let mut s = LatencyStats::default();
        for v in [100, 200, 300, 400] {
            s.record(v);
        }
        assert_eq!(s.mean(), 250.0);
        assert_eq!(s.percentile(50.0), 200);
        assert_eq!(s.percentile(100.0), 400);
        assert_eq!(s.percentile(1.0), 100);
    }

    #[test]
    fn empty_latency_stats_are_zero() {
        let s = LatencyStats::default();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(50.0), 0);
    }

    #[test]
    fn breakdown_fractions_match_counts() {
        let mut b = ReadBreakdown::default();
        for _ in 0..82 {
            b.record(ReadScenario::CsbLowerValid);
        }
        for _ in 0..18 {
            b.record(ReadScenario::CsbLowerInvalid);
        }
        for _ in 0..70 {
            b.record(ReadScenario::MsbLowerValid);
        }
        for _ in 0..30 {
            b.record(ReadScenario::MsbLowerInvalid);
        }
        assert!((b.csb_invalid_fraction() - 0.18).abs() < 1e-9);
        assert!((b.msb_invalid_fraction() - 0.30).abs() < 1e-9);
        assert_eq!(b.total(), 200);
    }

    #[test]
    fn throughput_uses_makespan() {
        let report = Report {
            bytes_read: 1_000_000,
            bytes_written: 0,
            first_arrival: 0,
            last_completion: 1_000_000_000, // 1 s
            ..Report::default()
        };
        assert!((report.throughput_mbps() - 1.0).abs() < 1e-9);
    }
}
