//! Run metrics: response-time statistics, the Figure 4 read breakdown,
//! throughput, and machine/human-readable run reports.

use ida_flash::timing::SimTime;
use ida_ftl::ReadScenario;
use ida_obs::gauge::GaugeSeries;
use ida_obs::hist::LogHistogram;
use ida_obs::json::{array, JsonObj};
use ida_obs::span::{PhaseStats, ALL_PHASES};

/// Response-time statistics for one operation class.
///
/// Backed by a fixed-memory log-bucketed histogram: memory stays constant
/// no matter how many requests a run completes, and percentile queries
/// walk the buckets (O(buckets)) instead of cloning and sorting a sample
/// vector. Count, sum, mean, min and max are exact; percentiles are
/// accurate to one bucket width (≈ 3 %). Tests that need exact
/// percentiles can opt into [`LatencyStats::exact`], which additionally
/// keeps every sample.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    /// Number of completed requests.
    pub count: u64,
    /// Sum of response times (ns).
    pub total_ns: u128,
    hist: LogHistogram,
    /// Exact samples, kept only in [`LatencyStats::exact`] mode.
    samples: Option<Vec<u64>>,
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats {
            count: 0,
            total_ns: 0,
            hist: LogHistogram::new(),
            samples: None,
        }
    }
}

impl LatencyStats {
    /// Histogram-backed stats (the default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Stats that additionally retain every sample, making `percentile`
    /// exact. Memory grows with the request count — for tests and small
    /// diagnostic runs only.
    pub fn exact() -> Self {
        LatencyStats {
            samples: Some(Vec::new()),
            ..Self::default()
        }
    }

    /// Record one response time.
    pub fn record(&mut self, ns: SimTime) {
        self.count += 1;
        self.total_ns += ns as u128;
        self.hist.record(ns);
        if let Some(samples) = &mut self.samples {
            samples.push(ns);
        }
    }

    /// Mean response time in ns (0 when empty). Exact.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Mean response time in µs. Exact.
    pub fn mean_us(&self) -> f64 {
        self.mean() / 1_000.0
    }

    /// Maximum recorded response time in ns (0 when empty). Exact.
    pub fn max(&self) -> u64 {
        self.hist.max()
    }

    /// The `p`-th percentile response time in ns (`0 <= p <= 100`).
    /// Accurate to one histogram bucket width (`p = 0`, `p = 100` and
    /// exact mode are fully exact).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` (including NaN).
    pub fn percentile(&self, p: f64) -> u64 {
        assert!(
            (0.0..=100.0).contains(&p),
            "percentile {p} outside [0, 100]"
        );
        if let Some(samples) = &self.samples {
            if samples.is_empty() {
                return 0;
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            return sorted[rank.saturating_sub(1).min(sorted.len() - 1)];
        }
        self.hist.percentile(p)
    }

    /// The underlying histogram (for serialization and merging).
    pub fn histogram(&self) -> &LogHistogram {
        &self.hist
    }

    /// Summary as a JSON object string (count, mean, percentiles, max).
    pub fn to_json(&self) -> String {
        JsonObj::new()
            .u64("count", self.count)
            .u128("total_ns", self.total_ns)
            .f64("mean_ns", self.mean())
            .u64(
                "p50_ns",
                if self.count == 0 {
                    0
                } else {
                    self.percentile(50.0)
                },
            )
            .u64(
                "p90_ns",
                if self.count == 0 {
                    0
                } else {
                    self.percentile(90.0)
                },
            )
            .u64(
                "p99_ns",
                if self.count == 0 {
                    0
                } else {
                    self.percentile(99.0)
                },
            )
            .u64(
                "p999_ns",
                if self.count == 0 {
                    0
                } else {
                    self.percentile(99.9)
                },
            )
            .u64("max_ns", self.max())
            .finish()
    }
}

/// Counts of host reads per validity scenario — the data behind Figure 4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadBreakdown {
    /// LSB reads.
    pub lsb: u64,
    /// CSB reads with all lower pages valid.
    pub csb_lower_valid: u64,
    /// CSB reads with the LSB invalid.
    pub csb_lower_invalid: u64,
    /// MSB reads with all lower pages valid.
    pub msb_lower_valid: u64,
    /// MSB reads with some lower page invalid.
    pub msb_lower_invalid: u64,
    /// Reads served from IDA-coded wordlines.
    pub ida: u64,
}

impl ReadBreakdown {
    /// Record one classified read.
    pub fn record(&mut self, scenario: ReadScenario) {
        match scenario {
            ReadScenario::Lsb => self.lsb += 1,
            ReadScenario::CsbLowerValid => self.csb_lower_valid += 1,
            ReadScenario::CsbLowerInvalid => self.csb_lower_invalid += 1,
            ReadScenario::MsbLowerValid => self.msb_lower_valid += 1,
            ReadScenario::MsbLowerInvalid => self.msb_lower_invalid += 1,
            ReadScenario::IdaCoded => self.ida += 1,
        }
    }

    /// The count recorded for `scenario`.
    pub fn count_for(&self, scenario: ReadScenario) -> u64 {
        match scenario {
            ReadScenario::Lsb => self.lsb,
            ReadScenario::CsbLowerValid => self.csb_lower_valid,
            ReadScenario::CsbLowerInvalid => self.csb_lower_invalid,
            ReadScenario::MsbLowerValid => self.msb_lower_valid,
            ReadScenario::MsbLowerInvalid => self.msb_lower_invalid,
            ReadScenario::IdaCoded => self.ida,
        }
    }

    /// Total classified reads.
    pub fn total(&self) -> u64 {
        self.lsb
            + self.csb_lower_valid
            + self.csb_lower_invalid
            + self.msb_lower_valid
            + self.msb_lower_invalid
            + self.ida
    }

    /// Fraction of CSB reads whose LSB is invalid (the paper's 18 %
    /// average), ignoring IDA-coded reads.
    pub fn csb_invalid_fraction(&self) -> f64 {
        let csb = self.csb_lower_valid + self.csb_lower_invalid;
        if csb == 0 {
            0.0
        } else {
            self.csb_lower_invalid as f64 / csb as f64
        }
    }

    /// Fraction of MSB reads whose LSB and/or CSB is invalid (the paper's
    /// 30 % average), ignoring IDA-coded reads.
    pub fn msb_invalid_fraction(&self) -> f64 {
        let msb = self.msb_lower_valid + self.msb_lower_invalid;
        if msb == 0 {
            0.0
        } else {
            self.msb_lower_invalid as f64 / msb as f64
        }
    }

    /// Counts as a JSON object string.
    pub fn to_json(&self) -> String {
        JsonObj::new()
            .u64("lsb", self.lsb)
            .u64("csb_lower_valid", self.csb_lower_valid)
            .u64("csb_lower_invalid", self.csb_lower_invalid)
            .u64("msb_lower_valid", self.msb_lower_valid)
            .u64("msb_lower_invalid", self.msb_lower_invalid)
            .u64("ida", self.ida)
            .finish()
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Host read response times.
    pub reads: LatencyStats,
    /// Host write response times.
    pub writes: LatencyStats,
    /// Read classification (Figure 4).
    pub breakdown: ReadBreakdown,
    /// First host arrival (ns).
    pub first_arrival: SimTime,
    /// Last host completion (ns).
    pub last_completion: SimTime,
    /// Host bytes read.
    pub bytes_read: u64,
    /// Host bytes written.
    pub bytes_written: u64,
    /// FTL statistics snapshot at end of run.
    pub ftl: ida_ftl::FtlStats,
    /// Blocks not free at the end of the run (Section III-C tracks the
    /// in-use block increase caused by IDA coding).
    pub in_use_blocks: u32,
    /// Simulation events popped off the event queue during the run — the
    /// deterministic work count behind the benchmark suite's events/sec.
    pub events_processed: u64,
    /// Flash operations (reads, programs, erases, voltage adjustments)
    /// enqueued to dies during the run.
    pub flash_ops: u64,
    /// Time-series gauges sampled during the run (empty unless gauge
    /// sampling was enabled on the simulator).
    pub gauges: Vec<GaugeSeries>,
    /// Per-phase latency attribution for reads (empty unless spans were
    /// enabled; see `Simulator::set_spans`). Under the conservation
    /// invariant its grand total equals `reads.total_ns` exactly.
    pub read_attribution: PhaseStats,
    /// Per-phase latency attribution for writes.
    pub write_attribution: PhaseStats,
    /// Busy (held) nanoseconds per die over the run — the exact union of
    /// read/program/erase hold windows plus recovery stalls.
    pub die_busy_ns: Vec<u128>,
    /// Busy nanoseconds per channel over the run.
    pub channel_busy_ns: Vec<u128>,
}

impl Report {
    /// Device throughput over the run's makespan, in MB/s (decimal
    /// megabytes, 10^6 bytes — the storage-industry convention the paper
    /// uses). See [`Report::throughput_mibps`] for the binary unit.
    pub fn throughput_mbps(&self) -> f64 {
        let span = self.last_completion.saturating_sub(self.first_arrival);
        if span == 0 {
            return 0.0;
        }
        let bytes = (self.bytes_read + self.bytes_written) as f64;
        bytes / (span as f64 / 1e9) / 1e6
    }

    /// Device throughput over the run's makespan, in MiB/s (binary
    /// mebibytes, 2^20 bytes).
    pub fn throughput_mibps(&self) -> f64 {
        let span = self.last_completion.saturating_sub(self.first_arrival);
        if span == 0 {
            return 0.0;
        }
        let bytes = (self.bytes_read + self.bytes_written) as f64;
        bytes / (span as f64 / 1e9) / (1u64 << 20) as f64
    }

    /// The run's makespan in ns (last completion minus first arrival) —
    /// the denominator for utilization percentages.
    pub fn duration_ns(&self) -> u64 {
        self.last_completion.saturating_sub(self.first_arrival)
    }

    /// `busy_ns`'s share of the run makespan, in percent (0 for an empty
    /// run). Can exceed 100 for work carried across run boundaries.
    pub fn utilization_pct(&self, busy_ns: u128) -> f64 {
        let span = self.duration_ns();
        if span == 0 {
            0.0
        } else {
            busy_ns as f64 * 100.0 / span as f64
        }
    }

    /// The attribution waterfalls as one deterministic JSON object
    /// (`{"reads":…,"writes":…}`), byte-identical whether built in-sim or
    /// replayed from a trace by `idasim trace`.
    pub fn attribution_json(&self) -> String {
        JsonObj::new()
            .raw("reads", &self.read_attribution.to_json())
            .raw("writes", &self.write_attribution.to_json())
            .finish()
    }

    /// The full report as one deterministic JSON object string: latency
    /// histogram summaries, the Figure 4 breakdown, FTL counter
    /// snapshots, throughput, and any sampled gauge series.
    pub fn to_json(&self) -> String {
        let f = &self.ftl;
        let counters = JsonObj::new()
            .u64("host_writes", f.host_writes)
            .u64("host_reads", f.host_reads)
            .u64("gc_runs", f.gc_runs)
            .u64("gc_copies", f.gc_copies)
            .u64("erases", f.erases)
            .u64("refreshes", f.refreshes)
            .u64("refresh_moves", f.refresh_moves)
            .u64("voltage_adjusts", f.voltage_adjusts)
            .u64("ida_conversions", f.ida_conversions)
            .u64("ida_reads", f.ida_reads)
            .f64("write_amplification", f.write_amplification())
            .finish();
        let faults = JsonObj::new()
            .u64("injected_program_fails", f.injected_program_fails)
            .u64("injected_erase_fails", f.injected_erase_fails)
            .u64("transient_read_faults", f.transient_read_faults)
            .u64("write_redirects", f.write_redirects)
            .u64("retired_blocks", f.retired_blocks)
            .u64("power_losses", f.power_losses)
            .u64("recoveries", f.recoveries)
            .u64("rejected_writes", f.rejected_writes)
            .finish();
        let aging = JsonObj::new()
            .u64("scrub_passes", f.scrub_passes)
            .u64("scrub_relocations", f.scrub_relocations)
            .u64("wear_level_moves", f.wear_level_moves)
            .u64("ecc_uncorrectables", f.ecc_uncorrectables)
            .u64("ladder_retries", f.ladder_retries)
            .u64("rber_e9_sum", f.rber_e9_sum)
            .finish();
        JsonObj::new()
            .raw("reads", &self.reads.to_json())
            .raw("writes", &self.writes.to_json())
            .raw("breakdown", &self.breakdown.to_json())
            .u64("first_arrival_ns", self.first_arrival)
            .u64("last_completion_ns", self.last_completion)
            .u64("bytes_read", self.bytes_read)
            .u64("bytes_written", self.bytes_written)
            .f64("throughput_mbps", self.throughput_mbps())
            .f64("throughput_mibps", self.throughput_mibps())
            .raw("ftl", &counters)
            .raw("faults", &faults)
            .raw("aging", &aging)
            .u64("in_use_blocks", self.in_use_blocks as u64)
            .u64("events_processed", self.events_processed)
            .u64("flash_ops", self.flash_ops)
            .raw("attribution", &self.attribution_json())
            .raw(
                "die_busy_ns",
                &array(self.die_busy_ns.iter().map(|b| b.to_string())),
            )
            .raw(
                "channel_busy_ns",
                &array(self.channel_busy_ns.iter().map(|b| b.to_string())),
            )
            .raw("gauges", &array(self.gauges.iter().map(|g| g.to_json())))
            .finish()
    }

    /// A human-readable summary table of the run.
    pub fn render_table(&self) -> String {
        fn row(out: &mut String, k: &str, v: String) {
            out.push_str(&format!("  {k:<24} {v:>16}\n"));
        }
        let mut out = String::from("run report\n");
        for (name, s) in [("reads", &self.reads), ("writes", &self.writes)] {
            out.push_str(&format!("{name}:\n"));
            row(&mut out, "count", s.count.to_string());
            row(&mut out, "mean", format!("{:.1} us", s.mean_us()));
            if s.count > 0 {
                row(
                    &mut out,
                    "p50 / p99",
                    format!(
                        "{:.1} / {:.1} us",
                        s.percentile(50.0) as f64 / 1e3,
                        s.percentile(99.0) as f64 / 1e3
                    ),
                );
                row(&mut out, "max", format!("{:.1} us", s.max() as f64 / 1e3));
            }
        }
        out.push_str("device:\n");
        row(
            &mut out,
            "throughput",
            format!(
                "{:.1} MB/s ({:.1} MiB/s)",
                self.throughput_mbps(),
                self.throughput_mibps()
            ),
        );
        row(&mut out, "in-use blocks", self.in_use_blocks.to_string());
        row(
            &mut out,
            "write amplification",
            format!("{:.3}", self.ftl.write_amplification()),
        );
        if !self.die_busy_ns.is_empty() || !self.channel_busy_ns.is_empty() {
            out.push_str("utilization:\n");
            for (label, busy) in [
                ("die", &self.die_busy_ns),
                ("channel", &self.channel_busy_ns),
            ] {
                for (i, &b) in busy.iter().enumerate() {
                    row(
                        &mut out,
                        &format!("{label} {i}"),
                        format!("{:.1} %", self.utilization_pct(b)),
                    );
                }
            }
        }
        if !self.read_attribution.is_empty() || !self.write_attribution.is_empty() {
            for (name, a) in [
                ("read attribution", &self.read_attribution),
                ("write attribution", &self.write_attribution),
            ] {
                if a.is_empty() {
                    continue;
                }
                out.push_str(&format!("{name}:\n"));
                for p in ALL_PHASES {
                    if a.total(p) == 0 {
                        continue;
                    }
                    row(
                        &mut out,
                        p.label(),
                        format!("{:.1} us avg ({:.1} %)", a.mean(p) / 1e3, a.share_pct(p)),
                    );
                }
            }
        }
        out.push_str("ftl counters:\n");
        for (k, v) in [
            ("gc runs", self.ftl.gc_runs),
            ("gc copies", self.ftl.gc_copies),
            ("erases", self.ftl.erases),
            ("refreshes", self.ftl.refreshes),
            ("refresh moves", self.ftl.refresh_moves),
            ("ida conversions", self.ftl.ida_conversions),
            ("voltage adjusts", self.ftl.voltage_adjusts),
            ("ida reads", self.ftl.ida_reads),
        ] {
            row(&mut out, k, v.to_string());
        }
        let f = &self.ftl;
        let any_fault = f.injected_program_fails
            + f.injected_erase_fails
            + f.transient_read_faults
            + f.power_losses
            + f.rejected_writes
            > 0;
        if any_fault {
            out.push_str("fault recovery:\n");
            for (k, v) in [
                ("program fails", f.injected_program_fails),
                ("erase fails", f.injected_erase_fails),
                ("transient reads", f.transient_read_faults),
                ("write redirects", f.write_redirects),
                ("retired blocks", f.retired_blocks),
                ("power losses", f.power_losses),
                ("recoveries", f.recoveries),
                ("rejected writes", f.rejected_writes),
            ] {
                row(&mut out, k, v.to_string());
            }
        }
        let any_aging = f.scrub_passes
            + f.scrub_relocations
            + f.wear_level_moves
            + f.ecc_uncorrectables
            + f.ladder_retries
            + f.rber_e9_sum
            > 0;
        if any_aging {
            out.push_str("aging:\n");
            for (k, v) in [
                ("scrub passes", f.scrub_passes),
                ("scrub relocations", f.scrub_relocations),
                ("wear-level moves", f.wear_level_moves),
                ("ecc uncorrectables", f.ecc_uncorrectables),
                ("ladder retries", f.ladder_retries),
            ] {
                row(&mut out, k, v.to_string());
            }
            if f.host_reads > 0 {
                row(
                    &mut out,
                    "mean rber",
                    format!("{:.2e}", f.rber_e9_sum as f64 / 1e9 / f.host_reads as f64),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_mean_and_percentiles_exact_mode() {
        let mut s = LatencyStats::exact();
        for v in [100, 200, 300, 400] {
            s.record(v);
        }
        assert_eq!(s.mean(), 250.0);
        assert_eq!(s.percentile(50.0), 200);
        assert_eq!(s.percentile(100.0), 400);
        assert_eq!(s.percentile(1.0), 100);
    }

    #[test]
    fn histogram_mode_percentiles_are_bucket_accurate() {
        let mut s = LatencyStats::default();
        for v in [100u64, 200, 300, 400] {
            s.record(v);
        }
        assert_eq!(s.mean(), 250.0);
        assert_eq!(s.percentile(100.0), 400);
        let p50 = s.percentile(50.0);
        let width = LogHistogram::width_of(200);
        assert!(p50.abs_diff(200) <= width, "p50 {p50} vs 200 ± {width}");
    }

    #[test]
    fn empty_latency_stats_are_zero() {
        for s in [LatencyStats::default(), LatencyStats::exact()] {
            assert_eq!(s.mean(), 0.0);
            assert_eq!(s.percentile(0.0), 0);
            assert_eq!(s.percentile(50.0), 0);
            assert_eq!(s.percentile(100.0), 0);
            assert_eq!(s.max(), 0);
        }
    }

    #[test]
    fn single_sample_percentile_edges() {
        for mut s in [LatencyStats::default(), LatencyStats::exact()] {
            s.record(77_000);
            assert_eq!(s.percentile(0.0), 77_000);
            assert_eq!(s.percentile(50.0), 77_000);
            assert_eq!(s.percentile(100.0), 77_000);
        }
    }

    #[test]
    fn histogram_memory_is_flat() {
        // The histogram path must not keep per-sample state: record a
        // large stream and check only the aggregate fields changed.
        let mut s = LatencyStats::default();
        for i in 0..1_000_000u64 {
            s.record(i % 1_000_000);
        }
        assert_eq!(s.count, 1_000_000);
        assert!(s.samples.is_none());
        let p99 = s.percentile(99.0);
        assert!(p99.abs_diff(990_000) <= LogHistogram::width_of(990_000));
    }

    #[test]
    fn breakdown_fractions_match_counts() {
        let mut b = ReadBreakdown::default();
        for _ in 0..82 {
            b.record(ReadScenario::CsbLowerValid);
        }
        for _ in 0..18 {
            b.record(ReadScenario::CsbLowerInvalid);
        }
        for _ in 0..70 {
            b.record(ReadScenario::MsbLowerValid);
        }
        for _ in 0..30 {
            b.record(ReadScenario::MsbLowerInvalid);
        }
        assert!((b.csb_invalid_fraction() - 0.18).abs() < 1e-9);
        assert!((b.msb_invalid_fraction() - 0.30).abs() < 1e-9);
        assert_eq!(b.total(), 200);
        assert_eq!(b.count_for(ReadScenario::CsbLowerInvalid), 18);
    }

    #[test]
    fn throughput_uses_makespan() {
        let report = Report {
            bytes_read: 1_000_000,
            bytes_written: 0,
            first_arrival: 0,
            last_completion: 1_000_000_000, // 1 s
            ..Report::default()
        };
        assert!((report.throughput_mbps() - 1.0).abs() < 1e-9);
        // MiB/s is smaller by exactly 10^6 / 2^20.
        let ratio = report.throughput_mibps() / report.throughput_mbps();
        assert!((ratio - 1e6 / (1u64 << 20) as f64).abs() < 1e-12);
    }

    #[test]
    fn report_json_is_deterministic_and_complete() {
        let mut report = Report::default();
        report.reads.record(118_000);
        report.writes.record(2_348_000);
        report.breakdown.record(ReadScenario::Lsb);
        report.bytes_read = 4096;
        report.first_arrival = 0;
        report.last_completion = 118_000;
        let a = report.to_json();
        let b = report.to_json();
        assert_eq!(a, b, "serialization must be deterministic");
        for key in [
            "\"reads\":",
            "\"writes\":",
            "\"breakdown\":",
            "\"p99_ns\":",
            "\"throughput_mbps\":",
            "\"throughput_mibps\":",
            "\"ftl\":",
            "\"gauges\":",
            "\"gc_runs\":",
        ] {
            assert!(a.contains(key), "missing {key} in {a}");
        }
    }

    #[test]
    fn report_table_renders_key_lines() {
        let mut report = Report::default();
        report.reads.record(118_000);
        let table = report.render_table();
        assert!(table.contains("reads:"));
        assert!(table.contains("throughput"));
        assert!(table.contains("ida conversions"));
    }
}
