//! The discrete event queue.
//!
//! A binary heap of `(time, sequence, payload)` — the sequence number makes
//! ordering total and deterministic for simultaneous events.

use ida_flash::timing::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// A timestamped event carrying payload `E`.
#[derive(Debug, Clone)]
struct Timed<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Timed<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Timed<E> {}
impl<E> PartialOrd for Timed<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Timed<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Deterministic discrete-event queue.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Timed<E>>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `payload` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Timed { at, seq, payload }));
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(t)| (t.at, t.payload))
    }

    /// Time of the earliest pending event.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(t)| t.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5, 1);
        q.push(5, 2);
        q.push(5, 3);
        assert_eq!(q.pop(), Some((5, 1)));
        assert_eq!(q.pop(), Some((5, 2)));
        assert_eq!(q.pop(), Some((5, 3)));
    }

    #[test]
    fn next_time_peeks_without_popping() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.push(42, ());
        assert_eq!(q.next_time(), Some(42));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
