//! Pull-based host arrival sources.
//!
//! [`Simulator::run`](crate::Simulator::run) replays a pre-baked
//! `Vec<HostOp>`, which forecloses any in-simulation admission decision:
//! the whole trace is committed before the first event fires. An
//! [`ArrivalSource`] inverts the control flow — the simulator *pulls* the
//! next host op when it is ready for one, and learns of request
//! completions through [`ArrivalSource::on_complete`], so a source can
//! rate-limit, shed, reorder across tenants, or keep a bounded number of
//! requests in flight.
//!
//! All times crossing this interface are **relative to the run base**
//! (the simulator clock when `run_source` was entered): `now` arguments
//! count from 0, and a returned [`HostOp::at`] is an offset from the same
//! origin. An op whose `at` is already in the past is dispatched
//! immediately.

use crate::request::{HostOp, HostOpKind};
use ida_flash::timing::SimTime;

/// A host op handed to the simulator, tagged with a source-private token
/// that comes back verbatim in [`ArrivalSource::on_complete`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourcedOp {
    /// The op to dispatch; `op.at` is an offset from the run base.
    pub op: HostOp,
    /// Opaque correlation token (e.g. a tenant/request index).
    pub token: u64,
}

/// The source's answer to "what arrives next?".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pull {
    /// The next op (its `at` may be now or in the future).
    Op(SourcedOp),
    /// Nothing can be dispatched until some in-flight request completes
    /// (e.g. a full dispatch window). The simulator pulls again after the
    /// next completion; `Blocked` with nothing in flight is a stall and
    /// aborts the run with [`SimError::StalledSource`](crate::SimError).
    Blocked,
    /// The source is exhausted; the run ends once in-flight requests
    /// drain.
    Done,
}

/// A pull-based generator of host traffic driving
/// [`Simulator::run_source`](crate::Simulator::run_source).
pub trait ArrivalSource {
    /// Produce the next arrival. `now` is relative to the run base.
    fn next(&mut self, now: SimTime) -> Pull;

    /// A previously pulled request completed. `now` and `latency_ns` are
    /// in nanoseconds; `token` is the [`SourcedOp::token`] it was pulled
    /// with. Default: ignore.
    fn on_complete(&mut self, now: SimTime, token: u64, kind: HostOpKind, latency_ns: SimTime) {
        let _ = (now, token, kind, latency_ns);
    }

    /// How many ops this source expects to yield in total, if known —
    /// feeds the run's progress heartbeat. Default: unknown.
    fn size_hint(&self) -> Option<u64> {
        None
    }
}

/// Replays a pre-listed trace open-loop through the pull interface.
///
/// With a sorted trace this reproduces [`Simulator::run`]
/// (crate::Simulator::run) byte-for-byte — the equivalence is pinned by
/// `tests/host_load.rs`. Tokens are trace indices.
#[derive(Debug, Clone)]
pub struct ListSource {
    trace: Vec<HostOp>,
    next: usize,
}

impl ListSource {
    /// Wrap a trace (must be sorted by arrival time for open-loop
    /// semantics; unsorted entries are clamped forward by the simulator).
    pub fn new(trace: Vec<HostOp>) -> Self {
        ListSource { trace, next: 0 }
    }
}

impl ArrivalSource for ListSource {
    fn next(&mut self, _now: SimTime) -> Pull {
        match self.trace.get(self.next) {
            Some(&op) => {
                let token = self.next as u64;
                self.next += 1;
                Pull::Op(SourcedOp { op, token })
            }
            None => Pull::Done,
        }
    }

    fn size_hint(&self) -> Option<u64> {
        Some(self.trace.len() as u64)
    }
}

/// Replays a pre-listed trace closed-loop: arrival timestamps are
/// ignored and exactly `depth` requests are kept outstanding — the
/// saturation replay behind
/// [`Simulator::run_closed_loop`](crate::Simulator::run_closed_loop)
/// (Figure 10's device-throughput comparison). Tokens are trace indices.
#[derive(Debug, Clone)]
pub struct ClosedLoopSource {
    trace: Vec<HostOp>,
    depth: usize,
    next: usize,
    in_flight: usize,
}

impl ClosedLoopSource {
    /// Wrap a trace, keeping `depth` requests in flight.
    ///
    /// # Errors
    ///
    /// Rejects `depth == 0` (no request could ever be admitted).
    pub fn new(trace: Vec<HostOp>, depth: usize) -> Result<Self, crate::sim::SimError> {
        if depth == 0 {
            return Err(crate::sim::SimError::ZeroQueueDepth);
        }
        Ok(ClosedLoopSource {
            trace,
            depth,
            next: 0,
            in_flight: 0,
        })
    }
}

impl ArrivalSource for ClosedLoopSource {
    fn next(&mut self, _now: SimTime) -> Pull {
        let Some(&op) = self.trace.get(self.next) else {
            return Pull::Done;
        };
        if self.in_flight >= self.depth {
            return Pull::Blocked;
        }
        let token = self.next as u64;
        self.next += 1;
        self.in_flight += 1;
        Pull::Op(SourcedOp {
            // The closed loop dispatches as soon as a slot frees: the
            // trace's own timestamps are ignored.
            op: HostOp { at: 0, ..op },
            token,
        })
    }

    fn on_complete(&mut self, _now: SimTime, _token: u64, _kind: HostOpKind, _latency_ns: SimTime) {
        self.in_flight = self.in_flight.saturating_sub(1);
    }

    fn size_hint(&self) -> Option<u64> {
        Some(self.trace.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_source_yields_in_order_then_done() {
        let ops = vec![
            HostOp {
                at: 0,
                kind: HostOpKind::Write,
                lpn: 1,
                pages: 1,
            },
            HostOp {
                at: 5,
                kind: HostOpKind::Read,
                lpn: 1,
                pages: 1,
            },
        ];
        let mut src = ListSource::new(ops.clone());
        match src.next(0) {
            Pull::Op(s) => {
                assert_eq!(s.op, ops[0]);
                assert_eq!(s.token, 0);
            }
            other => panic!("expected op, got {other:?}"),
        }
        match src.next(0) {
            Pull::Op(s) => {
                assert_eq!(s.op, ops[1]);
                assert_eq!(s.token, 1);
            }
            other => panic!("expected op, got {other:?}"),
        }
        assert_eq!(src.next(10), Pull::Done);
        assert_eq!(src.next(20), Pull::Done);
    }
}
