//! Read-retry model (paper Section V-F).
//!
//! Late in an SSD's lifetime the raw bit error rate rises and LDPC decoding
//! of a first, coarse sense may fail; the controller then *re-senses* the
//! page with shifted read voltages, possibly several times, before soft
//! decoding succeeds. Each retry repeats the page's full sensing procedure,
//! so a retry on a conventional MSB page costs another 150 µs while a retry
//! on an IDA-coded page costs only its reduced sensing time — which is why
//! the paper measures a *larger* IDA benefit (42.3 %) in the retry-heavy
//! late lifetime.
//!
//! We model decoding failure per sensing attempt as an independent
//! Bernoulli trial with probability `failure_prob`, capped at
//! `max_retries` extra attempts (after which heroic soft decoding is
//! assumed to succeed), following the failure-probability-vs-extra-sensing
//! framing of LDPC-in-SSD \[38\].

use ida_obs::rng::Rng64;

/// Configuration of the retry model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryConfig {
    /// Probability that any given sensing attempt fails to decode.
    pub failure_prob: f64,
    /// Maximum extra attempts charged to one read.
    pub max_retries: u32,
    /// RNG seed.
    pub seed: u64,
}

ida_snap::snap_struct!(RetryConfig {
    failure_prob,
    max_retries,
    seed,
});

impl RetryConfig {
    /// No retries (early lifetime; the paper's default system). The seed
    /// is irrelevant (the sampler never draws) and left at zero.
    pub fn disabled() -> Self {
        RetryConfig {
            failure_prob: 0.0,
            max_retries: 0,
            seed: 0,
        }
    }

    /// A late-lifetime device where `failure_prob` of sensing attempts
    /// need another attempt. Callers supply the seed — sweeps derive it
    /// from the cell's RNG stream so every cell samples independently.
    ///
    /// # Panics
    ///
    /// Panics if `failure_prob` is not in `[0, 1)`.
    pub fn late_lifetime(failure_prob: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&failure_prob),
            "failure probability must be in [0, 1), got {failure_prob}"
        );
        RetryConfig {
            failure_prob,
            max_retries: 5,
            seed,
        }
    }
}

/// Stateful sampler of per-read retry counts.
#[derive(Debug, Clone)]
pub struct RetryModel {
    cfg: RetryConfig,
    rng: Rng64,
}

ida_snap::snap_struct!(RetryModel { cfg, rng });

impl RetryModel {
    /// A sampler for `cfg`.
    pub fn new(cfg: RetryConfig) -> Self {
        RetryModel {
            rng: Rng64::seed_from_u64(cfg.seed),
            cfg,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &RetryConfig {
        &self.cfg
    }

    /// Sample the number of *extra* sensing attempts for one host read.
    pub fn sample_retries(&mut self) -> u32 {
        if self.cfg.failure_prob <= 0.0 {
            return 0;
        }
        let mut retries = 0;
        while retries < self.cfg.max_retries && self.rng.gen_bool(self.cfg.failure_prob) {
            retries += 1;
        }
        retries
    }
}

/// The RBER-driven multi-step read-retry ladder (the aging-aware
/// replacement for the flat [`RetryModel`] draw).
///
/// The first-attempt decode-failure probability of one read is
/// `min(rber × senses × gain, 0.9)` — proportional to the wordline's
/// modeled RBER *and* to how many sensing levels the read must resolve,
/// so IDA-coded wordlines (fewer senses) climb a shallower ladder: the
/// paper's mechanism, now reliability-coupled. Each successive retry
/// shifts the read voltages and halves the failure probability; a read
/// still failing after `depth` extra attempts is declared
/// ECC-uncorrectable and handled by relocation-and-remap upstream.
///
/// Determinism: reads with zero ladder probability consume no RNG draw,
/// so arming the ladder does not perturb unrelated random streams.
#[derive(Debug, Clone)]
pub struct ReadLadder {
    gain: f64,
    depth: u32,
    rng: Rng64,
}

ida_snap::snap_struct!(ReadLadder { gain, depth, rng });

impl ReadLadder {
    /// A ladder with the given RBER→failure-probability `gain` and
    /// maximum extra attempts `depth`, drawing from a private seeded
    /// stream.
    pub fn new(gain: f64, depth: u32, seed: u64) -> Self {
        ReadLadder {
            gain,
            depth,
            rng: Rng64::seed_from_u64(seed),
        }
    }

    /// Maximum extra attempts before a read is uncorrectable.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Sample one read: returns `(extra_attempts, uncorrectable)`.
    /// `uncorrectable` means the ladder exhausted all `depth` steps
    /// (the charged extras equal `depth`).
    pub fn sample(&mut self, rber: f64, senses: u32) -> (u32, bool) {
        let mut p = (rber * senses as f64 * self.gain).min(0.9);
        if p <= 0.0 || self.depth == 0 {
            return (0, false);
        }
        let mut extra = 0;
        while self.rng.gen_bool(p) {
            extra += 1;
            if extra >= self.depth {
                return (self.depth, true);
            }
            p /= 2.0;
        }
        (extra, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_model_never_retries() {
        let mut m = RetryModel::new(RetryConfig::disabled());
        assert!((0..1000).all(|_| m.sample_retries() == 0));
    }

    #[test]
    fn retries_are_capped() {
        let mut m = RetryModel::new(RetryConfig {
            failure_prob: 0.99,
            max_retries: 3,
            seed: 1,
        });
        assert!((0..1000).all(|_| m.sample_retries() <= 3));
        assert!((0..1000).any(|_| m.sample_retries() == 3));
    }

    #[test]
    fn mean_retries_tracks_geometric_distribution() {
        let p = 0.5;
        let mut m = RetryModel::new(RetryConfig::late_lifetime(p, 0xEE77));
        let n = 50_000;
        let total: u32 = (0..n).map(|_| m.sample_retries()).sum();
        let mean = total as f64 / n as f64;
        // Geometric mean p/(1-p) = 1.0, slightly reduced by the cap.
        assert!((mean - 0.97).abs() < 0.05, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "failure probability")]
    fn certain_failure_rejected() {
        let _ = RetryConfig::late_lifetime(1.0, 0);
    }

    #[test]
    fn ladder_is_inert_at_zero_rber_and_draws_nothing() {
        let mut a = ReadLadder::new(40.0, 5, 7);
        for _ in 0..100 {
            assert_eq!(a.sample(0.0, 4), (0, false));
        }
        // No draws were consumed: the next nonzero sample matches a fresh
        // ladder's first sample exactly.
        let mut b = ReadLadder::new(40.0, 5, 7);
        assert_eq!(a.sample(1e-3, 4), b.sample(1e-3, 4));
    }

    #[test]
    fn ladder_depth_scales_with_senses() {
        // More sensing levels → higher first-attempt failure probability
        // → more mean extras: the IDA mechanism, reliability-coupled.
        let n = 20_000;
        let mean = |senses: u32| {
            let mut l = ReadLadder::new(40.0, 5, 0xA9E);
            (0..n).map(|_| l.sample(2e-3, senses).0 as u64).sum::<u64>() as f64 / n as f64
        };
        let one = mean(1);
        let four = mean(4);
        assert!(
            four > one * 1.5,
            "4-sense reads must retry more: {one} vs {four}"
        );
    }

    #[test]
    fn ladder_exhaustion_is_uncorrectable() {
        // Saturated probability (0.9 per step, halving) still exhausts
        // eventually; uncorrectable iff extras == depth.
        let mut l = ReadLadder::new(1e9, 3, 3);
        let mut saw_uncorrectable = false;
        for _ in 0..5_000 {
            let (extra, unc) = l.sample(1.0, 4);
            assert!(extra <= 3);
            assert_eq!(unc, extra == 3);
            saw_uncorrectable |= unc;
        }
        assert!(saw_uncorrectable);
    }
}
