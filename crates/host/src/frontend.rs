//! The multi-tenant host frontend.
//!
//! [`MultiTenantSource`] implements [`ArrivalSource`]: N tenant streams,
//! each with its own op bodies, [`ArrivalProcess`] and weight, share one
//! device through
//!
//! - a bounded **per-tenant admission queue** with a shed-or-delay
//!   policy for arrivals that find it full,
//! - **deficit-round-robin dispatch** (cost = pages, quantum scaled by
//!   tenant weight) from those queues into
//! - a bounded **dispatch window** of in-flight requests (the device
//!   queue depth the frontend is willing to use).
//!
//! Latency is accounted **end-to-end**: a request's clock starts at its
//! intended arrival instant, so host-queue waiting and DRR scheduling
//! show up in the per-tenant percentiles — exactly the number an SLO is
//! written against.

use crate::arrival::{ArrivalProcess, ArrivalSpec};
use ida_flash::timing::SimTime;
use ida_obs::json::JsonObj;
use ida_obs::trace::{SinkHandle, TraceEvent};
use ida_ssd::metrics::LatencyStats;
use ida_ssd::source::{ArrivalSource, Pull, SourcedOp};
use ida_ssd::{HostOp, HostOpKind};
use std::collections::VecDeque;

/// What to do with an arrival that finds its tenant's queue full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Drop it (counted in [`TenantCounters::shed`], traced as
    /// `host_shed`). The arrival stream keeps its own pace.
    Shed,
    /// Hold it at the door until a queue slot frees; subsequent arrivals
    /// are rescheduled from the late admission instant (the stream
    /// back-pressures instead of dropping).
    Delay,
}

impl AdmissionPolicy {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            AdmissionPolicy::Shed => "shed",
            AdmissionPolicy::Delay => "delay",
        }
    }

    /// Parse a CLI spelling.
    ///
    /// # Errors
    ///
    /// Lists the accepted spellings for anything unknown.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "shed" => Ok(AdmissionPolicy::Shed),
            "delay" => Ok(AdmissionPolicy::Delay),
            other => Err(format!(
                "unknown admission policy {other} (one of: shed, delay)"
            )),
        }
    }
}

/// One tenant's stream definition.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Display name (report sections and trace payloads use the index).
    pub name: String,
    /// Op bodies dispatched in order (their `at` fields are ignored; the
    /// arrival process supplies the timing). One body = one request.
    pub ops: Vec<HostOp>,
    /// Arrival shape.
    pub arrival: ArrivalSpec,
    /// Mean inter-arrival gap, ns (1e9 / offered IOPS).
    pub mean_gap_ns: u64,
    /// DRR weight (quantum multiplier); must be ≥ 1.
    pub weight: u32,
    /// Seed for this tenant's arrival randomness.
    pub seed: u64,
    /// Read p99 SLO target, ns (reported, never enforced).
    pub slo_p99_ns: u64,
}

/// Frontend-wide knobs.
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Max requests in flight on the device (dispatch window).
    pub window: usize,
    /// Per-tenant admission queue bound.
    pub queue_cap: usize,
    /// Full-queue policy.
    pub admission: AdmissionPolicy,
    /// DRR base quantum in pages (scaled by each tenant's weight).
    pub quantum_pages: u64,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            window: 64,
            queue_cap: 256,
            admission: AdmissionPolicy::Shed,
            quantum_pages: 16,
        }
    }
}

/// Typed per-tenant admission/dispatch counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Arrivals that reached the admission decision.
    pub offered: u64,
    /// Arrivals accepted into the queue.
    pub admitted: u64,
    /// Arrivals dropped at a full queue (Shed policy).
    pub shed: u64,
    /// Arrivals that waited at the door (Delay policy).
    pub delayed: u64,
    /// Total nanoseconds arrivals spent waiting at the door.
    pub delayed_ns: u64,
    /// Requests handed to the device.
    pub dispatched: u64,
    /// Requests the device completed.
    pub completed: u64,
}

/// A queued (admitted, not yet dispatched) request.
#[derive(Debug, Clone, Copy)]
struct QueuedReq {
    op: HostOp,
    /// Intended arrival instant (the latency clock origin).
    arrived_at: SimTime,
}

/// Mutable per-tenant state.
#[derive(Debug)]
struct TenantState {
    cfg: TenantConfig,
    arrivals: ArrivalProcess,
    /// Index of the next op body to arrive.
    next_op: usize,
    /// When it arrives (relative to the run base).
    next_at: SimTime,
    /// An arrival past due but held at the door (Delay policy).
    waiting_since: Option<SimTime>,
    queue: VecDeque<QueuedReq>,
    deficit: u64,
    counters: TenantCounters,
    reads: LatencyStats,
    writes: LatencyStats,
}

impl TenantState {
    fn exhausted(&self) -> bool {
        self.next_op >= self.cfg.ops.len()
    }
}

/// Correlation record for one in-flight request.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    tenant: usize,
    arrived_at: SimTime,
}

/// The [`ArrivalSource`] dispatching N tenants into one simulator.
#[derive(Debug)]
pub struct MultiTenantSource {
    tenants: Vec<TenantState>,
    cfg: FrontendConfig,
    /// DRR cursor: the tenant the next pick starts from.
    cursor: usize,
    /// Whether the cursor's tenant already got its quantum this visit
    /// (one refill per round, not per dispatch).
    visit_refilled: bool,
    in_flight: usize,
    /// One record per dispatched request; the index is the pull token.
    meta: Vec<InFlight>,
    /// Trace sink + absolute base for shed events (null by default).
    trace: SinkHandle,
    trace_base: SimTime,
}

impl MultiTenantSource {
    /// Build a frontend over the given tenants.
    ///
    /// # Panics
    ///
    /// Panics on an empty tenant list, a zero weight, a zero window or a
    /// zero queue bound — all configurations that cannot make progress.
    pub fn new(tenants: Vec<TenantConfig>, cfg: FrontendConfig) -> Self {
        assert!(!tenants.is_empty(), "at least one tenant");
        assert!(cfg.window > 0, "dispatch window must be positive");
        assert!(cfg.queue_cap > 0, "queue bound must be positive");
        let tenants = tenants
            .into_iter()
            .map(|t| {
                assert!(t.weight >= 1, "tenant weight must be at least 1");
                let mut arrivals = ArrivalProcess::new(t.arrival, t.mean_gap_ns, t.seed);
                let first = arrivals.next_gap();
                TenantState {
                    cfg: t,
                    arrivals,
                    next_op: 0,
                    next_at: first,
                    waiting_since: None,
                    queue: VecDeque::new(),
                    deficit: 0,
                    counters: TenantCounters::default(),
                    reads: LatencyStats::new(),
                    writes: LatencyStats::new(),
                }
            })
            .collect();
        MultiTenantSource {
            tenants,
            cfg,
            cursor: 0,
            visit_refilled: false,
            in_flight: 0,
            meta: Vec::new(),
            trace: SinkHandle::null(),
            trace_base: 0,
        }
    }

    /// Attach the run's trace sink for `host_shed` events. `base` is the
    /// simulator clock at run start (frontend times are run-relative).
    pub fn bind_trace(&mut self, trace: SinkHandle, base: SimTime) {
        self.trace = trace;
        self.trace_base = base;
    }

    /// Per-tenant end-of-run sections (counters + e2e latency stats).
    pub fn tenant_reports(&self) -> Vec<TenantReport> {
        self.tenants
            .iter()
            .map(|t| {
                let p99_ns = if t.reads.count > 0 {
                    t.reads.percentile(99.0)
                } else {
                    0
                };
                TenantReport {
                    name: t.cfg.name.clone(),
                    weight: t.cfg.weight,
                    arrival: t.cfg.arrival,
                    mean_gap_ns: t.cfg.mean_gap_ns,
                    counters: t.counters,
                    reads: t.reads.clone(),
                    writes: t.writes.clone(),
                    slo_p99_ns: t.cfg.slo_p99_ns,
                    read_p99_ns: p99_ns,
                    slo_met: p99_ns <= t.cfg.slo_p99_ns,
                }
            })
            .collect()
    }

    /// Admit every arrival due at or before `now` on every tenant.
    /// `emit_t` is the monotone emission timestamp for shed events (the
    /// simulator's current instant, which may lag `now` when the
    /// frontend fast-forwards through an idle gap).
    fn drain_arrivals(&mut self, now: SimTime, emit_t: SimTime) {
        for (idx, t) in self.tenants.iter_mut().enumerate() {
            // A door-waiter admits as soon as its queue has room.
            if let Some(since) = t.waiting_since {
                if t.queue.len() < self.cfg.queue_cap {
                    t.waiting_since = None;
                    t.counters.delayed += 1;
                    t.counters.delayed_ns += now.saturating_sub(since);
                    t.counters.admitted += 1;
                    t.queue.push_back(QueuedReq {
                        op: t.cfg.ops[t.next_op],
                        arrived_at: since,
                    });
                    t.next_op += 1;
                    // Back-pressure: the stream restarts from the late
                    // admission, not the intended schedule.
                    t.next_at = now + t.arrivals.next_gap();
                } else {
                    continue;
                }
            }
            while t.next_op < t.cfg.ops.len() && t.next_at <= now {
                t.counters.offered += 1;
                if t.queue.len() < self.cfg.queue_cap {
                    t.counters.admitted += 1;
                    t.queue.push_back(QueuedReq {
                        op: t.cfg.ops[t.next_op],
                        arrived_at: t.next_at,
                    });
                    t.next_op += 1;
                    t.next_at += t.arrivals.next_gap();
                } else {
                    match self.cfg.admission {
                        AdmissionPolicy::Shed => {
                            let op = t.cfg.ops[t.next_op];
                            t.counters.shed += 1;
                            let (at, base) = (t.next_at, self.trace_base);
                            self.trace.emit_with(|| TraceEvent::HostShed {
                                t: base + emit_t,
                                tenant: idx as u64,
                                at: base + at,
                                lpn: op.lpn,
                                pages: op.pages,
                            });
                            t.next_op += 1;
                            t.next_at += t.arrivals.next_gap();
                        }
                        AdmissionPolicy::Delay => {
                            t.waiting_since = Some(t.next_at);
                            break;
                        }
                    }
                }
            }
        }
    }

    /// DRR pick: pop and return the queue head of the next tenant allowed
    /// to dispatch, with its index. Returns `None` when every queue is
    /// empty. Popping here (rather than returning the index and popping
    /// at the call site) keeps "a picked tenant has a head" a local fact
    /// instead of a cross-method invariant a caller must `expect`.
    fn drr_pick(&mut self) -> Option<(usize, QueuedReq)> {
        if self.tenants.iter().all(|t| t.queue.is_empty()) {
            return None;
        }
        let n = self.tenants.len();
        loop {
            let t = &mut self.tenants[self.cursor];
            let Some(&head) = t.queue.front() else {
                // An emptied queue forfeits its savings (classic DRR).
                t.deficit = 0;
                self.visit_refilled = false;
                self.cursor = (self.cursor + 1) % n;
                continue;
            };
            let cost = head.op.pages.max(1) as u64;
            if t.deficit >= cost {
                t.deficit -= cost;
                t.queue.pop_front();
                return Some((self.cursor, head));
            }
            // One refill per visit (not per dispatch, or a backlogged
            // tenant would hold the cursor forever); a head still
            // unaffordable after the refill waits for the next round.
            if !self.visit_refilled {
                self.visit_refilled = true;
                t.deficit += self.cfg.quantum_pages * t.cfg.weight as u64;
                if t.deficit >= cost {
                    t.deficit -= cost;
                    t.queue.pop_front();
                    return Some((self.cursor, head));
                }
            }
            self.visit_refilled = false;
            self.cursor = (self.cursor + 1) % n;
        }
    }

    /// Earliest pending arrival instant across tenants (door-waiters are
    /// already due).
    fn next_arrival_at(&self) -> Option<SimTime> {
        self.tenants
            .iter()
            .filter_map(|t| {
                // A door-waiter is blocked on a queue slot, not on time.
                if t.waiting_since.is_some() || t.exhausted() {
                    None
                } else {
                    Some(t.next_at)
                }
            })
            .min()
    }

    /// Whether any work remains anywhere (queued, at the door, or still
    /// to arrive).
    fn work_remains(&self) -> bool {
        self.tenants
            .iter()
            .any(|t| !t.queue.is_empty() || t.waiting_since.is_some() || !t.exhausted())
    }
}

impl ArrivalSource for MultiTenantSource {
    fn next(&mut self, now: SimTime) -> Pull {
        self.drain_arrivals(now, now);
        loop {
            if self.in_flight >= self.cfg.window {
                return if self.work_remains() {
                    Pull::Blocked
                } else {
                    Pull::Done
                };
            }
            if let Some((idx, q)) = self.drr_pick() {
                let t = &mut self.tenants[idx];
                t.counters.dispatched += 1;
                self.in_flight += 1;
                let token = self.meta.len() as u64;
                self.meta.push(InFlight {
                    tenant: idx,
                    arrived_at: q.arrived_at,
                });
                // Dispatch at the frontend's current instant; the
                // simulator clamps a past `at` to its own now.
                let mut op = q.op;
                op.at = now.max(q.arrived_at);
                return Pull::Op(SourcedOp { op, token });
            }
            // Queues empty: fast-forward to the next arrival, if any.
            match self.next_arrival_at() {
                Some(at) => {
                    let jump = at.max(now);
                    self.drain_arrivals(jump, now);
                }
                None => {
                    return if self.work_remains() {
                        // Door-waiters only: a completion must free the
                        // queue slot they are waiting for.
                        Pull::Blocked
                    } else {
                        Pull::Done
                    };
                }
            }
        }
    }

    fn on_complete(&mut self, now: SimTime, token: u64, kind: HostOpKind, _latency_ns: SimTime) {
        let m = self.meta[token as usize];
        self.in_flight -= 1;
        let t = &mut self.tenants[m.tenant];
        t.counters.completed += 1;
        // End-to-end latency from the intended arrival: host queueing
        // and DRR scheduling delay count against the SLO.
        let e2e = now.saturating_sub(m.arrived_at);
        match kind {
            HostOpKind::Read => t.reads.record(e2e),
            HostOpKind::Write => t.writes.record(e2e),
        }
    }
}

/// One tenant's end-of-run report section.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// DRR weight.
    pub weight: u32,
    /// Arrival shape.
    pub arrival: ArrivalSpec,
    /// Mean inter-arrival gap, ns.
    pub mean_gap_ns: u64,
    /// Admission/dispatch counters.
    pub counters: TenantCounters,
    /// End-to-end read latency (from intended arrival).
    pub reads: LatencyStats,
    /// End-to-end write latency (from intended arrival).
    pub writes: LatencyStats,
    /// Read p99 target, ns.
    pub slo_p99_ns: u64,
    /// Observed read p99, ns.
    pub read_p99_ns: u64,
    /// Whether the target was met.
    pub slo_met: bool,
}

impl TenantReport {
    /// Deterministic JSON section.
    pub fn to_json(&self) -> String {
        let c = self.counters;
        JsonObj::new()
            .str("name", &self.name)
            .u64("weight", self.weight as u64)
            .str("arrival", self.arrival.label())
            .u64("mean_gap_ns", self.mean_gap_ns)
            .u64("offered", c.offered)
            .u64("admitted", c.admitted)
            .u64("shed", c.shed)
            .u64("delayed", c.delayed)
            .u64("delayed_ns", c.delayed_ns)
            .u64("dispatched", c.dispatched)
            .u64("completed", c.completed)
            .u64("read_count", self.reads.count)
            .u64("read_mean_ns", self.reads.mean() as u64)
            .u64(
                "read_p95_ns",
                if self.reads.count > 0 {
                    self.reads.percentile(95.0)
                } else {
                    0
                },
            )
            .u64("read_p99_ns", self.read_p99_ns)
            .u64("write_count", self.writes.count)
            .u64("write_mean_ns", self.writes.mean() as u64)
            .u64("slo_p99_ns", self.slo_p99_ns)
            .bool("slo_met", self.slo_met)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_ops(n: u64, footprint: u64) -> Vec<HostOp> {
        (0..n)
            .map(|i| HostOp {
                at: 0,
                kind: HostOpKind::Read,
                lpn: i % footprint,
                pages: 1,
            })
            .collect()
    }

    fn tenant(name: &str, n: u64, gap: u64, weight: u32, seed: u64) -> TenantConfig {
        TenantConfig {
            name: name.into(),
            ops: read_ops(n, 64),
            arrival: ArrivalSpec::Constant,
            mean_gap_ns: gap,
            weight,
            seed,
            slo_p99_ns: u64::MAX,
        }
    }

    /// Pull everything out of the source, completing each request
    /// `svc_ns` after dispatch — a degenerate single-server device model
    /// sufficient to exercise admission and DRR deterministically.
    fn run_to_completion(src: &mut MultiTenantSource, svc_ns: u64) -> Vec<(u64, SimTime)> {
        let mut dispatched = Vec::new();
        let mut now = 0;
        let mut in_flight: VecDeque<(u64, HostOpKind, SimTime)> = VecDeque::new();
        loop {
            match src.next(now) {
                Pull::Op(sop) => {
                    now = now.max(sop.op.at);
                    dispatched.push((sop.token, now));
                    in_flight.push_back((sop.token, sop.op.kind, now + svc_ns));
                }
                Pull::Blocked => {
                    let (tok, kind, done_at) =
                        in_flight.pop_front().expect("blocked needs in-flight");
                    now = now.max(done_at);
                    src.on_complete(now, tok, kind, svc_ns);
                }
                Pull::Done => {
                    while let Some((tok, kind, done_at)) = in_flight.pop_front() {
                        now = now.max(done_at);
                        src.on_complete(now, tok, kind, svc_ns);
                    }
                    return dispatched;
                }
            }
        }
    }

    #[test]
    fn single_tenant_dispatches_everything_in_order() {
        let mut src = MultiTenantSource::new(
            vec![tenant("a", 32, 1_000, 1, 1)],
            FrontendConfig::default(),
        );
        let d = run_to_completion(&mut src, 100);
        assert_eq!(d.len(), 32);
        let r = &src.tenant_reports()[0];
        assert_eq!(r.counters.offered, 32);
        assert_eq!(r.counters.admitted, 32);
        assert_eq!(r.counters.completed, 32);
        assert_eq!(r.counters.shed, 0);
        assert_eq!(r.reads.count, 32);
    }

    #[test]
    fn shed_policy_drops_when_the_queue_is_full() {
        // Window 1 and queue bound 2 against a service time far above the
        // arrival gap: most arrivals find the queue full and shed.
        let cfg = FrontendConfig {
            window: 1,
            queue_cap: 2,
            admission: AdmissionPolicy::Shed,
            quantum_pages: 16,
        };
        let mut src = MultiTenantSource::new(vec![tenant("a", 64, 100, 1, 1)], cfg);
        run_to_completion(&mut src, 100_000);
        let c = src.tenant_reports()[0].counters;
        assert_eq!(c.offered, 64);
        assert!(c.shed > 0, "overload must shed: {c:?}");
        assert_eq!(c.admitted + c.shed, 64);
        assert_eq!(c.completed, c.admitted);
    }

    #[test]
    fn delay_policy_back_pressures_instead_of_dropping() {
        let cfg = FrontendConfig {
            window: 1,
            queue_cap: 2,
            admission: AdmissionPolicy::Delay,
            quantum_pages: 16,
        };
        let mut src = MultiTenantSource::new(vec![tenant("a", 24, 100, 1, 1)], cfg);
        run_to_completion(&mut src, 50_000);
        let c = src.tenant_reports()[0].counters;
        assert_eq!(c.shed, 0);
        assert_eq!(c.admitted, 24, "delay never drops");
        assert_eq!(c.completed, 24);
        assert!(c.delayed > 0, "overload must stall the door: {c:?}");
        assert!(c.delayed_ns > 0);
    }

    #[test]
    fn drr_respects_weights_under_saturation() {
        // Two saturating tenants, weights 3:1 — dispatches should land
        // roughly 3:1 while both queues stay backlogged.
        let cfg = FrontendConfig {
            window: 1,
            queue_cap: 1_000,
            admission: AdmissionPolicy::Shed,
            quantum_pages: 1,
        };
        let mut src = MultiTenantSource::new(
            vec![
                tenant("heavy", 300, 10, 3, 1),
                tenant("light", 300, 10, 1, 2),
            ],
            cfg,
        );
        let dispatched = run_to_completion(&mut src, 10_000);
        // Count the first 200 dispatches by tenant via the meta tokens.
        let mut by_tenant = [0u64; 2];
        for &(tok, _) in dispatched.iter().take(200) {
            by_tenant[src.meta[tok as usize].tenant] += 1;
        }
        let ratio = by_tenant[0] as f64 / by_tenant[1].max(1) as f64;
        assert!(
            (2.0..=4.0).contains(&ratio),
            "weight-3 tenant should get ~3x the slots, got {by_tenant:?}"
        );
    }

    #[test]
    fn exhausted_source_reports_done_and_latency_counts_queue_wait() {
        let mut src =
            MultiTenantSource::new(vec![tenant("a", 4, 1_000, 1, 1)], FrontendConfig::default());
        run_to_completion(&mut src, 2_000);
        assert_eq!(src.next(1 << 40), Pull::Done);
        let r = &src.tenant_reports()[0];
        // Service is 2 µs against a 1 µs arrival gap at window 64: no
        // host queueing, but e2e includes the device service time.
        assert_eq!(r.reads.count, 4);
        assert!(r.reads.mean() as u64 >= 2_000);
        let json = r.to_json();
        assert!(json.contains("\"slo_met\":true"), "json: {json}");
        assert!(json.contains("\"shed\":0"), "json: {json}");
    }
}
