//! SLO capacity search: the max sustainable offered rate.
//!
//! Given a probe function that runs the device at an offered rate and
//! reports whether the read-latency SLO held, [`capacity_search`] runs a
//! deterministic integer bisection over IOPS and returns the highest
//! probed rate that still met the target. Each probe is expected to be
//! independent and deterministic (the bench runner builds a fresh warmed
//! simulator per probe from fixed seeds), so the whole search is a pure
//! function of its inputs — same seed, same result, byte for byte.

use ida_obs::json::{array, JsonObj};

/// One probe's outcome at a given offered rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// Observed end-to-end read p99, ns.
    pub read_p99_ns: u64,
    /// Whether the SLO held at this rate.
    pub met: bool,
    /// Requests shed at admission during the probe.
    pub shed: u64,
}

/// One entry of the probe log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityProbe {
    /// Offered rate probed, IOPS.
    pub iops: u64,
    /// Its outcome.
    pub outcome: ProbeOutcome,
}

/// The search result: max sustainable rate plus the full probe log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityResult {
    /// Highest probed IOPS that met the SLO (0 when even `lo` failed).
    pub max_iops: u64,
    /// Every probe in execution order.
    pub probes: Vec<CapacityProbe>,
}

impl CapacityResult {
    /// Deterministic JSON document.
    pub fn to_json(&self) -> String {
        let probes = array(self.probes.iter().map(|p| {
            JsonObj::new()
                .u64("iops", p.iops)
                .u64("read_p99_ns", p.outcome.read_p99_ns)
                .bool("met", p.outcome.met)
                .u64("shed", p.outcome.shed)
                .finish()
        }));
        JsonObj::new()
            .u64("max_iops", self.max_iops)
            .raw("probes", &probes)
            .finish()
    }
}

/// Bisect the offered rate in `[lo, hi]` IOPS for the highest rate whose
/// probe meets the SLO, assuming the pass/fail boundary is monotone.
///
/// Probes `hi` first (an early exit when the whole range is sustainable),
/// then `lo` (reporting `max_iops = 0` when even the floor fails), then
/// bisects until the bracket closes to 1 IOPS or `max_iters` midpoint
/// probes have run. The returned `max_iops` is the last *probed* passing
/// rate — never an interpolation — so reruns reproduce it exactly.
///
/// # Panics
///
/// Panics if `lo` is zero or `lo > hi`.
pub fn capacity_search<F>(lo: u64, hi: u64, max_iters: u32, mut probe: F) -> CapacityResult
where
    F: FnMut(u64) -> ProbeOutcome,
{
    assert!(lo > 0, "lo must be positive");
    assert!(lo <= hi, "lo must not exceed hi");
    let mut probes = Vec::new();
    let top = probe(hi);
    probes.push(CapacityProbe {
        iops: hi,
        outcome: top,
    });
    if top.met {
        return CapacityResult {
            max_iops: hi,
            probes,
        };
    }
    if lo == hi {
        return CapacityResult {
            max_iops: 0,
            probes,
        };
    }
    let floor = probe(lo);
    probes.push(CapacityProbe {
        iops: lo,
        outcome: floor,
    });
    if !floor.met {
        return CapacityResult {
            max_iops: 0,
            probes,
        };
    }
    // Invariant: `pass` met the SLO, `fail` did not.
    let (mut pass, mut fail) = (lo, hi);
    for _ in 0..max_iters {
        if fail - pass <= 1 {
            break;
        }
        let mid = pass + (fail - pass) / 2;
        let out = probe(mid);
        probes.push(CapacityProbe {
            iops: mid,
            outcome: out,
        });
        if out.met {
            pass = mid;
        } else {
            fail = mid;
        }
    }
    CapacityResult {
        max_iops: pass,
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic device sustaining exactly `cap` IOPS.
    fn device(cap: u64) -> impl FnMut(u64) -> ProbeOutcome {
        move |iops| ProbeOutcome {
            read_p99_ns: if iops <= cap { 1_000 } else { 100_000 },
            met: iops <= cap,
            shed: iops.saturating_sub(cap),
        }
    }

    #[test]
    fn finds_the_boundary_exactly_with_enough_iterations() {
        let r = capacity_search(100, 10_000, 32, device(4_321));
        assert_eq!(r.max_iops, 4_321);
        // The log starts hi, lo, then midpoints.
        assert_eq!(r.probes[0].iops, 10_000);
        assert_eq!(r.probes[1].iops, 100);
        assert!(!r.probes[0].outcome.met);
        assert!(r.probes[1].outcome.met);
    }

    #[test]
    fn whole_range_sustainable_exits_after_one_probe() {
        let r = capacity_search(100, 5_000, 32, device(1 << 32));
        assert_eq!(r.max_iops, 5_000);
        assert_eq!(r.probes.len(), 1);
    }

    #[test]
    fn floor_failure_reports_zero() {
        let r = capacity_search(1_000, 5_000, 32, device(10));
        assert_eq!(r.max_iops, 0);
        assert_eq!(r.probes.len(), 2);
    }

    #[test]
    fn iteration_budget_bounds_the_probe_count() {
        let r = capacity_search(100, 1_000_000, 3, device(123_456));
        // hi + lo + at most 3 midpoints.
        assert!(r.probes.len() <= 5);
        // The answer is the last passing probe, conservative but exact.
        assert!(r.max_iops <= 123_456);
        assert!(r.max_iops >= 100);
    }

    #[test]
    fn json_is_deterministic_and_carries_the_log() {
        let r = capacity_search(100, 8_000, 32, device(2_000));
        // The bracket closes completely within the budget: the boundary
        // is exact.
        assert_eq!(r.max_iops, 2_000);
        let a = r.to_json();
        let b = capacity_search(100, 8_000, 32, device(2_000)).to_json();
        assert_eq!(a, b);
        assert!(
            a.starts_with("{\"max_iops\":2000,\"probes\":["),
            "json: {a}"
        );
        assert!(a.contains("\"met\":false"), "json: {a}");
        assert!(a.contains("\"met\":true"), "json: {a}");
    }
}
