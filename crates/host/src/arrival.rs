//! Seeded open-loop arrival processes.
//!
//! An [`ArrivalProcess`] turns a target offered rate (expressed as a mean
//! inter-arrival gap) into a deterministic stream of arrival instants.
//! Three shapes cover the usual load-testing spectrum:
//!
//! - **constant** — a metronome at exactly the offered rate;
//! - **poisson** — exponential gaps (memoryless open-loop traffic, the
//!   M/G/1 textbook shape that exposes tail latency under randomness);
//! - **on/off** — Poisson bursts of `burst_len` arrivals at an elevated
//!   in-burst rate, separated by silent windows sized so the *long-run*
//!   rate still matches the offered rate (bursty tenants with the same
//!   average demand).
//!
//! All randomness comes from the in-tree [`Rng64`], so a (spec, gap,
//! seed) triple always reproduces the same stream.

use ida_obs::rng::Rng64;

/// Duty fraction of an on/off burst: in-burst gaps are this fraction of
/// the mean gap, mirroring the burst shape of the MSR-like generators in
/// `ida-workloads`.
const ON_OFF_DUTY: f64 = 0.35;

/// Arrivals per burst in the on/off shape.
const ON_OFF_BURST_LEN: u64 = 8;

/// The shape of an arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalSpec {
    /// Fixed gaps at exactly the offered rate.
    Constant,
    /// Exponentially distributed gaps (Poisson arrivals).
    Poisson,
    /// Poisson bursts separated by off windows (same long-run rate).
    OnOff,
}

impl ArrivalSpec {
    /// Stable lowercase label (used in JSON payloads and CLI flags).
    pub fn label(self) -> &'static str {
        match self {
            ArrivalSpec::Constant => "constant",
            ArrivalSpec::Poisson => "poisson",
            ArrivalSpec::OnOff => "onoff",
        }
    }

    /// Parse a CLI spelling.
    ///
    /// # Errors
    ///
    /// Lists the accepted spellings for anything unknown.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "constant" | "const" => Ok(ArrivalSpec::Constant),
            "poisson" => Ok(ArrivalSpec::Poisson),
            "onoff" | "on-off" => Ok(ArrivalSpec::OnOff),
            other => Err(format!(
                "unknown arrival process {other} (one of: constant, poisson, onoff)"
            )),
        }
    }
}

/// A seeded generator of inter-arrival gaps with a fixed long-run mean.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    spec: ArrivalSpec,
    mean_gap_ns: u64,
    rng: Rng64,
    /// Arrivals drawn so far (drives the on/off burst boundary).
    drawn: u64,
}

impl ArrivalProcess {
    /// A process with the given shape and mean inter-arrival gap.
    ///
    /// # Panics
    ///
    /// Panics if `mean_gap_ns` is zero (an infinite offered rate).
    pub fn new(spec: ArrivalSpec, mean_gap_ns: u64, seed: u64) -> Self {
        assert!(mean_gap_ns > 0, "mean inter-arrival gap must be positive");
        ArrivalProcess {
            spec,
            mean_gap_ns,
            rng: Rng64::seed_from_u64(seed),
            drawn: 0,
        }
    }

    /// The process's mean inter-arrival gap, ns.
    pub fn mean_gap_ns(&self) -> u64 {
        self.mean_gap_ns
    }

    /// An exponential draw with the given mean (rounded to whole ns).
    fn exp_gap(&mut self, mean: f64) -> u64 {
        // gen_f64 is in [0, 1); 1-u is in (0, 1] so the log is finite.
        let u = self.rng.gen_f64();
        (-(1.0 - u).ln() * mean).round() as u64
    }

    /// Draw the gap between the previous arrival and the next one, ns.
    pub fn next_gap(&mut self) -> u64 {
        self.drawn += 1;
        let mean = self.mean_gap_ns as f64;
        match self.spec {
            ArrivalSpec::Constant => self.mean_gap_ns,
            ArrivalSpec::Poisson => self.exp_gap(mean),
            ArrivalSpec::OnOff => {
                // In-burst gaps run at mean*duty; every burst_len-th gap
                // adds the off window restoring the long-run mean:
                // burst_len*mean*duty + off == burst_len*mean.
                let on_mean = mean * ON_OFF_DUTY;
                let gap = self.exp_gap(on_mean);
                if self.drawn.is_multiple_of(ON_OFF_BURST_LEN) {
                    let off = (ON_OFF_BURST_LEN as f64 * mean * (1.0 - ON_OFF_DUTY)).round() as u64;
                    gap + off
                } else {
                    gap
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(spec: ArrivalSpec, gap: u64, seed: u64, n: u64) -> f64 {
        let mut p = ArrivalProcess::new(spec, gap, seed);
        let total: u64 = (0..n).map(|_| p.next_gap()).sum();
        total as f64 / n as f64
    }

    #[test]
    fn constant_is_a_metronome() {
        let mut p = ArrivalProcess::new(ArrivalSpec::Constant, 1_000, 1);
        assert!((0..16).all(|_| p.next_gap() == 1_000));
    }

    #[test]
    fn poisson_mean_converges_to_the_offered_gap() {
        let m = mean_of(ArrivalSpec::Poisson, 10_000, 42, 20_000);
        assert!(
            (m - 10_000.0).abs() < 300.0,
            "poisson mean {m} drifts from 10000"
        );
    }

    #[test]
    fn on_off_keeps_the_long_run_rate_but_bursts() {
        let m = mean_of(ArrivalSpec::OnOff, 10_000, 7, 20_000);
        assert!((m - 10_000.0).abs() < 400.0, "onoff mean {m} drifts");
        // In-burst gaps are far below the mean: gaps that do not carry
        // the off window average mean*duty = 3500.
        let mut p = ArrivalProcess::new(ArrivalSpec::OnOff, 10_000, 7);
        let gaps: Vec<u64> = (0..8_000).map(|_| p.next_gap()).collect();
        let on_gaps: Vec<u64> = gaps
            .chunks(8)
            .flat_map(|burst| &burst[..7])
            .copied()
            .collect();
        let burst_mean = on_gaps.iter().sum::<u64>() as f64 / on_gaps.len() as f64;
        assert!(
            (burst_mean - 3_500.0).abs() < 300.0,
            "in-burst gaps should average mean*duty, got {burst_mean}"
        );
    }

    #[test]
    fn same_seed_reproduces_the_stream() {
        let mut a = ArrivalProcess::new(ArrivalSpec::Poisson, 5_000, 9);
        let mut b = ArrivalProcess::new(ArrivalSpec::Poisson, 5_000, 9);
        for _ in 0..256 {
            assert_eq!(a.next_gap(), b.next_gap());
        }
        let mut c = ArrivalProcess::new(ArrivalSpec::Poisson, 5_000, 10);
        let differs = (0..256).any(|_| a.next_gap() != c.next_gap());
        assert!(differs, "different seeds must differ");
    }

    #[test]
    fn parses_cli_spellings() {
        assert_eq!(ArrivalSpec::parse("const").unwrap(), ArrivalSpec::Constant);
        assert_eq!(ArrivalSpec::parse("poisson").unwrap(), ArrivalSpec::Poisson);
        assert_eq!(ArrivalSpec::parse("onoff").unwrap(), ArrivalSpec::OnOff);
        assert!(ArrivalSpec::parse("bogus").unwrap_err().contains("poisson"));
    }
}
