//! Host-side load generation and QoS for the SSD simulator.
//!
//! The rest of the workspace answers "how fast is one request?"; this
//! crate answers the production question: **how much offered load can
//! the device sustain at a fixed tail-latency SLO?** It layers on the
//! pull-based [`ArrivalSource`](ida_ssd::ArrivalSource) hook of
//! `ida-ssd`:
//!
//! - [`arrival`] — seeded open-loop arrival processes (constant,
//!   Poisson, on/off bursty) that drive the simulator at a target IOPS
//!   instead of a pre-baked trace;
//! - [`frontend`] — a multi-tenant frontend: N weighted tenant streams
//!   dispatched by deficit round robin through a bounded host queue
//!   with shed/delay admission control, and per-tenant end-to-end
//!   latency sections;
//! - [`capacity`] — a deterministic bisection over offered rate that
//!   finds the max sustainable IOPS at a fixed p99 read SLO.
//!
//! Everything is seeded through the in-tree PRNG, so any (config, seed)
//! pair reproduces its result byte for byte — the property the `load`
//! sweep grid and the CI capacity-search smoke test pin down.

pub mod arrival;
pub mod capacity;
pub mod frontend;

pub use arrival::{ArrivalProcess, ArrivalSpec};
pub use capacity::{capacity_search, CapacityProbe, CapacityResult, ProbeOutcome};
pub use frontend::{
    AdmissionPolicy, FrontendConfig, MultiTenantSource, TenantConfig, TenantCounters, TenantReport,
};
