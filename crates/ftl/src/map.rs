//! Page-level logical-to-physical mapping.

use ida_flash::addr::PageAddr;
use std::fmt;

/// A logical page number — the host-visible page address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lpn(pub u64);

impl fmt::Display for Lpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lpn({})", self.0)
    }
}

/// Bidirectional page map: L2P for host reads, P2L for GC/refresh
/// relocation and validity queries.
///
/// Invariant: `l2p[l] == Some(p)` ⇔ `p2l[p] == Some(l)`.
#[derive(Debug, Clone)]
pub struct PageMap {
    l2p: Vec<Option<PageAddr>>,
    p2l: Vec<Option<Lpn>>,
}

impl ida_snap::Snap for Lpn {
    fn encode(&self, w: &mut ida_snap::Writer) {
        ida_snap::Snap::encode(&self.0, w);
    }
    fn decode(r: &mut ida_snap::Reader<'_>) -> Result<Self, ida_snap::SnapError> {
        Ok(Lpn(ida_snap::Snap::decode(r)?))
    }
}

ida_snap::snap_struct!(PageMap { l2p, p2l });

impl PageMap {
    /// A map for `logical_pages` LPNs over `physical_pages` flash pages,
    /// initially fully unmapped.
    pub fn new(logical_pages: u64, physical_pages: u64) -> Self {
        PageMap {
            l2p: vec![None; logical_pages as usize],
            p2l: vec![None; physical_pages as usize],
        }
    }

    /// Number of logical pages exposed.
    pub fn logical_pages(&self) -> u64 {
        self.l2p.len() as u64
    }

    /// The physical location of `lpn`, if mapped.
    ///
    /// # Panics
    ///
    /// Panics if `lpn` is out of the exported range.
    pub fn translate(&self, lpn: Lpn) -> Option<PageAddr> {
        self.l2p[lpn.0 as usize]
    }

    /// The logical owner of physical page `page`, if any. `None` means the
    /// page is invalid (superseded or never written).
    pub fn owner(&self, page: PageAddr) -> Option<Lpn> {
        self.p2l[page.0 as usize]
    }

    /// Whether physical page `page` holds current data.
    pub fn is_valid(&self, page: PageAddr) -> bool {
        self.owner(page).is_some()
    }

    /// Map `lpn` to `page`, returning the previous physical location (now
    /// invalid) if there was one.
    ///
    /// # Panics
    ///
    /// Panics if `page` is already owned by a different LPN — the FTL must
    /// never double-book a physical page.
    pub fn map(&mut self, lpn: Lpn, page: PageAddr) -> Option<PageAddr> {
        assert!(
            self.p2l[page.0 as usize].is_none(),
            "physical page {page} already owned by {:?}",
            self.p2l[page.0 as usize]
        );
        let old = self.l2p[lpn.0 as usize].take();
        if let Some(old_page) = old {
            self.p2l[old_page.0 as usize] = None;
        }
        self.l2p[lpn.0 as usize] = Some(page);
        self.p2l[page.0 as usize] = Some(lpn);
        old
    }

    /// Remove the mapping of `lpn` (host trim / discard), returning the
    /// freed physical page if there was one.
    pub fn unmap(&mut self, lpn: Lpn) -> Option<PageAddr> {
        let old = self.l2p[lpn.0 as usize].take();
        if let Some(p) = old {
            self.p2l[p.0 as usize] = None;
        }
        old
    }

    /// Relocate the data of physical page `from` to `to` (GC / refresh
    /// copy), preserving the logical mapping.
    ///
    /// Returns the LPN that moved, or `None` if `from` was invalid (the
    /// copy was wasted — callers avoid this by checking validity first).
    ///
    /// # Panics
    ///
    /// Panics if `to` is already owned.
    pub fn relocate(&mut self, from: PageAddr, to: PageAddr) -> Option<Lpn> {
        let lpn = self.p2l[from.0 as usize].take()?;
        assert!(
            self.p2l[to.0 as usize].is_none(),
            "relocation target {to} already owned"
        );
        self.l2p[lpn.0 as usize] = Some(to);
        self.p2l[to.0 as usize] = Some(lpn);
        Some(lpn)
    }

    /// Number of currently mapped logical pages.
    pub fn mapped_count(&self) -> u64 {
        self.l2p.iter().filter(|m| m.is_some()).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_translate_roundtrip() {
        let mut m = PageMap::new(10, 100);
        assert_eq!(m.translate(Lpn(3)), None);
        m.map(Lpn(3), PageAddr(42));
        assert_eq!(m.translate(Lpn(3)), Some(PageAddr(42)));
        assert_eq!(m.owner(PageAddr(42)), Some(Lpn(3)));
        assert!(m.is_valid(PageAddr(42)));
    }

    #[test]
    fn remap_invalidates_old_location() {
        let mut m = PageMap::new(10, 100);
        m.map(Lpn(1), PageAddr(5));
        let old = m.map(Lpn(1), PageAddr(6));
        assert_eq!(old, Some(PageAddr(5)));
        assert!(!m.is_valid(PageAddr(5)));
        assert_eq!(m.translate(Lpn(1)), Some(PageAddr(6)));
    }

    #[test]
    fn unmap_frees_physical_page() {
        let mut m = PageMap::new(10, 100);
        m.map(Lpn(2), PageAddr(7));
        assert_eq!(m.unmap(Lpn(2)), Some(PageAddr(7)));
        assert!(!m.is_valid(PageAddr(7)));
        assert_eq!(m.unmap(Lpn(2)), None);
    }

    #[test]
    fn relocate_moves_ownership() {
        let mut m = PageMap::new(10, 100);
        m.map(Lpn(9), PageAddr(11));
        assert_eq!(m.relocate(PageAddr(11), PageAddr(12)), Some(Lpn(9)));
        assert_eq!(m.translate(Lpn(9)), Some(PageAddr(12)));
        assert!(!m.is_valid(PageAddr(11)));
    }

    #[test]
    fn relocate_of_invalid_page_is_none() {
        let mut m = PageMap::new(10, 100);
        assert_eq!(m.relocate(PageAddr(1), PageAddr(2)), None);
        assert!(!m.is_valid(PageAddr(2)));
    }

    #[test]
    #[should_panic(expected = "already owned")]
    fn double_booking_detected() {
        let mut m = PageMap::new(10, 100);
        m.map(Lpn(1), PageAddr(5));
        m.map(Lpn(2), PageAddr(5));
    }

    #[test]
    fn mapped_count_tracks_mutations() {
        let mut m = PageMap::new(10, 100);
        assert_eq!(m.mapped_count(), 0);
        m.map(Lpn(1), PageAddr(0));
        m.map(Lpn(2), PageAddr(1));
        assert_eq!(m.mapped_count(), 2);
        m.unmap(Lpn(1));
        assert_eq!(m.mapped_count(), 1);
    }
}
