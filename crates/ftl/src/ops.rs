//! Flash operation descriptors exchanged between the FTL and the
//! event-driven simulator.
//!
//! The FTL updates logical state eagerly and emits [`FlashOp`]s describing
//! the physical work; the simulator serializes them on dies and channels
//! and charges latency. Sense counts are captured at emission time so a
//! later remapping cannot retroactively change an in-flight operation.

use ida_flash::addr::{BlockAddr, DieAddr, PageAddr, PageType};
use ida_flash::timing::{FlashTiming, SimTime};

/// Scheduling class of an operation ("read-first scheduling", Table II):
/// host reads go ahead of everything else queued on a die.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Host read — always served first.
    HostRead,
    /// Host write.
    HostWrite,
    /// Background work: GC and refresh traffic.
    Background,
}

/// Who an operation was emitted on behalf of — the interference class
/// latency attribution charges to requests queued behind it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpOrigin {
    /// Direct host traffic (reads, host-write programs).
    Host,
    /// Garbage-collection relocation traffic.
    Gc,
    /// Data-refresh traffic (including IDA conversions).
    Refresh,
}

impl OpOrigin {
    /// Stable snake_case label.
    pub fn label(self) -> &'static str {
        match self {
            OpOrigin::Host => "host",
            OpOrigin::Gc => "gc",
            OpOrigin::Refresh => "refresh",
        }
    }
}

/// The physical kind of a flash operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashOpKind {
    /// Page read: `senses` wordline sensing operations followed by a
    /// channel transfer and ECC decode.
    Read {
        /// Number of sensing operations (depends on the page's coding).
        senses: u32,
    },
    /// Page program: channel transfer followed by ISPP programming.
    Program,
    /// Block erase.
    Erase,
    /// IDA voltage adjustment of one wordline (ISPP pass, no transfer).
    VoltageAdjust,
}

ida_snap::snap_enum!(Priority {
    0 => Priority::HostRead,
    1 => Priority::HostWrite,
    2 => Priority::Background,
});

ida_snap::snap_enum!(OpOrigin {
    0 => OpOrigin::Host,
    1 => OpOrigin::Gc,
    2 => OpOrigin::Refresh,
});

impl ida_snap::Snap for FlashOpKind {
    fn encode(&self, w: &mut ida_snap::Writer) {
        match self {
            FlashOpKind::Read { senses } => {
                0u8.encode(w);
                senses.encode(w);
            }
            FlashOpKind::Program => 1u8.encode(w),
            FlashOpKind::Erase => 2u8.encode(w),
            FlashOpKind::VoltageAdjust => 3u8.encode(w),
        }
    }
    fn decode(r: &mut ida_snap::Reader<'_>) -> Result<Self, ida_snap::SnapError> {
        match u8::decode(r)? {
            0 => Ok(FlashOpKind::Read {
                senses: u32::decode(r)?,
            }),
            1 => Ok(FlashOpKind::Program),
            2 => Ok(FlashOpKind::Erase),
            3 => Ok(FlashOpKind::VoltageAdjust),
            tag => Err(ida_snap::SnapError::new(format!(
                "bad FlashOpKind tag {tag}"
            ))),
        }
    }
}

/// One unit of physical flash work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashOp {
    /// What to do.
    pub kind: FlashOpKind,
    /// The die that executes the array operation.
    pub die: DieAddr,
    /// The channel used for data transfer (reads/programs).
    pub channel: u32,
    /// The target block.
    pub block: BlockAddr,
    /// The target page for reads/programs (`None` for erase/adjust).
    pub page: Option<PageAddr>,
    /// Scheduling class.
    pub priority: Priority,
    /// Who emitted the op (attribution class for queued requests behind it).
    pub origin: OpOrigin,
}

ida_snap::snap_struct!(FlashOp {
    kind,
    die,
    channel,
    block,
    page,
    priority,
    origin,
});

impl FlashOp {
    /// Time the die's array is busy executing this op.
    pub fn array_time(&self, t: &FlashTiming) -> SimTime {
        match self.kind {
            FlashOpKind::Read { senses } => t.read_latency(senses),
            FlashOpKind::Program => t.program,
            FlashOpKind::Erase => t.erase,
            FlashOpKind::VoltageAdjust => t.voltage_adjust,
        }
    }

    /// Time the channel is busy moving this op's data (zero for erase and
    /// voltage adjustment, which move no page data).
    pub fn channel_time(&self, t: &FlashTiming) -> SimTime {
        match self.kind {
            FlashOpKind::Read { .. } | FlashOpKind::Program => t.transfer,
            FlashOpKind::Erase | FlashOpKind::VoltageAdjust => 0,
        }
    }

    /// Post-transfer controller time (ECC decode; reads only).
    pub fn controller_time(&self, t: &FlashTiming) -> SimTime {
        match self.kind {
            FlashOpKind::Read { .. } => t.ecc_decode,
            _ => 0,
        }
    }
}

/// The validity scenario a host read falls into — the categories of the
/// paper's Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadScenario {
    /// Read of the fastest page type; no optimization headroom.
    Lsb,
    /// CSB read while every lower page (the LSB) is valid.
    CsbLowerValid,
    /// CSB read while the LSB is invalid — IDA-eligible.
    CsbLowerInvalid,
    /// MSB (or QLC top) read while all lower pages are valid.
    MsbLowerValid,
    /// MSB (or QLC top) read while at least one lower page is invalid —
    /// IDA-eligible.
    MsbLowerInvalid,
    /// Read served from an IDA-coded wordline (already merged).
    IdaCoded,
}

impl ReadScenario {
    /// Stable snake_case label, used by trace events and JSON reports.
    pub fn label(self) -> &'static str {
        match self {
            ReadScenario::Lsb => "lsb",
            ReadScenario::CsbLowerValid => "csb_lower_valid",
            ReadScenario::CsbLowerInvalid => "csb_lower_invalid",
            ReadScenario::MsbLowerValid => "msb_lower_valid",
            ReadScenario::MsbLowerInvalid => "msb_lower_invalid",
            ReadScenario::IdaCoded => "ida_coded",
        }
    }
}

/// A translated host read: the physical page plus everything the simulator
/// needs to time and classify it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadOp {
    /// Physical page to sense.
    pub page: PageAddr,
    /// The page's type within its wordline.
    pub page_type: PageType,
    /// Sensing operations needed under the wordline's *current* coding.
    pub senses: u32,
    /// The Figure 4 scenario this read falls into.
    pub scenario: ReadScenario,
    /// The die executing the sense.
    pub die: DieAddr,
    /// The channel carrying the transfer.
    pub channel: u32,
    /// Injected transient-fault retries this read must absorb (0 on the
    /// happy path); the simulator charges extra sensing plus controller
    /// backoff per attempt.
    pub fault_attempts: u32,
    /// Modeled raw bit error rate of the wordline at translation time
    /// (0.0 when aging is disarmed); drives the read-retry ladder.
    pub rber: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ida_flash::timing::NS_PER_US;

    fn op(kind: FlashOpKind) -> FlashOp {
        FlashOp {
            kind,
            die: DieAddr(0),
            channel: 0,
            block: BlockAddr(0),
            page: None,
            priority: Priority::Background,
            origin: OpOrigin::Host,
        }
    }

    #[test]
    fn read_times_follow_sense_count() {
        let t = FlashTiming::paper_tlc();
        assert_eq!(
            op(FlashOpKind::Read { senses: 1 }).array_time(&t),
            50 * NS_PER_US
        );
        assert_eq!(
            op(FlashOpKind::Read { senses: 4 }).array_time(&t),
            150 * NS_PER_US
        );
        assert_eq!(
            op(FlashOpKind::Read { senses: 1 }).channel_time(&t),
            48 * NS_PER_US
        );
        assert_eq!(
            op(FlashOpKind::Read { senses: 1 }).controller_time(&t),
            20 * NS_PER_US
        );
    }

    #[test]
    fn erase_and_adjust_use_no_channel() {
        let t = FlashTiming::paper_tlc();
        assert_eq!(op(FlashOpKind::Erase).channel_time(&t), 0);
        assert_eq!(op(FlashOpKind::VoltageAdjust).channel_time(&t), 0);
        assert_eq!(op(FlashOpKind::Erase).array_time(&t), 3_000 * NS_PER_US);
        assert_eq!(
            op(FlashOpKind::VoltageAdjust).array_time(&t),
            2_300 * NS_PER_US
        );
    }

    #[test]
    fn priority_orders_reads_first() {
        assert!(Priority::HostRead < Priority::HostWrite);
        assert!(Priority::HostWrite < Priority::Background);
    }
}
