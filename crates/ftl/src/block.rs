//! Block status table.
//!
//! Tracks, per block: its lifecycle state, the write pointer while open,
//! the number of valid pages (for GC victim selection), the erase count
//! (wear), the time it was closed (for refresh scheduling) and — the one
//! addition the paper's scheme needs — whether the block is IDA-coded and
//! which merged coding each wordline carries (one small mask per WL,
//! matching the "additional bit per block / per WL" of Section III-C).

use ida_flash::addr::{BlockAddr, PlaneAddr};
use ida_flash::geometry::Geometry;
use ida_flash::timing::SimTime;
use std::collections::BTreeSet;

/// Lifecycle state of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockState {
    /// Erased and ready for allocation.
    Free,
    /// Currently receiving page programs.
    Open,
    /// Fully programmed, conventional coding.
    Closed,
    /// Re-programmed by IDA coding during a refresh.
    Ida,
    /// Grown bad (failed erase or repeated program failures); permanently
    /// out of circulation.
    Bad,
}

ida_snap::snap_enum!(BlockState {
    0 => BlockState::Free,
    1 => BlockState::Open,
    2 => BlockState::Closed,
    3 => BlockState::Ida,
    4 => BlockState::Bad,
});

#[derive(Debug, Clone)]
struct BlockInfo {
    state: BlockState,
    write_ptr: u32,
    valid_pages: u32,
    erase_count: u32,
    closed_at: SimTime,
    /// Per-wordline keep mask; 0 = conventional coding.
    wl_masks: Vec<u8>,
    /// Per-wordline host-read counts since the last erase (the read-disturb
    /// clock the aging model and the patrol scrub consume).
    wl_reads: Vec<u32>,
}

/// Erase-count statistics across the device, as reported by
/// [`BlockTable::wear_summary`]. `spread` (max − min) is the imbalance the
/// wear-leveler acts on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearSummary {
    /// Lowest erase count of any block.
    pub min: u32,
    /// Highest erase count of any block.
    pub max: u32,
    /// Mean erase count across all blocks.
    pub mean: f64,
    /// `max − min`: the wear imbalance.
    pub spread: u32,
}

/// Per-plane greedy GC victim index: reclaimable (Closed/Ida) blocks
/// bucketed by valid-page count, each bucket ordered by the
/// `(erase_count, block)` tie-break — together the exact
/// `(valid, erases, BlockAddr)` ordering of a linear scan over
/// [`BlockTable::reclaimable_blocks`].
#[derive(Debug, Clone)]
struct PlaneIndex {
    /// `buckets[valid]` holds the plane's reclaimable blocks with that
    /// many valid pages, as `(erase_count, block index)` pairs.
    buckets: Vec<BTreeSet<(u32, u32)>>,
    /// Index of the lowest non-empty bucket (== `buckets.len()` when the
    /// plane has no reclaimable blocks). Lowered directly on insert,
    /// advanced past drained buckets on remove — each advance is paid for
    /// by the insert that lowered it, so victim pops are O(1) amortized.
    min_valid: usize,
    /// Reclaimable blocks currently indexed in this plane.
    len: usize,
}

ida_snap::snap_struct!(BlockInfo {
    state,
    write_ptr,
    valid_pages,
    erase_count,
    closed_at,
    wl_masks,
    wl_reads,
});

ida_snap::snap_struct!(PlaneIndex {
    buckets,
    min_valid,
    len,
});

impl PlaneIndex {
    fn new(pages_per_block: u32) -> Self {
        let depth = pages_per_block as usize + 1;
        PlaneIndex {
            buckets: vec![BTreeSet::new(); depth],
            min_valid: depth,
            len: 0,
        }
    }

    fn insert(&mut self, valid: u32, erases: u32, block: u32) {
        let v = valid as usize;
        assert!(
            self.buckets[v].insert((erases, block)),
            "duplicate index entry"
        );
        self.len += 1;
        self.min_valid = self.min_valid.min(v);
    }

    fn remove(&mut self, valid: u32, erases: u32, block: u32) {
        let v = valid as usize;
        assert!(
            self.buckets[v].remove(&(erases, block)),
            "missing index entry"
        );
        self.len -= 1;
        if self.len == 0 {
            self.min_valid = self.buckets.len();
        } else if v == self.min_valid {
            while self.buckets[self.min_valid].is_empty() {
                self.min_valid += 1;
            }
        }
    }
}

/// The block status table for the whole SSD.
#[derive(Debug, Clone)]
pub struct BlockTable {
    geometry: Geometry,
    blocks: Vec<BlockInfo>,
    /// Per-plane victim index, maintained on every state/valid/wear
    /// transition below so GC never rescans the device.
    index: Vec<PlaneIndex>,
    /// Blocks currently in the `Ida` state (kept incrementally so gauges
    /// can sample it without an O(blocks) scan).
    ida_blocks: u32,
    /// Wordlines currently carrying a merged (non-zero keep mask) coding.
    adjusted_wordlines: u64,
    /// Blocks retired to the grown-bad list.
    bad_blocks: u32,
    /// Blocks in any non-`Free` state (O(1) mirror of the
    /// [`BlockTable::in_use_blocks`] definition).
    in_use: u32,
    /// Sum of erase counts across all blocks.
    total_erases: u64,
    /// Virtual P/E cycles added uniformly to every block's wear by the
    /// soak harness's accelerated-lifetime epochs. Kept outside
    /// `erase_count` so the GC victim index (ordered by per-block erase
    /// counts) never needs rebuilding: a uniform shift preserves order.
    wear_offset: u32,
}

ida_snap::snap_struct!(BlockTable {
    geometry,
    blocks,
    index,
    ida_blocks,
    adjusted_wordlines,
    bad_blocks,
    in_use,
    total_erases,
    wear_offset,
});

impl BlockTable {
    /// A table with every block free.
    pub fn new(geometry: Geometry) -> Self {
        geometry.validate();
        let blocks = (0..geometry.total_blocks())
            .map(|_| BlockInfo {
                state: BlockState::Free,
                write_ptr: 0,
                valid_pages: 0,
                erase_count: 0,
                closed_at: 0,
                wl_masks: vec![0; geometry.wordlines_per_block as usize],
                wl_reads: vec![0; geometry.wordlines_per_block as usize],
            })
            .collect();
        BlockTable {
            blocks,
            index: (0..geometry.total_planes())
                .map(|_| PlaneIndex::new(geometry.pages_per_block()))
                .collect(),
            geometry,
            ida_blocks: 0,
            adjusted_wordlines: 0,
            bad_blocks: 0,
            in_use: 0,
            total_erases: 0,
            wear_offset: 0,
        }
    }

    fn plane_index(&self, b: BlockAddr) -> usize {
        (b.0 / self.geometry.blocks_per_plane) as usize
    }

    fn info(&self, b: BlockAddr) -> &BlockInfo {
        &self.blocks[b.0 as usize]
    }

    fn info_mut(&mut self, b: BlockAddr) -> &mut BlockInfo {
        &mut self.blocks[b.0 as usize]
    }

    /// The geometry this table was built for.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Current lifecycle state of `b`.
    pub fn state(&self, b: BlockAddr) -> BlockState {
        self.info(b).state
    }

    /// Number of valid pages in `b`.
    pub fn valid_pages(&self, b: BlockAddr) -> u32 {
        self.info(b).valid_pages
    }

    /// Erase count of `b`.
    pub fn erase_count(&self, b: BlockAddr) -> u32 {
        self.info(b).erase_count
    }

    /// The simulation time `b` was closed (meaningful for Closed/Ida).
    pub fn closed_at(&self, b: BlockAddr) -> SimTime {
        self.info(b).closed_at
    }

    /// Open a free block for programming.
    ///
    /// # Panics
    ///
    /// Panics if the block is not free.
    pub fn open(&mut self, b: BlockAddr) {
        let info = self.info_mut(b);
        assert_eq!(info.state, BlockState::Free, "open of non-free block {b}");
        info.state = BlockState::Open;
        info.write_ptr = 0;
        self.in_use += 1;
    }

    /// Allocate the next page of an open block; returns its in-block
    /// offset and closes the block (at `now`) when it fills.
    ///
    /// # Panics
    ///
    /// Panics if the block is not open.
    pub fn allocate_page(&mut self, b: BlockAddr, now: SimTime) -> u32 {
        let pages = self.geometry.pages_per_block();
        let info = self.info_mut(b);
        assert_eq!(
            info.state,
            BlockState::Open,
            "allocation in non-open block {b}"
        );
        let off = info.write_ptr;
        assert!(off < pages, "open block {b} overflowed");
        info.write_ptr += 1;
        info.valid_pages += 1;
        if info.write_ptr == pages {
            info.state = BlockState::Closed;
            info.closed_at = now;
            let (valid, erases) = (info.valid_pages, info.erase_count);
            let plane = self.plane_index(b);
            self.index[plane].insert(valid, erases, b.0);
        }
        off
    }

    /// Whether an open block still has room.
    pub fn has_room(&self, b: BlockAddr) -> bool {
        self.info(b).state == BlockState::Open
            && self.info(b).write_ptr < self.geometry.pages_per_block()
    }

    /// The in-block offset the next allocation in `b` would receive
    /// (meaningful for open blocks).
    pub fn next_offset(&self, b: BlockAddr) -> u32 {
        self.info(b).write_ptr
    }

    /// Record the invalidation of one previously-valid page of `b`.
    ///
    /// # Panics
    ///
    /// Panics if the valid count would underflow.
    pub fn invalidate_page(&mut self, b: BlockAddr) {
        let info = self.info_mut(b);
        assert!(info.valid_pages > 0, "valid-count underflow in block {b}");
        info.valid_pages -= 1;
        if matches!(info.state, BlockState::Closed | BlockState::Ida) {
            let (valid, erases) = (info.valid_pages, info.erase_count);
            let plane = self.plane_index(b);
            self.index[plane].remove(valid + 1, erases, b.0);
            self.index[plane].insert(valid, erases, b.0);
        }
    }

    /// Record that one kept-in-place page remains valid after an IDA
    /// refresh but the block-level accounting changed (no-op placeholder
    /// for symmetry; validity itself lives in the page map).
    pub fn keep_page(&mut self, _b: BlockAddr) {}

    /// Erase `b`: wear increments, wordline codings reset, state Free.
    ///
    /// # Panics
    ///
    /// Panics if the block still holds valid pages or is open.
    pub fn erase(&mut self, b: BlockAddr) {
        let info = self.info_mut(b);
        assert_ne!(info.state, BlockState::Open, "erase of open block {b}");
        assert_eq!(
            info.valid_pages, 0,
            "erase of block {b} with {} valid pages",
            info.valid_pages
        );
        let was_ida = info.state == BlockState::Ida;
        let was_reclaimable = matches!(info.state, BlockState::Closed | BlockState::Ida);
        let adjusted = info.wl_masks.iter().filter(|&&m| m != 0).count() as u64;
        if was_ida {
            self.ida_blocks -= 1;
            self.adjusted_wordlines -= adjusted;
        }
        if was_reclaimable {
            let erases = self.info(b).erase_count;
            let plane = self.plane_index(b);
            self.index[plane].remove(0, erases, b.0);
            self.in_use -= 1;
        }
        self.total_erases += 1;
        let info = self.info_mut(b);
        info.state = BlockState::Free;
        info.write_ptr = 0;
        info.erase_count += 1;
        info.closed_at = 0;
        info.wl_masks.fill(0);
        info.wl_reads.fill(0);
    }

    /// Retire `b` to the grown-bad list. The block must hold no valid
    /// data (erase failures and program-fail retirements both happen only
    /// once the block has been emptied).
    ///
    /// # Panics
    ///
    /// Panics if the block is open or still holds valid pages.
    pub fn mark_bad(&mut self, b: BlockAddr) {
        let info = self.info_mut(b);
        assert_ne!(info.state, BlockState::Open, "retire of open block {b}");
        assert_eq!(
            info.valid_pages, 0,
            "retire of block {b} with {} valid pages",
            info.valid_pages
        );
        let was_ida = info.state == BlockState::Ida;
        let was_reclaimable = matches!(info.state, BlockState::Closed | BlockState::Ida);
        let adjusted = info.wl_masks.iter().filter(|&&m| m != 0).count() as u64;
        if was_ida {
            self.ida_blocks -= 1;
            self.adjusted_wordlines -= adjusted;
        }
        if was_reclaimable {
            let erases = self.info(b).erase_count;
            let plane = self.plane_index(b);
            self.index[plane].remove(0, erases, b.0);
        } else {
            // A Free block retires straight into the in-use population.
            self.in_use += 1;
        }
        let info = self.info_mut(b);
        info.state = BlockState::Bad;
        info.write_ptr = 0;
        info.closed_at = 0;
        info.wl_masks.fill(0);
        info.wl_reads.fill(0);
        self.bad_blocks += 1;
    }

    /// Restore `b` to a known state during the post-crash recovery scan.
    /// Replaces the block's entire record and keeps the incremental
    /// counters consistent; only valid on a table whose block is currently
    /// `Free` (i.e. a freshly constructed recovery table).
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        &mut self,
        b: BlockAddr,
        state: BlockState,
        write_ptr: u32,
        valid_pages: u32,
        erase_count: u32,
        closed_at: SimTime,
        wl_masks: &[u8],
    ) {
        assert_eq!(
            self.info(b).state,
            BlockState::Free,
            "restore over non-fresh block {b}"
        );
        let wls = self.geometry.wordlines_per_block as usize;
        assert_eq!(wl_masks.len(), wls, "restore mask length mismatch");
        match state {
            BlockState::Ida => {
                self.ida_blocks += 1;
                self.adjusted_wordlines += wl_masks.iter().filter(|&&m| m != 0).count() as u64;
            }
            BlockState::Bad => self.bad_blocks += 1,
            _ => {}
        }
        if matches!(state, BlockState::Closed | BlockState::Ida) {
            let plane = self.plane_index(b);
            self.index[plane].insert(valid_pages, erase_count, b.0);
        }
        if state != BlockState::Free {
            self.in_use += 1;
        }
        self.total_erases += erase_count as u64;
        let info = self.info_mut(b);
        info.state = state;
        info.write_ptr = write_ptr;
        info.valid_pages = valid_pages;
        info.erase_count = erase_count;
        info.closed_at = closed_at;
        info.wl_masks.copy_from_slice(wl_masks);
    }

    /// Blocks on the grown-bad list (O(1)).
    pub fn bad_blocks(&self) -> u32 {
        self.bad_blocks
    }

    /// Convert a closed block into an IDA block at `now`, recording the
    /// merged coding (keep mask) of each adjusted wordline.
    ///
    /// # Panics
    ///
    /// Panics if the block is not closed, or a mask refers to an
    /// out-of-range wordline.
    pub fn mark_ida(&mut self, b: BlockAddr, wl_masks: &[(u32, u8)], now: SimTime) {
        let wls = self.geometry.wordlines_per_block;
        let info = self.info_mut(b);
        assert_eq!(
            info.state,
            BlockState::Closed,
            "IDA conversion of non-closed block {b}"
        );
        info.state = BlockState::Ida;
        info.closed_at = now;
        let mut adjusted = 0u64;
        for &(wl, mask) in wl_masks {
            assert!(wl < wls, "wordline {wl} out of range");
            // A closed block's masks are all zero, so every non-zero mask
            // written here is a newly adjusted wordline.
            if mask != 0 {
                adjusted += 1;
            }
            info.wl_masks[wl as usize] = mask;
        }
        self.ida_blocks += 1;
        self.adjusted_wordlines += adjusted;
    }

    /// The IDA keep mask of wordline `wl` in block `b`; 0 means the
    /// wordline still carries conventional coding.
    pub fn wl_keep_mask(&self, b: BlockAddr, wl: u32) -> u8 {
        self.info(b).wl_masks[wl as usize]
    }

    /// Iterate all blocks in `Closed` or `Ida` state with their valid
    /// counts (used by GC victim search).
    pub fn reclaimable_blocks(&self) -> impl Iterator<Item = (BlockAddr, u32, u32)> + '_ {
        self.blocks.iter().enumerate().filter_map(|(i, info)| {
            matches!(info.state, BlockState::Closed | BlockState::Ida).then_some((
                BlockAddr(i as u32),
                info.valid_pages,
                info.erase_count,
            ))
        })
    }

    /// Total blocks currently not free (the "in-use block count" the paper
    /// tracks in Section III-C). O(1); maintained incrementally.
    pub fn in_use_blocks(&self) -> u32 {
        self.in_use
    }

    /// Blocks currently in the `Ida` state (O(1); maintained incrementally
    /// for gauge sampling).
    pub fn ida_blocks(&self) -> u32 {
        self.ida_blocks
    }

    /// Wordlines currently carrying a merged coding — the device's
    /// "dirty wordline" population (O(1)).
    pub fn adjusted_wordlines(&self) -> u64 {
        self.adjusted_wordlines
    }

    /// Sum of erase counts across all blocks. O(1); maintained
    /// incrementally.
    pub fn total_erases(&self) -> u64 {
        self.total_erases
    }

    /// The cheapest GC victim in `plane` under the reference ordering —
    /// the reclaimable (Closed/Ida) block minimizing
    /// `(valid_pages, erase_count, BlockAddr)` — skipping fully-valid
    /// blocks (no net space) and `exclude`. O(1) amortized via the
    /// per-plane bucket index.
    pub fn victim_in_plane(
        &self,
        plane: PlaneAddr,
        exclude: Option<BlockAddr>,
    ) -> Option<BlockAddr> {
        let idx = &self.index[plane.0 as usize];
        if idx.len == 0 {
            return None;
        }
        let full = self.geometry.pages_per_block() as usize;
        if idx.min_valid >= full {
            // Only fully-valid blocks remain; collecting one frees nothing.
            return None;
        }
        let ex = exclude.map(|b| b.0);
        for bucket in &idx.buckets[idx.min_valid..full] {
            // Two candidates suffice: at most one can be excluded.
            for &(_, block) in bucket.iter().take(2) {
                if Some(block) != ex {
                    return Some(BlockAddr(block));
                }
            }
        }
        None
    }

    /// The cheapest GC victim across the whole device: the global
    /// `(valid_pages, erase_count, BlockAddr)` minimum over every plane's
    /// best candidate. O(planes) rather than O(blocks).
    pub fn victim_global(&self, exclude: Option<BlockAddr>) -> Option<BlockAddr> {
        let mut best: Option<(u32, u32, u32)> = None;
        for p in 0..self.index.len() {
            if let Some(b) = self.victim_in_plane(PlaneAddr(p as u32), exclude) {
                let key = (self.valid_pages(b), self.erase_count(b), b.0);
                if best.is_none_or(|k| key < k) {
                    best = Some(key);
                }
            }
        }
        best.map(|(_, _, b)| BlockAddr(b))
    }

    /// Wear summary across all blocks: min/max/mean erase counts plus the
    /// spread (max − min) the wear-leveler balances against its target.
    /// The paper's endurance argument (Section III-B) is that IDA coding
    /// leaves these unchanged — it recharges cells within an erase cycle
    /// instead of adding cycles. An empty table (or one whose blocks were
    /// never erased) reports all-zero wear and zero spread.
    pub fn wear_summary(&self) -> WearSummary {
        let min = self.blocks.iter().map(|i| i.erase_count).min().unwrap_or(0);
        let max = self.blocks.iter().map(|i| i.erase_count).max().unwrap_or(0);
        let mean = self.total_erases() as f64 / self.blocks.len().max(1) as f64;
        WearSummary {
            min,
            max,
            mean,
            spread: max - min,
        }
    }

    /// Record one host read of wordline `wl` in block `b`, returning the
    /// accumulated read count since the block's last erase (the
    /// read-disturb clock).
    pub fn record_wl_read(&mut self, b: BlockAddr, wl: u32) -> u32 {
        let c = &mut self.info_mut(b).wl_reads[wl as usize];
        *c = c.saturating_add(1);
        *c
    }

    /// Accumulated host reads of wordline `wl` in block `b` since its
    /// block's last erase.
    pub fn wl_reads(&self, b: BlockAddr, wl: u32) -> u32 {
        self.info(b).wl_reads[wl as usize]
    }

    /// Add `cycles` virtual P/E cycles uniformly to every block (the soak
    /// harness's accelerated-lifetime epochs). Physical erase counts — and
    /// hence the victim index's ordering — are untouched.
    pub fn add_wear_offset(&mut self, cycles: u32) {
        self.wear_offset = self.wear_offset.saturating_add(cycles);
    }

    /// Virtual P/E cycles applied by [`BlockTable::add_wear_offset`].
    pub fn wear_offset(&self) -> u32 {
        self.wear_offset
    }

    /// The wear the aging model sees for block `b`: its physical erase
    /// count plus the uniform virtual offset.
    pub fn effective_wear(&self, b: BlockAddr) -> u32 {
        self.info(b).erase_count.saturating_add(self.wear_offset)
    }

    /// The least-worn block holding cold data — a `Closed`/`Ida` block
    /// with at least one valid page, minimizing
    /// `(erase_count, BlockAddr)` — the wear-leveler's migration source.
    /// Skips `exclude` (the in-flight refresh target).
    pub fn coldest_block(&self, exclude: Option<BlockAddr>) -> Option<BlockAddr> {
        self.reclaimable_blocks()
            .filter(|&(b, valid, _)| valid > 0 && Some(b) != exclude)
            .min_by_key(|&(b, _, erases)| (erases, b.0))
            .map(|(b, _, _)| b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> BlockTable {
        BlockTable::new(Geometry::tiny())
    }

    #[test]
    fn lifecycle_free_open_closed_free() {
        let mut t = table();
        let b = BlockAddr(0);
        assert_eq!(t.state(b), BlockState::Free);
        t.open(b);
        assert_eq!(t.state(b), BlockState::Open);
        let pages = t.geometry().pages_per_block();
        for i in 0..pages {
            assert_eq!(t.allocate_page(b, 100), i);
        }
        assert_eq!(t.state(b), BlockState::Closed);
        assert_eq!(t.closed_at(b), 100);
        for _ in 0..pages {
            t.invalidate_page(b);
        }
        t.erase(b);
        assert_eq!(t.state(b), BlockState::Free);
        assert_eq!(t.erase_count(b), 1);
    }

    #[test]
    #[should_panic(expected = "non-free")]
    fn double_open_rejected() {
        let mut t = table();
        t.open(BlockAddr(1));
        t.open(BlockAddr(1));
    }

    #[test]
    #[should_panic(expected = "valid pages")]
    fn erase_with_valid_pages_rejected() {
        let mut t = table();
        let b = BlockAddr(2);
        t.open(b);
        for _ in 0..t.geometry().pages_per_block() {
            t.allocate_page(b, 0);
        }
        t.erase(b);
    }

    #[test]
    fn ida_marking_records_wordline_masks() {
        let mut t = table();
        let b = BlockAddr(3);
        t.open(b);
        for _ in 0..t.geometry().pages_per_block() {
            t.allocate_page(b, 0);
        }
        t.mark_ida(b, &[(0, 0b110), (5, 0b100)], 999);
        assert_eq!(t.state(b), BlockState::Ida);
        assert_eq!(t.wl_keep_mask(b, 0), 0b110);
        assert_eq!(t.wl_keep_mask(b, 5), 0b100);
        assert_eq!(t.wl_keep_mask(b, 1), 0);
        assert_eq!(t.closed_at(b), 999);
    }

    #[test]
    fn erase_clears_ida_masks() {
        let mut t = table();
        let b = BlockAddr(4);
        t.open(b);
        let pages = t.geometry().pages_per_block();
        for _ in 0..pages {
            t.allocate_page(b, 0);
        }
        t.mark_ida(b, &[(2, 0b110)], 1);
        for _ in 0..pages {
            t.invalidate_page(b);
        }
        t.erase(b);
        assert_eq!(t.wl_keep_mask(b, 2), 0);
        assert_eq!(t.state(b), BlockState::Free);
    }

    #[test]
    fn reclaimable_blocks_lists_closed_and_ida() {
        let mut t = table();
        for i in 0..3 {
            let b = BlockAddr(i);
            t.open(b);
            for _ in 0..t.geometry().pages_per_block() {
                t.allocate_page(b, 0);
            }
        }
        t.mark_ida(BlockAddr(1), &[(0, 0b100)], 0);
        let found: Vec<_> = t.reclaimable_blocks().map(|(b, _, _)| b.0).collect();
        assert_eq!(found, vec![0, 1, 2]);
        assert_eq!(t.in_use_blocks(), 3);
    }

    #[test]
    fn in_use_counts_open_blocks_too() {
        let mut t = table();
        t.open(BlockAddr(9));
        assert_eq!(t.in_use_blocks(), 1);
    }

    #[test]
    fn ida_counters_track_mark_and_erase() {
        let mut t = table();
        assert_eq!(t.ida_blocks(), 0);
        assert_eq!(t.adjusted_wordlines(), 0);
        let b = BlockAddr(0);
        t.open(b);
        let pages = t.geometry().pages_per_block();
        for _ in 0..pages {
            t.allocate_page(b, 0);
        }
        t.mark_ida(b, &[(0, 0b110), (3, 0b100), (4, 0)], 5);
        assert_eq!(t.ida_blocks(), 1);
        assert_eq!(t.adjusted_wordlines(), 2, "zero masks are not adjusted");
        for _ in 0..pages {
            t.invalidate_page(b);
        }
        t.erase(b);
        assert_eq!(t.ida_blocks(), 0);
        assert_eq!(t.adjusted_wordlines(), 0);
    }

    #[test]
    fn bad_blocks_leave_circulation() {
        let mut t = table();
        let b = BlockAddr(7);
        t.open(b);
        let pages = t.geometry().pages_per_block();
        for _ in 0..pages {
            t.allocate_page(b, 0);
        }
        for _ in 0..pages {
            t.invalidate_page(b);
        }
        t.mark_bad(b);
        assert_eq!(t.state(b), BlockState::Bad);
        assert_eq!(t.bad_blocks(), 1);
        assert!(
            t.reclaimable_blocks().all(|(blk, _, _)| blk != b),
            "bad blocks must not be GC victims"
        );
    }

    #[test]
    fn restore_rebuilds_states_and_counters() {
        let mut t = table();
        let wls = t.geometry().wordlines_per_block as usize;
        let mut masks = vec![0u8; wls];
        masks[2] = 0b110;
        t.restore(BlockAddr(0), BlockState::Ida, 48, 10, 3, 77, &masks);
        t.restore(BlockAddr(1), BlockState::Bad, 0, 0, 5, 0, &vec![0; wls]);
        t.restore(BlockAddr(2), BlockState::Open, 7, 7, 0, 0, &vec![0; wls]);
        assert_eq!(t.ida_blocks(), 1);
        assert_eq!(t.adjusted_wordlines(), 1);
        assert_eq!(t.bad_blocks(), 1);
        assert_eq!(t.wl_keep_mask(BlockAddr(0), 2), 0b110);
        assert_eq!(t.erase_count(BlockAddr(0)), 3);
        assert_eq!(t.next_offset(BlockAddr(2)), 7);
        assert_eq!(t.in_use_blocks(), 3);
    }

    #[test]
    fn wear_summary_tracks_erases_and_spread() {
        let mut t = table();
        assert_eq!(
            t.wear_summary(),
            WearSummary {
                min: 0,
                max: 0,
                mean: 0.0,
                spread: 0
            },
            "a never-erased table has zero wear and zero spread"
        );
        let b = BlockAddr(0);
        for _ in 0..3 {
            t.open(b);
            for _ in 0..t.geometry().pages_per_block() {
                t.allocate_page(b, 0);
            }
            for _ in 0..t.geometry().pages_per_block() {
                t.invalidate_page(b);
            }
            t.erase(b);
        }
        let w = t.wear_summary();
        assert_eq!((w.min, w.max, w.spread), (0, 3, 3));
        assert!(w.mean > 0.0 && w.mean < 1.0);
        assert_eq!(t.total_erases(), 3);
    }

    #[test]
    fn wear_summary_single_block_has_no_spread() {
        // A device whose blocks all carry identical wear — the
        // single-value edge case — must report spread 0 even at high wear.
        let mut t = table();
        let blocks = t.geometry().total_blocks();
        for cycle in 0..2 {
            for i in 0..blocks {
                let b = BlockAddr(i);
                t.open(b);
                for _ in 0..t.geometry().pages_per_block() {
                    t.allocate_page(b, 0);
                }
                for _ in 0..t.geometry().pages_per_block() {
                    t.invalidate_page(b);
                }
                t.erase(b);
            }
            let w = t.wear_summary();
            assert_eq!((w.min, w.max, w.spread), (cycle + 1, cycle + 1, 0));
            assert_eq!(w.mean, (cycle + 1) as f64);
        }
    }

    #[test]
    fn wl_read_counters_accumulate_and_reset_on_erase() {
        let mut t = table();
        let b = BlockAddr(0);
        t.open(b);
        for _ in 0..t.geometry().pages_per_block() {
            t.allocate_page(b, 0);
        }
        assert_eq!(t.wl_reads(b, 1), 0);
        assert_eq!(t.record_wl_read(b, 1), 1);
        assert_eq!(t.record_wl_read(b, 1), 2);
        assert_eq!(t.record_wl_read(b, 0), 1);
        assert_eq!(t.wl_reads(b, 1), 2);
        for _ in 0..t.geometry().pages_per_block() {
            t.invalidate_page(b);
        }
        t.erase(b);
        assert_eq!(t.wl_reads(b, 1), 0, "erase resets the disturb clock");
    }

    #[test]
    fn wear_offset_shifts_effective_wear_not_erase_counts() {
        let mut t = table();
        let b = BlockAddr(0);
        assert_eq!(t.effective_wear(b), 0);
        t.add_wear_offset(500);
        t.add_wear_offset(250);
        assert_eq!(t.wear_offset(), 750);
        assert_eq!(t.effective_wear(b), 750);
        assert_eq!(t.erase_count(b), 0, "physical wear is untouched");
        let w = t.wear_summary();
        assert_eq!(w.spread, 0, "a uniform offset adds no spread");
    }

    #[test]
    fn coldest_block_prefers_least_worn_valid_data() {
        let mut t = table();
        assert_eq!(t.coldest_block(None), None, "empty table has no cold data");
        // Block 1: one erase cycle, then refilled. Block 0: never erased.
        for b in [BlockAddr(1), BlockAddr(0)] {
            t.open(b);
            for _ in 0..t.geometry().pages_per_block() {
                t.allocate_page(b, 0);
            }
        }
        for _ in 0..t.geometry().pages_per_block() {
            t.invalidate_page(BlockAddr(1));
        }
        t.erase(BlockAddr(1));
        t.open(BlockAddr(1));
        for _ in 0..t.geometry().pages_per_block() {
            t.allocate_page(BlockAddr(1), 0);
        }
        assert_eq!(t.coldest_block(None), Some(BlockAddr(0)));
        assert_eq!(t.coldest_block(Some(BlockAddr(0))), Some(BlockAddr(1)));
    }
}
