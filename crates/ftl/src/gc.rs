//! Greedy, wear-aware garbage collection (paper Table II, \[27\]).
//!
//! The victim is the reclaimable block (Closed or IDA) with the fewest
//! valid pages; erase count breaks ties toward the least-worn block. The
//! paper notes IDA blocks are *more* likely to become victims because they
//! hold relatively few valid pages — this falls out naturally here.

use crate::block::BlockTable;
use ida_flash::addr::{BlockAddr, PlaneAddr};
use ida_flash::geometry::Geometry;

/// Select the GC victim within `plane`, excluding `exclude` (typically the
/// refresh target currently being processed). Returns `None` if the plane
/// has no reclaimable block.
///
/// O(1) amortized: answered from the victim index [`BlockTable`] maintains
/// on every block transition. [`select_victim_scan`] is the retained
/// reference implementation; the two must agree on every table state.
pub fn select_victim(
    blocks: &BlockTable,
    plane: PlaneAddr,
    exclude: Option<BlockAddr>,
) -> Option<BlockAddr> {
    blocks.victim_in_plane(plane, exclude)
}

/// Reference implementation of [`select_victim`]: a full linear scan over
/// the device. Kept (and exercised by the differential property tests) as
/// the executable specification of the victim ordering —
/// `(valid_pages, erase_count, BlockAddr)`, fully-valid blocks skipped.
pub fn select_victim_scan(
    blocks: &BlockTable,
    plane: PlaneAddr,
    exclude: Option<BlockAddr>,
) -> Option<BlockAddr> {
    let g: &Geometry = blocks.geometry();
    let full = g.pages_per_block();
    blocks
        .reclaimable_blocks()
        // A fully valid victim yields no net space — collecting it is pure
        // wear (and would loop the watermark GC forever).
        .filter(|&(b, valid, _)| valid < full && b.plane(g) == plane && Some(b) != exclude)
        .min_by_key(|&(_, valid, erases)| (valid, erases))
        .map(|(b, _, _)| b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ida_flash::geometry::Geometry;

    fn fill_block(t: &mut BlockTable, b: BlockAddr) {
        t.open(b);
        for _ in 0..t.geometry().pages_per_block() {
            t.allocate_page(b, 0);
        }
    }

    #[test]
    fn picks_block_with_fewest_valid_pages() {
        let g = Geometry::tiny();
        let mut t = BlockTable::new(g);
        fill_block(&mut t, BlockAddr(0));
        fill_block(&mut t, BlockAddr(1));
        // Invalidate more pages in block 1.
        for _ in 0..10 {
            t.invalidate_page(BlockAddr(1));
        }
        t.invalidate_page(BlockAddr(0));
        assert_eq!(select_victim(&t, PlaneAddr(0), None), Some(BlockAddr(1)));
    }

    #[test]
    fn erase_count_breaks_ties() {
        let g = Geometry::tiny();
        let mut t = BlockTable::new(g);
        // Wear out block 0 once.
        fill_block(&mut t, BlockAddr(0));
        for _ in 0..g.pages_per_block() {
            t.invalidate_page(BlockAddr(0));
        }
        t.erase(BlockAddr(0));
        fill_block(&mut t, BlockAddr(0));
        fill_block(&mut t, BlockAddr(1));
        // Equal valid counts; block 1 has fewer erases.
        t.invalidate_page(BlockAddr(0));
        t.invalidate_page(BlockAddr(1));
        assert_eq!(select_victim(&t, PlaneAddr(0), None), Some(BlockAddr(1)));
    }

    #[test]
    fn exclusion_is_respected() {
        let g = Geometry::tiny();
        let mut t = BlockTable::new(g);
        fill_block(&mut t, BlockAddr(0));
        t.invalidate_page(BlockAddr(0));
        assert_eq!(select_victim(&t, PlaneAddr(0), None), Some(BlockAddr(0)));
        assert_eq!(select_victim(&t, PlaneAddr(0), Some(BlockAddr(0))), None);
    }

    #[test]
    fn fully_valid_blocks_are_never_victims() {
        let g = Geometry::tiny();
        let mut t = BlockTable::new(g);
        fill_block(&mut t, BlockAddr(0));
        // Collecting a fully valid block frees no space: skip it.
        assert_eq!(select_victim(&t, PlaneAddr(0), None), None);
        t.invalidate_page(BlockAddr(0));
        assert_eq!(select_victim(&t, PlaneAddr(0), None), Some(BlockAddr(0)));
    }

    #[test]
    fn victim_stays_in_requested_plane() {
        let g = Geometry::tiny(); // 2 planes (one per channel)
        let mut t = BlockTable::new(g);
        fill_block(&mut t, BlockAddr(0)); // plane 0
        t.invalidate_page(BlockAddr(0));
        let plane1_block = BlockAddr(g.blocks_per_plane); // first block of plane 1
        fill_block(&mut t, plane1_block);
        t.invalidate_page(plane1_block);
        assert_eq!(select_victim(&t, PlaneAddr(1), None), Some(plane1_block));
    }

    #[test]
    fn empty_plane_yields_none() {
        let t = BlockTable::new(Geometry::tiny());
        assert_eq!(select_victim(&t, PlaneAddr(0), None), None);
    }

    #[test]
    fn index_matches_reference_scan() {
        let g = Geometry::tiny();
        let mut t = BlockTable::new(g);
        // Build a mixed state: varying valid counts, wear, an IDA block
        // and an erased-then-refilled block across both planes.
        for i in [0, 1, 2, g.blocks_per_plane, g.blocks_per_plane + 1] {
            fill_block(&mut t, BlockAddr(i));
        }
        for _ in 0..5 {
            t.invalidate_page(BlockAddr(1));
        }
        for _ in 0..g.pages_per_block() {
            t.invalidate_page(BlockAddr(2));
        }
        t.erase(BlockAddr(2));
        fill_block(&mut t, BlockAddr(2));
        t.invalidate_page(BlockAddr(2));
        t.mark_ida(BlockAddr(g.blocks_per_plane), &[(0, 0b110)], 7);
        t.invalidate_page(BlockAddr(g.blocks_per_plane));
        for plane in [PlaneAddr(0), PlaneAddr(1)] {
            for exclude in [
                None,
                Some(BlockAddr(1)),
                Some(BlockAddr(g.blocks_per_plane)),
            ] {
                assert_eq!(
                    select_victim(&t, plane, exclude),
                    select_victim_scan(&t, plane, exclude),
                    "index/scan divergence on {plane:?} excluding {exclude:?}"
                );
            }
        }
    }
}
