//! Typed FTL errors — the failure modes a host can observe.
//!
//! These replace the panics that used to fire on input-reachable
//! conditions (capacity exhaustion) and carry the new fault-injection
//! outcomes (power loss, read-only degradation) up to the simulator and
//! the CLI without unwinding.

use std::fmt;

/// Why a host write could not be acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtlError {
    /// The device is in read-only degradation; the reason is the message
    /// recorded when the mode was entered (e.g. spare-pool exhaustion).
    ReadOnly {
        /// Why writes were disabled.
        reason: &'static str,
    },
    /// Power was lost before the write's program operation committed; the
    /// write is unacknowledged and the device ran (or must run) recovery.
    PowerLoss,
    /// The host exceeded the exported capacity: garbage collection found
    /// no reclaimable space for a new write.
    OutOfSpace,
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::ReadOnly { reason } => write!(f, "device is read-only: {reason}"),
            FtlError::PowerLoss => write!(f, "power lost before the write committed"),
            FtlError::OutOfSpace => write!(f, "device out of space: exported capacity exceeded"),
        }
    }
}

impl std::error::Error for FtlError {}
