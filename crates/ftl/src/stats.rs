//! FTL-level statistics: GC, refresh, wear and block-usage counters.

use ida_core::analysis::RefreshOverhead;

/// Counters accumulated by the FTL over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FtlStats {
    /// Host page writes served.
    pub host_writes: u64,
    /// Host page reads served.
    pub host_reads: u64,
    /// Pages copied by garbage collection.
    pub gc_copies: u64,
    /// GC invocations.
    pub gc_runs: u64,
    /// Blocks erased.
    pub erases: u64,
    /// Refresh operations executed.
    pub refreshes: u64,
    /// Pages moved to new blocks by refresh.
    pub refresh_moves: u64,
    /// Wordlines voltage-adjusted by IDA refresh.
    pub voltage_adjusts: u64,
    /// Blocks converted to IDA coding.
    pub ida_conversions: u64,
    /// Host reads served from IDA-coded wordlines.
    pub ida_reads: u64,
    /// Injected program failures absorbed by write redirection.
    pub injected_program_fails: u64,
    /// Injected erase failures (each retires a block).
    pub injected_erase_fails: u64,
    /// Host reads hit by injected transient faults (all recovered by
    /// bounded retry).
    pub transient_read_faults: u64,
    /// Writes that succeeded only after redirection off a failed page.
    pub write_redirects: u64,
    /// Blocks retired to the grown-bad list.
    pub retired_blocks: u64,
    /// Injected power-loss events.
    pub power_losses: u64,
    /// Recovery scans run (one per power loss).
    pub recoveries: u64,
    /// Host writes rejected because the device degraded to read-only.
    pub rejected_writes: u64,
    /// Patrol-scrub passes completed.
    pub scrub_passes: u64,
    /// Pages relocated by patrol scrub (disturb/retention at-risk).
    pub scrub_relocations: u64,
    /// Pages migrated off cold low-wear blocks by the wear-leveler.
    pub wear_level_moves: u64,
    /// Reads whose retry ladder exhausted; data recovered by relocation.
    pub ecc_uncorrectables: u64,
    /// Extra sense attempts taken by the RBER-driven retry ladder.
    pub ladder_retries: u64,
    /// Sum of modeled per-read RBER, in units of 1e-9 (integer so the
    /// accumulator stays byte-identical across worker counts).
    pub rber_e9_sum: u64,
    /// Refresh overhead accounting (Table IV quantities).
    pub refresh_overhead: RefreshOverhead,
}

ida_snap::snap_struct!(FtlStats {
    host_writes,
    host_reads,
    gc_copies,
    gc_runs,
    erases,
    refreshes,
    refresh_moves,
    voltage_adjusts,
    ida_conversions,
    ida_reads,
    injected_program_fails,
    injected_erase_fails,
    transient_read_faults,
    write_redirects,
    retired_blocks,
    power_losses,
    recoveries,
    rejected_writes,
    scrub_passes,
    scrub_relocations,
    wear_level_moves,
    ecc_uncorrectables,
    ladder_retries,
    rber_e9_sum,
    refresh_overhead,
});

impl FtlStats {
    /// Write amplification: total page programs per host page write.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            return 0.0;
        }
        let total = self.host_writes + self.gc_copies + self.refresh_moves;
        total as f64 / self.host_writes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_amplification_counts_background_writes() {
        let stats = FtlStats {
            host_writes: 100,
            gc_copies: 30,
            refresh_moves: 20,
            ..FtlStats::default()
        };
        assert!((stats.write_amplification() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn write_amplification_of_idle_ftl_is_zero() {
        assert_eq!(FtlStats::default().write_amplification(), 0.0);
    }
}
