//! Refresh scheduling: per-block due times in a priority queue.
//!
//! Every block receives a refresh due-time when it closes. Entries carry a
//! snapshot of the block's close time so that stale entries (the block was
//! erased and reused since) are discarded on pop.

use ida_flash::addr::BlockAddr;
use ida_flash::timing::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Entry {
    due: SimTime,
    block: BlockAddr,
    closed_at: SimTime,
}

/// Priority queue of pending block refreshes.
#[derive(Debug, Clone, Default)]
pub struct RefreshQueue {
    heap: BinaryHeap<Reverse<Entry>>,
}

ida_snap::snap_struct!(Entry {
    due,
    block,
    closed_at,
});

// A BinaryHeap's internal layout depends on insertion history, so the heap
// travels as a sorted vec: the multiset of entries (which fully determines
// the pop sequence) is preserved, giving a behaviorally identical queue
// with a canonical byte form.
impl ida_snap::Snap for RefreshQueue {
    fn encode(&self, w: &mut ida_snap::Writer) {
        let mut entries: Vec<Entry> = self.heap.iter().map(|Reverse(e)| *e).collect();
        entries.sort_unstable();
        ida_snap::Snap::encode(&entries, w);
    }
    fn decode(r: &mut ida_snap::Reader<'_>) -> Result<Self, ida_snap::SnapError> {
        let entries: Vec<Entry> = ida_snap::Snap::decode(r)?;
        Ok(RefreshQueue {
            heap: entries.into_iter().map(Reverse).collect(),
        })
    }
}

impl RefreshQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `block` (closed at `closed_at`) for refresh at `due`.
    pub fn schedule(&mut self, block: BlockAddr, closed_at: SimTime, due: SimTime) {
        self.heap.push(Reverse(Entry {
            due,
            block,
            closed_at,
        }));
    }

    /// The due time of the earliest pending entry, if any (may be stale;
    /// staleness is resolved by [`RefreshQueue::pop_due`]).
    pub fn next_due(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.due)
    }

    /// Pop the earliest entry if it is due at `now`. The caller passes a
    /// `still_fresh` predicate receiving `(block, closed_at_snapshot)`;
    /// stale entries are dropped silently and the scan continues.
    pub fn pop_due(
        &mut self,
        now: SimTime,
        mut still_fresh: impl FnMut(BlockAddr, SimTime) -> bool,
    ) -> Option<BlockAddr> {
        while let Some(Reverse(e)) = self.heap.peek().copied() {
            if e.due > now {
                return None;
            }
            self.heap.pop();
            if still_fresh(e.block, e.closed_at) {
                return Some(e.block);
            }
        }
        None
    }

    /// Number of pending (possibly stale) entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_due_order() {
        let mut q = RefreshQueue::new();
        q.schedule(BlockAddr(1), 0, 300);
        q.schedule(BlockAddr(2), 0, 100);
        q.schedule(BlockAddr(3), 0, 200);
        assert_eq!(q.next_due(), Some(100));
        assert_eq!(q.pop_due(1_000, |_, _| true), Some(BlockAddr(2)));
        assert_eq!(q.pop_due(1_000, |_, _| true), Some(BlockAddr(3)));
        assert_eq!(q.pop_due(1_000, |_, _| true), Some(BlockAddr(1)));
        assert!(q.is_empty());
    }

    #[test]
    fn not_due_yet_returns_none_without_popping() {
        let mut q = RefreshQueue::new();
        q.schedule(BlockAddr(1), 0, 500);
        assert_eq!(q.pop_due(499, |_, _| true), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn stale_entries_are_skipped() {
        let mut q = RefreshQueue::new();
        q.schedule(BlockAddr(1), 10, 100); // stale (block re-closed at 20)
        q.schedule(BlockAddr(1), 20, 200);
        let fresh_time = 20;
        assert_eq!(
            q.pop_due(1_000, |_, snap| snap == fresh_time),
            Some(BlockAddr(1))
        );
        assert!(q.is_empty());
    }

    #[test]
    fn all_stale_yields_none() {
        let mut q = RefreshQueue::new();
        q.schedule(BlockAddr(1), 10, 100);
        q.schedule(BlockAddr(2), 10, 100);
        assert_eq!(q.pop_due(1_000, |_, _| false), None);
        assert!(q.is_empty());
    }
}
