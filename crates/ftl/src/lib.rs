//! Flash translation layer for the IDA-coding SSD simulator.
//!
//! The FTL owns the *logical* state of the SSD — which logical page lives
//! on which physical page, which pages are valid, which blocks are free,
//! IDA-coded, or awaiting refresh — and turns host reads/writes into
//! sequences of flash operations ([`FlashOp`]) that the event-driven
//! simulator (`ida-ssd`) charges with timing and resource contention.
//!
//! Faithful to the paper's configuration (Table II):
//!
//! - page-level mapping with **CWDP static allocation** (channel first,
//!   chip second, die third, plane last);
//! - **greedy, wear-aware garbage collection** (fewest valid pages,
//!   erase-count tiebreak);
//! - **remapping-based data refresh** with a per-workload period, running
//!   either the baseline flow or the IDA-modified flow of Figure 7;
//! - a **block status table** tracking per-page validity and, for IDA
//!   blocks, the per-wordline merged coding in force.
//!
//! # Example
//!
//! ```
//! use ida_ftl::{Ftl, FtlConfig};
//! use ida_flash::Geometry;
//!
//! let mut ftl = Ftl::new(FtlConfig {
//!     geometry: Geometry::tiny(),
//!     ..FtlConfig::default()
//! });
//! let ops = ftl.write(ida_ftl::Lpn(0), 0);
//! assert!(!ops.is_empty()); // at least the page program itself
//! let read = ftl.read(ida_ftl::Lpn(0)).expect("just written");
//! assert_eq!(read.senses, 1); // first page of a block is an LSB page
//! ```

pub mod alloc;
pub mod block;
pub mod config;
pub mod ftl;
pub mod gc;
pub mod map;
pub mod ops;
pub mod refresh;
pub mod stats;

pub use config::{CodingVariant, FtlConfig};
pub use ftl::Ftl;
pub use map::Lpn;
pub use ops::{FlashOp, FlashOpKind, Priority, ReadOp, ReadScenario};
pub use stats::FtlStats;
