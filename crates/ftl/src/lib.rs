//! Flash translation layer for the IDA-coding SSD simulator.
//!
//! The FTL owns the *logical* state of the SSD — which logical page lives
//! on which physical page, which pages are valid, which blocks are free,
//! IDA-coded, or awaiting refresh — and turns host reads/writes into
//! sequences of flash operations ([`FlashOp`]) that the event-driven
//! simulator (`ida-ssd`) charges with timing and resource contention.
//!
//! Faithful to the paper's configuration (Table II):
//!
//! - page-level mapping with **CWDP static allocation** (channel first,
//!   chip second, die third, plane last);
//! - **greedy, wear-aware garbage collection** (fewest valid pages,
//!   erase-count tiebreak);
//! - **remapping-based data refresh** with a per-workload period, running
//!   either the baseline flow or the IDA-modified flow of Figure 7;
//! - a **block status table** tracking per-page validity and, for IDA
//!   blocks, the per-wordline merged coding in force;
//! - **fault recovery**: bad-block retirement with a reserved spare pool,
//!   program-failure write redirection, and a power-loss recovery scan
//!   that rebuilds all volatile state from simulated OOB metadata.
//!
//! # Example
//!
//! ```
//! use ida_ftl::{Ftl, FtlConfig};
//! use ida_flash::Geometry;
//!
//! let mut ftl = Ftl::new(FtlConfig {
//!     geometry: Geometry::tiny(),
//!     ..FtlConfig::default()
//! });
//! let ops = ftl.write(ida_ftl::Lpn(0), 0).expect("device is writable");
//! assert!(!ops.is_empty()); // at least the page program itself
//! let read = ftl.read(ida_ftl::Lpn(0)).expect("just written");
//! assert_eq!(read.senses, 1); // first page of a block is an LSB page
//! ```

pub mod alloc;
pub mod block;
pub mod config;
pub mod error;
pub mod ftl;
pub mod gc;
pub mod map;
pub mod oob;
pub mod ops;
pub mod refresh;
pub mod stats;

pub use block::WearSummary;
pub use config::{CodingVariant, FtlConfig};
pub use error::FtlError;
pub use ftl::{Ftl, RecoveryReport};
pub use map::Lpn;
pub use oob::{OobStore, PageRecord};
pub use ops::{FlashOp, FlashOpKind, OpOrigin, Priority, ReadOp, ReadScenario};
pub use stats::FtlStats;
