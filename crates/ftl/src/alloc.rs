//! CWDP static page allocation.
//!
//! The paper's FTL stripes consecutive page writes across the array in
//! **C**hannel-first, **W**(chip)-second, **D**ie-third, **P**lane-last
//! order \[26\], maximizing channel-level parallelism for sequential
//! traffic. Each plane keeps one active (open) block; pages within a block
//! fill sequentially, which interleaves LSB/CSB/MSB pages across each
//! wordline in program order.

use crate::block::BlockTable;
use ida_flash::addr::{BlockAddr, PageAddr, PlaneAddr};
use ida_flash::geometry::Geometry;
use ida_flash::timing::SimTime;
use std::collections::VecDeque;

/// Per-plane free-block pools plus the CWDP round-robin cursor.
#[derive(Debug, Clone)]
pub struct Allocator {
    geometry: Geometry,
    /// Planes in CWDP visiting order.
    plane_order: Vec<PlaneAddr>,
    cursor: usize,
    free: Vec<VecDeque<BlockAddr>>,
    active: Vec<Option<BlockAddr>>,
    /// Per-plane reserved spares: erased blocks held out of circulation
    /// until a grown-bad block needs replacing.
    spares: Vec<Vec<BlockAddr>>,
}

// Free-pool deque order is allocation-order-significant, so every field
// (including the derived CWDP plane order) is serialized verbatim.
ida_snap::snap_struct!(Allocator {
    geometry,
    plane_order,
    cursor,
    free,
    active,
    spares,
});

impl Allocator {
    /// An allocator with every block of every plane in its free pool.
    pub fn new(geometry: Geometry) -> Self {
        geometry.validate();
        let mut free: Vec<VecDeque<BlockAddr>> =
            vec![VecDeque::new(); geometry.total_planes() as usize];
        for b in 0..geometry.total_blocks() {
            let b = BlockAddr(b);
            free[b.plane(&geometry).0 as usize].push_back(b);
        }
        let plane_order = cwdp_plane_order(&geometry);
        Allocator {
            geometry,
            plane_order,
            cursor: 0,
            free,
            active: vec![None; geometry.total_planes() as usize],
            spares: vec![Vec::new(); geometry.total_planes() as usize],
        }
    }

    /// An allocator that holds `per_plane` blocks out of each plane's free
    /// pool as bad-block spares. Returns the blocks moved to the spare
    /// pools so the caller can flag them in OOB metadata.
    ///
    /// # Panics
    ///
    /// Panics if a plane has fewer than `per_plane + GC_RESERVE + 1` free
    /// blocks — a spare pool that starves normal allocation is a
    /// configuration error.
    pub fn with_spares(geometry: Geometry, per_plane: u32) -> (Self, Vec<BlockAddr>) {
        let mut alloc = Self::new(geometry);
        let mut taken = Vec::new();
        for slot in 0..alloc.free.len() {
            assert!(
                alloc.free[slot].len() as u32 > per_plane + Self::GC_RESERVE,
                "spare pool of {per_plane} starves plane {slot}"
            );
            for _ in 0..per_plane {
                let b = alloc.free[slot].pop_back().expect("bound checked above");
                alloc.spares[slot].push(b);
                taken.push(b);
            }
        }
        (alloc, taken)
    }

    /// Take one spare from `plane`'s pool to replace a retired block.
    /// Returns `None` when the pool is exhausted (the degradation signal).
    pub fn take_spare(&mut self, plane: PlaneAddr) -> Option<BlockAddr> {
        self.spares[plane.0 as usize].pop()
    }

    /// Spares remaining in `plane`'s pool.
    pub fn spare_count(&self, plane: PlaneAddr) -> u32 {
        self.spares[plane.0 as usize].len() as u32
    }

    /// Spares remaining across all planes.
    pub fn total_spares(&self) -> u64 {
        self.spares.iter().map(|s| s.len() as u64).sum()
    }

    /// Rebuild an allocator from recovered block states: `free` blocks
    /// enter their plane's pool in address order, `spare` blocks re-enter
    /// the spare pools, and at most one `open` block per plane becomes the
    /// active block. Deterministic by construction — the pools depend only
    /// on the recovered states, not on pre-crash pool order.
    pub fn rebuild(geometry: Geometry, pool_of: impl Fn(BlockAddr) -> RecoveredPool) -> Self {
        let planes = geometry.total_planes() as usize;
        let mut free: Vec<VecDeque<BlockAddr>> = vec![VecDeque::new(); planes];
        let mut spares: Vec<Vec<BlockAddr>> = vec![Vec::new(); planes];
        let mut active: Vec<Option<BlockAddr>> = vec![None; planes];
        for i in 0..geometry.total_blocks() {
            let b = BlockAddr(i);
            let slot = b.plane(&geometry).0 as usize;
            match pool_of(b) {
                RecoveredPool::Free => free[slot].push_back(b),
                RecoveredPool::Spare => spares[slot].push(b),
                RecoveredPool::Active => {
                    assert!(
                        active[slot].is_none(),
                        "two open blocks recovered in plane {slot}"
                    );
                    active[slot] = Some(b);
                }
                RecoveredPool::None => {}
            }
        }
        Allocator {
            geometry,
            plane_order: cwdp_plane_order(&geometry),
            cursor: 0,
            free,
            active,
            spares,
        }
    }

    /// Allocate the next physical page in CWDP order, opening fresh blocks
    /// as needed. Returns `None` when no plane has space left (the caller
    /// must garbage-collect).
    pub fn allocate(&mut self, blocks: &mut BlockTable, now: SimTime) -> Option<PageAddr> {
        for _ in 0..self.plane_order.len() {
            let plane = self.plane_order[self.cursor];
            self.cursor = (self.cursor + 1) % self.plane_order.len();
            if let Some(page) = self.allocate_in_plane(plane, blocks, now) {
                return Some(page);
            }
        }
        None
    }

    /// Blocks per plane held back from host allocation so garbage
    /// collection always has somewhere to relocate a victim's valid pages
    /// (a victim holds at most one block's worth).
    pub const GC_RESERVE: u32 = 1;

    /// Allocate a page in a specific plane on behalf of the host: a new
    /// block is only opened if doing so leaves the GC reserve untouched.
    pub fn allocate_in_plane(
        &mut self,
        plane: PlaneAddr,
        blocks: &mut BlockTable,
        now: SimTime,
    ) -> Option<PageAddr> {
        self.allocate_in_plane_inner(plane, blocks, now, Self::GC_RESERVE)
    }

    /// Allocate a page in `plane` for garbage collection, which may dig
    /// into the reserve (the erase it is about to perform repays it).
    pub fn allocate_gc(
        &mut self,
        plane: PlaneAddr,
        blocks: &mut BlockTable,
        now: SimTime,
    ) -> Option<PageAddr> {
        self.allocate_in_plane_inner(plane, blocks, now, 0)
    }

    fn allocate_in_plane_inner(
        &mut self,
        plane: PlaneAddr,
        blocks: &mut BlockTable,
        now: SimTime,
        keep_back: u32,
    ) -> Option<PageAddr> {
        let slot = plane.0 as usize;
        if self.active[slot].is_none() {
            if (self.free[slot].len() as u32) <= keep_back {
                return None;
            }
            let block = self.free[slot].pop_front()?;
            blocks.open(block);
            self.active[slot] = Some(block);
        }
        let block = self.active[slot].expect("active block just ensured");
        let off = blocks.allocate_page(block, now);
        if !blocks.has_room(block) {
            self.active[slot] = None;
        }
        Some(block.page(&self.geometry, off))
    }

    /// Allocate a page whose *type* (bit index within its wordline) is
    /// `wanted_bit`, if some plane's write pointer currently sits on such a
    /// slot — the paper's placement of evicted LSB data into the fast LSB
    /// pages of new blocks (Section III-C). Falls back to plain CWDP
    /// allocation when no plane lines up.
    pub fn allocate_preferring(
        &mut self,
        wanted_bit: u8,
        blocks: &mut BlockTable,
        now: SimTime,
    ) -> Option<PageAddr> {
        let n = self.plane_order.len();
        for i in 0..n {
            let plane = self.plane_order[(self.cursor + i) % n];
            let slot = plane.0 as usize;
            let next_bit = match self.active[slot] {
                Some(b) => (blocks.next_offset(b) % self.geometry.bits_per_cell) as u8,
                None if !self.free[slot].is_empty() => 0,
                None => continue,
            };
            if next_bit == wanted_bit {
                // The matched plane may still refuse (GC reserve); keep
                // scanning rather than giving up.
                if let Some(page) = self.allocate_in_plane(plane, blocks, now) {
                    self.cursor = (self.cursor + i + 1) % n;
                    return Some(page);
                }
            }
        }
        self.allocate(blocks, now)
    }

    /// Return an erased block to its plane's free pool.
    pub fn push_free(&mut self, block: BlockAddr) {
        self.free[block.plane(&self.geometry).0 as usize].push_back(block);
    }

    /// Free blocks currently pooled in `plane` (not counting the active
    /// block).
    pub fn free_count(&self, plane: PlaneAddr) -> u32 {
        self.free[plane.0 as usize].len() as u32
    }

    /// The plane with the fewest pooled free blocks, and that count.
    pub fn tightest_plane(&self) -> (PlaneAddr, u32) {
        let (i, q) = self
            .free
            .iter()
            .enumerate()
            .min_by_key(|(_, q)| q.len())
            .expect("at least one plane");
        (PlaneAddr(i as u32), q.len() as u32)
    }

    /// The currently active (open) block of `plane`, if any.
    pub fn active_block(&self, plane: PlaneAddr) -> Option<BlockAddr> {
        self.active[plane.0 as usize]
    }

    /// Total free blocks across all planes.
    pub fn total_free(&self) -> u64 {
        self.free.iter().map(|q| q.len() as u64).sum()
    }

    /// Debugging summary: per-plane `(pool length, has active block)`.
    pub fn pool_snapshot(&self) -> Vec<(u32, bool)> {
        self.free
            .iter()
            .zip(&self.active)
            .map(|(q, a)| (q.len() as u32, a.is_some()))
            .collect()
    }
}

/// Which pool a block belongs to after the recovery scan classifies it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveredPool {
    /// Erased and allocatable.
    Free,
    /// Erased but reserved as a bad-block spare.
    Spare,
    /// Open (partially programmed): the plane's active block.
    Active,
    /// Not allocatable (closed, IDA, or bad).
    None,
}

/// The CWDP plane visiting order: channel varies fastest, then chip, then
/// die, then plane.
fn cwdp_plane_order(g: &Geometry) -> Vec<PlaneAddr> {
    let mut order = Vec::with_capacity(g.total_planes() as usize);
    for plane in 0..g.planes_per_die {
        for die in 0..g.dies_per_chip {
            for chip in 0..g.chips_per_channel {
                for ch in 0..g.channels {
                    let flat_die = (ch * g.chips_per_channel + chip) * g.dies_per_chip + die;
                    order.push(PlaneAddr(flat_die * g.planes_per_die + plane));
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cwdp_order_visits_channels_first() {
        let g = Geometry::paper_512gb(); // 4 ch, 4 chips, 2 dies, 2 planes
        let order = cwdp_plane_order(&g);
        assert_eq!(order.len(), 64);
        // First four entries must sit on channels 0..4.
        let channels: Vec<u32> = order[..4].iter().map(|p| p.die(&g).channel(&g)).collect();
        assert_eq!(channels, vec![0, 1, 2, 3]);
        // And all on plane 0 of die 0 of chip 0.
        assert!(order[..4].iter().all(|p| p.0 % g.planes_per_die == 0));
    }

    #[test]
    fn consecutive_allocations_stripe_across_channels() {
        let g = Geometry::tiny(); // 2 channels, 1 chip, 1 die, 1 plane
        let mut blocks = BlockTable::new(g);
        let mut alloc = Allocator::new(g);
        let p0 = alloc.allocate(&mut blocks, 0).unwrap();
        let p1 = alloc.allocate(&mut blocks, 0).unwrap();
        assert_ne!(p0.channel(&g), p1.channel(&g));
    }

    #[test]
    fn pages_fill_blocks_sequentially_within_a_plane() {
        let g = Geometry::tiny();
        let mut blocks = BlockTable::new(g);
        let mut alloc = Allocator::new(g);
        let mut offsets = Vec::new();
        // Two planes alternate; collect plane-0 offsets.
        for _ in 0..8 {
            let p = alloc.allocate(&mut blocks, 0).unwrap();
            if p.block(&g).plane(&g) == PlaneAddr(0) {
                offsets.push(p.offset_in_block(&g));
            }
        }
        assert_eq!(offsets, vec![0, 1, 2, 3]);
    }

    #[test]
    fn allocation_exhausts_then_returns_none() {
        let g = Geometry::tiny();
        let mut blocks = BlockTable::new(g);
        let mut alloc = Allocator::new(g);
        // The host path keeps GC_RESERVE blocks back in every plane.
        let reserved = (Allocator::GC_RESERVE * g.total_planes()) as u64;
        let host_visible = g.total_pages() - reserved * g.pages_per_block() as u64;
        for _ in 0..host_visible {
            assert!(alloc.allocate(&mut blocks, 0).is_some());
        }
        assert_eq!(alloc.allocate(&mut blocks, 0), None);
        assert_eq!(alloc.total_free(), reserved);
        // The reserve is still reachable for GC.
        assert!(alloc.allocate_gc(PlaneAddr(0), &mut blocks, 0).is_some());
    }

    #[test]
    fn push_free_recycles_blocks() {
        let g = Geometry::tiny();
        let mut blocks = BlockTable::new(g);
        let mut alloc = Allocator::new(g);
        let page = alloc.allocate(&mut blocks, 0).unwrap();
        let block = page.block(&g);
        // Exhaust, invalidate, erase, recycle.
        while blocks.has_room(block) {
            blocks.allocate_page(block, 0);
        }
        for _ in 0..g.pages_per_block() {
            blocks.invalidate_page(block);
        }
        blocks.erase(block);
        let before = alloc.free_count(block.plane(&g));
        alloc.push_free(block);
        assert_eq!(alloc.free_count(block.plane(&g)), before + 1);
    }

    #[test]
    fn spare_pool_is_held_back_and_drains() {
        let g = Geometry::tiny();
        let (mut alloc, taken) = Allocator::with_spares(g, 2);
        assert_eq!(taken.len(), 2 * g.total_planes() as usize);
        assert_eq!(alloc.spare_count(PlaneAddr(0)), 2);
        assert_eq!(
            alloc.free_count(PlaneAddr(0)),
            g.blocks_per_plane - 2,
            "spares leave the free pool"
        );
        assert!(alloc.take_spare(PlaneAddr(0)).is_some());
        assert!(alloc.take_spare(PlaneAddr(0)).is_some());
        assert_eq!(alloc.take_spare(PlaneAddr(0)), None, "pool exhausts");
        assert_eq!(alloc.total_spares(), 2);
    }

    #[test]
    fn rebuild_sorts_blocks_into_their_pools() {
        let g = Geometry::tiny(); // 2 planes x 64 blocks
        let alloc = Allocator::rebuild(g, |b| match b.0 {
            0 => RecoveredPool::Active,
            1 => RecoveredPool::Spare,
            2 | 3 => RecoveredPool::None,
            _ => RecoveredPool::Free,
        });
        assert_eq!(alloc.active_block(PlaneAddr(0)), Some(BlockAddr(0)));
        assert_eq!(alloc.spare_count(PlaneAddr(0)), 1);
        assert_eq!(alloc.free_count(PlaneAddr(0)), 60);
        assert_eq!(alloc.free_count(PlaneAddr(1)), 64);
    }

    #[test]
    fn allocate_in_plane_stays_in_plane() {
        let g = Geometry::tiny();
        let mut blocks = BlockTable::new(g);
        let mut alloc = Allocator::new(g);
        for _ in 0..10 {
            let p = alloc
                .allocate_in_plane(PlaneAddr(1), &mut blocks, 0)
                .unwrap();
            assert_eq!(p.block(&g).plane(&g), PlaneAddr(1));
        }
    }
}
